"""Unit tests for general graph emulation (paper §7, Theorem 7.1)."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.balance import MultipleChoice
from repro.core.segments import SegmentMap
from repro.emulation import (
    DeBruijnFamily,
    GraphEmulator,
    HypercubeFamily,
    RingFamily,
    ShuffleExchangeFamily,
    TorusFamily,
    family_graph,
)

FAMILIES = [RingFamily(), TorusFamily(), DeBruijnFamily(), ShuffleExchangeFamily()]


def smooth_segments(n, seed=0, t=4):
    rng = np.random.default_rng(seed)
    sm = SegmentMap()
    mc = MultipleChoice(t=t)
    for _ in range(n):
        sm.insert(mc.select(sm, rng))
    return sm


class TestFamilies:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_degree_bound_respected(self, family):
        k = 6
        for u in range(1 << k):
            assert len(family.neighbors(k, u)) <= family.degree_bound(k)

    @pytest.mark.parametrize("family", FAMILIES + [HypercubeFamily()])
    def test_symmetry(self, family):
        k = 5
        for u in range(1 << k):
            for v in family.neighbors(k, u):
                assert u in family.neighbors(k, v)

    @pytest.mark.parametrize("family", FAMILIES + [HypercubeFamily()])
    def test_connected(self, family):
        assert nx.is_connected(family_graph(family, 5))

    def test_ring_is_cycle(self):
        g = family_graph(RingFamily(), 4)
        assert all(d == 2 for _, d in g.degree())

    def test_hypercube_degree_is_k(self):
        fam = HypercubeFamily()
        assert all(len(fam.neighbors(5, u)) == 5 for u in range(32))

    def test_torus_dimensions(self):
        g = family_graph(TorusFamily(), 6)  # 8 × 8
        assert all(d == 4 for _, d in g.degree())

    def test_vertex_validation(self):
        with pytest.raises(ValueError):
            RingFamily().neighbors(3, 8)
        with pytest.raises(ValueError):
            RingFamily().neighbors(0, 0)


class TestMapping:
    def test_phi_is_cover_query(self):
        sm = smooth_segments(50, seed=1)
        em = GraphEmulator(sm, RingFamily(), k=6)
        for j in (0, 17, 63):
            assert em.host_of(j) == sm.cover_point(j / 64)

    def test_guests_partition(self):
        """Every guest is simulated by exactly one server."""
        sm = smooth_segments(40, seed=2)
        em = GraphEmulator(sm, TorusFamily(), k=7)
        all_guests = []
        for p in sm:
            all_guests.extend(em.guests_of(p))
        assert sorted(all_guests) == list(range(128))

    def test_guests_locally_computable(self):
        """Φ_k is computed from the server's own segment only (§7)."""
        sm = smooth_segments(30, seed=3)
        em = GraphEmulator(sm, RingFamily(), k=6)
        p = list(sm)[4]
        seg = sm.segment_of(p)
        for j in em.guests_of(p):
            assert (j / 64) in seg

    def test_guest_out_of_range(self):
        sm = smooth_segments(10, seed=4)
        em = GraphEmulator(sm, RingFamily(), k=4)
        with pytest.raises(ValueError):
            em.host_of(16)


class TestSection7Properties:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_all_properties_smooth(self, family):
        sm = smooth_segments(100, seed=5)
        em = GraphEmulator(sm, family)
        assert all(em.check_properties().values())

    def test_guests_bound_tight_on_grid(self):
        """Perfectly smooth (ρ=1): at most 2 guests per server."""
        sm = SegmentMap([i / 64 + 1e-4 for i in range(64)])
        em = GraphEmulator(sm, RingFamily(), k=6)
        assert em.max_guests_per_server() <= 2

    def test_degree_bound_rho_d(self):
        sm = smooth_segments(80, seed=6)
        rho = sm.smoothness()
        em = GraphEmulator(sm, TorusFamily())
        d = TorusFamily().degree_bound(em.k)
        assert max(em.host_degree(p) for p in sm) <= rho * d

    def test_unsmooth_violates_guest_bound(self):
        """Contrast: a terrible decomposition breaks property (1)."""
        sm = SegmentMap([0.0, 0.5 - 1e-9, 0.5])  # one server covers half of I
        em = GraphEmulator(sm, RingFamily(), k=6)
        rho = sm.smoothness()
        assert em.max_guests_per_server() > 3  # far above what ρ=1 would give


class TestTheorem71:
    def test_level_list_contains_true_level(self):
        sm = smooth_segments(100, seed=7)
        em = GraphEmulator(sm, TorusFamily())
        rho = sm.smoothness()
        true_k = math.ceil(math.log2(100))
        hit = sum(1 for p in sm if true_k in em.level_list(p, rho))
        assert hit == len(sm)

    def test_multi_level_degree_bound(self):
        """Degree ≤ 2 d ρ log ρ when n is unknown."""
        sm = smooth_segments(100, seed=8)
        rho = max(2.0, sm.smoothness())
        fam = TorusFamily()
        em = GraphEmulator(sm, fam)
        d = fam.degree_bound(em.k)
        bound = 2 * d * rho * max(1.0, math.log2(rho)) + d  # +d slack for ceil
        for p in list(sm)[:20]:
            assert len(em.multi_level_hosts(p, rho)) <= bound


class TestRealTimeEmulation:
    @pytest.mark.parametrize("family", [RingFamily(), DeBruijnFamily()])
    def test_round_matches_direct_computation(self, family):
        """Hosts computing guest rounds = direct computation on G_k."""
        sm = smooth_segments(60, seed=9)
        em = GraphEmulator(sm, family)
        rng = np.random.default_rng(10)
        values = {u: float(rng.random()) for u in range(1 << em.k)}
        via_hosts = em.emulate_round(values)
        direct = {
            u: sum(values[v] for v in family.neighbors(em.k, u))
            / len(family.neighbors(em.k, u))
            for u in range(1 << em.k)
        }
        assert via_hosts == pytest.approx(direct)

    def test_iterated_rounds_converge_like_direct(self):
        sm = smooth_segments(40, seed=11)
        em = GraphEmulator(sm, TorusFamily())
        rng = np.random.default_rng(12)
        values = {u: float(rng.random()) for u in range(1 << em.k)}
        for _ in range(20):
            values = em.emulate_round(values)
        spread = max(values.values()) - min(values.values())
        assert spread < 0.5  # averaging dynamics contract via host emulation
