"""Unit tests for the dynamic path quorum system (paper §5.1's pointer)."""

import math

import numpy as np
import pytest

from repro.balance import TwoDimMultipleChoice
from repro.expander import PathQuorumSystem, TorusVoronoi


@pytest.fixture(scope="module")
def system():
    rng = np.random.default_rng(0)
    algo = TwoDimMultipleChoice(128, t=4)
    algo.populate(rng=rng)
    return PathQuorumSystem(TorusVoronoi(algo.points))


class TestCrossings:
    def test_member_in_own_quorums(self, system):
        for m in (0, 17, 99):
            assert m in system.read_quorum(m)
            assert m in system.write_quorum(m)

    def test_quorum_size_sqrt_n(self, system):
        sizes = [len(system.read_quorum(m)) for m in range(0, 128, 8)]
        n = system.voronoi.n
        assert max(sizes) <= system.quorum_size_bound()
        assert min(sizes) >= math.sqrt(n) / 4  # crossings really span the square

    def test_crossing_cells_are_adjacent_chain(self, system):
        """Consecutive crossing cells share a Delaunay edge (the quorum can
        be traversed along overlay links)."""
        path = system._crossing(tuple(system.voronoi.points[5]), "horizontal")
        for a, b in zip(path, path[1:]):
            assert b in system.voronoi.delaunay_neighbors(a) or a == b


class TestIntersection:
    def test_read_write_always_intersect(self, system):
        rng = np.random.default_rng(1)
        assert system.verify_intersection(120, rng) == 1.0

    def test_intersection_survives_membership_change(self):
        """Geometry gives consistency through churn: new tessellation, same
        guarantee, no reconfiguration protocol."""
        rng = np.random.default_rng(2)
        algo = TwoDimMultipleChoice(96, t=4)
        algo.populate(rng=rng)
        tv = TorusVoronoi(algo.points)
        pq = PathQuorumSystem(tv)
        assert pq.verify_intersection(40, rng) == 1.0
        tv.insert((float(rng.random()), float(rng.random())))
        pq2 = PathQuorumSystem(tv)
        assert pq2.verify_intersection(40, rng) == 1.0

    def test_reads_need_not_intersect_reads(self, system):
        """Two horizontal crossings at different heights can be disjoint —
        the asymmetry that keeps quorums small."""
        rng = np.random.default_rng(3)
        disjoint = 0
        for _ in range(60):
            a = system.read_quorum(int(rng.integers(128)))
            b = system.read_quorum(int(rng.integers(128)))
            disjoint += not (a & b)
        assert disjoint > 0


class TestLoad:
    def test_load_near_sqrt_optimum(self, system):
        rng = np.random.default_rng(4)
        load = system.load(200, rng)
        n = system.voronoi.n
        # optimal quorum load is 1/√n; allow the smoothness constant
        assert load <= 8.0 / math.sqrt(n)
