"""Unit tests for the Gabber–Galil expander construction (paper §5.2)."""


import networkx as nx
import numpy as np
import pytest

from repro.expander import (
    GG_EXPANSION_CONSTANT,
    GabberGalilNetwork,
    cheeger_bounds,
    gg_f,
    gg_f_inv,
    gg_g,
    gg_g_inv,
    sampled_vertex_expansion,
    spectral_gap,
    vertex_expansion_of_set,
)


class TestTransforms:
    def test_f_definition(self):
        p = np.array([[0.3, 0.4]])
        assert gg_f(p)[0] == pytest.approx([0.7, 0.4])

    def test_g_definition(self):
        p = np.array([[0.3, 0.4]])
        assert gg_g(p)[0] == pytest.approx([0.3, 0.7])

    def test_wrap(self):
        p = np.array([[0.8, 0.9]])
        assert gg_f(p)[0] == pytest.approx([0.7, 0.9])

    def test_inverses(self):
        rng = np.random.default_rng(0)
        p = rng.random((100, 2))
        assert gg_f_inv(gg_f(p)) == pytest.approx(p)
        assert gg_g_inv(gg_g(p)) == pytest.approx(p)

    def test_measure_preserving(self):
        """The shears are measure preserving: uniform stays uniform."""
        rng = np.random.default_rng(1)
        p = rng.random((20000, 2))
        q = gg_f(p)
        # compare cell histograms
        h1, _, _ = np.histogram2d(p[:, 0], p[:, 1], bins=4)
        h2, _, _ = np.histogram2d(q[:, 0], q[:, 1], bins=4)
        assert np.abs(h1 - h2).max() < 20000 * 0.02


class TestTheorem51:
    """µ(δA) ≥ ((2−√3)/2)·µ(A) for measurable A with µ(A) ≤ ½."""

    @pytest.mark.parametrize(
        "region",
        [
            lambda p: (p[:, 0] < 0.5) & (p[:, 1] < 0.5),           # quarter box
            lambda p: p[:, 0] < 0.3,                                # strip
            lambda p: ((p[:, 0] - 0.5) ** 2 + (p[:, 1] - 0.5) ** 2) < 0.09,  # disc
            lambda p: (p[:, 0] + p[:, 1]) % 1.0 < 0.4,              # diagonal band
        ],
    )
    def test_boundary_measure(self, region):
        rng = np.random.default_rng(42)
        mu_a, mu_b = GabberGalilNetwork.continuous_boundary_measure(
            region, rng, samples=120_000
        )
        assert mu_a <= 0.55
        assert mu_b >= GG_EXPANSION_CONSTANT * mu_a * 0.9  # MC tolerance


class TestDiscreteExpander:
    @pytest.fixture(scope="class")
    def net(self):
        rng = np.random.default_rng(7)
        return GabberGalilNetwork(n=128, rng=rng)

    def test_connected(self, net):
        assert nx.is_connected(net.to_networkx())

    def test_constant_degree(self, net):
        """Corollary 5.2: degree Θ(ρ) — constant, not growing with n."""
        rng = np.random.default_rng(8)
        big = GabberGalilNetwork(n=256, rng=rng)
        assert big.max_degree() <= net.max_degree() * 2 + 10

    def test_spectral_gap_bounded_away_from_zero(self, net):
        lam = spectral_gap(net.to_networkx())
        assert lam > 0.05

    def test_sampled_expansion_exceeds_gg_bound(self, net):
        """Cor 5.2: expansion Ω((2−√3)/ρ); with ρ ≈ 2 the bound is ≈ 0.067."""
        rng = np.random.default_rng(9)
        h = sampled_vertex_expansion(
            net.to_networkx(), rng, positions=net.voronoi.points
        )
        assert h >= GG_EXPANSION_CONSTANT / 2.0

    def test_expansion_verifiable_from_smoothness(self, net):
        """The §5.2 selling point: smooth ids ⇒ certified expander."""
        from repro.balance import is_smooth_2d

        pts = [tuple(p) for p in net.voronoi.points]
        assert is_smooth_2d(pts, rho=4.0) or is_smooth_2d(pts, rho=8.0)

    def test_explicit_points_accepted(self):
        side = 8
        pts = [((i + 0.5) / side, (j + 0.5) / side)
               for i in range(side) for j in range(side)]
        net = GabberGalilNetwork(points=pts)
        lam = spectral_gap(net.to_networkx())
        assert lam > 0.1

    def test_requires_points_or_n(self):
        with pytest.raises(ValueError):
            GabberGalilNetwork()


class TestExpansionHelpers:
    def test_vertex_expansion_of_set(self):
        g = nx.cycle_graph(10)
        assert vertex_expansion_of_set(g, [0, 1, 2]) == pytest.approx(2 / 3)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            vertex_expansion_of_set(nx.path_graph(3), [])

    def test_spectral_gap_of_cycle_small(self):
        lam_cycle = spectral_gap(nx.cycle_graph(64))
        lam_complete = spectral_gap(nx.complete_graph(64))
        assert lam_cycle < 0.05 < lam_complete

    def test_spectral_gap_disconnected_zero(self):
        g = nx.union(nx.cycle_graph(5), nx.cycle_graph(5), rename=("a", "b"))
        assert spectral_gap(g) == 0.0

    def test_cheeger_order(self):
        lo, hi = cheeger_bounds(0.3)
        assert lo <= hi
        assert lo == pytest.approx(0.15)

    def test_large_graph_sparse_path(self):
        """Spectral gap via eigsh for n > 600 agrees with known expander."""
        g = nx.random_regular_graph(4, 700, seed=1)
        lam = spectral_gap(g)
        assert lam > 0.1

    def test_random_regular_is_expander(self):
        """Sanity: the classic 'random regular graphs expand' fact [13]."""
        rng = np.random.default_rng(10)
        g = nx.random_regular_graph(6, 200, seed=2)
        h = sampled_vertex_expansion(g, rng)
        assert h > 0.3
