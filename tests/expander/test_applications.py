"""Unit tests for the §5.2 expander applications."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.expander import (
    GabberGalilNetwork,
    ProbabilisticQuorum,
    balance_load_by_walks,
    mixing_time_estimate,
    random_walk,
    walk_endpoint_distribution,
)


@pytest.fixture(scope="module")
def gg_graph():
    rng = np.random.default_rng(1)
    return GabberGalilNetwork(n=96, rng=rng, samples_per_cell=12).to_networkx()


class TestRandomWalks:
    def test_walk_stays_on_graph(self, gg_graph):
        rng = np.random.default_rng(2)
        for _ in range(20):
            end = random_walk(gg_graph, 0, 10, rng)
            assert end in gg_graph

    def test_zero_steps_is_identity(self, gg_graph):
        rng = np.random.default_rng(3)
        assert random_walk(gg_graph, 5, 0, rng) == 5

    def test_endpoint_distribution_spreads(self, gg_graph):
        rng = np.random.default_rng(4)
        dist = walk_endpoint_distribution(gg_graph, 0, 12, rng, samples=400)
        # after O(log n) steps the walk covers a large fraction of nodes
        assert len(dist) >= gg_graph.number_of_nodes() // 3

    def test_expander_mixes_fast(self, gg_graph):
        rng = np.random.default_rng(5)
        t_exp = mixing_time_estimate(gg_graph, rng, samples=300)
        n = gg_graph.number_of_nodes()
        assert t_exp <= 8 * math.log2(n)

    def test_cycle_mixes_slowly(self):
        """Contrast: the n-cycle needs ≫ log n steps."""
        rng = np.random.default_rng(6)
        cycle = nx.cycle_graph(96)
        t_cycle = mixing_time_estimate(cycle, rng, samples=300, max_steps=256)
        t_exp = mixing_time_estimate(
            nx.random_regular_graph(4, 96, seed=0), rng, samples=300
        )
        assert t_cycle > 4 * t_exp


class TestProbabilisticQuorum:
    def test_quorums_intersect_whp(self, gg_graph):
        rng = np.random.default_rng(7)
        pq = ProbabilisticQuorum(gg_graph, rng)
        assert pq.intersection_rate(trials=60) >= 0.9

    def test_quorum_size_default_sqrt(self, gg_graph):
        pq = ProbabilisticQuorum(gg_graph, np.random.default_rng(8))
        n = gg_graph.number_of_nodes()
        assert pq.quorum_size == math.ceil(math.sqrt(4 * n))

    def test_quorum_is_set_of_nodes(self, gg_graph):
        pq = ProbabilisticQuorum(gg_graph, np.random.default_rng(9))
        q = pq.sample(0)
        assert q <= set(gg_graph.nodes())
        assert len(q) >= 2

    def test_tiny_quorums_fail(self, gg_graph):
        """Below the birthday threshold, intersection becomes unreliable —
        the √n sizing matters."""
        rng = np.random.default_rng(10)
        small = ProbabilisticQuorum(gg_graph, rng, quorum_size=2)
        big = ProbabilisticQuorum(gg_graph, np.random.default_rng(10))
        assert small.intersection_rate(trials=60) < big.intersection_rate(trials=60)


class TestLoadBalancing:
    def test_jobs_all_placed(self, gg_graph):
        rng = np.random.default_rng(11)
        loads = balance_load_by_walks(gg_graph, 300, rng)
        assert sum(loads.values()) == 300

    def test_max_load_near_balls_in_bins(self, gg_graph):
        rng = np.random.default_rng(12)
        n = gg_graph.number_of_nodes()
        jobs = 4 * n
        loads = balance_load_by_walks(gg_graph, jobs, rng)
        mean = jobs / n
        # balls-into-bins: max ≈ mean + O(sqrt(mean log n));
        # allow a generous constant for the non-uniform stationary law
        assert max(loads.values()) <= mean + 6 * math.sqrt(mean * math.log(n))

    def test_beats_fixed_placement(self, gg_graph):
        """Walks spread load even when all jobs originate at one node."""
        rng = np.random.default_rng(13)
        nodes = list(gg_graph.nodes())
        loads = balance_load_by_walks(gg_graph, 200, rng, walk_length=14)
        # placing at the origin would give max = 200; walks stay near fair
        assert max(loads.values()) < 40
