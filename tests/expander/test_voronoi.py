"""Unit tests for the torus Voronoi substrate (paper §5.1)."""

import numpy as np
import pytest

from repro.expander import TorusVoronoi


def grid_points(side):
    return [((i + 0.5) / side, (j + 0.5) / side) for i in range(side) for j in range(side)]


class TestConstruction:
    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            TorusVoronoi([(0.5, 0.5)])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            TorusVoronoi([(0.5, 0.5), (0.5, 0.5), (0.1, 0.1)])

    def test_normalizes_coordinates(self):
        tv = TorusVoronoi([(1.25, -0.75), (0.5, 0.5)])
        assert tv.points[0] == pytest.approx([0.25, 0.25])


class TestOwner:
    def test_generator_owns_itself(self):
        tv = TorusVoronoi(grid_points(4))
        for i, p in enumerate(tv.points):
            assert tv.owner(tuple(p)) == i

    def test_toroidal_metric(self):
        """A point near the seam belongs to the generator across it."""
        tv = TorusVoronoi([(0.02, 0.5), (0.5, 0.5)])
        assert tv.owner((0.98, 0.5)) == 0  # wraps to the generator at 0.02

    def test_owner_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        tv = TorusVoronoi([tuple(p) for p in rng.random((20, 2))])
        probes = rng.random((50, 2))
        vec = tv.owner_many(probes)
        assert all(vec[i] == tv.owner(tuple(probes[i])) for i in range(50))


class TestAreas:
    def test_grid_cells_equal_area(self):
        side = 4
        tv = TorusVoronoi(grid_points(side))
        areas = tv.cell_areas()
        assert areas == pytest.approx(np.full(side * side, 1 / side**2), rel=1e-6)

    def test_areas_sum_to_one(self):
        rng = np.random.default_rng(1)
        tv = TorusVoronoi([tuple(p) for p in rng.random((40, 2))])
        assert tv.cell_areas().sum() == pytest.approx(1.0, rel=1e-6)

    def test_smooth_set_areas_theta_one_over_n(self):
        """§5.1: smooth sets give cells of area Θ(1/n) (used by Cor 5.2)."""
        from repro.balance import TwoDimMultipleChoice

        rng = np.random.default_rng(2)
        algo = TwoDimMultipleChoice(128, t=4)
        algo.populate(rng=rng)
        tv = TorusVoronoi(algo.points)
        areas = tv.cell_areas()
        n = 128
        assert areas.max() <= 8.0 / n
        assert areas.min() >= 1.0 / (12 * n)


class TestDelaunay:
    def test_grid_neighbors_are_grid_adjacent(self):
        side = 4
        tv = TorusVoronoi(grid_points(side))
        nbs = tv.delaunay_neighbors(0)
        # cell (0,0) must be adjacent to (0,1),(1,0),(0,3),(3,0) at least
        expected = {1, side, 3, 3 * side}
        assert expected <= set(nbs)

    def test_average_degree_below_euler_bound(self):
        rng = np.random.default_rng(3)
        tv = TorusVoronoi([tuple(p) for p in rng.random((60, 2))])
        # Euler: average Delaunay degree < 6 (on the torus, exactly 6 - o(1))
        assert tv.average_delaunay_degree() <= 6.5

    def test_neighbors_symmetric(self):
        rng = np.random.default_rng(4)
        tv = TorusVoronoi([tuple(p) for p in rng.random((30, 2))])
        for i in range(tv.n):
            for j in tv.delaunay_neighbors(i):
                assert i in tv.delaunay_neighbors(j)


class TestDynamics:
    def test_insert_affects_local_cells_only(self):
        """§5.1 locality: a join touches only cells adjacent to it."""
        side = 6
        tv = TorusVoronoi(grid_points(side))
        areas_before = tv.cell_areas().copy()
        affected = tv.insert((0.51 / side, 0.51 / side))
        areas_after = tv.cell_areas()[: side * side]
        changed = {i for i in range(side * side)
                   if abs(areas_after[i] - areas_before[i]) > 1e-12}
        assert changed <= affected | {tv.n - 1}

    def test_remove_returns_absorbers(self):
        tv = TorusVoronoi(grid_points(4))
        n0 = tv.n
        affected = tv.remove(5)
        assert tv.n == n0 - 1
        assert len(affected) >= 3
