"""Unit tests for the weak hash families used in ablations (paper §3.3)."""

import numpy as np
import pytest

from repro.hashing.universal import AdversarialConstantHash, OneWiseHash, PairwiseHash


class TestPairwise:
    def test_is_affine(self):
        h = PairwiseHash(np.random.default_rng(0))
        assert h.k == 2

    def test_range(self):
        h = PairwiseHash(np.random.default_rng(1))
        assert all(0 <= h(i) < 1 for i in range(100))


class TestOneWise:
    def test_uniform_marginal_over_family(self):
        """For a fixed key, h(key) is uniform over the random shift."""
        vals = [OneWiseHash(np.random.default_rng(s))(42) for s in range(300)]
        vals = np.sort(vals)
        dev = np.abs(vals - np.arange(300) / 300).max()
        assert dev < 0.1

    def test_joint_maximally_correlated(self):
        """The gap between keys is constant — the adversarial property."""
        h = OneWiseHash(np.random.default_rng(2))
        d1 = (h.hash_int(10) - h.hash_int(5)) % h.prime
        d2 = (h.hash_int(105) - h.hash_int(100)) % h.prime
        assert d1 == d2


class TestAdversarialConstant:
    def test_everything_maps_to_point(self):
        h = AdversarialConstantHash(0.37)
        assert h("a") == h("b") == 0.37

    def test_normalizes(self):
        assert AdversarialConstantHash(1.25).point == pytest.approx(0.25)
