"""Unit tests for the k-wise independent hash families."""

import numpy as np
import pytest

from repro.hashing.kwise import MERSENNE_P, KWiseHash, PointHasher, key_to_int


class TestKeyToInt:
    def test_int_reduced_mod_p(self):
        assert key_to_int(MERSENNE_P + 5) == 5

    def test_string_deterministic(self):
        assert key_to_int("abc") == key_to_int("abc")

    def test_string_and_bytes_consistent(self):
        assert key_to_int("abc") == key_to_int(b"abc")

    def test_distinct_strings_differ(self):
        assert key_to_int("abc") != key_to_int("abd")

    def test_bool_distinct_from_int(self):
        assert key_to_int(True) != key_to_int(1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            key_to_int(1.5)


class TestKWiseHash:
    def test_range(self):
        rng = np.random.default_rng(0)
        h = KWiseHash(4, rng)
        for key in range(1000):
            assert 0.0 <= h(key) < 1.0

    def test_deterministic_per_instance(self):
        rng = np.random.default_rng(1)
        h = KWiseHash(4, rng)
        assert h("k") == h("k")

    def test_different_members_differ(self):
        rng = np.random.default_rng(2)
        h1, h2 = KWiseHash(4, rng), KWiseHash(4, rng)
        vals1 = [h1(i) for i in range(20)]
        vals2 = [h2(i) for i in range(20)]
        assert vals1 != vals2

    def test_uniform_marginals(self):
        """Empirical CDF of hashed keys close to uniform (KS-style check)."""
        rng = np.random.default_rng(3)
        h = KWiseHash(8, rng)
        vals = np.sort(h.hash_many(range(5000)))
        ecdf_dev = np.abs(vals - np.arange(5000) / 5000).max()
        assert ecdf_dev < 0.03

    def test_pairwise_independence_correlation(self):
        """Values on distinct keys are uncorrelated across family members."""
        rng = np.random.default_rng(4)
        a_vals, b_vals = [], []
        for _ in range(400):
            h = KWiseHash(2, rng)
            a_vals.append(h(12345))
            b_vals.append(h(54321))
        corr = np.corrcoef(a_vals, b_vals)[0, 1]
        assert abs(corr) < 0.15

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KWiseHash(0, np.random.default_rng(0))

    def test_hash_many_matches_scalar(self):
        rng = np.random.default_rng(5)
        h = KWiseHash(3, rng)
        keys = ["a", "b", "c"]
        np.testing.assert_allclose(h.hash_many(keys), [h(k) for k in keys])

    def test_polynomial_structure(self):
        """Degree-(k-1) polynomial: k collinear constraints determine it."""
        rng = np.random.default_rng(6)
        h = KWiseHash(2, rng)  # affine: h(x) = (a x + b)/p
        a, b = h.coefficients[1], h.coefficients[0]
        x = 777
        assert h.hash_int(x) == (a * x + b) % MERSENNE_P


class TestPointHasher:
    def test_memoisation(self):
        rng = np.random.default_rng(7)
        ph = PointHasher(rng)
        v1 = ph("item")
        v2 = ph("item")
        assert v1 == v2

    def test_clear_memo_keeps_function(self):
        rng = np.random.default_rng(8)
        ph = PointHasher(rng)
        v1 = ph("item")
        ph.clear_memo()
        assert ph("item") == v1  # same family member, same value

    def test_k_exposed(self):
        ph = PointHasher(np.random.default_rng(9), k=16)
        assert ph.k == 16
