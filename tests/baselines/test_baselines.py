"""Unit tests for the Table 1 baseline DHTs.

Each scheme must (a) route correctly to the owner of the target, (b)
respect its linkage bound, and (c) exhibit the asymptotic path-length
class Table 1 assigns to it.
"""

import math

import numpy as np
import pytest

from repro.baselines import (
    CanNetwork,
    ChordNetwork,
    DistanceHalvingAdapter,
    KleinbergRing,
    KoordeNetwork,
    TapestryNetwork,
    ViceroyNetwork,
    measure_scheme,
)


def rngs(seed=0):
    return np.random.default_rng(seed), np.random.default_rng(seed + 1000)


class TestChord:
    def test_lookup_reaches_owner(self):
        build, route = rngs(1)
        dht = ChordNetwork(128, build)
        for _ in range(100):
            src = dht.points[int(route.integers(128))]
            t = float(route.random())
            path = dht.lookup_path(src, t, route)
            assert path[-1] == dht.owner(t)

    def test_path_length_log(self):
        build, route = rngs(2)
        dht = ChordNetwork(512, build)
        row = measure_scheme(dht, route, lookups=500)
        assert row.mean_path <= math.log2(512)  # ≈ ½ log2 n expected
        assert row.max_path <= 3 * math.log2(512)

    def test_degree_log(self):
        build, _ = rngs(3)
        dht = ChordNetwork(512, build)
        assert dht.max_degree() <= 2 * math.log2(512) + 4

    def test_owner_is_successor(self):
        build, _ = rngs(4)
        dht = ChordNetwork(16, build)
        pts = dht.points
        assert dht.owner((pts[3] + pts[4]) / 2) == pts[4]
        # wrap-around: a point past the last node belongs to the first
        assert dht.owner((pts[-1] + 1.0) / 2 % 1.0) == pts[0]

    def test_small_network_rejected(self):
        with pytest.raises(ValueError):
            ChordNetwork(1, np.random.default_rng(0))


class TestTapestry:
    def test_root_unique_across_sources(self):
        build, route = rngs(5)
        dht = TapestryNetwork(128, build)
        for _ in range(30):
            t = float(route.random())
            roots = {
                dht.lookup_path(int(route.integers(128)), t, route)[-1]
                for _ in range(5)
            }
            assert len(roots) == 1

    def test_path_length_log_base(self):
        build, route = rngs(6)
        dht = TapestryNetwork(512, build, base=4)
        row = measure_scheme(dht, route, lookups=400)
        assert row.max_path <= dht.levels
        assert row.mean_path <= math.log(512, 4) + 2

    def test_digit_extraction(self):
        build, _ = rngs(7)
        dht = TapestryNetwork(16, build, base=2)
        assert dht._digits(0.5)[0] == 1
        assert dht._digits(0.25)[:2] == (0, 1)

    def test_base_validation(self):
        with pytest.raises(ValueError):
            TapestryNetwork(16, np.random.default_rng(0), base=1)


class TestCan:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_zones_partition_torus(self, d):
        build, _ = rngs(8 + d)
        dht = CanNetwork(64, build, d=d)
        volume = sum(float(np.prod(b.hi - b.lo)) for b in dht.boxes)
        assert volume == pytest.approx(1.0)

    def test_lookup_reaches_owner(self):
        build, route = rngs(12)
        dht = CanNetwork(128, build, d=2)
        for _ in range(100):
            src = int(route.integers(128))
            t = float(route.random())
            path = dht.lookup_path(src, t, route)
            assert path[-1] == dht.owner(t)

    def test_path_scales_as_root_n(self):
        """Table 1: CAN path ~ d·n^{1/d}; fitted exponent ≈ 1/d for d=2."""
        from repro.sim.metrics import loglog_slope

        ns = [64, 256, 1024]
        means = []
        for n in ns:
            build, route = rngs(n)
            dht = CanNetwork(n, build, d=2)
            means.append(measure_scheme(dht, route, lookups=300).mean_path)
        slope = loglog_slope(ns, means)
        assert 0.3 <= slope <= 0.7  # ≈ 1/2

    def test_degree_constant_in_n(self):
        build, _ = rngs(13)
        small = CanNetwork(64, build, d=2)
        big = CanNetwork(1024, np.random.default_rng(14), d=2)
        assert big.mean_degree() <= small.mean_degree() + 3

    def test_neighbors_symmetric(self):
        build, _ = rngs(15)
        dht = CanNetwork(64, build, d=2)
        for i, nbs in enumerate(dht.neighbors):
            for j in nbs:
                assert i in dht.neighbors[j]


class TestKleinberg:
    def test_lookup_reaches_owner(self):
        build, route = rngs(16)
        dht = KleinbergRing(128, build)
        for _ in range(50):
            src = int(route.integers(128))
            t = float(route.random())
            path = dht.lookup_path(src, t, route)
            assert path[-1] == dht.owner(t)

    def test_constant_degree(self):
        build, _ = rngs(17)
        dht = KleinbergRing(512, build)
        assert dht.max_degree() <= 3

    def test_path_polylog(self):
        """Greedy routing is O(log² n) — far below the lattice diameter."""
        build, route = rngs(18)
        n = 1024
        dht = KleinbergRing(n, build)
        row = measure_scheme(dht, route, lookups=400)
        assert row.mean_path <= math.log2(n) ** 2
        assert row.mean_path >= math.log2(n) / 2  # and clearly super-log

    def test_beats_lattice_only(self):
        """The long link matters: mean path ≪ n/4 (pure ring average)."""
        build, route = rngs(19)
        dht = KleinbergRing(512, build)
        row = measure_scheme(dht, route, lookups=300)
        assert row.mean_path < 512 / 8


class TestViceroy:
    def test_lookup_reaches_owner(self):
        build, route = rngs(20)
        dht = ViceroyNetwork(128, build)
        for _ in range(100):
            src = dht.points[int(route.integers(128))]
            t = float(route.random())
            path = dht.lookup_path(src, t, route)
            assert path[-1] == dht.owner(t)

    def test_constant_degree(self):
        """Viceroy's selling point: O(1) links per node."""
        build, _ = rngs(21)
        dht = ViceroyNetwork(512, build)
        assert dht.max_degree() <= 7
        assert dht.mean_degree() <= 6

    def test_levels_within_range(self):
        build, _ = rngs(22)
        dht = ViceroyNetwork(256, build)
        assert all(1 <= lv <= dht.max_level for lv in dht.level.values())

    def test_path_logarithmic(self):
        build, route = rngs(23)
        n = 512
        dht = ViceroyNetwork(n, build)
        row = measure_scheme(dht, route, lookups=400)
        assert row.mean_path <= 4 * math.log2(n)


class TestKoorde:
    def test_lookup_reaches_owner(self):
        build, route = rngs(24)
        dht = KoordeNetwork(128, build)
        for _ in range(100):
            src = dht.points[int(route.integers(128))]
            t = float(route.random())
            path = dht.lookup_path(src, t, route)
            assert path[-1] == dht.owner(t)

    def test_constant_degree(self):
        build, _ = rngs(25)
        dht = KoordeNetwork(512, build)
        assert dht.max_degree() <= 3

    def test_path_logarithmic(self):
        build, route = rngs(26)
        means = {}
        for n in (128, 1024):
            dht = KoordeNetwork(n, np.random.default_rng(n))
            means[n] = measure_scheme(dht, route, lookups=300).mean_path
        # logarithmic growth: doubling n three times adds a constant,
        # far from the ×8 a linear scheme would show
        assert means[1024] <= means[128] * 2.5
        assert means[1024] <= 5 * math.log2(1024)


class TestDistanceHalvingAdapter:
    def test_lookup_reaches_owner(self):
        build, route = rngs(27)
        dht = DistanceHalvingAdapter(128, build)
        for _ in range(50):
            src = dht.net.points()[int(route.integers(128))]
            t = float(route.random())
            path = dht.lookup_path(src, t, route)
            assert path[-1] == dht.owner(t)

    def test_modes(self):
        build, route = rngs(28)
        fast = DistanceHalvingAdapter(128, build, mode="fast")
        row = measure_scheme(fast, route, lookups=200)
        assert row.mean_path <= math.log2(128) + 3

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            DistanceHalvingAdapter(16, np.random.default_rng(0), mode="x")

    def test_balanced_degree_constant(self):
        build, _ = rngs(29)
        dht = DistanceHalvingAdapter(512, build, balanced=True)
        assert dht.max_degree() <= 16  # ρ ≤ ~6 with multiple choice
