"""Bit-parity suite for the baseline batch routers.

Every Table 1 scheme's compiled :class:`BaselineBatchRouter` must replay
its scalar ``lookup_path`` exactly: same compressed server path for
every lookup, same owner, and a :class:`BatchCongestion` summary equal
to the scalar :class:`CongestionCounter`'s.  Chunked routing must equal
single-shot routing, and the CAN incremental neighbor maintenance must
match the brute-force recomputation at every dimension.
"""

import numpy as np
import pytest

from repro.baselines import (
    CanNetwork,
    ChordNetwork,
    DistanceHalvingAdapter,
    KleinbergRing,
    KoordeNetwork,
    TapestryNetwork,
    ViceroyNetwork,
)
from repro.core.routing_stats import BatchCongestion, CongestionCounter

BUILDERS = {
    "chord": lambda n, rng: ChordNetwork(n, rng),
    "tapestry": lambda n, rng: TapestryNetwork(n, rng, base=2),
    "tapestry-b4": lambda n, rng: TapestryNetwork(n, rng, base=4),
    "can-d1": lambda n, rng: CanNetwork(n, rng, d=1),
    "can-d2": lambda n, rng: CanNetwork(n, rng, d=2),
    "can-d3": lambda n, rng: CanNetwork(n, rng, d=3),
    "small-world": lambda n, rng: KleinbergRing(n, rng),
    "viceroy": lambda n, rng: ViceroyNetwork(n, rng),
    "koorde": lambda n, rng: KoordeNetwork(n, rng),
    "dh-fast": lambda n, rng: DistanceHalvingAdapter(n, rng, delta=2,
                                                     mode="fast"),
}


def _workload(n, lookups, seed):
    probe = np.random.default_rng(seed + 5000)
    return probe.integers(0, n, size=lookups), probe.random(lookups), probe


def _scalar_paths(dht, src, tgt, rng):
    ids = list(dht.node_ids())
    return [
        [float(x) for x in dht.lookup_path(ids[int(s)], float(t), rng)]
        for s, t in zip(src, tgt)
    ]


@pytest.mark.parametrize("name", sorted(BUILDERS))
@pytest.mark.parametrize("n", [16, 128])
def test_batch_replays_scalar_paths(name, n):
    """server_path(i) == scalar lookup_path for every lookup."""
    dht = BUILDERS[name](n, np.random.default_rng(7))
    src, tgt, probe = _workload(n, 80, n)
    router = dht.batch_router()
    res = router.route_batch(src, tgt, rng=probe)
    scalar = _scalar_paths(dht, src, tgt, probe)
    for i in range(len(src)):
        assert res.server_path(i) == scalar[i], (name, n, i)
        assert float(res.points[res.owner_idx[i]]) == scalar[i][-1]


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_congestion_summary_parity(name):
    """BatchCongestion over a batch == CongestionCounter over the loop."""
    n = 128
    dht = BUILDERS[name](n, np.random.default_rng(11))
    src, tgt, probe = _workload(n, 200, 17)
    res = dht.batch_router().route_batch(src, tgt, rng=probe)
    batch = BatchCongestion()
    batch.record_batch(res)
    counter = CongestionCounter()
    for path in _scalar_paths(dht, src, tgt, probe):
        counter.record_path(path)
    assert counter.summary(n) == batch.summary(n), name


@pytest.mark.parametrize("name", ["chord", "can-d2", "viceroy", "dh-fast"])
def test_chunked_equals_single_shot(name):
    n = 128
    dht = BUILDERS[name](n, np.random.default_rng(23))
    src, tgt, probe = _workload(n, 300, 29)
    router = dht.batch_router()
    one = router.route_batch(src, tgt, rng=probe)
    cong = BatchCongestion()
    hops, owners = router.route_chunked(src, tgt, congestion=cong, chunk=64,
                                        rng=probe)
    assert (hops == one.hops).all()
    assert (owners == one.owner_idx).all()
    whole = BatchCongestion()
    whole.record_batch(one)
    assert whole.summary(n) == cong.summary(n)


@pytest.mark.parametrize(
    "name", ["chord", "can-d1", "can-d2", "can-d3", "small-world", "dh-fast"]
)
def test_zero_hop_lookup(name):
    """A target owned by the source itself routes in place.

    Only the greedy stop-at-owner schemes: Koorde always walks its
    imaginary-node spine, Tapestry routes via the target's surrogate
    chain, and Viceroy climbs to level 1 first — their source==owner
    paths legitimately leave the node (scalar and batch alike, which
    the replay tests above already pin).
    """
    n = 64
    dht = BUILDERS[name](n, np.random.default_rng(31))
    router = dht.batch_router()
    ids = list(dht.node_ids())
    # probe each node with a point it owns (scalar owner() is the oracle)
    probe = np.random.default_rng(37)
    tgt = probe.random(200)
    own = [ids.index(dht.owner(float(t))) for t in tgt]
    res = router.route_batch(np.asarray(own), tgt, rng=probe)
    assert (res.hops == 0).all()
    assert (res.owner_idx == np.asarray(own)).all()
    for i in range(tgt.size):
        assert res.server_path(i) == [float(res.points[own[i]])]


@pytest.mark.parametrize("d", [1, 2, 3])
@pytest.mark.parametrize("n", [2, 7, 33, 128])
def test_can_incremental_neighbors_match_brute_force(d, n):
    net = CanNetwork(n, np.random.default_rng(41 + d), d=d)
    assert net.neighbors == net.brute_force_neighbors()


def test_measure_scheme_batch_matches_row_shape():
    from repro.baselines import measure_scheme, measure_scheme_batch

    dht = ChordNetwork(64, np.random.default_rng(47))
    scalar = measure_scheme(dht, np.random.default_rng(53), lookups=400)
    batch = measure_scheme_batch(dht, np.random.default_rng(53), lookups=400)
    # same experiment definition, independent uniform workloads → the
    # topology-determined columns are identical and the measured ones land
    # in the same band
    assert batch.scheme == scalar.scheme
    assert batch.mean_degree == scalar.mean_degree
    assert batch.max_degree == scalar.max_degree
    assert batch.n == scalar.n == 64
    assert batch.mean_path == pytest.approx(scalar.mean_path, rel=0.35)
    assert batch.lookups == 400
