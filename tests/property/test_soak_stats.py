"""Property tests: streaming accumulation is split-invariant.

The soak's contract is the `BatchCongestion` discipline extended to
every statistic: splitting a request stream at *arbitrary* chunk
boundaries and merging the per-chunk `SoakStats` (or raw
`BatchCongestion`) snapshots must be **bit-identical** to one-shot
accumulation — including when a router refresh (churn) lands between
chunks, so the chunks route on different membership snapshots.
Hypothesis drives the boundary choice; the comparisons are exact array
equality, never approximate.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DistanceHalvingNetwork
from repro.core.routing_stats import BatchCongestion
from repro.sim.scenario import SoakStats

N = 128
STREAM = 400


def _build(seed=77):
    rng = np.random.default_rng(seed)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(N)
    return net


NET = _build()
ROUTER = NET.router(auto_refresh=True)
_rng = np.random.default_rng(5)
_pts = NET.segments.as_array()
SOURCES = _pts[_rng.integers(0, _pts.size, size=STREAM)]
TARGETS = _rng.random(STREAM)


def _cuts_to_bounds(cuts):
    bounds = sorted({0, STREAM, *cuts})
    return list(zip(bounds[:-1], bounds[1:]))


def _route(lo, hi):
    return ROUTER.batch_fast_lookup(SOURCES[lo:hi], TARGETS[lo:hi],
                                    keep_paths="csr")


def _congestion_state(acc):
    return (acc.lookups, acc.total_messages,
            acc._points.tobytes(), acc._counts.tobytes())


cut_lists = st.lists(st.integers(min_value=0, max_value=STREAM),
                     max_size=8)


class TestBatchCongestionSplitInvariance:
    @settings(max_examples=60, deadline=None)
    @given(cuts=cut_lists)
    def test_chunked_merge_equals_one_shot(self, cuts):
        one_shot = BatchCongestion()
        one_shot.record_batch(_route(0, STREAM))
        merged = BatchCongestion()
        for lo, hi in _cuts_to_bounds(cuts):
            part = BatchCongestion()
            part.record_batch(_route(lo, hi))
            merged.merge(part)
        assert _congestion_state(merged) == _congestion_state(one_shot)
        assert merged.summary(N) == one_shot.summary(N)

    @settings(max_examples=60, deadline=None)
    @given(cuts=cut_lists)
    def test_recording_into_one_accumulator_equals_merging(self, cuts):
        direct = BatchCongestion()
        merged = BatchCongestion()
        for lo, hi in _cuts_to_bounds(cuts):
            res = _route(lo, hi)
            direct.record_batch(res)
            part = BatchCongestion()
            part.record_batch(res)
            merged.merge(part)
        assert _congestion_state(merged) == _congestion_state(direct)


class TestSoakStatsSplitInvariance:
    def _soak_state(self, s):
        return (_congestion_state(s.route), _congestion_state(s.cache),
                s.hop_hist.tobytes(), s.hop_hist.size, s.cache_requests,
                s.ft_pairs, s.ft_successes, s.ft_messages, s.churn_ops,
                s.n_min, s.n_max, s.smoothness_max)

    @settings(max_examples=60, deadline=None)
    @given(cuts=cut_lists)
    def test_chunked_soak_stats_equal_one_shot(self, cuts):
        one_shot = SoakStats()
        one_shot.record_route(_route(0, STREAM))
        merged = SoakStats()
        for lo, hi in _cuts_to_bounds(cuts):
            part = SoakStats()
            part.record_route(_route(lo, hi))
            merged.merge(part)
        # `chunks` intentionally differs (it counts the split); all
        # stream-derived state must match exactly.
        assert self._soak_state(merged) == self._soak_state(one_shot)
        assert merged.equals(one_shot) or merged.chunks != one_shot.chunks
        assert merged.mean_hops() == one_shot.mean_hops()

    @settings(max_examples=25, deadline=None)
    @given(cuts=st.lists(st.integers(min_value=0, max_value=STREAM),
                         min_size=1, max_size=4),
           churn_seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_split_invariance_across_router_refresh(self, cuts, churn_seed):
        """Chunks routed on different membership snapshots still merge
        exactly: each boundary applies a join + incremental refresh, and
        the one-shot reference re-routes the same chunks on the same
        snapshots (routing differs across snapshots, accounting must
        not)."""
        rng = np.random.default_rng(churn_seed)
        net = _build(seed=churn_seed % 1000)
        router = net.router(auto_refresh=True)
        pts = net.segments.as_array()
        sources = pts[rng.integers(0, pts.size, size=STREAM)]
        targets = rng.random(STREAM)

        bounds = _cuts_to_bounds(cuts)
        results = []
        for lo, hi in bounds:
            results.append(router.batch_fast_lookup(
                sources[lo:hi], targets[lo:hi], keep_paths="csr"))
            net.join(point=float(rng.random()))  # churn between chunks
            router.refresh()

        direct = SoakStats()
        merged = SoakStats()
        for res in results:
            direct.record_route(res)
            part = SoakStats()
            part.record_route(res)
            merged.merge(part)
        assert self._soak_state(merged) == self._soak_state(direct)
        assert merged.equals(direct)
        total = sum(hi - lo for lo, hi in bounds)
        assert direct.route.lookups == total
