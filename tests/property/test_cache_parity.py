"""Property tests: the batch cache engine is bit-identical to the scalar one.

Hypothesis generates random demand interleavings (Zipf, adversarial
round-robin/blocked, single hotspot), random epoch boundaries, and both
salting modes; every trace is driven through the
:class:`~repro.core.batch_cache.BatchCacheEngine` and replayed request-
by-request on the scalar :class:`~repro.core.caching.CacheSystem` with
the same digit strings.  The contract checked on every trace:

* served nodes, shortened paths and hop counts match per request;
* active-set membership, per-node epoch counters and replication totals
  match per tree — including after every ``advance_epoch`` collapse;
* ``summary()`` digests are equal float-for-float;
* the deterministic forms of the §3 bounds hold: every activation level
  consumes ``c+1`` distinct serves, so an active tree that absorbed
  ``q`` requests has ``size ≤ 1 + Δ·q/(c+1)`` (the engine-side shape of
  Observation 3.1's ``4q/c``) and ``depth ≤ q/(c+1)`` (Lemma 3.3's
  bound with the w.h.p. slack removed).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BatchCacheEngine, CacheSystem, DistanceHalvingNetwork
from repro.core.caching import salted_key

NETS = {}


def get_net(n):
    if n not in NETS:
        rng = np.random.default_rng(3000 + n)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(n)
        NETS[n] = net
    return NETS[n]


N_ITEMS = 6
ITEMS = [f"item{i}" for i in range(N_ITEMS)]


def make_demand(kind, count, rng):
    """Item index stream for one epoch of the given workload shape."""
    if kind == "zipf":
        w = np.arange(1, N_ITEMS + 1, dtype=np.float64) ** -1.2
        return rng.choice(N_ITEMS, size=count, p=w / w.sum())
    if kind == "hotspot":
        return np.zeros(count, dtype=np.int64)
    # adversarial: sorted blocks then a round-robin tail — the orderings
    # that break order-dependent replication accounting
    half = count // 2
    blocks = np.sort(rng.integers(0, N_ITEMS, size=half))
    tail = np.arange(count - half, dtype=np.int64) % N_ITEMS
    return np.concatenate([blocks, tail])


def scalar_tree_state(scal, item, salt, salts):
    key = item if salts == 1 else salted_key(item, salt)
    tree = scal.trees.get(key)
    if tree is None:
        return {()}, {}, 0
    served = {a: c for a, c in tree.served.items() if c}
    return set(tree.active), served, tree.replications


class TestTraceParity:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        salts=st.sampled_from([1, 2]),
        kind=st.sampled_from(["zipf", "adversarial", "hotspot"]),
        epoch_sizes=st.lists(st.integers(min_value=15, max_value=120),
                             min_size=1, max_size=3),
    )
    def test_batch_equals_scalar_trace(self, seed, salts, kind, epoch_sizes):
        net = get_net(64)
        rng = np.random.default_rng(seed)
        threshold = int(rng.integers(1, 6))
        eng = BatchCacheEngine(net, ITEMS, threshold=threshold, salts=salts)
        scal = CacheSystem(net, threshold=threshold, salts=salts)
        dummy = np.random.default_rng(0)
        pts = net.segments.as_array()
        served_per_tree = np.zeros(eng.n_trees, dtype=np.int64)

        for count in epoch_sizes:
            item_idx = make_demand(kind, count, rng)
            sources = pts[rng.integers(0, len(pts), size=count)]
            tau = rng.integers(0, 2, size=(count, 64))

            res = eng.serve_batch(item_idx, sources, tau=tau)
            for i in range(count):
                r = scal.request(ITEMS[int(item_idx[i])], float(sources[i]),
                                 dummy, tau=tuple(int(d) for d in tau[i]))
                assert res.serving_node(i) == r.serving_node
                assert res.server_path(i) == r.server_path
                assert int(res.hops[i]) == r.hops
                assert int(res.lookup_hops[i]) == r.lookup.hops
            np.add.at(served_per_tree, res.trees, 1)

            # per-tree state parity before the epoch ends
            for k in range(N_ITEMS):
                for j in range(salts):
                    tree = eng.tree_index(k, j)
                    active, served, reps = scalar_tree_state(
                        scal, ITEMS[k], j, salts)
                    assert eng.active_set(tree) == active
                    assert eng.served_counts(tree) == served
                    assert eng.tree_replications(tree) == reps
            assert eng.summary() == scal.summary()

            # epoch boundary: collapse must match node-for-node
            assert eng.advance_epoch() == scal.advance_epoch()
            for k in range(N_ITEMS):
                for j in range(salts):
                    tree = eng.tree_index(k, j)
                    active, _, _ = scalar_tree_state(scal, ITEMS[k], j, salts)
                    assert eng.active_set(tree) == active
            assert eng.summary() == scal.summary()

            # deterministic §3 bounds on every tree of the trace
            c = threshold
            for tree in range(eng.n_trees):
                q = int(served_per_tree[tree])
                assert eng.tree_size(tree) <= 1 + 2 * q / (c + 1)
                assert eng.tree_depth(tree) <= q / (c + 1)


class TestSingleEpochObservation31:
    """The classic single-epoch statement, engine-side: a fresh tree that
    absorbs q requests in one epoch ends it within 4q/c nodes."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           q=st.integers(min_value=10, max_value=200))
    def test_size_and_depth_bounds(self, seed, q):
        net = get_net(64)
        rng = np.random.default_rng(seed)
        c = int(rng.integers(1, 6))
        eng = BatchCacheEngine(net, ["hot"], threshold=c)
        pts = net.segments.as_array()
        sources = pts[rng.integers(0, len(pts), size=q)]
        eng.serve_batch(np.zeros(q, np.int64), sources, rng=rng)
        assert eng.tree_depth(0) <= q / (c + 1)
        eng.advance_epoch()
        assert eng.tree_size(0) <= max(1.0, 4 * q / c)


class TestSaltRoutingParity:
    """The salt choice is a pure function of the source bits: both
    engines must route any source to the same salt tree."""

    @settings(max_examples=30, deadline=None)
    @given(src=st.floats(min_value=0.0, max_value=1.0, exclude_max=True,
                         allow_nan=False), salts=st.sampled_from([2, 3, 8]))
    def test_route_key_matches_engine_tree(self, src, salts):
        net = get_net(64)
        eng = BatchCacheEngine(net, ITEMS, threshold=3, salts=salts)
        scal = CacheSystem(net, threshold=3, salts=salts)
        res = eng.serve_batch([2], [src], rng=np.random.default_rng(1))
        tree = int(res.trees[0])
        assert tree // salts == 2
        assert salted_key(ITEMS[2], tree % salts) == scal.route_key(
            ITEMS[2], src)
