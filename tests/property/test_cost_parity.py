"""Property tests for cost-aware covering-edge selection (P4P/ALTO).

Hypothesis drives random cost maps, policies and temperatures through
both engines and requires bit-parity everywhere the docs promise it:

* the batch FT Simple Lookup against the scalar per-hop walk with the
  same oracle, policy and choice uniforms;
* the core ``batch_cost_dh_lookup`` against the plain ``tau=`` replay
  of its recorded ``tau_used`` digits;
* the degenerate all-zero map collapsing ``weighted`` onto ``uniform``.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DistanceHalvingNetwork
from repro.core.lookup import compress_path
from repro.faults import FTBatchEngine, OverlappingDHNetwork, simple_lookup
from repro.peer import CostAwareBatchRouter, CostMap, CostOracle

seeds = st.integers(min_value=0, max_value=2**31)
MED = settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
               deadline=None)

_NET = OverlappingDHNetwork(128, np.random.default_rng(1234))
_ENGINE = FTBatchEngine(_NET)

_DNET = DistanceHalvingNetwork(rng=np.random.default_rng(4321))
_DNET.populate(96)
_DPTS = _DNET.segments.as_array()


def _cost_map(seed: int) -> CostMap:
    return CostMap.synthetic(
        n_isps=2 + seed % 7, rng=np.random.default_rng(seed))


class TestFTScalarParity:
    @MED
    @given(seed=seeds, policy=st.sampled_from(["greedy", "weighted"]),
           temperature=st.floats(min_value=0.05, max_value=5.0,
                                 allow_nan=False))
    def test_batch_equals_scalar_walk(self, seed, policy, temperature):
        """Random map/policy/temperature: batch ≡ scalar, bit-for-bit."""
        oracle = CostOracle(_NET.points_array, _cost_map(seed))
        rng = np.random.default_rng(seed + 1)
        pairs = 40
        src = _NET.points_array[rng.integers(_NET.n, size=pairs)]
        tgt = rng.random(pairs)
        choices = rng.random((pairs, 32))
        batch = _ENGINE.batch_simple_lookup(
            src, tgt, choices=choices, keep_paths="csr", oracle=oracle,
            policy=policy, temperature=temperature)
        for i in range(pairs):
            res = simple_lookup(_NET, float(src[i]), "probe",
                                target=float(tgt[i]),
                                choices=list(choices[i]), oracle=oracle,
                                policy=policy, temperature=temperature)
            assert bool(res.success) == bool(batch.success[i])
            assert res.messages == int(batch.messages[i])
            assert res.parallel_time == int(batch.parallel_time[i])
            assert compress_path(res.servers) == batch.server_path(i)

    @MED
    @given(seed=seeds)
    def test_degenerate_map_is_uniform(self, seed):
        """All-zero costs: weighted picks ≡ the inline uniform rule."""
        oracle = CostOracle(_NET.points_array, CostMap.degenerate())
        rng = np.random.default_rng(seed)
        pairs = 50
        src = _NET.points_array[rng.integers(_NET.n, size=pairs)]
        tgt = rng.random(pairs)
        choices = rng.random((pairs, 32))
        w = _ENGINE.batch_simple_lookup(src, tgt, choices=choices,
                                        keep_paths="csr", oracle=oracle,
                                        policy="weighted")
        u = _ENGINE.batch_simple_lookup(src, tgt, choices=choices,
                                        keep_paths="csr")
        assert np.array_equal(w.success, u.success)
        assert np.array_equal(w.messages, u.messages)
        assert np.array_equal(w.path_servers, u.path_servers)
        assert np.array_equal(w.path_offsets, u.path_offsets)


class TestCoreTauParity:
    @MED
    @given(seed=seeds,
           policy=st.sampled_from(["uniform", "greedy", "weighted"]))
    def test_tau_used_replays(self, seed, policy):
        """The digits a cost policy takes replay through the plain hook."""
        router = CostAwareBatchRouter(_DNET, _cost_map(seed))
        rng = np.random.default_rng(seed + 2)
        pairs = 40
        src = _DPTS[rng.integers(_DNET.n, size=pairs)]
        tgt = rng.random(pairs)
        u = rng.random((pairs, 64))
        res = router.batch_cost_dh_lookup(src, tgt, choices=u, policy=policy,
                                          keep_paths="csr")
        replay = router.batch_dh_lookup(src, tgt, tau=res.tau_used,
                                        keep_paths="csr")
        assert np.array_equal(res.owner_idx, replay.owner_idx)
        assert np.array_equal(res.hops, replay.hops)
        assert np.array_equal(res.path_servers, replay.path_servers)
        assert np.array_equal(res.path_offsets, replay.path_offsets)
