"""Property-based tests (hypothesis) for the core data structures.

These encode the paper's *identities* — statements that must hold for
every point, segment and digit string, not just sampled ones:

* Observation 2.3 (exact distance division) on exact rationals;
* Claim 2.4 (approach walks) for arbitrary targets/starts/depths;
* walk/backward inversion; digit round-trips;
* Arc algebra (split/length/containment) and SegmentMap coverage laws.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.continuous import ContinuousGraph, binary_digits, digits_to_point
from repro.core.interval import Arc, linear_distance, normalize
from repro.core.segments import SegmentMap

# strategies ----------------------------------------------------------------

unit_fraction = st.fractions(min_value=0, max_value=1).filter(lambda f: f < 1)
unit_float = st.floats(min_value=0.0, max_value=1.0, exclude_max=True,
                       allow_nan=False, allow_infinity=False)
digit_strings = st.lists(st.integers(min_value=0, max_value=1), max_size=24)
deltas = st.sampled_from([2, 3, 4, 8])


class TestContinuousIdentities:
    @given(y=unit_fraction, z=unit_fraction, digits=digit_strings)
    def test_observation_2_3_exact(self, y, z, digits):
        """d(w(σ,y), w(σ,z)) = 2^{-t} d(y,z) — exactly, on rationals."""
        g = ContinuousGraph(2)
        wy, wz = g.walk(digits, y), g.walk(digits, z)
        assert linear_distance(wy, wz) == linear_distance(y, z) / 2 ** len(digits)

    @given(y=unit_fraction, digits=digit_strings)
    def test_walk_equals_iterated_children(self, y, digits):
        g = ContinuousGraph(2)
        acc = y
        for d in digits:
            acc = g.child(acc, d)
        assert g.walk(digits, y) == acc

    @given(y=unit_fraction, digits=digit_strings)
    def test_backward_strips_last_digit(self, y, digits):
        assume(len(digits) > 0)
        g = ContinuousGraph(2)
        assert g.backward(g.walk(digits, y)) == g.walk(digits[:-1], y)

    @given(y=unit_fraction, z=unit_fraction,
           t=st.integers(min_value=0, max_value=24), delta=deltas)
    def test_claim_2_4_approach(self, y, z, t, delta):
        """d(w(σ(y)_t, z), y) ≤ Δ^{-t} for every start z."""
        g = ContinuousGraph(delta)
        w = g.walk(g.approach_digits(y, t), z)
        assert linear_distance(w, y) <= Fraction(1, delta**t)

    @given(y=unit_fraction, d=st.integers(min_value=0, max_value=7), delta=deltas)
    def test_child_digit_recovers_branch(self, y, d, delta):
        assume(d < delta)
        g = ContinuousGraph(delta)
        assert g.child_digit(g.child(y, d)) == d

    @given(digits=st.lists(st.integers(min_value=0, max_value=2), min_size=1,
                           max_size=20))
    def test_digits_roundtrip_base3(self, digits):
        y = digits_to_point(digits, delta=3)
        assert binary_digits(y, len(digits), delta=3) == tuple(digits)


class TestArcProperties:
    @given(a=unit_float, b=unit_float)
    def test_length_in_unit_range(self, a, b):
        assume(a != b)
        arc = Arc(a, b)
        assert 0 < float(arc.length) <= 1

    @given(a=unit_float, b=unit_float)
    def test_complement_lengths_sum_to_one(self, a, b):
        assume(a != b)
        assert float(Arc(a, b).length) + float(Arc(b, a).length) == pytest.approx(1.0)

    @given(a=unit_float, b=unit_float, p=unit_float)
    def test_point_in_exactly_one_half(self, a, b, p):
        """[a,b) and [b,a) partition the ring."""
        assume(a != b)
        assert (p in Arc(a, b)) != (p in Arc(b, a))

    @given(a=unit_float, b=unit_float, at=unit_float)
    def test_split_preserves_membership(self, a, b, at):
        assume(a != b)
        arc = Arc(a, b)
        assume(at in arc and at != a)
        left, right = arc.split(at)
        assert float(left.length + right.length) == pytest.approx(float(arc.length))
        probe_rng = np.random.default_rng(0)
        for _ in range(10):
            p = float(probe_rng.random())
            assert (p in arc) == ((p in left) or (p in right))

    @given(a=unit_float, b=unit_float)
    def test_pieces_reassemble(self, a, b):
        assume(a != b)
        arc = Arc(a, b)
        total = sum(hi - lo for lo, hi in arc.pieces())
        assert float(total) == pytest.approx(float(arc.length))
        for lo, hi in arc.pieces():
            assert lo < hi

    @given(a=unit_fraction, b=unit_fraction, digit=st.integers(0, 1))
    def test_image_membership(self, a, b, digit):
        """p ∈ arc ⟺ f_d(p) ∈ f_d(arc) — the discretization soundness law."""
        assume(a != b)
        g = ContinuousGraph(2)
        arc = Arc(a, b)
        imgs = g.image_arcs_by_digit(arc)[digit]
        rng = np.random.default_rng(1)
        for _ in range(10):
            p = Fraction(int(rng.integers(0, 1 << 20)), 1 << 20)
            assert (p in arc) == any(g.child(p, digit) in img for img in imgs)

    @given(a=unit_fraction, b=unit_fraction)
    def test_two_piece_wrap_scaled_raises(self, a, b):
        """Arc.scaled refuses disconnected images (use image_arcs instead)."""
        assume(a > b > 0)
        with pytest.raises(ValueError):
            Arc(a, b).scaled(0.5, 0.0)


class TestSegmentMapProperties:
    @settings(max_examples=50)
    @given(points=st.lists(unit_float, min_size=1, max_size=40, unique=True),
           probe=unit_float)
    def test_cover_contains_probe(self, points, probe):
        sm = SegmentMap(points)
        i = sm.cover(probe)
        assert probe in sm.segment(i)

    @settings(max_examples=50)
    @given(points=st.lists(unit_float, min_size=2, max_size=40, unique=True))
    def test_segments_partition_ring(self, points):
        sm = SegmentMap(points)
        assert sm.lengths().sum() == pytest.approx(1.0)
        rng = np.random.default_rng(2)
        for _ in range(20):
            p = float(rng.random())
            covering = [i for i in range(len(sm)) if p in sm.segment(i)]
            assert len(covering) == 1

    @settings(max_examples=50)
    @given(points=st.lists(unit_float, min_size=2, max_size=30, unique=True),
           a=unit_float, b=unit_float)
    def test_covering_complete(self, points, a, b):
        """covering(arc) returns every segment intersecting the arc."""
        assume(a != b)
        sm = SegmentMap(points)
        arc = Arc(a, b)
        got = set(sm.covering(arc))
        rng = np.random.default_rng(3)
        for _ in range(30):
            t = float(rng.random()) * float(arc.length)
            p = normalize(a + t)
            if p in arc:
                assert sm.cover(p) in got

    @settings(max_examples=50)
    @given(points=st.lists(unit_float, min_size=2, max_size=30, unique=True),
           extra=unit_float)
    def test_insert_remove_roundtrip(self, points, extra):
        assume(extra not in points)
        sm = SegmentMap(points)
        before = list(sm.points)
        sm.insert(extra)
        sm.remove(extra)
        assert list(sm.points) == before

    @settings(max_examples=50)
    @given(points=st.lists(unit_float, min_size=2, max_size=30, unique=True))
    def test_predecessor_successor_inverse(self, points):
        sm = SegmentMap(points)
        for p in sm.points:
            assert sm.successor(sm.predecessor(p)) == p
            assert sm.predecessor(sm.successor(p)) == p
