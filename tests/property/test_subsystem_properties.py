"""Property-based tests for the outer subsystems (faults, baselines, §7)."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import ChordNetwork, KoordeNetwork, TapestryNetwork
from repro.emulation import DeBruijnFamily, GraphEmulator, RingFamily
from repro.faults import OverlappingDHNetwork, ReedSolomonCode
from repro.core.segments import SegmentMap

seeds = st.integers(min_value=0, max_value=2**31)
MED = settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
               deadline=None)
FAST = settings(max_examples=50, deadline=None)


class TestErasureProperties:
    @MED
    @given(seed=seeds,
           k=st.integers(min_value=1, max_value=6),
           extra=st.integers(min_value=0, max_value=6),
           payload=st.binary(min_size=0, max_size=300))
    def test_any_k_random_shares_decode(self, seed, k, extra, payload):
        n = k + extra
        code = ReedSolomonCode(k, n)
        shares = code.encode(payload)
        rng = np.random.default_rng(seed)
        idx = rng.choice(n, size=k, replace=False)
        subset = [shares[i] for i in idx]
        assert code.decode(subset) == payload

    @FAST
    @given(k=st.integers(min_value=1, max_value=8),
           payload=st.binary(min_size=0, max_size=100))
    def test_systematic_prefix(self, k, payload):
        """The first k shares concatenate to the framed payload."""
        code = ReedSolomonCode(k, k + 2)
        shares = code.encode(payload)
        framed = b"".join(p for _, p in shares[:k])
        assert framed[8: 8 + len(payload)] == payload


class TestOverlapProperties:
    @MED
    @given(seed=seeds, probe=st.floats(min_value=0.0, max_value=1.0,
                                       exclude_max=True, allow_nan=False))
    def test_every_point_covered_logarithmically(self, seed, probe):
        net = OverlappingDHNetwork(64, np.random.default_rng(seed))
        covers = net.covers(probe)
        assert len(covers) >= 1
        assert len(covers) <= 6 * math.log2(64)
        for x in covers:
            assert net.covers_point(x, probe)

    @MED
    @given(seed=seeds)
    def test_neighbors_include_overlapping_servers(self, seed):
        net = OverlappingDHNetwork(48, np.random.default_rng(seed))
        x = net.points[10]
        nbs = set(net.neighbors(x))
        for y in net.covers(x):
            if y != x:
                assert y in nbs


class TestBaselineProperties:
    @MED
    @given(seed=seeds, target=st.floats(min_value=0.0, max_value=1.0,
                                        exclude_max=True, allow_nan=False))
    def test_chord_routes_to_successor(self, seed, target):
        rng = np.random.default_rng(seed)
        dht = ChordNetwork(32, rng)
        src = dht.points[int(rng.integers(32))]
        path = dht.lookup_path(src, target, rng)
        assert path[-1] == dht.owner(target)
        assert len(path) - 1 <= 3 * dht.m

    @MED
    @given(seed=seeds, target=st.floats(min_value=0.0, max_value=1.0,
                                        exclude_max=True, allow_nan=False))
    def test_koorde_routes_to_successor(self, seed, target):
        rng = np.random.default_rng(seed)
        dht = KoordeNetwork(32, rng)
        src = dht.points[int(rng.integers(32))]
        path = dht.lookup_path(src, target, rng)
        assert path[-1] == dht.owner(target)

    @MED
    @given(seed=seeds, target=st.floats(min_value=0.0, max_value=1.0,
                                        exclude_max=True, allow_nan=False))
    def test_tapestry_root_source_independent(self, seed, target):
        rng = np.random.default_rng(seed)
        dht = TapestryNetwork(32, rng)
        roots = {
            dht.lookup_path(int(rng.integers(32)), target, rng)[-1]
            for _ in range(4)
        }
        assert len(roots) == 1


class TestEmulationProperties:
    @MED
    @given(points=st.lists(st.floats(min_value=0.0, max_value=1.0,
                                     exclude_max=True, allow_nan=False),
                           min_size=2, max_size=40, unique=True),
           k=st.integers(min_value=2, max_value=7))
    def test_guests_always_partition(self, points, k):
        sm = SegmentMap(points)
        em = GraphEmulator(sm, RingFamily(), k=k)
        all_guests = sorted(g for p in sm for g in em.guests_of(p))
        assert all_guests == list(range(1 << k))

    @MED
    @given(points=st.lists(st.floats(min_value=0.0, max_value=1.0,
                                     exclude_max=True, allow_nan=False),
                           min_size=2, max_size=30, unique=True))
    def test_host_edges_cover_guest_edges(self, points):
        sm = SegmentMap(points)
        em = GraphEmulator(sm, DeBruijnFamily(), k=5)
        edges = em.host_edges()
        fam = DeBruijnFamily()
        for u in range(32):
            hu = em.host_of(u)
            for v in fam.neighbors(5, u):
                hv = em.host_of(v)
                if hu != hv:
                    assert (min(hu, hv), max(hu, hv)) in edges
