"""Property-based tests for the protocols (lookup, caching, hashing).

Random small networks + random lookups: correctness invariants that must
hold on *every* instance, not just the seeds unit tests chose.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CacheSystem, DistanceHalvingNetwork, dh_lookup, fast_lookup
from repro.core.caching import ActiveTree
from repro.core.pathtree import PathTree
from repro.hashing.kwise import KWiseHash

net_sizes = st.integers(min_value=2, max_value=48)
seeds = st.integers(min_value=0, max_value=2**31)
unit_float = st.floats(min_value=0.0, max_value=1.0, exclude_max=True,
                       allow_nan=False)


def build_net(n, seed, delta=2):
    rng = np.random.default_rng(seed)
    net = DistanceHalvingNetwork(delta=delta, rng=rng)
    net.populate(n)
    return net, rng


SLOW = settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow],
                deadline=None)
MED = settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow],
               deadline=None)
FAST = settings(max_examples=40, deadline=None)
SMALL = settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
                 deadline=None)


class TestLookupProperties:
    @SLOW
    @given(n=net_sizes, seed=seeds, target=unit_float)
    def test_fast_lookup_total_correctness(self, n, seed, target):
        net, rng = build_net(n, seed)
        src = list(net.points())[int(rng.integers(n))]
        res = fast_lookup(net, src, target)
        assert res.server_path[-1] == net.segments.cover_point(target)
        assert res.server_path[0] == net.segments.cover_point(src)
        assert res.verify_adjacent(net)

    @SLOW
    @given(n=net_sizes, seed=seeds, target=unit_float)
    def test_dh_lookup_total_correctness(self, n, seed, target):
        net, rng = build_net(n, seed)
        src = list(net.points())[int(rng.integers(n))]
        res = dh_lookup(net, src, target, rng)
        assert res.server_path[-1] == net.segments.cover_point(target)
        assert res.verify_adjacent(net)

    @SLOW
    @given(n=net_sizes, seed=seeds, target=unit_float)
    def test_path_length_bound_always(self, n, seed, target):
        """Cor 2.5 is deterministic: it must hold on every instance.

        The minimal walk length is an integer, so the guarantee is
        ``t ≤ ⌈log n + log ρ + 1⌉`` — without the ceiling the bound can
        be violated by < 1 (e.g. n=2, ρ≈1.62 forces t=3 > 2.70).
        """
        net, rng = build_net(n, seed)
        src = list(net.points())[int(rng.integers(n))]
        res = fast_lookup(net, src, target)
        rho = net.smoothness()
        if math.isfinite(rho):
            bound = math.log2(max(2, n)) + math.log2(max(1.0, rho)) + 1
            assert res.t <= math.ceil(bound - 1e-9) + 1e-6


class TestCachingProperties:
    @MED
    @given(seed=seeds, c=st.integers(min_value=1, max_value=16),
           taus=st.lists(st.lists(st.integers(0, 1), min_size=0, max_size=10),
                         min_size=1, max_size=40))
    def test_active_set_prefix_closed(self, seed, c, taus):
        """Invariant: the active set is always a tree containing the root."""
        tree = ActiveTree(PathTree(0.375), threshold=c)
        for tau in taus:
            tree.serve(tuple(tau))
        for addr in tree.active:
            for j in range(len(addr)):
                assert addr[:j] in tree.active

    @MED
    @given(seed=seeds, c=st.integers(min_value=1, max_value=16),
           taus=st.lists(st.lists(st.integers(0, 1), min_size=0, max_size=10),
                         min_size=1, max_size=40))
    def test_collapse_never_removes_root(self, seed, c, taus):
        tree = ActiveTree(PathTree(0.651), threshold=c)
        for tau in taus:
            tree.serve(tuple(tau))
        tree.advance_epoch()
        tree.advance_epoch()
        assert () in tree.active
        for addr in tree.active:  # still prefix-closed after collapse
            for j in range(len(addr)):
                assert addr[:j] in tree.active

    @MED
    @given(seed=seeds)
    def test_cached_request_served_by_item_holder(self, seed):
        net, rng = build_net(24, seed)
        cache = CacheSystem(net, threshold=2)
        pts = list(net.points())
        for k in range(30):
            res = cache.request("item", pts[int(rng.integers(len(pts)))], rng)
            # serving node's position is covered by the serving server
            pos = cache.tree_for("item").tree.position(res.serving_node)
            assert pos in net.segments.segment_of(res.serving_server)
            assert res.hops <= res.lookup.hops


class TestHashProperties:
    @FAST
    @given(seed=seeds, keys=st.lists(st.integers(min_value=0, max_value=2**61),
                                     min_size=1, max_size=20, unique=True))
    def test_range_and_determinism(self, seed, keys):
        h = KWiseHash(4, np.random.default_rng(seed))
        vals = [h(k) for k in keys]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert vals == [h(k) for k in keys]

    @FAST
    @given(seed=seeds, k=st.integers(min_value=1, max_value=8))
    def test_family_member_is_pure(self, seed, k):
        h1 = KWiseHash(k, np.random.default_rng(seed))
        h2 = KWiseHash(k, np.random.default_rng(seed))
        assert [h1(i) for i in range(10)] == [h2(i) for i in range(10)]


class TestChurnProperties:
    @SMALL
    @given(seed=seeds, ops=st.lists(st.tuples(st.booleans(), unit_float),
                                    min_size=1, max_size=60))
    def test_membership_churn_invariants(self, seed, ops):
        """Join/leave in any order keeps the decomposition consistent."""
        net = DistanceHalvingNetwork(rng=np.random.default_rng(seed))
        alive = []
        for is_join, p in ops:
            if is_join or not alive:
                if p not in net.servers:
                    net.join(p)
                    alive.append(p)
            else:
                victim = alive.pop(int(p * len(alive)) % len(alive))
                net.leave(victim)
            net.check_invariants()
        assert net.n == len(alive)
