"""Property tests: the batch engine is bit-identical to the scalar one.

The vectorized :class:`~repro.core.batch.BatchRouter` re-implements the
§2.2 routing algorithms with closed-form array arithmetic; its contract
is that *every* observable of a lookup — owner, walk parameter ``t``,
hop count, compressed server path — matches the scalar engine exactly,
for any (source, target) pair on any decomposition.  Hypothesis drives
the pair choice on shared random networks of n ∈ {16, 256}; a seeded
sweep covers n = 4096 (the throughput-scale instance, too expensive to
rebuild per example).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balance import MultipleChoice
from repro.core import DistanceHalvingNetwork, lookup_many

unit_float = st.floats(min_value=0.0, max_value=1.0, exclude_max=False,
                       allow_nan=False, allow_infinity=False)


def _build(n, seed, balanced=False):
    rng = np.random.default_rng(seed)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(n, selector=MultipleChoice(t=4) if balanced else None)
    return net, net.compile_router(with_adjacency=True)


NETS = {}


def net_and_router(n):
    if n not in NETS:
        NETS[n] = _build(n, seed=1000 + n, balanced=(n >= 4096))
    return NETS[n]


class TestFastParityHypothesis:
    @settings(max_examples=150, deadline=None)
    @given(n=st.sampled_from([16, 256]), src_pick=unit_float, y=unit_float)
    def test_single_pair_full_parity(self, n, src_pick, y):
        net, router = net_and_router(n)
        # any point works as a source: the lookup starts at its cover
        src = float(net.segments.cover_point(src_pick))
        [scalar] = lookup_many(net, [src], [y])
        batch = router.batch_fast_lookup(np.array([src]), np.array([y]),
                                         keep_paths=True)
        assert scalar.owner == batch.owner[0]
        assert scalar.t == batch.t[0]
        assert scalar.hops == batch.hops[0]
        assert scalar.server_path == batch.server_path(0)

    @settings(max_examples=60, deadline=None)
    @given(n=st.sampled_from([16, 256]), y=unit_float,
           tau_bits=st.integers(min_value=0, max_value=2**64 - 1))
    def test_dh_single_pair_full_parity(self, n, y, tau_bits):
        net, router = net_and_router(n)
        src = float(net.segments.cover_point(y * 0.7919 % 1.0))
        tau = [(tau_bits >> k) & 1 for k in range(64)]
        [scalar] = lookup_many(net, [src], [y], algorithm="dh", taus=[tau])
        batch = router.batch_dh_lookup(np.array([src]), np.array([y]),
                                       tau=np.array([tau]), keep_paths=True)
        assert scalar.owner == batch.owner[0]
        assert scalar.hops == batch.hops[0]
        assert scalar.phase1_hops == batch.phase1_hops[0]
        assert scalar.server_path == batch.server_path(0)


class TestParityAtScale:
    """Seeded sweeps on the sizes the issue names, including n=4096."""

    @pytest.mark.parametrize("n,count", [(16, 400), (256, 400), (4096, 300)])
    def test_fast_parity_sweep(self, n, count):
        net, router = net_and_router(n)
        route = np.random.default_rng(2000 + n)
        pts = net.segments.as_array()
        src = pts[route.integers(0, n, size=count)]
        tgt = route.random(count)
        batch = router.batch_fast_lookup(src, tgt, keep_paths=True)
        for i, r in enumerate(lookup_many(net, src, tgt)):
            assert r.owner == batch.owner[i]
            assert r.t == batch.t[i]
            assert r.hops == batch.hops[i]
            assert r.server_path == batch.server_path(i)

    @pytest.mark.parametrize("n,count", [(16, 200), (256, 200), (4096, 100)])
    def test_dh_parity_sweep(self, n, count):
        net, router = net_and_router(n)
        route = np.random.default_rng(3000 + n)
        pts = net.segments.as_array()
        src = pts[route.integers(0, n, size=count)]
        tgt = route.random(count)
        tau = route.integers(0, 2, size=(count, 80))
        batch = router.batch_dh_lookup(src, tgt, tau=tau, keep_paths=True)
        scalar = lookup_many(net, src, tgt, algorithm="dh",
                             taus=[list(row) for row in tau])
        for i, r in enumerate(scalar):
            assert r.owner == batch.owner[i]
            assert r.t == batch.t[i]
            assert r.hops == batch.hops[i]
            assert r.server_path == batch.server_path(i)

    def test_batch_hops_respect_corollary_2_5(self):
        net, router = net_and_router(4096)
        route = np.random.default_rng(4096)
        pts = net.segments.as_array()
        src = pts[route.integers(0, 4096, size=5000)]
        batch = router.batch_fast_lookup(src, route.random(5000))
        bound = np.log2(net.n) + np.log2(net.smoothness()) + 1
        assert batch.t.max() <= bound + 1e-9
        assert (batch.hops <= batch.t).all()


class TestCsrLosslessEncoding:
    """ISSUE 4: the flattened CSR path arrays (``keep_paths="csr"``) are
    a lossless re-encoding of the scalar ``LookupResult.server_path``
    for both algorithms — and of the object-path reconstruction the
    batch engine already had."""

    @pytest.mark.parametrize("n,count", [(16, 300), (256, 300)])
    def test_fast_csr_equals_scalar_paths(self, n, count):
        net, router = net_and_router(n)
        route = np.random.default_rng(5000 + n)
        pts = net.segments.as_array()
        src = pts[route.integers(0, n, size=count)]
        tgt = route.random(count)
        batch = router.batch_fast_lookup(src, tgt, keep_paths="csr")
        assert batch.path_servers.dtype == np.int32
        assert batch.path_offsets.dtype == np.int64
        assert (np.diff(batch.path_offsets) >= 1).all()
        assert np.array_equal(batch.path_lengths() - 1, batch.hops)
        for i, r in enumerate(lookup_many(net, src, tgt)):
            assert r.server_path == batch.server_path(i)
            assert r.server_path == batch.path_points(i).tolist()

    @pytest.mark.parametrize("n,count", [(16, 150), (256, 150)])
    def test_dh_csr_equals_scalar_paths(self, n, count):
        net, router = net_and_router(n)
        route = np.random.default_rng(6000 + n)
        pts = net.segments.as_array()
        src = pts[route.integers(0, n, size=count)]
        tgt = route.random(count)
        tau = route.integers(0, 2, size=(count, 80))
        batch = router.batch_dh_lookup(src, tgt, tau=tau, keep_paths="csr")
        assert np.array_equal(batch.path_lengths() - 1, batch.hops)
        scalar = lookup_many(net, src, tgt, algorithm="dh",
                             taus=[list(row) for row in tau])
        for i, r in enumerate(scalar):
            assert r.server_path == batch.server_path(i)

    def test_csr_matches_object_path_reconstruction(self):
        """to_csr() on a keep_paths=True result is the same encoding."""
        net, router = net_and_router(256)
        route = np.random.default_rng(42)
        pts = net.segments.as_array()
        src = pts[route.integers(0, 256, size=200)]
        tgt = route.random(200)
        tau = route.integers(0, 2, size=(200, 80))
        for algo in ("fast", "dh"):
            kw = {} if algo == "fast" else {"tau": tau}
            call = getattr(router, f"batch_{algo}_lookup")
            obj = call(src, tgt, keep_paths=True, **kw)
            csr = call(src, tgt, keep_paths="csr", **kw)
            servers, offsets = obj.to_csr()
            assert np.array_equal(servers, csr.path_servers)
            assert np.array_equal(offsets, csr.path_offsets)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           steps=st.integers(min_value=1, max_value=40),
           leave_prob=st.floats(min_value=0.0, max_value=0.8))
    def test_csr_lossless_after_churn_interleavings(self, seed, steps,
                                                    leave_prob):
        """Joins/leaves replayed through incremental refresh() must not
        perturb the CSR encoding: paths still match a scalar replay on
        the live network, for both algorithms."""
        rng = np.random.default_rng(seed)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(24)
        router = net.router(auto_refresh=True, with_adjacency=True,
                            churn_budget=10**9)
        _apply_random_churn(net, rng, steps, leave_prob,
                            refresh=lambda: router.refresh())
        route = np.random.default_rng(seed + 1)
        size = 32
        pts = net.segments.as_array()
        src = pts[route.integers(0, net.n, size=size)]
        tgt = route.random(size)
        tau = route.integers(0, net.delta, size=(size, 80))
        fast = router.batch_fast_lookup(src, tgt, keep_paths="csr")
        dh = router.batch_dh_lookup(src, tgt, tau=tau, keep_paths="csr")
        assert np.array_equal(fast.path_lengths() - 1, fast.hops)
        assert np.array_equal(dh.path_lengths() - 1, dh.hops)
        for i, r in enumerate(lookup_many(net, src, tgt)):
            assert r.server_path == fast.server_path(i)
        scalar = lookup_many(net, src, tgt, algorithm="dh",
                             taus=[list(row) for row in tau])
        for i, r in enumerate(scalar):
            assert r.server_path == dh.server_path(i)


def _apply_random_churn(net, rng, steps, leave_prob, refresh=None):
    """Random join/leave interleaving; optionally re-sync after each op."""
    for _ in range(steps):
        if rng.random() < leave_prob and net.n > 1:
            pts = list(net.points())
            net.leave(pts[int(rng.integers(len(pts)))])
        else:
            net.join(float(rng.random()))
        if refresh is not None:
            refresh()


def _assert_router_equals_fresh(net, router, seed):
    """The incrementally maintained router is bit-identical to a fresh
    compile — arrays, adjacency keys, and both lookup algorithms."""
    fresh = net.compile_router(with_adjacency=True)
    assert router.n == fresh.n == net.n
    assert np.array_equal(router.points, fresh.points)
    assert np.array_equal(router.seg_start, fresh.seg_start)
    assert np.array_equal(router.seg_end, fresh.seg_end)
    assert np.array_equal(router.midpoints, fresh.midpoints)
    if router._edge_keys is None:
        router._build_adjacency()
    assert np.array_equal(router._edge_keys, fresh._edge_keys)

    route = np.random.default_rng(seed)
    size = 64
    pts = net.segments.as_array()
    src = pts[route.integers(0, net.n, size=size)]
    tgt = route.random(size)
    a = router.batch_fast_lookup(src, tgt)
    b = fresh.batch_fast_lookup(src, tgt)
    assert np.array_equal(a.owner_idx, b.owner_idx)
    assert np.array_equal(a.t, b.t)
    assert np.array_equal(a.hops, b.hops)
    tau = route.integers(0, net.delta, size=(size, 64))
    a = router.batch_dh_lookup(src, tgt, tau=tau)
    b = fresh.batch_dh_lookup(src, tgt, tau=tau)
    assert np.array_equal(a.owner_idx, b.owner_idx)
    assert np.array_equal(a.t, b.t)
    assert np.array_equal(a.hops, b.hops)
    assert np.array_equal(a.phase1_hops, b.phase1_hops)


class TestIncrementalRefreshParity:
    """ISSUE 3: after *any* interleaving of joins and leaves, the
    incrementally maintained auto-refresh router must be bit-identical
    to a from-scratch ``compile_router()`` — sorted arrays, adjacency
    keys, and the results of both batch lookup algorithms."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           steps=st.integers(min_value=1, max_value=48),
           leave_prob=st.floats(min_value=0.0, max_value=0.9))
    def test_any_interleaving_matches_fresh_compile(self, seed, steps,
                                                    leave_prob):
        rng = np.random.default_rng(seed)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(24)
        router = net.router(auto_refresh=True, with_adjacency=True,
                            churn_budget=10**9)
        _apply_random_churn(net, rng, steps, leave_prob)
        router.refresh()
        _assert_router_equals_fresh(net, router, seed)

    def test_per_op_refresh_long_trace(self):
        """300 ops re-synced one at a time, checked at every 50th op."""
        rng = np.random.default_rng(777)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(256)
        router = net.router(auto_refresh=True, with_adjacency=True,
                            churn_budget=10**9)
        for chunk in range(6):
            _apply_random_churn(net, rng, 50, 0.45,
                                refresh=lambda: router.refresh())
            _assert_router_equals_fresh(net, router, 7000 + chunk)
        assert router.refresh_stats.incremental == 300
        assert router.refresh_stats.full_rebuilds == 0

    def test_mass_departure_trace_matches_fresh_compile(self):
        """The §4.1 stress (half the servers leave) through run_churn."""
        from repro.sim.churn import ChurnTrace, run_churn

        rng = np.random.default_rng(31337)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(64)
        router = net.router(auto_refresh=True, with_adjacency=True,
                            churn_budget=10**9)
        trace = ChurnTrace.mass_departure(rng, n=64, fraction=0.5)
        run_churn(net, trace, rng, on_op=lambda s, o: router.refresh())
        assert router.refresh_stats.full_rebuilds == 0
        _assert_router_equals_fresh(net, router, 999)
