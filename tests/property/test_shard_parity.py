"""Property tests: sharded execution is split-invariant, bit-for-bit.

The :class:`ShardedExecutor` contract — slice a batch into k contiguous
shard slices, route each against the same frozen snapshot, merge — must
be bit-identical to the single-process run for ANY slicing, because
every per-lane IEEE-754 op depends only on that lane and the shared
snapshot.  Hypothesis drives the slicing (and a churn point for the
mid-batch refresh case); the comparisons are exact: merged
:class:`BatchLookupResult` arrays, :class:`BatchCongestion` internals,
and :class:`SoakStats` state all byte-equal, never approximate.

The suite routes the slices in-process through the same
``slice_bounds``/``merge_results`` machinery the real worker pool uses
(process dispatch only moves the identical computation elsewhere; the
pool itself is exercised in ``tests/core/test_shard.py``).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DistanceHalvingNetwork
from repro.core.routing_stats import BatchCongestion
from repro.core.shard import merge_results, slice_bounds
from repro.sim.scenario import SoakStats

N = 128
BATCH = 400


def _build(seed=31):
    rng = np.random.default_rng(seed)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(N)
    return net


NET = _build()
ROUTER = NET.router(auto_refresh=True)
_rng = np.random.default_rng(8)
_pts = NET.segments.as_array()
SOURCES = _pts[_rng.integers(0, _pts.size, size=BATCH)]
TARGETS = _rng.random(BATCH)


def _shard(router, sources, targets, workers):
    """What the pool does, in-process: slice and route each shard.

    (Workers additionally strip ``points`` before pickling and
    ``merge_results`` re-attaches it — that wrinkle is covered by
    ``tests/core/test_shard.py``; accounting needs it attached.)
    """
    return [router.batch_fast_lookup(sources[lo:hi], targets[lo:hi],
                                     keep_paths="csr")
            for lo, hi in slice_bounds(sources.size, workers)]


def _congestion_state(acc):
    return (acc.lookups, acc.total_messages,
            acc._points.tobytes(), acc._counts.tobytes())


def _soak_state(s):
    return (_congestion_state(s.route), s.hop_hist.tobytes(),
            s.cache_requests, s.ft_pairs, s.churn_ops,
            s.n_min, s.n_max, s.smoothness_max)


workers_st = st.integers(min_value=2, max_value=9)


class TestShardSliceParity:
    @settings(max_examples=40, deadline=None)
    @given(workers=workers_st)
    def test_merged_result_bit_identical(self, workers):
        whole = ROUTER.batch_fast_lookup(SOURCES, TARGETS, keep_paths="csr")
        merged = merge_results(_shard(ROUTER, SOURCES, TARGETS, workers),
                               points=ROUTER.points)
        np.testing.assert_array_equal(merged.owner_idx, whole.owner_idx)
        np.testing.assert_array_equal(merged.t, whole.t)
        np.testing.assert_array_equal(merged.hops, whole.hops)
        np.testing.assert_array_equal(merged.sources, whole.sources)
        np.testing.assert_array_equal(merged.targets, whole.targets)
        np.testing.assert_array_equal(merged.path_servers,
                                      whole.path_servers)
        np.testing.assert_array_equal(merged.path_offsets,
                                      whole.path_offsets)

    @settings(max_examples=40, deadline=None)
    @given(workers=workers_st)
    def test_per_shard_congestion_merge_equals_single(self, workers):
        single = BatchCongestion()
        single.record_batch(
            ROUTER.batch_fast_lookup(SOURCES, TARGETS, keep_paths="csr"))
        merged = BatchCongestion()
        for part in _shard(ROUTER, SOURCES, TARGETS, workers):
            shard_acc = BatchCongestion()
            shard_acc.record_batch(part)
            merged.merge(shard_acc)
        assert _congestion_state(merged) == _congestion_state(single)
        assert merged.summary(N) == single.summary(N)

    @settings(max_examples=40, deadline=None)
    @given(workers=workers_st)
    def test_per_shard_soak_stats_merge_equals_single(self, workers):
        single = SoakStats()
        single.record_route(
            ROUTER.batch_fast_lookup(SOURCES, TARGETS, keep_paths="csr"))
        merged = SoakStats()
        for part in _shard(ROUTER, SOURCES, TARGETS, workers):
            shard_acc = SoakStats()
            shard_acc.record_route(part)
            merged.merge(shard_acc)
        assert _soak_state(merged) == _soak_state(single)
        assert merged.mean_hops() == single.mean_hops()


class TestShardParityAcrossRefresh:
    @settings(max_examples=15, deadline=None)
    @given(workers=workers_st,
           churn_seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_mid_batch_refresh_keeps_parity(self, workers, churn_seed):
        """Two batches with a churn wave between them: each batch is
        sharded against the snapshot current at its dispatch (exactly
        the executor's re-sync discipline), and the merged accumulator
        must equal the single-process run over the same two batches."""
        rng = np.random.default_rng(churn_seed)
        net = _build(seed=77)
        router = net.router(auto_refresh=True)
        pts = net.segments.as_array()
        src = pts[rng.integers(0, pts.size, size=BATCH)]
        tgt = rng.random(BATCH)
        half = BATCH // 2
        joiner = float(rng.random())

        # single-process reference: two whole batches, churn between
        single = BatchCongestion()
        single.record_batch(router.batch_fast_lookup(
            src[:half], tgt[:half], keep_paths="csr"))
        net.join(joiner)  # router is stale until the next dispatch
        single.record_batch(router.batch_fast_lookup(
            src[half:], tgt[half:], keep_paths="csr"))

        # sharded run on an identical network: batch 2 is sliced across
        # workers after the same churn point (post-refresh snapshot)
        net2 = _build(seed=77)
        router2 = net2.router(auto_refresh=True)
        merged = BatchCongestion()
        merged.record_batch(router2.batch_fast_lookup(
            src[:half], tgt[:half], keep_paths="csr"))
        net2.join(joiner)
        for part in _shard(router2, src[half:], tgt[half:], workers):
            shard_acc = BatchCongestion()
            shard_acc.record_batch(part)
            merged.merge(shard_acc)

        assert _congestion_state(merged) == _congestion_state(single)
