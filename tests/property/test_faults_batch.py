"""Property tests for the fault-tolerant batch engine (§6.3).

Two invariants, driven by hypothesis:

* on **fault-free** networks the cheap Simple Lookup and the flooding
  resistant lookup agree — both succeed and traverse the same canonical
  walk (they emulate the same Claim 2.4 path);
* under arbitrary random fail-stop + Byzantine plans the batch engine
  is **bit-identical** to the scalar per-hop walks when driven by the
  same choice uniforms.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lookup import compress_path
from repro.faults import (
    FTBatchEngine,
    FaultPlan,
    OverlappingDHNetwork,
    resistant_lookup,
    simple_lookup,
)

seeds = st.integers(min_value=0, max_value=2**31)
MED = settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
               deadline=None)

_NET = OverlappingDHNetwork(128, np.random.default_rng(1234))
_ENGINE = FTBatchEngine(_NET)


class TestFaultFreeAgreement:
    @MED
    @given(seed=seeds,
           target=st.floats(min_value=0.0, max_value=1.0, exclude_max=True,
                            allow_nan=False))
    def test_simple_and_resistant_agree(self, seed, target):
        """Fault-free: both lookups succeed along the same canonical walk."""
        rng = np.random.default_rng(seed)
        src = _NET.points[int(rng.integers(_NET.n))]
        simple = simple_lookup(_NET, src, "k", rng, target=target)
        resist = resistant_lookup(_NET, src, "k", target=target)
        assert simple.success and resist.success
        assert simple.path_points == resist.path_points
        assert simple.parallel_time == resist.parallel_time

    @MED
    @given(seed=seeds)
    def test_batch_engines_agree_fault_free(self, seed):
        rng = np.random.default_rng(seed)
        src = _NET.points_array[rng.integers(0, _NET.n, size=20)]
        tgt = rng.random(20)
        simple = _ENGINE.batch_simple_lookup(src, tgt, rng=rng)
        resist = _ENGINE.batch_resistant_lookup(src, tgt)
        assert simple.success.all() and resist.success.all()
        assert (simple.t == resist.t).all()


class TestBatchScalarParity:
    @MED
    @given(seed=seeds,
           p_fail=st.floats(min_value=0.0, max_value=0.8),
           p_liar=st.floats(min_value=0.0, max_value=0.5))
    def test_simple_bitwise_parity(self, seed, p_fail, p_liar):
        rng = np.random.default_rng(seed)
        plan = FaultPlan.from_masks(_NET.points_array,
                                    failed=rng.random(_NET.n) < p_fail,
                                    liars=rng.random(_NET.n) < p_liar)
        src = _NET.points_array[rng.integers(0, _NET.n, size=15)]
        tgt = rng.random(15)
        u = rng.random((15, 32))
        batch = _ENGINE.batch_simple_lookup(src, tgt, choices=u, plan=plan,
                                            keep_paths="csr")
        for i in range(15):
            ref = simple_lookup(_NET, float(src[i]), "k", plan=plan,
                                target=float(tgt[i]), choices=list(u[i]))
            assert bool(ref.success) == bool(batch.success[i])
            assert ref.messages == int(batch.messages[i])
            assert ref.parallel_time == int(batch.parallel_time[i])
            assert compress_path(ref.servers) == batch.server_path(i)

    @MED
    @given(seed=seeds,
           p_fail=st.floats(min_value=0.0, max_value=0.8),
           p_liar=st.floats(min_value=0.0, max_value=0.5))
    def test_resistant_accounting_parity(self, seed, p_fail, p_liar):
        rng = np.random.default_rng(seed)
        plan = FaultPlan.from_masks(_NET.points_array,
                                    failed=rng.random(_NET.n) < p_fail,
                                    liars=rng.random(_NET.n) < p_liar)
        src = _NET.points_array[rng.integers(0, _NET.n, size=10)]
        tgt = rng.random(10)
        batch = _ENGINE.batch_resistant_lookup(src, tgt, plan=plan)
        for i in range(10):
            ref = resistant_lookup(_NET, float(src[i]), "k", plan,
                                   target=float(tgt[i]))
            assert bool(ref.success) == bool(batch.success[i])
            assert ref.messages == int(batch.messages[i])
            assert ref.parallel_time == int(batch.parallel_time[i])
