"""Unit tests for the P4P/ALTO cost layer (:mod:`repro.peer`).

Pins the determinism contracts the docs promise (docs/COST_MODEL.md):
pure-hash cost columns, batch/scalar selection twins, the degenerate
all-zero map collapsing ``weighted`` onto ``uniform`` bit-for-bit, the
``tau_used`` replay hook of the core engine, and cost columns that
survive churn refresh and sharded execution bit-identically.
"""

import numpy as np
import pytest

from repro.core import DistanceHalvingNetwork
from repro.core.lookup import compress_path
from repro.faults import FTBatchEngine, OverlappingDHNetwork, simple_lookup
from repro.peer import (
    POLICIES,
    CostAwareBatchRouter,
    CostMap,
    CostOracle,
    check_policy,
    cross_isp_counts,
    hash01,
    hop_counts,
    pair_costs,
    select_index,
    select_rows,
)
from repro.peer.costmap import _ISP_SALT

_NET = OverlappingDHNetwork(128, np.random.default_rng(1234))
_ENGINE = FTBatchEngine(_NET)
_MAP = CostMap.synthetic(n_isps=4, rng=np.random.default_rng(7))
_ORACLE = CostOracle(_NET.points_array, _MAP)


class TestCostMap:
    def test_hash_is_pure(self):
        pts = np.random.default_rng(0).random(64)
        a = hash01(pts, _ISP_SALT)
        b = hash01(pts.copy(), _ISP_SALT)
        assert np.array_equal(a, b)
        assert ((a >= 0.0) & (a < 1.0)).all()

    def test_columns_depend_only_on_points(self):
        pts = np.sort(np.random.default_rng(1).random(50))
        c1 = _MAP.columns(pts)
        c2 = _MAP.columns(pts.copy())
        for name in ("cost_isp", "cost_x", "cost_y"):
            assert np.array_equal(c1[name], c2[name])
        assert c1["cost_isp"].min() >= 0
        assert c1["cost_isp"].max() < _MAP.n_isps
        assert c1["cost_x"].max() < _MAP.dist_scale

    def test_synthetic_matrix_shape(self):
        m = CostMap.synthetic(n_isps=5, rng=np.random.default_rng(2))
        assert m.n_isps == 5
        assert np.array_equal(m.isp_cost, m.isp_cost.T)
        assert (np.diag(m.isp_cost) == 0.0).all()
        assert m.isp_cost[~np.eye(5, dtype=bool)].min() >= 1.0

    def test_degenerate_map(self):
        m = CostMap.degenerate()
        assert m.n_isps == 1
        pts = np.random.default_rng(3).random(10)
        x, y = m.coords_of(pts)
        assert (x == 0.0).all() and (y == 0.0).all()
        c = pair_costs(m.isp_of(pts), m.isp_of(pts), x, y, x, y, m.isp_cost)
        assert (c == 0.0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            CostMap(isp_cost=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            CostMap(isp_cost=np.zeros(4))
        with pytest.raises(ValueError):
            CostMap.synthetic(n_isps=0)


class TestSelection:
    def test_check_policy(self):
        for p in POLICIES:
            check_policy(p)
        with pytest.raises(ValueError):
            check_policy("cheapest")

    @pytest.mark.parametrize("policy", POLICIES)
    def test_rows_match_index(self, policy):
        """Batch selection ≡ the scalar twin, lane by lane, bit-for-bit."""
        rng = np.random.default_rng(42)
        for _ in range(20):
            K, B = int(rng.integers(1, 12)), int(rng.integers(1, 30))
            costs = rng.random((K, B)) * 10
            ok = rng.random((K, B)) < 0.7
            ok[rng.integers(0, K), :] = True  # every lane keeps a row
            u = rng.random(B)
            rows = select_rows(costs, ok, u, policy, temperature=0.7)
            for b in range(B):
                valid = np.flatnonzero(ok[:, b])
                pick = select_index(costs[valid, b], float(u[b]), policy,
                                    temperature=0.7)
                assert valid[pick] == rows[b]

    def test_greedy_tie_break_is_scan_order(self):
        costs = np.array([[2.0], [1.0], [1.0]])
        ok = np.ones((3, 1), dtype=bool)
        assert select_rows(costs, ok, None, "greedy")[0] == 1

    def test_uniform_is_floor_rule(self):
        rng = np.random.default_rng(5)
        costs = rng.random((6, 40))
        ok = rng.random((6, 40)) < 0.6
        ok[0, :] = True
        u = rng.random(40)
        rows = select_rows(costs, ok, u, "uniform")
        for b in range(40):
            valid = np.flatnonzero(ok[:, b])
            pick = min(int(u[b] * valid.size), valid.size - 1)
            assert rows[b] == valid[pick]

    def test_weighted_needs_uniforms(self):
        with pytest.raises(ValueError):
            select_rows(np.zeros((2, 2)), np.ones((2, 2), bool), None,
                        "weighted")


class TestOracle:
    def test_index_of_rejects_unknown_point(self):
        with pytest.raises(ValueError):
            _ORACLE.index_of([0.123456789])

    def test_edge_costs_symmetry(self):
        i = np.arange(8)
        j = np.arange(8, 16)
        assert np.array_equal(_ORACLE.edge_costs(i, j),
                              _ORACLE.edge_costs(j, i))

    def test_csr_accounting(self):
        servers = np.array([0, 1, 1, 2, 5], dtype=np.int64)
        offsets = np.array([0, 2, 2, 5], dtype=np.int64)
        assert hop_counts(offsets).tolist() == [1, 0, 2]
        labels = _ORACLE.isp
        cross = cross_isp_counts(labels, servers, offsets)
        assert cross.shape == (3,)
        assert cross[1] == 0


class TestFTPolicyParity:
    def _route(self, policy, plan=None, oracle=_ORACLE, pairs=300):
        rng = np.random.default_rng(99)
        src = _NET.points_array[rng.integers(_NET.n, size=pairs)]
        tgt = rng.random(pairs)
        choices = rng.random((pairs, 32))
        batch = _ENGINE.batch_simple_lookup(
            src, tgt, choices=choices, plan=plan, keep_paths="csr",
            oracle=oracle, policy=policy)
        return src, tgt, choices, batch

    @pytest.mark.parametrize("policy", ["greedy", "weighted"])
    def test_batch_matches_scalar(self, policy):
        src, tgt, choices, batch = self._route(policy)
        for i in range(60):
            res = simple_lookup(_NET, float(src[i]), "probe",
                                target=float(tgt[i]),
                                choices=list(choices[i]), oracle=_ORACLE,
                                policy=policy)
            assert bool(res.success) == bool(batch.success[i])
            assert res.messages == int(batch.messages[i])
            assert compress_path(res.servers) == batch.server_path(i)

    def test_zero_cost_weighted_equals_uniform(self):
        """The degenerate map collapses weighted onto uniform bit-for-bit."""
        zero = CostOracle(_NET.points_array, CostMap.degenerate())
        _, _, _, w = self._route("weighted", oracle=zero)
        _, _, _, u = self._route("uniform", oracle=None)
        assert np.array_equal(w.success, u.success)
        assert np.array_equal(w.messages, u.messages)
        assert np.array_equal(w.path_servers, u.path_servers)
        assert np.array_equal(w.path_offsets, u.path_offsets)

    def test_greedy_reduces_cross_isp(self):
        _, _, _, u = self._route("uniform", oracle=None)
        _, _, _, g = self._route("greedy")
        cross_u = cross_isp_counts(_ORACLE.isp, u.path_servers,
                                   u.path_offsets).mean()
        cross_g = cross_isp_counts(_ORACLE.isp, g.path_servers,
                                   g.path_offsets).mean()
        assert cross_g < cross_u
        assert np.array_equal(u.parallel_time, g.parallel_time)

    def test_policy_needs_oracle(self):
        with pytest.raises(ValueError, match="CostOracle"):
            self._route("greedy", oracle=None)

    def test_scalar_policy_needs_oracle(self):
        with pytest.raises(ValueError, match="CostOracle"):
            simple_lookup(_NET, _NET.points[0], "probe",
                          rng=np.random.default_rng(0), policy="greedy")


class TestCoreEngine:
    @classmethod
    def setup_class(cls):
        net = DistanceHalvingNetwork(rng=np.random.default_rng(2024))
        net.populate(128)
        cls.net = net
        cls.router = CostAwareBatchRouter(net, _MAP, auto_refresh=True)
        rng = np.random.default_rng(7)
        pts = net.segments.as_array()
        cls.src = pts[rng.integers(net.n, size=400)]
        cls.tgt = rng.random(400)
        cls.u = rng.random((400, 64))

    @pytest.mark.parametrize("policy", POLICIES)
    def test_tau_replay_is_bit_identical(self, policy):
        res = self.router.batch_cost_dh_lookup(
            self.src, self.tgt, choices=self.u, policy=policy,
            keep_paths="csr")
        replay = self.router.batch_dh_lookup(self.src, self.tgt,
                                             tau=res.tau_used,
                                             keep_paths="csr")
        assert np.array_equal(res.owner_idx, replay.owner_idx)
        assert np.array_equal(res.hops, replay.hops)
        assert np.array_equal(res.path_servers, replay.path_servers)
        assert np.array_equal(res.path_offsets, replay.path_offsets)

    def test_lookup_batch_policy_passthrough(self):
        direct = self.router.batch_cost_dh_lookup(
            self.src, self.tgt, choices=self.u, policy="weighted")
        via = self.router.lookup_batch(self.src, self.tgt, policy="weighted",
                                       choices=self.u)
        assert via.algorithm == direct.algorithm == "dh-cost"
        assert np.array_equal(direct.owner_idx, via.owner_idx)
        assert np.array_equal(direct.tau_used, via.tau_used)

    def test_plain_router_raises_actionably(self):
        plain = self.net.compile_router()
        with pytest.raises(ValueError, match="CostAwareBatchRouter"):
            plain.batch_cost_dh_lookup(self.src, self.tgt, policy="greedy")

    def test_weighted_needs_uniform_source(self):
        with pytest.raises(ValueError):
            self.router.batch_cost_dh_lookup(self.src, self.tgt,
                                             policy="weighted")


class TestChurnAndShards:
    def test_cost_columns_survive_churn(self):
        """After churn + refresh the columns equal a fresh compile's."""
        rng = np.random.default_rng(31)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(96)
        router = CostAwareBatchRouter(net, _MAP, auto_refresh=True,
                                      churn_budget=64)
        for _ in range(12):
            net.join(float(rng.random()))
        for p in list(net.points())[::9][:6]:
            net.leave(p)
        router.refresh()
        assert router.refresh_stats.incremental >= 1
        fresh = CostAwareBatchRouter(net, _MAP)
        for name in ("cost_isp", "cost_x", "cost_y"):
            assert np.array_equal(getattr(router, name), getattr(fresh, name))
        assert np.array_equal(router._isp_cost, fresh._isp_cost)

    def test_sharded_cost_lookup_parity(self):
        net = DistanceHalvingNetwork(rng=np.random.default_rng(32))
        net.populate(128)
        router = CostAwareBatchRouter(net, _MAP, auto_refresh=True)
        rng = np.random.default_rng(8)
        pts = net.segments.as_array()
        src = pts[rng.integers(net.n, size=500)]
        tgt = rng.random(500)
        u = rng.random((500, 64))
        try:
            local = router.batch_cost_dh_lookup(src, tgt, choices=u,
                                                policy="weighted",
                                                keep_paths="csr")
            shard = router.sharded_executor(2).batch_cost_dh_lookup(
                src, tgt, u, policy="weighted", keep_paths="csr")
        finally:
            router.close_executor()
        assert np.array_equal(local.owner_idx, shard.owner_idx)
        assert np.array_equal(local.hops, shard.hops)
        assert np.array_equal(local.tau_used, shard.tau_used)
        assert np.array_equal(local.path_servers, shard.path_servers)
        assert np.array_equal(local.path_offsets, shard.path_offsets)
        assert local.policy == shard.policy == "weighted"

    def test_sharded_weighted_needs_choices(self):
        net = DistanceHalvingNetwork(rng=np.random.default_rng(33))
        net.populate(64)
        router = CostAwareBatchRouter(net, _MAP, auto_refresh=True)
        pts = net.segments.as_array()
        try:
            with pytest.raises(ValueError, match="choices"):
                router.sharded_executor(2).batch_cost_dh_lookup(
                    pts[:10], np.linspace(0.1, 0.9, 10), None,
                    policy="weighted")
        finally:
            router.close_executor()
