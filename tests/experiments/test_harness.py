"""Tests for the experiment harness (registry, rendering, quick runs)."""

import json

import pytest

from repro.experiments.common import ExperimentResult, format_rows, get_experiment
from repro.experiments.runner import EXPERIMENT_IDS, run_experiments


class TestRegistry:
    def test_all_design_md_ids_registered(self):
        expected = {"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E10",
                    "E11", "E12", "E13", "E14", "E15",
                    "F1", "F2", "F3", "F4", "A1", "A2", "A3", "A4"}
        assert expected <= set(EXPERIMENT_IDS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("E999")

    def test_lookup_case_insensitive(self):
        assert get_experiment("e2") is get_experiment("E2")


class TestResultRendering:
    def test_format_rows_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_rows(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, sep, 2 rows

    def test_format_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_json_roundtrip(self):
        res = ExperimentResult("EX", "t", "claim", rows=[{"x": 1.5}],
                               checks={"ok": True})
        data = json.loads(res.to_json())
        assert data["experiment"] == "EX"
        assert data["passed"] is True

    def test_passed_logic(self):
        good = ExperimentResult("E", "t", "c", checks={"a": True})
        bad = ExperimentResult("E", "t", "c", checks={"a": True, "b": False})
        empty = ExperimentResult("E", "t", "c")
        assert good.passed and not bad.passed and empty.passed

    def test_render_contains_verdicts(self):
        res = ExperimentResult("EX", "title", "claim",
                               checks={"thing": True, "other": False})
        text = res.render()
        assert "[PASS] thing" in text
        assert "[FAIL] other" in text


class TestQuickRuns:
    """Cheap experiments executed end-to-end in quick mode."""

    @pytest.mark.parametrize("name", ["F1", "F2", "F3", "F4"])
    def test_figures_pass(self, name):
        res = get_experiment(name)(quick=True)
        assert res.passed, res.render()

    def test_structure_passes(self):
        res = get_experiment("E2")(quick=True)
        assert res.passed, res.render()

    def test_table1_shootout_passes(self):
        res = get_experiment("E1")(quick=True)
        assert res.passed, res.render()
        # every scheme contributes a row with the three Table 1 columns
        schemes = {row["scheme"] for row in res.rows}
        assert len(schemes) == 8

    def test_tradeoff_passes(self):
        res = get_experiment("E6")(quick=True)
        assert res.passed, res.render()
        # the Δ sweep plus the chord / small-world / viceroy frontier rows
        schemes = [row["scheme"] for row in res.rows]
        assert "chord" in schemes and "small-world" in schemes

    def test_pathlen_passes(self):
        res = get_experiment("E3")(quick=True)
        assert res.passed, res.render()

    def test_congestion_passes(self):
        res = get_experiment("E4")(quick=True)
        assert res.passed, res.render()

    def test_permutation_passes(self):
        res = get_experiment("E5")(quick=True)
        assert res.passed, res.render()

    def test_flash_crowd_caching_passes(self):
        res = get_experiment("E7")(quick=True)
        assert res.passed, res.render()

    def test_multi_hotspot_caching_passes(self):
        res = get_experiment("E8")(quick=True)
        assert res.passed, res.render()

    def test_emulation_passes(self):
        res = get_experiment("E15")(quick=True)
        assert res.passed, res.render()

    def test_failstop_sweep_passes(self):
        res = get_experiment("E13")(quick=True)
        assert res.passed, res.render()

    def test_byzantine_sweep_passes(self):
        res = get_experiment("E14")(quick=True)
        assert res.passed, res.render()

    def test_runner_writes_json(self, tmp_path):
        results = run_experiments(["F1"], quick=True, out_dir=str(tmp_path),
                                  echo=False)
        assert (tmp_path / "F1.json").exists()
        assert results[0].passed


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "F4" in out

    def test_run_single(self, capsys):
        from repro.cli import main

        assert main(["run", "F2", "--quick"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_bench_baselines_writes_artifact(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "BENCH_baselines.json"
        rc = main(["bench-baselines", "--n", "64", "--lookups", "400",
                   "--scalar-sample", "60", "--schemes", "chord,koorde",
                   "--min-speedup", "0.01", "--json-out", str(out)])
        assert rc == 0
        assert "parity: PASS" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert set(payload["result"]["schemes"]) == {"chord", "koorde"}
        assert payload["result"]["all_parity_ok"] is True

    def test_bench_baselines_rejects_unknown_scheme(self, capsys):
        from repro.cli import main

        assert main(["bench-baselines", "--schemes", "nope"]) == 2

    def test_bench_compare_gate(self, capsys, tmp_path):
        from repro.cli import main

        ref = tmp_path / "refs"
        run = tmp_path / "run"
        ref.mkdir(), run.mkdir()
        payload = {"command": "bench-baselines", "ok": True,
                   "result": {"speedup": 10.0, "batch_rate": 1000.0,
                              "parity_ok": True}}
        (ref / "BENCH_x.json").write_text(json.dumps(payload))
        good = dict(payload, result=dict(payload["result"], speedup=8.0))
        (run / "BENCH_x.json").write_text(json.dumps(good))
        assert main(["bench-compare", "--run-dir", str(run),
                     "--ref-dir", str(ref)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

        # >30% throughput regression fails the gate
        bad = dict(payload, result=dict(payload["result"], speedup=6.0))
        (run / "BENCH_x.json").write_text(json.dumps(bad))
        assert main(["bench-compare", "--run-dir", str(run),
                     "--ref-dir", str(ref)]) == 1
        assert "regression" in capsys.readouterr().out

        # a parity flag flipping off fails even with throughput intact
        flip = dict(payload, result=dict(payload["result"], parity_ok=False))
        (run / "BENCH_x.json").write_text(json.dumps(flip))
        assert main(["bench-compare", "--run-dir", str(run),
                     "--ref-dir", str(ref)]) == 1
        assert "flag flipped" in capsys.readouterr().out

    def test_bench_compare_update_refs(self, capsys, tmp_path):
        from repro.cli import main

        ref = tmp_path / "refs"
        run = tmp_path / "run"
        run.mkdir()
        (run / "BENCH_x.json").write_text(json.dumps({"ok": True}))
        assert main(["bench-compare", "--run-dir", str(run),
                     "--ref-dir", str(ref), "--update-refs"]) == 0
        assert json.loads((ref / "BENCH_x.json").read_text()) == {"ok": True}

    def test_bench_compare_missing_run_artifact(self, capsys, tmp_path):
        from repro.cli import main

        ref = tmp_path / "refs"
        ref.mkdir()
        (ref / "BENCH_x.json").write_text(json.dumps({"ok": True}))
        assert main(["bench-compare", "--run-dir", str(tmp_path / "none"),
                     "--ref-dir", str(ref)]) == 1
        assert "MISSING" in capsys.readouterr().out
