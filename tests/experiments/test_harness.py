"""Tests for the experiment harness (registry, rendering, quick runs)."""

import json

import pytest

from repro.experiments.common import ExperimentResult, format_rows, get_experiment
from repro.experiments.runner import EXPERIMENT_IDS, run_experiments


class TestRegistry:
    def test_all_design_md_ids_registered(self):
        expected = {"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E10",
                    "E11", "E12", "E13", "E14", "E15",
                    "F1", "F2", "F3", "F4", "A1", "A2", "A3", "A4"}
        assert expected <= set(EXPERIMENT_IDS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("E999")

    def test_lookup_case_insensitive(self):
        assert get_experiment("e2") is get_experiment("E2")


class TestResultRendering:
    def test_format_rows_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_rows(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, sep, 2 rows

    def test_format_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_json_roundtrip(self):
        res = ExperimentResult("EX", "t", "claim", rows=[{"x": 1.5}],
                               checks={"ok": True})
        data = json.loads(res.to_json())
        assert data["experiment"] == "EX"
        assert data["passed"] is True

    def test_passed_logic(self):
        good = ExperimentResult("E", "t", "c", checks={"a": True})
        bad = ExperimentResult("E", "t", "c", checks={"a": True, "b": False})
        empty = ExperimentResult("E", "t", "c")
        assert good.passed and not bad.passed and empty.passed

    def test_render_contains_verdicts(self):
        res = ExperimentResult("EX", "title", "claim",
                               checks={"thing": True, "other": False})
        text = res.render()
        assert "[PASS] thing" in text
        assert "[FAIL] other" in text


class TestQuickRuns:
    """Cheap experiments executed end-to-end in quick mode."""

    @pytest.mark.parametrize("name", ["F1", "F2", "F3", "F4"])
    def test_figures_pass(self, name):
        res = get_experiment(name)(quick=True)
        assert res.passed, res.render()

    def test_structure_passes(self):
        res = get_experiment("E2")(quick=True)
        assert res.passed, res.render()

    def test_pathlen_passes(self):
        res = get_experiment("E3")(quick=True)
        assert res.passed, res.render()

    def test_congestion_passes(self):
        res = get_experiment("E4")(quick=True)
        assert res.passed, res.render()

    def test_permutation_passes(self):
        res = get_experiment("E5")(quick=True)
        assert res.passed, res.render()

    def test_flash_crowd_caching_passes(self):
        res = get_experiment("E7")(quick=True)
        assert res.passed, res.render()

    def test_multi_hotspot_caching_passes(self):
        res = get_experiment("E8")(quick=True)
        assert res.passed, res.render()

    def test_emulation_passes(self):
        res = get_experiment("E15")(quick=True)
        assert res.passed, res.render()

    def test_failstop_sweep_passes(self):
        res = get_experiment("E13")(quick=True)
        assert res.passed, res.render()

    def test_byzantine_sweep_passes(self):
        res = get_experiment("E14")(quick=True)
        assert res.passed, res.render()

    def test_runner_writes_json(self, tmp_path):
        results = run_experiments(["F1"], quick=True, out_dir=str(tmp_path),
                                  echo=False)
        assert (tmp_path / "F1.json").exists()
        assert results[0].passed


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "F4" in out

    def test_run_single(self, capsys):
        from repro.cli import main

        assert main(["run", "F2", "--quick"]) == 0
        assert "PASS" in capsys.readouterr().out
