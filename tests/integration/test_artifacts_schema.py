"""Artifact reproducibility + one shared schema for every ``--json-out``.

Two contracts every machine-readable artifact must honor:

* **Reproducibility** — ``repro.cli soak --seed S --json-out`` writes
  byte-identical files across runs (the scenario result is a pure
  function of its arguments; wall-clock keys are stripped).
* **Schema** — every ``bench-*``/``soak`` payload has the shared
  ``{"command": str, "ok": bool, "result": {...}}`` shape with
  JSON-native, NumPy-free, *finite* leaves (``NaN``/``Infinity`` are
  not strict JSON and break downstream parsers), validated by a
  hand-rolled checker (no external jsonschema dependency) over both the
  committed references in ``benchmarks/baselines/`` and freshly
  generated artifacts.
"""

import json
import math
import pathlib

import pytest

from repro.cli import main

REPO = pathlib.Path(__file__).resolve().parents[2]
BASELINES = sorted((REPO / "benchmarks" / "baselines").glob("BENCH_*.json"))

SOAK_ARGS = ["soak", "--n", "128", "--lookups", "2000", "--chunk", "1024",
             "--seed", "9", "--items", "6"]


@pytest.fixture(scope="module")
def soak_artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("soak") / "BENCH_soak.json"
    assert main(SOAK_ARGS + ["--json-out", str(path)]) == 0
    return path


class TestSoakReproducibility:
    def test_same_seed_writes_identical_bytes(self, soak_artifact, tmp_path):
        again = tmp_path / "again.json"
        assert main(SOAK_ARGS + ["--json-out", str(again)]) == 0
        assert again.read_bytes() == soak_artifact.read_bytes()

    def test_different_seed_differs(self, soak_artifact, tmp_path):
        other = tmp_path / "other.json"
        args = [a if a != "9" else "10" for a in SOAK_ARGS]
        assert main(args + ["--json-out", str(other)]) == 0
        assert other.read_bytes() != soak_artifact.read_bytes()

    def test_no_wall_clock_keys_in_artifact(self, soak_artifact):
        from repro.experiments.soak import NONDETERMINISTIC_KEYS

        payload = json.loads(soak_artifact.read_text())
        for key in NONDETERMINISTIC_KEYS:
            assert key not in payload["result"]


# --------------------------------------------------------------- the schema
def _strict_parse(path: pathlib.Path) -> dict:
    """Load rejecting the non-JSON constants Python's dumper tolerates."""
    def reject(token):
        raise AssertionError(
            f"{path.name}: non-JSON constant {token!r} in artifact")
    return json.loads(path.read_text(), parse_constant=reject)


def _check_leaves(value, where: str, problems: list) -> None:
    """Recursively require JSON-native containers and finite leaves."""
    if isinstance(value, dict):
        for k, v in value.items():
            if not isinstance(k, str):
                problems.append(f"{where}: non-string key {k!r}")
            else:
                _check_leaves(v, f"{where}.{k}", problems)
    elif isinstance(value, list):
        for i, v in enumerate(value):
            _check_leaves(v, f"{where}[{i}]", problems)
    elif isinstance(value, float):
        if not math.isfinite(value):
            problems.append(f"{where}: non-finite number {value!r}")
    elif value is not None and not isinstance(value, (str, bool, int)):
        problems.append(
            f"{where}: non-JSON-native leaf of type {type(value).__name__}")


def validate_artifact(path: pathlib.Path) -> dict:
    """The shared ``--json-out`` schema; returns the parsed payload."""
    payload = _strict_parse(path)
    problems: list = []
    if not isinstance(payload, dict):
        problems.append("top level is not an object")
    else:
        for key, typ in (("command", str), ("ok", bool), ("result", dict)):
            if key not in payload:
                problems.append(f"missing required key {key!r}")
            elif not isinstance(payload[key], typ) or (
                    typ is not bool and isinstance(payload[key], bool)):
                problems.append(
                    f"{key!r} is {type(payload[key]).__name__}, "
                    f"expected {typ.__name__}")
        if isinstance(payload.get("result"), dict):
            if not payload["result"]:
                problems.append("'result' is empty")
            _check_leaves(payload["result"], "result", problems)
    assert not problems, f"{path.name}: " + "; ".join(problems)
    # NumPy-safety double-check: a strict re-dump must round-trip
    assert json.loads(json.dumps(payload, allow_nan=False)) == payload
    return payload


class TestArtifactSchema:
    def test_committed_references_exist(self):
        assert len(BASELINES) >= 6

    @pytest.mark.parametrize("path", BASELINES, ids=lambda p: p.stem)
    def test_committed_reference_matches_schema(self, path):
        payload = validate_artifact(path)
        assert payload["ok"] is True  # references are committed green

    def test_fresh_soak_artifact_matches_schema(self, soak_artifact):
        payload = validate_artifact(soak_artifact)
        assert payload["command"] == "soak"
        assert payload["ok"] is True
        result = payload["result"]
        for key in ("invariants_ok", "healing_ok", "owners_ok", "merge_ok",
                    "cache_ok", "stats", "rows", "phases"):
            assert key in result

    def test_fresh_throughput_artifact_matches_schema(self, tmp_path):
        path = tmp_path / "BENCH_throughput.json"
        code = main(["bench-throughput", "--n", "128", "--lookups", "2000",
                     "--scalar-sample", "50", "--min-speedup", "0.1",
                     "--json-out", str(path)])
        assert code == 0
        assert validate_artifact(path)["command"] == "bench-throughput"

    def test_validator_rejects_malformed_payloads(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"command": "x", "ok": "yes",
                                   "result": {"v": 1}}))
        with pytest.raises(AssertionError, match="'ok' is str"):
            validate_artifact(bad)
        bad.write_text('{"command": "x", "ok": true, '
                       '"result": {"rate": NaN}}')
        with pytest.raises(AssertionError, match="non-JSON constant"):
            validate_artifact(bad)
        bad.write_text(json.dumps({"command": "x", "ok": True,
                                   "result": {}}))
        with pytest.raises(AssertionError, match="empty"):
            validate_artifact(bad)
