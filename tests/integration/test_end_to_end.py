"""Integration tests: complete workflows across subsystems.

Each test exercises a realistic end-to-end scenario combining several
modules, matching the example applications:

* DHT lifecycle: balanced joins → storage → routed retrieval → churn;
* flash crowd: routing + caching + epochs together;
* resilient storage: overlapping DHT + fault plans + both lookups;
* emulation on a live network's decomposition;
* asyncio fabric equivalence at integration scale.
"""

import math

import numpy as np

from repro.balance import BucketBalancer, MultipleChoice
from repro.core import (
    CacheSystem,
    CongestionCounter,
    DistanceHalvingNetwork,
    dh_lookup,
    fast_lookup,
)
from repro.emulation import DeBruijnFamily, GraphEmulator
from repro.faults import (
    OverlappingDHNetwork,
    random_byzantine,
    random_failstop,
    resistant_lookup,
    simple_lookup,
)
from repro.sim.asyncnet import run_async_lookups


class TestDHTLifecycle:
    def test_full_lifecycle(self):
        rng = np.random.default_rng(1)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(128, selector=MultipleChoice(t=4))

        # store a library of items
        for i in range(64):
            net.store_item(f"k{i}", i * i)

        # routed retrieval from random sources, both algorithms
        pts = list(net.points())
        for i in range(64):
            src = pts[int(rng.integers(net.n))]
            target = net.item_hash(f"k{i}")
            assert fast_lookup(net, src, target).owner == net.item_owner(f"k{i}").point
            assert dh_lookup(net, src, target, rng).owner == net.item_owner(f"k{i}").point

        # heavy churn, then everything still retrievable and smooth-ish
        for _ in range(100):
            victims = list(net.points())
            net.leave(victims[int(rng.integers(len(victims)))])
            net.join(selector=MultipleChoice(t=4))
        net.check_invariants()
        for i in range(64):
            assert net.get_item(f"k{i}") == i * i
        assert net.edge_count() <= 3 * net.n - 1

    def test_degree_stays_constant_through_growth(self):
        rng = np.random.default_rng(2)
        net = DistanceHalvingNetwork(rng=rng)
        maxima = []
        for stage in range(4):
            net.populate(64, selector=MultipleChoice(t=4))
            maxima.append(net.max_out_degree())
        assert max(maxima) <= 10  # constant-degree DHT across 64..256


class TestFlashCrowdScenario:
    def test_caching_protects_owner_under_mixed_load(self):
        rng = np.random.default_rng(3)
        net = DistanceHalvingNetwork(rng=rng)
        n = 128
        net.populate(n, selector=MultipleChoice(t=4))
        cache = CacheSystem(net, threshold=int(math.log2(n)))
        pts = list(net.points())
        # mixed demand: one viral item + background uniform items
        for k in range(2 * n):
            src = pts[int(rng.integers(n))]
            item = "viral" if k % 2 == 0 else f"bg{k}"
            cache.request(item, src, rng)
        max_hits = max(cache.cache_hits.values())
        assert max_hits <= 8 * math.log2(n) ** 2
        # epochs pass without demand: viral tree collapses, bg unaffected
        cache.advance_epoch()
        cache.advance_epoch()
        assert cache.tree_for("viral").size() == 1

    def test_cache_correct_after_churn(self):
        """Caching keeps serving while servers join (tree positions are
        re-resolved against the live decomposition on every request)."""
        rng = np.random.default_rng(4)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(64, selector=MultipleChoice(t=4))
        cache = CacheSystem(net, threshold=3)
        pts = list(net.points())
        for k in range(50):
            cache.request("hot", pts[int(rng.integers(len(pts)))], rng)
            if k % 10 == 9:
                net.join(selector=MultipleChoice(t=4))
                pts = list(net.points())
        assert cache.requests_served == 50


class TestResilientStorageScenario:
    def test_storage_survives_failures_and_liars(self):
        """Combined adversity within the theorem's regime: the cover sets
        (scaled up ×1.5, the paper's 'adjust the q values' remark) keep an
        honest alive majority at 10% fail-stop + 5% liars."""
        rng = np.random.default_rng(5)
        net = OverlappingDHNetwork(256, rng, coverage_factor=1.5)
        for i in range(16):
            net.store_item(f"block{i}", i)
        fs = random_failstop(net.points, 0.10, rng)
        byz = random_byzantine(net.points, 0.05, rng)
        byz.failed = fs.failed  # one plan carrying both behaviours
        ok = tot = 0
        for i in range(0, 256, 16):
            src = net.points[i]
            if not byz.is_alive(src):
                continue
            for b in ("block0", "block7"):
                res = resistant_lookup(net, src, b, byz)
                ok += res.success
                tot += 1
        assert tot >= 10
        assert ok / tot >= 0.9

    def test_simple_lookup_distributes_load(self):
        """Random alive-cover choice spreads load over the replica sets."""
        rng = np.random.default_rng(6)
        net = OverlappingDHNetwork(128, rng)
        net.store_item("doc", 1)
        from collections import Counter

        holders = Counter()
        for i in range(128):
            res = simple_lookup(net, net.points[i], "doc", rng)
            holders[res.servers[-1]] += 1
        # many distinct final holders (not always the same replica)
        assert len(holders) >= 3


class TestEmulationOnLiveNetwork:
    def test_emulate_debruijn_over_dht_decomposition(self):
        """§7 applied to the DHT's own segment map: compute a guest round."""
        rng = np.random.default_rng(7)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(100, selector=MultipleChoice(t=4))
        em = GraphEmulator(net.segments, DeBruijnFamily())
        assert all(em.check_properties().values())
        values = {u: float(rng.random()) for u in range(1 << em.k)}
        out = em.emulate_round(values)
        assert len(out) == 1 << em.k

    def test_emulation_tracks_churn(self):
        rng = np.random.default_rng(8)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(64, selector=MultipleChoice(t=4))
        em = GraphEmulator(net.segments, DeBruijnFamily(), k=6)
        before = {p: em.guests_of(p) for p in net.points()}
        newcomer = net.join(selector=MultipleChoice(t=4))
        # guests are re-derived from the live decomposition: the newcomer
        # takes over some guests, everyone else's sets only shrink/stay
        after_total = sorted(
            g for p in net.points() for g in em.guests_of(p)
        )
        assert after_total == list(range(64))


class TestAsyncIntegration:
    def test_async_batch_matches_reference(self):
        rng = np.random.default_rng(9)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(96, selector=MultipleChoice(t=4))
        pts = list(net.points())
        queries, taus, expected = [], [], []
        for _ in range(40):
            src = pts[int(rng.integers(net.n))]
            tgt = float(rng.random())
            tau = [int(d) for d in rng.integers(0, 2, size=64)]
            queries.append((src, tgt))
            taus.append(tau)
            expected.append(dh_lookup(net, src, tgt, rng, tau=tau).server_path)
        got = run_async_lookups(net, queries, np.random.default_rng(10), taus=taus)
        assert got == expected


class TestBucketBalancedDHT:
    def test_bucket_positions_drive_a_dht(self):
        """Rebuild a DHT from the bucket balancer's smooth positions —
        the §4.1 scheme produces decompositions the §2 bounds like."""
        rng = np.random.default_rng(11)
        bb = BucketBalancer(rebalance_threshold=3.0)
        handles = [bb.join(rng) for _ in range(300)]
        rng.shuffle(handles)
        for h in handles[:150]:
            bb.leave(h, rng)
        net = DistanceHalvingNetwork()
        for p in bb.segments.points:
            net.join(p)
        rho = net.smoothness()
        assert net.max_out_degree() <= rho + 4
        counter = CongestionCounter()
        pts = list(net.points())
        for _ in range(200):
            src = pts[int(rng.integers(net.n))]
            counter.record(fast_lookup(net, src, float(rng.random())))
        assert counter.max_congestion() <= 20 * math.log2(net.n) / net.n
