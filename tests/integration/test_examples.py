"""Smoke tests: every example application runs to completion.

The examples are part of the public deliverable; each must execute
standalone and print its scenario's verdicts without raising.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least three examples"
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
