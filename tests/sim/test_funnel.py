"""Tests for the funnel (adversarial) workload generator."""

import math
from fractions import Fraction

import numpy as np

from repro.core import CongestionCounter, DistanceHalvingNetwork, fast_lookup
from repro.sim.workload import funnel_workload


class TestFunnelWorkload:
    def test_targets_valid(self):
        rng = np.random.default_rng(0)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(64)
        pairs = funnel_workload(net, c=0.37, depth=3)
        assert len(pairs) == 64
        assert all(0 <= t < 1 for _, t in pairs)
        assert [s for s, _ in pairs] == list(net.points())

    def test_concentrates_deterministic_routing_on_grid(self):
        """On the exact De Bruijn ids the funnel pushes a constant fraction
        of all fast-lookup paths through one server."""
        n = 256
        net = DistanceHalvingNetwork()
        for i in range(n):
            net.join(Fraction(i, n))
        pairs = funnel_workload(net, c=0.371, depth=4)
        counter = CongestionCounter()
        for s, t in pairs:
            counter.record(fast_lookup(net, float(s), t))
        # hotspot server absorbs far more than the O(log n) fair share
        assert counter.max_load() >= 4 * math.log2(n)

    def test_verified_alignment_mostly_succeeds(self):
        """Most sources find a self-consistent target through c."""
        n = 128
        net = DistanceHalvingNetwork()
        for i in range(n):
            net.join(Fraction(i, n))
        c = 0.371
        pairs = funnel_workload(net, c=c, depth=4)
        aligned = 0
        for s, t in pairs:
            res = fast_lookup(net, float(s), t)
            aligned += any(abs(q - c) < 1e-9 for q in res.continuous_path)
        assert aligned >= n // 3
