"""The streaming soak scenario engine and its invariant checker."""

import json

import numpy as np
import pytest

from repro.sim.scenario import (
    DEFAULT_PHASES,
    Phase,
    ScenarioEngine,
    SoakStats,
    parse_phases,
)


class TestParsePhases:
    def test_default_script_has_at_least_six_phases(self):
        phases = parse_phases(DEFAULT_PHASES)
        assert len(phases) >= 6
        assert {ph.kind for ph in phases} >= {
            "lookups", "churn", "flash", "failstop", "byzantine",
            "rebalance", "mass"}

    def test_args_parse(self):
        phases = parse_phases("lookups:5000, churn:64 ,mass:0.5")
        assert phases == [Phase("lookups", 5000.0), Phase("churn", 64.0),
                          Phase("mass", 0.5)]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown phase"):
            parse_phases("lookups,teleport")

    def test_negative_arg_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            parse_phases("churn:-3")

    def test_empty_script_rejected(self):
        with pytest.raises(ValueError, match="no phases"):
            parse_phases(" , ")


class TestSoakStats:
    def test_fresh_stats_are_empty(self):
        s = SoakStats()
        assert s.lookups == 0 and s.total_requests == 0
        assert s.mean_hops() == 0.0
        summary = s.summary(16)
        assert summary["total_requests"] == 0.0
        assert summary["ft_success_rate"] == 1.0

    def test_merge_is_exact_and_associative(self):
        a, b, c = SoakStats(), SoakStats(), SoakStats()
        a.hop_hist = np.array([1, 2], dtype=np.int64)
        b.hop_hist = np.array([0, 1, 5], dtype=np.int64)
        c.hop_hist = np.array([3], dtype=np.int64)
        a.churn_ops, b.ft_pairs, c.cache_requests = 7, 3, 9
        b.ft_successes = 2
        a.observe_network(100, 2.5)
        b.observe_network(80, 4.0)
        left = SoakStats().merge(a).merge(b).merge(c)
        inner = SoakStats().merge(b).merge(c)
        right = SoakStats().merge(a).merge(inner)
        assert left.equals(right)
        assert left.hop_hist.tolist() == [4, 3, 5]
        assert left.n_min == 80 and left.n_max == 100
        assert left.smoothness_max == 4.0

    def test_equals_detects_tampering(self):
        a = SoakStats()
        a.hop_hist = np.array([1, 1], dtype=np.int64)
        b = a.snapshot()
        assert a.equals(b)
        b.hop_hist[0] += 1
        assert not a.equals(b)
        c = a.snapshot()
        c.ft_messages += 1
        assert not a.equals(c)

    def test_snapshot_is_independent(self):
        a = SoakStats()
        a.hop_hist = np.array([2], dtype=np.int64)
        snap = a.snapshot()
        a.hop_hist[0] = 99
        a.churn_ops = 5
        assert snap.hop_hist.tolist() == [2]
        assert snap.churn_ops == 0

    def test_summary_is_json_native(self):
        s = SoakStats()
        s.hop_hist = np.array([0, 4], dtype=np.int64)
        s.ft_pairs, s.ft_successes = 4, 3
        payload = s.summary(8)
        json.dumps(payload)  # raises on any NumPy scalar
        assert all(isinstance(v, (int, float)) and not hasattr(v, "dtype")
                   for v in payload.values())
        assert payload["ft_success_rate"] == 0.75
        assert payload["mean_hops"] == 1.0


class SmallSoak:
    """Shared tiny scenario (one network build per test class)."""

    N = 128
    LOOKUPS = 6000
    CHUNK = 2048


class TestScenarioEngine(SmallSoak):
    @pytest.fixture(scope="class")
    def result(self):
        eng = ScenarioEngine(n=self.N, lookups=self.LOOKUPS,
                             chunk=self.CHUNK, seed=11, items=8)
        return eng.run(), eng

    def test_full_default_scenario_passes_invariants(self, result):
        res, eng = result
        assert res["invariants_ok"]
        assert res["owners_ok"] and res["merge_ok"]
        assert res["healing_ok"] and res["cache_ok"]
        assert res["invariant_checks"] == len(res["invariants"])
        # one audit batch per phase, each with >= 4 checks
        assert res["invariant_checks"] >= 4 * len(res["rows"])

    def test_lookup_budget_is_spent(self, result):
        res, eng = result
        routed = sum(row["lookups"] for row in res["rows"])
        assert routed == self.LOOKUPS
        assert res["total_requests"] >= self.LOOKUPS
        assert res["total_requests"] == eng.total.total_requests

    def test_rows_cover_every_phase(self, result):
        res, _ = result
        assert [r["phase"].split(":")[1] for r in res["rows"]] \
            == res["phases"]
        assert len(res["phases"]) >= 6

    def test_memory_stays_chunk_bounded(self, result):
        """The accumulator never holds per-request state: its arrays are
        O(servers + max hops), not O(requests)."""
        res, eng = result
        n_max = eng.total.n_max
        assert eng.total.route._points.size <= n_max
        assert eng.total.cache._points.size <= n_max
        assert eng.total.hop_hist.size <= 64
        assert res["stats"]["route_lookups"] == self.LOOKUPS

    def test_result_is_json_safe(self, result):
        res, _ = result
        json.dumps(res)

    def test_explicit_phase_args_are_honored(self):
        eng = ScenarioEngine(n=self.N, lookups=self.LOOKUPS,
                             chunk=self.CHUNK, seed=3, items=6)
        res = eng.run("lookups:1000,churn:32,lookups:500,"
                      "failstop:0.2,rebalance:16,mass:0.25")
        rows = res["rows"]
        assert rows[0]["lookups"] == 1000
        assert rows[1]["churn_ops"] == 32
        assert rows[2]["lookups"] == 500
        assert rows[4]["churn_ops"] == 16
        assert res["invariants_ok"]

    def test_seed_determinism(self):
        def run():
            eng = ScenarioEngine(n=self.N, lookups=2000, chunk=1024,
                                 seed=7, items=6)
            return eng.run("lookups,churn:24,flash:2000,failstop:0.3")
        a, b = run(), run()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_different_seeds_differ(self):
        def run(seed):
            eng = ScenarioEngine(n=self.N, lookups=2000, chunk=1024,
                                 seed=seed, items=6)
            return eng.run("lookups,churn:24")
        assert json.dumps(run(1)["stats"]) != json.dumps(run(2)["stats"])


class TestInvariantChecker(SmallSoak):
    def make_engine(self, strict=True):
        return ScenarioEngine(n=self.N, lookups=1000, chunk=512,
                              seed=19, items=6, strict=strict)

    def test_detects_corrupted_share(self):
        eng = self.make_engine(strict=False)
        eng.run("lookups,failstop:0.1")
        key = eng.store.keys()[0]
        item = eng.store._items[key]
        srv, (idx, payload) = next(iter(item.share_at.items()))
        item.share_at[srv] = (idx, bytes([payload[0] ^ 0xFF]) + payload[1:])
        rows = eng.check_invariants("tampered")
        erasure = [r for r in rows if r["check"] == "erasure"]
        assert erasure and not erasure[0]["ok"]

    def test_detects_tampered_totals(self):
        eng = self.make_engine(strict=False)
        eng.run("lookups,churn:16")
        eng.total.churn_ops += 1  # booked op that no snapshot carries
        rows = eng.check_invariants("tampered")
        merge = [r for r in rows if r["check"] == "merge"]
        assert merge and not merge[0]["ok"]

    def test_detects_malformed_cache_tree(self):
        eng = self.make_engine(strict=False)
        eng.run("flash:2000")
        cache = eng._last_cache_engine
        assert cache is not None
        cache._depths = cache._depths + 1  # roots no longer at depth 0
        rows = eng.check_invariants("tampered")
        bad = [r for r in rows if r["check"] == "cache"]
        assert bad and not bad[0]["ok"]

    def test_strict_mode_raises(self):
        eng = self.make_engine(strict=True)
        eng.run("lookups")
        eng.total.churn_ops += 1
        with pytest.raises(AssertionError, match="merge"):
            eng.check_invariants("tampered")

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError, match="n >= 16"):
            ScenarioEngine(n=4)
