"""Tests for workload generators, churn driver, metrics and rng helpers."""

import math

import numpy as np
import pytest

from repro.core import DistanceHalvingNetwork
from repro.sim import (
    ChurnTrace,
    bit_reversal_permutation,
    log_slope,
    loglog_slope,
    random_pairs,
    random_permutation,
    root_rng,
    run_churn,
    shift_permutation,
    single_hotspot_demands,
    spawn_many,
    summarize,
    uniform_points,
    zipf_demands,
)


class TestWorkloads:
    def test_uniform_points_range(self):
        pts = uniform_points(np.random.default_rng(0), 1000)
        assert len(pts) == 1000
        assert ((0 <= pts) & (pts < 1)).all()

    def test_random_pairs_sources_are_servers(self):
        rng = np.random.default_rng(1)
        servers = [0.1, 0.4, 0.9]
        pairs = random_pairs(servers, rng, 50)
        assert all(s in servers for s, _ in pairs)

    def test_random_permutation_is_permutation(self):
        rng = np.random.default_rng(2)
        servers = list(np.random.default_rng(0).random(32))
        pairs = random_permutation(servers, rng)
        targets = [t for _, t in pairs]
        assert sorted(targets) == sorted(servers)

    def test_bit_reversal_structure(self):
        servers = [(i + 0.01) / 16 for i in range(16)]
        pairs = bit_reversal_permutation(servers)
        # server at 0.25 + eps (binary 0100) targets bucket 0010 = 2/16
        src, tgt = pairs[4]
        assert abs(tgt - (2 + 0.5) / 16) < 1e-9

    def test_shift_permutation_wraps(self):
        pairs = shift_permutation([0.9], shift=0.2)
        assert pairs[0][1] == pytest.approx(0.1)

    def test_zipf_demands_sum(self):
        q = zipf_demands(100, 1000, np.random.default_rng(3))
        assert sum(q) == 1000
        assert q[0] > q[-1]  # head is hot

    def test_single_hotspot(self):
        q = single_hotspot_demands(10, 500, hot_index=3)
        assert q[3] == 500 and sum(q) == 500


class TestChurn:
    def test_trace_generation_counts(self):
        trace = ChurnTrace.generate(np.random.default_rng(4), steps=100, leave_prob=0.0)
        assert all(op.kind == "join" for op in trace.ops)

    def test_mass_departure_shape(self):
        trace = ChurnTrace.mass_departure(np.random.default_rng(5), n=100, fraction=0.5)
        joins = sum(1 for op in trace.ops if op.kind == "join")
        leaves = sum(1 for op in trace.ops if op.kind == "leave")
        assert joins == 100 and leaves == 50

    def test_run_churn_reports(self):
        rng = np.random.default_rng(6)
        net = DistanceHalvingNetwork(rng=rng)
        trace = ChurnTrace.generate(rng, steps=120, leave_prob=0.3)
        report = run_churn(net, trace, rng, sample_every=4)
        assert report.final_n == net.n
        assert report.final_n > 0
        assert len(report.smoothness_series) > 0

    def test_join_leave_touches_constant_servers(self):
        """§1 'cost of join/leave': only O(degree) servers change state."""
        rng = np.random.default_rng(7)
        net = DistanceHalvingNetwork(rng=rng)
        trace = ChurnTrace.generate(rng, steps=150, leave_prob=0.3, warmup=64)
        report = run_churn(net, trace, rng, sample_every=2)
        # the affected set is the neighbourhood of the touched segment:
        # bounded by the degree bound ρ+4 + ⌈2ρ⌉+1 + ring ≈ O(ρ)
        assert report.max_touched() <= 40
        assert report.mean_touched() <= 15


class TestMetrics:
    def test_summarize(self):
        s = summarize([1, 2, 3, 4, 100])
        assert s.count == 5
        assert s.max == 100
        assert s.p50 == 3

    def test_summarize_empty(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.mean)

    def test_loglog_slope_recovers_power(self):
        xs = [2**k for k in range(4, 10)]
        ys = [x**0.5 * 3 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(0.5, abs=1e-9)

    def test_log_slope_recovers_log_coefficient(self):
        xs = [2**k for k in range(4, 10)]
        ys = [2.5 * math.log2(x) + 1 for x in xs]
        assert log_slope(xs, ys) == pytest.approx(2.5, abs=1e-9)

    def test_slopes_need_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])
        with pytest.raises(ValueError):
            log_slope([1], [1])


class TestRng:
    def test_root_reproducible(self):
        a, b = root_rng(7), root_rng(7)
        assert a.random() == b.random()

    def test_spawn_many_independent(self):
        gens = spawn_many(3, 4)
        vals = [g.random() for g in gens]
        assert len(set(vals)) == 4

    def test_spawn_many_reproducible(self):
        v1 = [g.random() for g in spawn_many(11, 3)]
        v2 = [g.random() for g in spawn_many(11, 3)]
        assert v1 == v2
