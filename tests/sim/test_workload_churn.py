"""Tests for workload generators, churn driver, metrics and rng helpers."""

import math

import numpy as np
import pytest

from repro.core import DistanceHalvingNetwork
from repro.sim import (
    ChurnOp,
    ChurnTrace,
    bit_reversal_permutation,
    log_slope,
    loglog_slope,
    random_pairs,
    random_permutation,
    root_rng,
    run_churn,
    shift_permutation,
    single_hotspot_demands,
    spawn_many,
    summarize,
    uniform_points,
    zipf_demands,
)


class TestWorkloads:
    def test_uniform_points_range(self):
        pts = uniform_points(np.random.default_rng(0), 1000)
        assert len(pts) == 1000
        assert ((0 <= pts) & (pts < 1)).all()

    def test_random_pairs_sources_are_servers(self):
        rng = np.random.default_rng(1)
        servers = [0.1, 0.4, 0.9]
        pairs = random_pairs(servers, rng, 50)
        assert all(s in servers for s, _ in pairs)

    def test_random_permutation_is_permutation(self):
        rng = np.random.default_rng(2)
        servers = list(np.random.default_rng(0).random(32))
        pairs = random_permutation(servers, rng)
        targets = [t for _, t in pairs]
        assert sorted(targets) == sorted(servers)

    def test_bit_reversal_structure(self):
        servers = [(i + 0.01) / 16 for i in range(16)]
        pairs = bit_reversal_permutation(servers)
        # server at 0.25 + eps (binary 0100) targets bucket 0010 = 2/16
        src, tgt = pairs[4]
        assert abs(tgt - (2 + 0.5) / 16) < 1e-9

    def test_shift_permutation_wraps(self):
        pairs = shift_permutation([0.9], shift=0.2)
        assert pairs[0][1] == pytest.approx(0.1)

    def test_zipf_demands_sum(self):
        q = zipf_demands(100, 1000, np.random.default_rng(3))
        assert sum(q) == 1000
        assert q[0] > q[-1]  # head is hot

    def test_single_hotspot(self):
        q = single_hotspot_demands(10, 500, hot_index=3)
        assert q[3] == 500 and sum(q) == 500


class TestChurn:
    def test_trace_generation_counts(self):
        trace = ChurnTrace.generate(np.random.default_rng(4), steps=100, leave_prob=0.0)
        assert all(op.kind == "join" for op in trace.ops)

    def test_mass_departure_shape(self):
        trace = ChurnTrace.mass_departure(np.random.default_rng(5), n=100, fraction=0.5)
        joins = sum(1 for op in trace.ops if op.kind == "join")
        leaves = sum(1 for op in trace.ops if op.kind == "leave")
        assert joins == 100 and leaves == 50

    def test_run_churn_reports(self):
        rng = np.random.default_rng(6)
        net = DistanceHalvingNetwork(rng=rng)
        trace = ChurnTrace.generate(rng, steps=120, leave_prob=0.3)
        report = run_churn(net, trace, rng, sample_every=4)
        assert report.final_n == net.n
        assert report.final_n > 0
        assert len(report.smoothness_series) > 0

    def test_join_leave_touches_constant_servers(self):
        """§1 'cost of join/leave': only O(degree) servers change state."""
        rng = np.random.default_rng(7)
        net = DistanceHalvingNetwork(rng=rng)
        trace = ChurnTrace.generate(rng, steps=150, leave_prob=0.3, warmup=64)
        report = run_churn(net, trace, rng, sample_every=2)
        # the affected set is the neighbourhood of the touched segment:
        # bounded by the degree bound ρ+4 + ⌈2ρ⌉+1 + ring ≈ O(ρ)
        assert report.max_touched() <= 40
        assert report.mean_touched() <= 15

    def test_on_op_hook_sees_every_operation(self):
        rng = np.random.default_rng(8)
        net = DistanceHalvingNetwork(rng=rng)
        trace = ChurnTrace.generate(rng, steps=40, leave_prob=0.3)
        seen = []
        run_churn(net, trace, rng, on_op=lambda step, op: seen.append((step, op.kind)))
        assert len(seen) == len(trace.ops)
        assert [s for s, _ in seen] == list(range(len(trace.ops)))
        assert {k for _, k in seen} <= {"join", "leave"}


class TestMeasuredRegionFollowsSelector:
    """Regression: with a selector, the measured affected region must be
    the neighbourhood of the point the join actually lands on — not a
    throwaway uniform probe's neighbourhood (the old bug)."""

    POINTS = [0.05, 0.1, 0.15, 0.2, 0.25, 0.5, 0.55, 0.6, 0.9, 0.95]
    LANDING = 0.93

    @staticmethod
    def _build(points):
        net = DistanceHalvingNetwork(rng=np.random.default_rng(0))
        for p in points:
            net.join(p)
        return net

    def _oracle_touched(self):
        """Touched count computed around the actual landing point."""
        net = self._build(self.POINTS)
        owner = net.segments.cover_point(self.LANDING)
        region = [owner] + net.neighbor_points(owner)
        before = {q: frozenset(net.neighbor_points(q)) for q in region}
        net.join(point=self.LANDING)
        return sum(
            1 for q, b in before.items()
            if q not in net.servers or frozenset(net.neighbor_points(q)) != b
        )

    def test_touched_measured_around_actual_join_point(self):
        net = self._build(self.POINTS)
        selector = lambda _net, _rng: self.LANDING  # noqa: E731
        trace = ChurnTrace(ops=[ChurnOp("join")])
        report = run_churn(net, trace, np.random.default_rng(123),
                           selector=selector, sample_every=1)
        assert self.LANDING in net.servers  # the selector chose the id
        assert report.touched_per_op == [self._oracle_touched()]

    def test_selector_receives_driver_rng(self):
        net = self._build(self.POINTS)
        calls = []

        def selector(net_arg, rng_arg):
            calls.append((net_arg, rng_arg))
            return float(rng_arg.random())

        trace = ChurnTrace(ops=[ChurnOp("join")])
        rng = np.random.default_rng(55)
        expected = float(np.random.default_rng(55).random())
        run_churn(net, trace, rng, selector=selector, sample_every=1)
        assert len(calls) == 1 and calls[0][0] is net
        assert expected in (float(p) for p in net.points())


class TestChurnReproducibility:
    """Identical seeds must yield identical traces and pinned statistics
    (the bit-reproducibility contract every experiment relies on)."""

    def test_generate_identical_across_invocations(self):
        a = ChurnTrace.generate(np.random.default_rng(42), steps=300,
                                leave_prob=0.4, warmup=8)
        b = ChurnTrace.generate(np.random.default_rng(42), steps=300,
                                leave_prob=0.4, warmup=8)
        assert a.ops == b.ops
        c = ChurnTrace.generate(np.random.default_rng(43), steps=300,
                                leave_prob=0.4, warmup=8)
        assert a.ops != c.ops

    def test_mass_departure_identical_across_invocations(self):
        a = ChurnTrace.mass_departure(np.random.default_rng(9), n=200,
                                      fraction=0.5)
        b = ChurnTrace.mass_departure(np.random.default_rng(9), n=200,
                                      fraction=0.5)
        assert a.ops == b.ops
        assert sum(op.kind == "leave" for op in a.ops) == 100

    @staticmethod
    def _pinned_run():
        rng = np.random.default_rng(2026)
        net = DistanceHalvingNetwork(rng=rng)
        trace = ChurnTrace.generate(rng, steps=200, leave_prob=0.35,
                                    warmup=32)
        return run_churn(net, trace, rng, sample_every=4)

    def test_report_statistics_pinned_for_fixed_seed(self):
        report = self._pinned_run()
        assert report.final_n == 100
        assert len(report.touched_per_op) == 57
        assert report.touched_per_op[:10] == [4, 3, 12, 4, 11, 6, 5, 5, 5, 6]
        assert report.max_touched() == 21
        assert report.mean_touched() == pytest.approx(7.631578947368421,
                                                      rel=1e-12)
        assert report.final_smoothness() == pytest.approx(224.93698544694962,
                                                          rel=1e-12)

    def test_report_identical_across_invocations(self):
        a, b = self._pinned_run(), self._pinned_run()
        assert a.touched_per_op == b.touched_per_op
        assert a.smoothness_series == b.smoothness_series
        assert a.final_n == b.final_n


class TestMetrics:
    def test_summarize(self):
        s = summarize([1, 2, 3, 4, 100])
        assert s.count == 5
        assert s.max == 100
        assert s.p50 == 3

    def test_summarize_empty(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.mean)

    def test_loglog_slope_recovers_power(self):
        xs = [2**k for k in range(4, 10)]
        ys = [x**0.5 * 3 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(0.5, abs=1e-9)

    def test_log_slope_recovers_log_coefficient(self):
        xs = [2**k for k in range(4, 10)]
        ys = [2.5 * math.log2(x) + 1 for x in xs]
        assert log_slope(xs, ys) == pytest.approx(2.5, abs=1e-9)

    def test_slopes_need_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])
        with pytest.raises(ValueError):
            log_slope([1], [1])


class TestRng:
    def test_root_reproducible(self):
        a, b = root_rng(7), root_rng(7)
        assert a.random() == b.random()

    def test_spawn_many_independent(self):
        gens = spawn_many(3, 4)
        vals = [g.random() for g in gens]
        assert len(set(vals)) == 4

    def test_spawn_many_reproducible(self):
        v1 = [g.random() for g in spawn_many(11, 3)]
        v2 = [g.random() for g in spawn_many(11, 3)]
        assert v1 == v2
