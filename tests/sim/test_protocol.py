"""Tests for the message-level lookup protocol (iterative vs recursive)."""

import math

import numpy as np
import pytest

from repro.balance import MultipleChoice
from repro.core import DistanceHalvingNetwork
from repro.sim.protocol import build_protocol_network, run_protocol_lookup


@pytest.fixture(scope="module")
def net():
    rng = np.random.default_rng(0)
    n = DistanceHalvingNetwork(rng=rng)
    n.populate(64, selector=MultipleChoice(t=4))
    return n


@pytest.fixture()
def sim(net):
    return build_protocol_network(net)


class TestRecursive:
    def test_reaches_owner(self, net, sim):
        rng = np.random.default_rng(1)
        pts = list(net.points())
        for k in range(40):
            src = pts[int(rng.integers(net.n))]
            tgt = float(rng.random())
            out = run_protocol_lookup(sim, net, src, tgt, rng, "recursive", k)
            assert out.done
            assert out.owner == net.segments.cover_point(tgt)

    def test_message_count_is_hops_plus_reply(self, net, sim):
        rng = np.random.default_rng(2)
        src = list(net.points())[3]
        out = run_protocol_lookup(sim, net, src, 0.77, rng, "recursive")
        assert out.messages == out.hops + 2  # inject + forwards + reply

    def test_hop_bound(self, net, sim):
        rng = np.random.default_rng(3)
        pts = list(net.points())
        rho = net.smoothness()
        bound = 2 * math.log2(net.n) + 2 * math.log2(rho) + 2
        for k in range(30):
            src = pts[int(rng.integers(net.n))]
            out = run_protocol_lookup(sim, net, src, float(rng.random()), rng,
                                      "recursive", k)
            assert out.hops <= bound


class TestIterative:
    def test_reaches_owner(self, net, sim):
        rng = np.random.default_rng(4)
        pts = list(net.points())
        for k in range(40):
            src = pts[int(rng.integers(net.n))]
            tgt = float(rng.random())
            out = run_protocol_lookup(sim, net, src, tgt, rng, "iterative", k)
            assert out.done
            assert out.owner == net.segments.cover_point(tgt)

    def test_costs_about_double_messages(self, net, sim):
        """Footnote 1's iterative-vs-recursive difference, measured."""
        rng = np.random.default_rng(5)
        pts = list(net.points())
        rec = it = 0
        for k in range(40):
            src = pts[int(rng.integers(net.n))]
            tgt = float(rng.random())
            rec += run_protocol_lookup(sim, net, src, tgt, rng, "recursive", k).messages
            it += run_protocol_lookup(sim, net, src, tgt, rng, "iterative", k).messages
        assert it >= 1.5 * rec

    def test_requester_observes_every_step(self, net, sim):
        rng = np.random.default_rng(6)
        src = list(net.points())[7]
        out = run_protocol_lookup(sim, net, src, 0.123, rng, "iterative")
        # iterative path records each probed server exactly once per step
        assert len(out.path) == out.hops + 1


class TestTransportEffects:
    def test_latency_accumulates(self, net):
        slow = build_protocol_network(net, latency=lambda a, b: 5.0)
        rng = np.random.default_rng(7)
        src = list(net.points())[2]
        out = run_protocol_lookup(slow, net, src, 0.9, rng, "recursive")
        assert out.done
        assert out.completed_at >= 5.0 * (out.hops + 1)

    def test_style_validation(self, net, sim):
        rng = np.random.default_rng(8)
        with pytest.raises(ValueError):
            run_protocol_lookup(sim, net, 0.1, 0.2, rng, style="bogus")

    def test_failed_node_stalls_lookup(self, net):
        """Fail-stop without the §6 overlap: the lookup simply dies —
        motivating the overlapping construction."""
        sim = build_protocol_network(net)
        rng = np.random.default_rng(9)
        pts = list(net.points())
        src = pts[0]
        # fail the owner of the target
        tgt = 0.555
        sim.fail(net.segments.cover_point(tgt))
        out = run_protocol_lookup(sim, net, src, tgt, rng, "recursive")
        assert not out.done
