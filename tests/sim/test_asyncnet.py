"""Tests for the asyncio runtime: asynchrony must not change routing.

Paper footnote 4: the analysis carries no synchrony assumption; here we
check the asyncio-routed paths coincide with the deterministic reference
when the random digit strings are pinned.
"""

import numpy as np
import pytest

from repro.core import DistanceHalvingNetwork, dh_lookup
from repro.sim.asyncnet import run_async_lookups


@pytest.fixture(scope="module")
def net():
    rng = np.random.default_rng(99)
    n = DistanceHalvingNetwork(rng=rng)
    n.populate(64)
    return n


class TestAsyncLookups:
    def test_paths_end_at_owner(self, net):
        rng = np.random.default_rng(1)
        pts = list(net.points())
        queries = [(pts[int(rng.integers(64))], float(rng.random())) for _ in range(20)]
        paths = run_async_lookups(net, queries, rng)
        for (src, tgt), path in zip(queries, paths):
            assert path[-1] == net.segments.cover_point(tgt)

    def test_matches_deterministic_reference(self, net):
        """Same τ ⇒ same server path as repro.core.lookup.dh_lookup."""
        rng = np.random.default_rng(2)
        pts = list(net.points())
        queries = []
        taus = []
        expected = []
        for _ in range(15):
            src = pts[int(rng.integers(64))]
            tgt = float(rng.random())
            tau = [int(d) for d in rng.integers(0, 2, size=64)]
            res = dh_lookup(net, src, tgt, rng, tau=tau)
            queries.append((src, tgt))
            taus.append(tau)
            expected.append(res.server_path)
        paths = run_async_lookups(net, queries, np.random.default_rng(3), taus=taus)
        assert paths == expected

    def test_concurrent_lookups_all_complete(self, net):
        rng = np.random.default_rng(4)
        pts = list(net.points())
        queries = [(pts[int(rng.integers(64))], float(rng.random())) for _ in range(100)]
        paths = run_async_lookups(net, queries, rng)
        assert len(paths) == 100
        assert all(len(p) >= 1 for p in paths)

    def test_local_knowledge_only(self, net):
        """Async servers never consult the global map during routing."""
        from repro.sim.asyncnet import AsyncServer

        srv = AsyncServer(list(net.points())[0], net)
        # the server's world is its segment plus its neighbours' segments
        assert srv._local_cover(float(srv.segment.midpoint)) == srv.point
        far = (srv.point + 0.431) % 1.0
        if all(far not in s for s in srv._seg_of.values()) and far not in srv.segment:
            assert srv._local_cover(far) is None
