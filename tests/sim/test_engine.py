"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventLoop, SimNetwork, SimNode


class Echo(SimNode):
    """Replies 'pong' to every 'ping'."""

    def on_message(self, msg):
        if msg.payload == "ping":
            self.send(msg.sender, "pong")


class Recorder(SimNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.log = []

    def on_message(self, msg):
        self.log.append((self.network.loop.now, msg.sender, msg.payload))


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        out = []
        loop.schedule(3.0, lambda: out.append("c"))
        loop.schedule(1.0, lambda: out.append("a"))
        loop.schedule(2.0, lambda: out.append("b"))
        loop.run()
        assert out == ["a", "b", "c"]

    def test_ties_broken_by_schedule_order(self):
        loop = EventLoop()
        out = []
        loop.schedule(1.0, lambda: out.append(1))
        loop.schedule(1.0, lambda: out.append(2))
        loop.run()
        assert out == [1, 2]

    def test_now_advances(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [5.0]

    def test_until_limit(self):
        loop = EventLoop()
        out = []
        loop.schedule(1.0, lambda: out.append(1))
        loop.schedule(10.0, lambda: out.append(2))
        loop.run(until=5.0)
        assert out == [1]
        assert loop.pending() == 1

    def test_nested_scheduling(self):
        loop = EventLoop()
        out = []

        def first():
            out.append("first")
            loop.schedule(1.0, lambda: out.append("second"))

        loop.schedule(1.0, first)
        loop.run()
        assert out == ["first", "second"]
        assert loop.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule(-1.0, lambda: None)


class TestSimNetwork:
    def test_ping_pong(self):
        net = SimNetwork()
        net.add_node(Echo("a"))
        rec = net.add_node(Recorder("b"))
        net.nodes["b"].send("a", "ping")
        net.run()
        assert rec.log == [(2.0, "a", "pong")]

    def test_duplicate_node_rejected(self):
        net = SimNetwork()
        net.add_node(Echo("a"))
        with pytest.raises(ValueError):
            net.add_node(Echo("a"))

    def test_failed_node_drops_messages(self):
        net = SimNetwork()
        net.add_node(Echo("a"))
        rec = net.add_node(Recorder("b"))
        net.fail("a")
        net.nodes["b"].send("a", "ping")
        net.run()
        assert net.dropped == 1
        assert rec.log == []

    def test_fail_after_send_drops_in_flight(self):
        net = SimNetwork()
        net.add_node(Echo("a"))
        net.add_node(Recorder("b"))
        net.nodes["b"].send("a", "ping")
        net.fail("a")  # message already in flight; dropped at arrival
        net.run()
        assert net.delivered == 0

    def test_drop_rule(self):
        net = SimNetwork(drop_rule=lambda m: m.payload == "spam")
        rec = net.add_node(Recorder("b"))
        net.add_node(Echo("a"))
        net.nodes["a"].send("b", "spam")
        net.nodes["a"].send("b", "ham")
        net.run()
        assert [p for _, _, p in rec.log] == ["ham"]

    def test_custom_latency(self):
        net = SimNetwork(latency=lambda a, b: 7.0)
        rec = net.add_node(Recorder("b"))
        net.add_node(Echo("a"))
        net.nodes["a"].send("b", "x")
        net.run()
        assert rec.log[0][0] == 7.0

    def test_unknown_recipient_dropped(self):
        net = SimNetwork()
        net.add_node(Echo("a"))
        net.nodes["a"].send("ghost", "x")
        net.run()
        assert net.dropped == 1

    def test_counters(self):
        net = SimNetwork()
        net.add_node(Echo("a"))
        rec = net.add_node(Recorder("b"))
        net.nodes["b"].send("a", "ping")
        net.run()
        assert net.nodes["b"].sent == 1
        assert net.nodes["a"].received == 1
        assert net.delivered == 2  # ping + pong
