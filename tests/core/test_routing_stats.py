"""Unit tests for congestion accounting (Definition 3 bookkeeping)."""

import numpy as np
import pytest

from repro.core import CongestionCounter, DistanceHalvingNetwork, fast_lookup
from repro.core.lookup import LookupResult
from repro.core.routing_stats import path_lengths


def fake_result(path):
    return LookupResult(target=0.5, owner=path[-1], server_path=list(path),
                        continuous_path=[], t=len(path) - 1)


class TestCongestionCounter:
    def test_empty(self):
        c = CongestionCounter()
        assert c.max_load() == 0
        assert c.max_congestion() == 0.0
        assert c.mean_load(10) == 0.0

    def test_record_counts_every_server_once(self):
        c = CongestionCounter()
        c.record(fake_result([0.1, 0.2, 0.3]))
        assert c.load_of(0.1) == c.load_of(0.2) == c.load_of(0.3) == 1
        assert c.total_messages == 2

    def test_max_congestion_is_frequency(self):
        c = CongestionCounter()
        for _ in range(4):
            c.record(fake_result([0.1, 0.2]))
        c.record(fake_result([0.3]))
        assert c.max_congestion() == pytest.approx(4 / 5)

    def test_record_path_raw(self):
        c = CongestionCounter()
        c.record_path([0.5, 0.6, 0.7, 0.8])
        assert c.lookups == 1
        assert c.total_messages == 3

    def test_loads_vector_includes_zeros(self):
        c = CongestionCounter()
        c.record(fake_result([0.1]))
        vec = c.loads([0.1, 0.2, 0.3])
        assert list(vec) == [1.0, 0.0, 0.0]

    def test_mean_load(self):
        c = CongestionCounter()
        c.record(fake_result([0.1, 0.2]))
        c.record(fake_result([0.2, 0.3]))
        assert c.mean_load(4) == pytest.approx(1.0)

    def test_summary_keys(self):
        c = CongestionCounter()
        c.record(fake_result([0.1, 0.2]))
        s = c.summary(2)
        assert set(s) == {"lookups", "max_load", "mean_load", "max_congestion",
                          "total_messages"}

    def test_path_lengths_helper(self):
        arr = path_lengths([fake_result([0.1, 0.2, 0.3]), fake_result([0.5])])
        assert list(arr) == [2.0, 0.0]

    def test_integration_with_real_lookups(self):
        rng = np.random.default_rng(0)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(32)
        c = CongestionCounter()
        pts = list(net.points())
        for _ in range(50):
            c.record(fast_lookup(net, pts[int(rng.integers(32))], float(rng.random())))
        assert c.lookups == 50
        assert sum(c.visits.values()) >= 50  # at least the sources
        assert c.max_load() >= 2             # some server repeats
