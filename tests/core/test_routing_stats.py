"""Unit tests for congestion accounting (Definition 3 bookkeeping)."""

import numpy as np
import pytest

from repro.core import (
    BatchCongestion,
    CongestionCounter,
    DistanceHalvingNetwork,
    compress_path,
    fast_lookup,
    lookup_many,
)
from repro.core.lookup import LookupResult
from repro.core.routing_stats import path_lengths


def fake_result(path):
    return LookupResult(target=0.5, owner=path[-1], server_path=list(path),
                        continuous_path=[], t=len(path) - 1)


def routed_net(n=64, seed=0):
    rng = np.random.default_rng(seed)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(n)
    return net, net.router(auto_refresh=True, with_adjacency=True)


def scalar_counter(net, src, tgt, algorithm="fast", tau=None):
    c = CongestionCounter()
    taus = None if tau is None else [list(row) for row in tau]
    for r in lookup_many(net, src, tgt, algorithm=algorithm, taus=taus):
        c.record(r)
    return c


class TestCongestionCounter:
    def test_empty(self):
        c = CongestionCounter()
        assert c.max_load() == 0
        assert c.max_congestion() == 0.0
        assert c.mean_load(10) == 0.0

    def test_record_counts_every_server_once(self):
        c = CongestionCounter()
        c.record(fake_result([0.1, 0.2, 0.3]))
        assert c.load_of(0.1) == c.load_of(0.2) == c.load_of(0.3) == 1
        assert c.total_messages == 2

    def test_max_congestion_is_frequency(self):
        c = CongestionCounter()
        for _ in range(4):
            c.record(fake_result([0.1, 0.2]))
        c.record(fake_result([0.3]))
        assert c.max_congestion() == pytest.approx(4 / 5)

    def test_record_path_raw(self):
        c = CongestionCounter()
        c.record_path([0.5, 0.6, 0.7, 0.8])
        assert c.lookups == 1
        assert c.total_messages == 3

    def test_loads_vector_includes_zeros(self):
        c = CongestionCounter()
        c.record(fake_result([0.1]))
        vec = c.loads([0.1, 0.2, 0.3])
        assert list(vec) == [1.0, 0.0, 0.0]

    def test_mean_load(self):
        c = CongestionCounter()
        c.record(fake_result([0.1, 0.2]))
        c.record(fake_result([0.2, 0.3]))
        assert c.mean_load(4) == pytest.approx(1.0)

    def test_summary_keys(self):
        c = CongestionCounter()
        c.record(fake_result([0.1, 0.2]))
        s = c.summary(2)
        assert set(s) == {"lookups", "max_load", "mean_load", "max_congestion",
                          "total_messages"}

    def test_path_lengths_helper(self):
        arr = path_lengths([fake_result([0.1, 0.2, 0.3]), fake_result([0.5])])
        assert list(arr) == [2.0, 0.0]

    def test_integration_with_real_lookups(self):
        rng = np.random.default_rng(0)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(32)
        c = CongestionCounter()
        pts = list(net.points())
        for _ in range(50):
            c.record(fast_lookup(net, pts[int(rng.integers(32))], float(rng.random())))
        assert c.lookups == 50
        assert sum(c.visits.values()) >= 50  # at least the sources
        assert c.max_load() >= 2             # some server repeats


class TestLoadsVectorized:
    """ISSUE 4: loads() via sorted-array searchsorted, parity with the
    old per-point dict-probe list comprehension."""

    def test_parity_with_dict_probe(self):
        net, _router = routed_net(48, seed=11)
        rng = np.random.default_rng(12)
        pts = net.segments.as_array()
        c = scalar_counter(net, pts[rng.integers(0, 48, size=120)],
                           rng.random(120))
        # universe: every server plus points that were never visited
        universe = list(pts) + [0.123456789, 0.987654321]
        old = np.asarray([c.visits.get(p, 0) for p in universe], dtype=float)
        assert np.array_equal(c.loads(universe), old)

    def test_accepts_ndarray_and_generator(self):
        c = CongestionCounter()
        c.record(fake_result([0.25, 0.5]))
        expect = [0.0, 1.0, 1.0]
        assert list(c.loads(np.asarray([0.1, 0.25, 0.5]))) == expect
        assert list(c.loads(p for p in [0.1, 0.25, 0.5])) == expect

    def test_empty_counter_all_zero(self):
        c = CongestionCounter()
        assert list(c.loads([0.1, 0.9])) == [0.0, 0.0]

    def test_exact_ids_colliding_after_float_cast_sum_counts(self):
        """Distinct exact ids that round to the same float64 key must
        pool their counts in the shared key space, not drop one."""
        from fractions import Fraction

        third = Fraction(1, 3)
        as_float = Fraction(float(third))
        c = CongestionCounter()
        c.visits[third] = 2
        c.visits[as_float] = 3
        assert list(c.loads([float(third)])) == [5.0]
        merged = BatchCongestion()
        merged.merge_counter(c)
        assert merged.load_of(float(third)) == 5


class TestRecordPathReconciliation:
    """ISSUE 4: record() and record_path() must agree for the same
    underlying route — raw consecutive duplicates are compressed before
    booking, so baseline-DHT comparisons stay apples-to-apples."""

    def test_duplicated_raw_path_matches_record(self):
        raw = [0.1, 0.1, 0.2, 0.3, 0.3, 0.2, 0.2]
        a, b = CongestionCounter(), CongestionCounter()
        a.record(fake_result(compress_path(raw)))
        b.record_path(raw)
        assert a.visits == b.visits
        assert a.total_messages == b.total_messages
        assert a.summary(4) == b.summary(4)

    def test_messages_are_hops_of_compressed_path(self):
        c = CongestionCounter()
        c.record_path([0.5, 0.5, 0.6, 0.6, 0.7])  # 3 distinct servers
        assert c.total_messages == 2
        assert c.max_load() == 1

    def test_already_compressed_path_unchanged(self):
        c = CongestionCounter()
        c.record_path([0.5, 0.6, 0.7, 0.8])
        assert c.total_messages == 3
        assert sum(c.visits.values()) == 4


class TestBatchCongestion:
    def test_empty(self):
        c = BatchCongestion()
        assert c.max_load() == 0
        assert c.max_congestion() == 0.0
        assert c.mean_load(10) == 0.0
        assert c.summary(10)["lookups"] == 0.0
        assert list(c.loads([0.1])) == [0.0]

    def test_requires_csr_paths(self):
        net, router = routed_net(16, seed=20)
        res = router.batch_fast_lookup(np.array([0.1]), np.array([0.5]))
        with pytest.raises(ValueError, match="keep_paths"):
            BatchCongestion().record_batch(res)

    @pytest.mark.parametrize("algorithm", ["fast", "dh"])
    def test_bit_identical_to_scalar_counter(self, algorithm):
        net, router = routed_net(64, seed=21)
        rng = np.random.default_rng(22)
        pts = net.segments.as_array()
        src = pts[rng.integers(0, 64, size=300)]
        tgt = rng.random(300)
        tau = rng.integers(0, net.delta, size=(300, 64))
        scal = scalar_counter(net, src, tgt, algorithm,
                              tau if algorithm == "dh" else None)
        batch = BatchCongestion()
        if algorithm == "fast":
            batch.record_batch(router.batch_fast_lookup(src, tgt,
                                                        keep_paths="csr"))
        else:
            batch.record_batch(router.batch_dh_lookup(src, tgt, tau=tau,
                                                      keep_paths="csr"))
        assert batch.summary(net.n) == scal.summary(net.n)
        assert batch.max_load() == scal.max_load()
        assert np.array_equal(batch.loads(pts), scal.loads(pts))
        for p in pts[:8]:
            assert batch.load_of(p) == scal.load_of(p)

    def test_merge_across_batches_matches_single_batch(self):
        net, router = routed_net(64, seed=23)
        rng = np.random.default_rng(24)
        pts = net.segments.as_array()
        src = pts[rng.integers(0, 64, size=200)]
        tgt = rng.random(200)
        whole = BatchCongestion()
        whole.record_batch(router.batch_fast_lookup(src, tgt,
                                                    keep_paths="csr"))
        split = BatchCongestion()
        other = BatchCongestion()
        split.record_batch(router.batch_fast_lookup(src[:77], tgt[:77],
                                                    keep_paths="csr"))
        other.record_batch(router.batch_fast_lookup(src[77:], tgt[77:],
                                                    keep_paths="csr"))
        split.merge(other)
        assert split.summary(net.n) == whole.summary(net.n)
        assert np.array_equal(split.visited_points, whole.visited_points)

    def test_merge_across_snapshots_under_churn(self):
        """Batches routed before and after membership changes merge by
        server id, matching a scalar counter fed the same lookups."""
        net, router = routed_net(48, seed=25)
        rng = np.random.default_rng(26)
        total = BatchCongestion()
        scal = CongestionCounter()

        def one_round():
            pts = net.segments.as_array()
            src = pts[rng.integers(0, net.n, size=80)]
            tgt = rng.random(80)
            total.record_batch(router.batch_fast_lookup(src, tgt,
                                                        keep_paths="csr"))
            for r in lookup_many(net, src, tgt):
                scal.record(r)

        one_round()
        net.join(0.3141592653589793)
        net.leave(net.segments.as_array()[5])
        one_round()
        assert total.summary(net.n) == scal.summary(net.n)

    def test_merge_counter_mixes_scalar_and_batch(self):
        net, router = routed_net(32, seed=27)
        rng = np.random.default_rng(28)
        pts = net.segments.as_array()
        src = pts[rng.integers(0, 32, size=100)]
        tgt = rng.random(100)
        ref = scalar_counter(net, src, tgt)
        mixed = BatchCongestion()
        mixed.record_batch(router.batch_fast_lookup(src[:40], tgt[:40],
                                                    keep_paths="csr"))
        mixed.merge_counter(scalar_counter(net, src[40:], tgt[40:]))
        assert mixed.summary(net.n) == ref.summary(net.n)

    def test_to_counter_round_trip(self):
        net, router = routed_net(32, seed=29)
        rng = np.random.default_rng(30)
        pts = net.segments.as_array()
        src = pts[rng.integers(0, 32, size=60)]
        tgt = rng.random(60)
        batch = BatchCongestion()
        batch.record_batch(router.batch_fast_lookup(src, tgt,
                                                    keep_paths="csr"))
        counter = batch.to_counter()
        assert counter.summary(net.n) == batch.summary(net.n)
        back = BatchCongestion()
        back.merge_counter(counter)
        assert back.summary(net.n) == batch.summary(net.n)

    def test_true_mode_paths_account_via_lazy_to_csr(self):
        net, router = routed_net(16, seed=31)
        rng = np.random.default_rng(32)
        pts = net.segments.as_array()
        src = pts[rng.integers(0, 16, size=30)]
        tgt = rng.random(30)
        via_true = BatchCongestion()
        via_true.record_batch(router.batch_fast_lookup(src, tgt,
                                                       keep_paths=True))
        via_csr = BatchCongestion()
        via_csr.record_batch(router.batch_fast_lookup(src, tgt,
                                                      keep_paths="csr"))
        assert via_true.summary(net.n) == via_csr.summary(net.n)
