"""Unit tests for the discrete Distance Halving network (paper §2.1).

Covers Algorithm Join / Leave, edge construction from the continuous
graph, and the structural Theorems 2.1 / 2.2.
"""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core import DistanceHalvingNetwork
from repro.core.interval import Arc


@pytest.fixture
def net256():
    rng = np.random.default_rng(2023)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(256)
    return net


@pytest.fixture
def smooth_net():
    """Perfectly smooth 64-server network (equally spaced ids)."""
    net = DistanceHalvingNetwork()
    for i in range(64):
        net.join(Fraction(i, 64))
    return net


class TestJoinLeave:
    def test_empty_network(self):
        net = DistanceHalvingNetwork()
        assert net.n == 0
        assert len(net) == 0

    def test_first_join_covers_ring(self):
        net = DistanceHalvingNetwork()
        net.join(0.3)
        assert net.n == 1
        assert net.owner_of(0.99).point == 0.3

    def test_join_splits_segment(self):
        net = DistanceHalvingNetwork()
        net.join(0.2)
        net.join(0.6)
        assert net.segment_of(0.2) == Arc(0.2, 0.6)
        assert net.segment_of(0.6) == Arc(0.6, 0.2)

    def test_join_duplicate_rejected(self):
        net = DistanceHalvingNetwork()
        net.join(0.2)
        with pytest.raises(ValueError):
            net.join(0.2)

    def test_join_moves_items(self):
        net = DistanceHalvingNetwork()
        net.join(0.0)
        # place items deterministically by monkeypatching the hash
        net.item_hash = lambda k: {"a": 0.1, "b": 0.6}[k]
        net.store_item("a", "va")
        net.store_item("b", "vb")
        assert net.server_at(0.0).store.keys() == {"a", "b"}
        net.join(0.5)
        assert net.server_at(0.0).store.keys() == {"a"}
        assert net.server_at(0.5).store.keys() == {"b"}
        assert net.get_item("b") == "vb"

    def test_leave_hands_items_to_predecessor(self):
        net = DistanceHalvingNetwork()
        net.item_hash = lambda k: 0.65
        net.join(0.0)
        net.join(0.5)
        net.store_item("x", 1)
        assert "x" in net.server_at(0.5).store
        net.leave(0.5)
        assert "x" in net.server_at(0.0).store
        assert net.get_item("x") == 1

    def test_leave_last_server(self):
        net = DistanceHalvingNetwork()
        net.join(0.3)
        net.leave(0.3)
        assert net.n == 0

    def test_leave_missing_raises(self):
        net = DistanceHalvingNetwork()
        net.join(0.3)
        with pytest.raises(KeyError):
            net.leave(0.4)

    def test_populate(self):
        rng = np.random.default_rng(0)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(100)
        assert net.n == 100
        net.check_invariants()

    def test_join_leave_churn_keeps_invariants(self):
        rng = np.random.default_rng(5)
        net = DistanceHalvingNetwork(rng=rng)
        net.item_hash = lambda k: (hash(k) % 997) / 997.0
        for i in range(30):
            net.store_item(f"item{i}", i) if net.n else net.join()
        alive = list(net.points())
        for step in range(200):
            if net.n < 5 or rng.random() < 0.55:
                net.join()
            else:
                pts = list(net.points())
                net.leave(pts[int(rng.integers(len(pts)))])
            net.check_invariants()

    def test_items_survive_churn(self):
        rng = np.random.default_rng(9)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(20)
        for i in range(50):
            net.store_item(f"k{i}", i)
        for step in range(100):
            if net.n < 3 or rng.random() < 0.5:
                net.join()
            else:
                pts = list(net.points())
                net.leave(pts[int(rng.integers(len(pts)))])
        for i in range(50):
            assert net.get_item(f"k{i}") == i


class TestNeighbors:
    def test_out_neighbors_cover_images(self, net256):
        pts = list(net256.points())
        rng = np.random.default_rng(1)
        for p in rng.choice(pts, size=10, replace=False):
            seg = net256.segment_of(p)
            outs = set(net256.out_neighbor_points(p))
            for img in net256.graph.image_arcs(seg):
                mid = img.midpoint
                assert net256.segments.cover_point(mid) in outs

    def test_in_neighbors_are_reverse_of_out(self, net256):
        pts = list(net256.points())
        rng = np.random.default_rng(2)
        sample = rng.choice(pts, size=8, replace=False)
        for p in sample:
            for q in net256.out_neighbor_points(p):
                assert p in net256.in_neighbor_points(q), (p, q)

    def test_ring_neighbors_in_neighbor_set(self, net256):
        p = list(net256.points())[17]
        neigh = set(net256.neighbor_points(p))
        assert net256.segments.predecessor(p) in neigh
        assert net256.segments.successor(p) in neigh

    def test_no_ring_option(self):
        rng = np.random.default_rng(3)
        net = DistanceHalvingNetwork(with_ring=False, rng=rng)
        net.populate(64)
        p = list(net.points())[5]
        # ring neighbours may still appear via continuous edges, but the
        # neighbour set must equal out ∪ in exactly.
        expect = set(net.out_neighbor_points(p)) | set(net.in_neighbor_points(p))
        expect.discard(p)
        assert set(net.neighbor_points(p)) == expect

    def test_are_neighbors_symmetry(self, net256):
        pts = list(net256.points())
        rng = np.random.default_rng(4)
        for _ in range(20):
            p, q = rng.choice(pts, size=2, replace=False)
            assert net256.are_neighbors(p, q) == net256.are_neighbors(q, p)

    def test_self_is_neighbor(self, net256):
        p = list(net256.points())[0]
        assert net256.are_neighbors(p, p)

    def test_single_server_has_no_neighbors(self):
        net = DistanceHalvingNetwork()
        net.join(0.5)
        assert net.neighbor_points(0.5) == []


class TestTheorem21:
    """Theorem 2.1: |E(G_x)| ≤ 3n − 1 without ring edges (Δ = 2)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_edge_bound_random_ids(self, seed):
        rng = np.random.default_rng(seed)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(128)
        assert net.edge_count() <= 3 * net.n - 1

    def test_edge_bound_holds_during_growth(self):
        rng = np.random.default_rng(77)
        net = DistanceHalvingNetwork(rng=rng)
        for _ in range(100):
            net.join()
            assert net.edge_count() <= 3 * net.n - 1

    def test_edge_bound_adversarial_clustered_ids(self):
        """Crowded ids in a tiny arc — smoothness is terrible, bound holds."""
        net = DistanceHalvingNetwork()
        for i in range(50):
            net.join(0.5 + i * 1e-6)
        assert net.edge_count() <= 3 * net.n - 1

    def test_average_degree_at_most_six_plus_ring(self, net256):
        # Theorem 2.1 ⇒ average degree ≤ 6 without ring; ring adds 2.
        assert net256.average_degree() <= 8.0

    def test_single_server_self_edges(self):
        net = DistanceHalvingNetwork()
        net.join(0.25)
        assert net.edge_count() == 1  # the two self-loops merge as one pair


class TestTheorem22:
    """Theorem 2.2: out-degree ≤ ρ+4, in-degree ≤ ⌈2ρ⌉+1 (no ring)."""

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_degree_bounds_random(self, seed):
        rng = np.random.default_rng(seed)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(200)
        rho = net.smoothness()
        assert net.max_out_degree() <= rho + 4
        assert net.max_in_degree() <= math.ceil(2 * rho) + 1

    def test_smooth_network_constant_degree(self, smooth_net):
        rho = smooth_net.smoothness()
        assert rho == pytest.approx(1.0)
        assert smooth_net.max_out_degree() <= 5
        assert smooth_net.max_in_degree() <= 3

    def test_delta4_degrees_scale_with_delta(self):
        """Theorem 2.13: smooth degree-Δ discretization has degree Θ(Δ)."""
        net = DistanceHalvingNetwork(delta=4)
        for i in range(64):
            net.join(Fraction(i, 64))
        assert net.max_out_degree() <= 4 + 4  # Δ images + boundary effects
        assert net.max_out_degree() >= 4


class TestItems:
    def test_store_and_get(self, net256):
        net256.store_item("hello", "world")
        assert net256.get_item("hello") == "world"

    def test_owner_consistency(self, net256):
        owner = net256.store_item("k", 1)
        assert net256.item_owner("k") is owner

    def test_missing_item_raises(self, net256):
        with pytest.raises(KeyError):
            net256.get_item("nope")


class TestExports:
    def test_to_networkx_connected(self, net256):
        g = net256.to_networkx()
        import networkx as nx

        assert g.number_of_nodes() == 256
        assert nx.is_connected(g)

    def test_to_networkx_no_ring_still_connected_when_smooth(self, smooth_net):
        import networkx as nx

        g = smooth_net.to_networkx(include_ring=False)
        assert nx.is_connected(g)
