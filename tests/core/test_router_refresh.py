"""Staleness semantics of the batch router under membership change.

The contract (ISSUE 3): every join/leave bumps the network's membership
version; a plain ``compile_router()`` snapshot *raises* an actionable
stale-router error instead of silently serving outdated routes; an
``auto_refresh`` router re-syncs before every batch — incrementally
inside the churn budget, by full rebuild beyond it or when the
membership log window was exceeded — and therefore never serves a stale
snapshot.
"""

import numpy as np
import pytest

from repro.core import DistanceHalvingNetwork


def make_net(n, seed=0):
    rng = np.random.default_rng(seed)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(n)
    return net


class TestMembershipVersion:
    def test_join_and_leave_bump_version(self):
        net = make_net(0, seed=1)
        assert net.membership_version == 0
        net.join(0.25)
        net.join(0.75)
        assert net.membership_version == 2
        net.leave(0.25)
        assert net.membership_version == 3

    def test_populate_counts_every_join(self):
        net = make_net(17, seed=2)
        assert net.membership_version == 17

    def test_lookups_do_not_bump_version(self):
        net = make_net(8, seed=3)
        before = net.membership_version
        router = net.compile_router()
        router.batch_fast_lookup([0.1], [0.9])
        net.owner_of(0.5)
        assert net.membership_version == before

    def test_log_records_sorted_indices(self):
        net = DistanceHalvingNetwork(rng=np.random.default_rng(4))
        net.join(0.5)
        net.join(0.25)  # inserts before 0.5 -> index 0
        net.join(0.75)
        ops = net.membership_log.ops_since(0)
        assert [(k, i) for k, _p, i in ops] == [
            ("join", 0), ("join", 0), ("join", 2)]
        net.leave(0.25)
        assert net.membership_log.ops_since(3) == [("leave", 0.25, 0)]

    def test_ops_since_future_version_rejected(self):
        net = make_net(4, seed=5)
        with pytest.raises(ValueError):
            net.membership_log.ops_since(99)

    def test_log_trim_returns_none(self):
        net = make_net(4, seed=6)
        net.membership_log.cap = 3
        for i in range(6):
            net.join(0.01 + i * 0.001)
        assert net.membership_log.ops_since(4) is None  # trimmed away
        assert len(net.membership_log.ops_since(10)) == 0
        assert len(net.membership_log.ops_since(7)) == 3


class TestStaleRouterRaises:
    @pytest.mark.parametrize("churn", ["join", "leave"])
    def test_fast_lookup_raises_after_churn(self, churn):
        net = make_net(16, seed=7)
        router = net.compile_router()
        if churn == "join":
            net.join(0.123456)
        else:
            net.leave(list(net.points())[3])
        with pytest.raises(RuntimeError, match="auto_refresh"):
            router.batch_fast_lookup([0.1], [0.2])

    def test_dh_lookup_raises_after_churn(self):
        net = make_net(16, seed=8)
        router = net.compile_router(with_adjacency=True)
        net.join(0.654321)
        with pytest.raises(RuntimeError, match="rebuild"):
            router.batch_dh_lookup([0.1], [0.2],
                                   tau=np.zeros((1, 32), dtype=np.int64))

    def test_cover_raises_after_churn(self):
        net = make_net(16, seed=9)
        router = net.compile_router()
        net.join(0.42)
        with pytest.raises(RuntimeError, match="stale"):
            router.cover(np.array([0.5]))

    def test_recompile_recovers(self):
        net = make_net(16, seed=10)
        net.join(0.42)
        router = net.compile_router()
        res = router.batch_fast_lookup([0.1], [0.42])
        assert res.owner[0] == net.segments.cover_point(0.42)


class TestAutoRefresh:
    def test_never_serves_stale_owners(self):
        net = make_net(64, seed=11)
        router = net.router(auto_refresh=True)
        rng = np.random.default_rng(12)
        for step in range(25):
            if step % 3 == 2 and net.n > 4:
                net.leave(list(net.points())[int(rng.integers(net.n))])
            else:
                net.join(float(rng.random()))
            targets = rng.random(50)
            res = router.batch_fast_lookup(np.zeros(50), targets)
            assert router.n == net.n
            assert np.array_equal(res.owner_idx,
                                  net.segments.cover_array(targets))

    def test_dh_with_adjacency_tracks_churn(self):
        net = make_net(48, seed=13)
        router = net.router(auto_refresh=True, with_adjacency=True)
        rng = np.random.default_rng(14)
        for _ in range(6):
            net.join(float(rng.random()))
            net.leave(list(net.points())[int(rng.integers(net.n))])
            tau = rng.integers(0, 2, size=(20, 64))
            src = net.segments.as_array()[rng.integers(0, net.n, size=20)]
            res = router.batch_dh_lookup(src, rng.random(20), tau=tau)
            fresh = net.compile_router(with_adjacency=True)
            ref = fresh.batch_dh_lookup(src, res.targets, tau=tau)
            assert np.array_equal(res.owner_idx, ref.owner_idx)
            assert np.array_equal(res.t, ref.t)
            assert np.array_equal(res.hops, ref.hops)

    def test_version_property_follows_network(self):
        net = make_net(8, seed=15)
        router = net.router(auto_refresh=True)
        assert router.version == net.membership_version
        net.join(0.9999)
        assert router.is_stale
        router.batch_fast_lookup([0.1], [0.5])
        assert not router.is_stale
        assert router.version == net.membership_version

    def test_refresh_noop_when_fresh(self):
        net = make_net(8, seed=16)
        router = net.router(auto_refresh=True)
        router.refresh()
        assert router.refresh_stats.refreshes == 0

    def test_explicit_force_full(self):
        net = make_net(8, seed=17)
        router = net.router(auto_refresh=True)
        net.join(0.33)
        router.refresh(force_full=True)
        assert router.refresh_stats.full_rebuilds == 1
        assert router.version == net.membership_version

    def test_all_servers_leaving_raises_on_next_batch(self):
        net = make_net(2, seed=18)
        router = net.router(auto_refresh=True)
        for p in list(net.points()):
            net.leave(p)
        with pytest.raises(LookupError, match="empty"):
            router.batch_fast_lookup([0.1], [0.2])


class TestRefreshModes:
    def test_small_churn_stays_incremental(self):
        net = make_net(128, seed=19)
        router = net.router(auto_refresh=True)
        rng = np.random.default_rng(20)
        for _ in range(5):
            net.join(float(rng.random()))
            router.refresh()
        assert router.refresh_stats.incremental == 5
        assert router.refresh_stats.full_rebuilds == 0
        assert router.refresh_stats.ops_replayed == 5

    def test_exceeding_budget_falls_back_to_full(self):
        net = make_net(128, seed=21)
        router = net.router(auto_refresh=True, churn_budget=4)
        rng = np.random.default_rng(22)
        for _ in range(9):
            net.join(float(rng.random()))
        router.refresh()
        assert router.refresh_stats.full_rebuilds == 1
        assert router.refresh_stats.incremental == 0
        assert np.array_equal(router.points, net.segments.as_array())

    def test_log_window_exceeded_falls_back_to_full(self):
        net = make_net(32, seed=23)
        net.membership_log.cap = 4
        router = net.router(auto_refresh=True, churn_budget=10**9)
        rng = np.random.default_rng(24)
        for _ in range(10):
            net.join(float(rng.random()))
        router.refresh()
        assert router.refresh_stats.full_rebuilds == 1
        assert np.array_equal(router.points, net.segments.as_array())

    def test_tiny_network_falls_back_to_full(self):
        net = make_net(5, seed=25)
        router = net.router(auto_refresh=True, churn_budget=10**9)
        for p in list(net.points())[:3]:
            net.leave(p)
            router.refresh()
        assert net.n == 2
        assert router.refresh_stats.full_rebuilds >= 1
        assert np.array_equal(router.points, net.segments.as_array())
        assert np.array_equal(router.midpoints,
                              net.compile_router().midpoints)

    def test_full_rebuild_keeps_adjacency_table(self):
        """A budget-triggered full rebuild must not silently defer the
        neighbour-table rebuild into the next dh batch."""
        net = make_net(64, seed=28)
        router = net.router(auto_refresh=True, with_adjacency=True,
                            churn_budget=2)
        rng = np.random.default_rng(29)
        for _ in range(6):
            net.join(float(rng.random()))
        router.refresh()
        assert router.refresh_stats.full_rebuilds == 1
        assert router._edge_keys is not None
        fresh = net.compile_router(with_adjacency=True)
        assert np.array_equal(router._edge_keys, fresh._edge_keys)

    def test_seconds_per_op_accounting(self):
        net = make_net(64, seed=26)
        router = net.router(auto_refresh=True)
        rng = np.random.default_rng(27)
        for _ in range(4):
            net.join(float(rng.random()))
            router.refresh()
        stats = router.refresh_stats
        assert stats.ops_replayed == 4
        assert stats.seconds > 0
        assert stats.seconds_per_op() == pytest.approx(stats.seconds / 4)


class TestRefreshOpAccounting:
    """Regression (ISSUE 8): a fallback full rebuild must not book the
    ops it absorbed as incrementally *replayed* — that inflated the
    per-op refresh cost denominator, making one rebuild that swallowed a
    whole churn wave look like thousands of cheap incremental patches."""

    def test_window_overflow_mid_chunk_books_ops_exactly_once(self):
        net = make_net(256, seed=30)
        net.membership_log.cap = 64
        router = net.router(auto_refresh=True)
        rng = np.random.default_rng(31)

        # a few incremental singles (the steady-state soak pattern) ...
        for _ in range(3):
            net.join(float(rng.random()))
            router.refresh()
        # ... then a churn wave that exceeds the journal window mid-chunk
        wave = 200
        for _ in range(wave):
            net.join(float(rng.random()))
        router.refresh()

        stats = router.refresh_stats
        assert stats.incremental == 3
        assert stats.full_rebuilds == 1
        assert stats.ops_replayed == 3          # only the true replays
        assert stats.ops_absorbed == wave       # the rebuild's wave
        # every membership op since compile counted in exactly one bucket
        assert stats.ops_synced() == 3 + wave
        assert router.version == net.membership_version
        # a second refresh is a no-op and must not re-count anything
        router.refresh()
        assert stats.ops_synced() == 3 + wave

    def test_budget_fallback_books_ops_as_absorbed(self):
        net = make_net(128, seed=32)
        router = net.router(auto_refresh=True, churn_budget=4)
        rng = np.random.default_rng(33)
        for _ in range(9):
            net.join(float(rng.random()))
        router.refresh()
        stats = router.refresh_stats
        assert stats.ops_replayed == 0
        assert stats.ops_absorbed == 9
        assert stats.seconds_per_op() == pytest.approx(stats.seconds / 9)

    def test_mixed_run_per_op_cost_uses_both_buckets(self):
        net = make_net(128, seed=34)
        router = net.router(auto_refresh=True, churn_budget=4)
        rng = np.random.default_rng(35)
        net.join(float(rng.random()))
        router.refresh()                        # 1 replayed
        for _ in range(7):
            net.join(float(rng.random()))
        router.refresh()                        # 7 absorbed
        stats = router.refresh_stats
        assert (stats.ops_replayed, stats.ops_absorbed) == (1, 7)
        assert stats.seconds_per_op() == pytest.approx(stats.seconds / 8)
