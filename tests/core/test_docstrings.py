"""Docstring lint gate for the snapshot/shard/peer invariant modules.

CI runs ``ruff check --select D100,D101,D102,D103,D104`` over these
files (see ruff.toml); this test enforces the same D1xx subset locally
with the stdlib ``ast`` module, so environments without ruff — like
this container — cannot silently regress the documented column/merge
invariants the modules promise.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: The modules whose public surface must stay documented: they state the
#: snapshot column invariants, the shard export/merge contract and the
#: cost-model determinism rules other layers build on.
GATED = [
    SRC / "core" / "snapshot.py",
    SRC / "core" / "shard.py",
    SRC / "peer" / "__init__.py",
    SRC / "peer" / "costmap.py",
    SRC / "peer" / "itracker.py",
    SRC / "peer" / "policy.py",
    SRC / "peer" / "routing.py",
]


def _missing(tree: ast.Module, path: pathlib.Path) -> list:
    """(location, kind) entries for every missing public docstring."""
    gaps = []
    if ast.get_docstring(tree) is None:
        gaps.append((f"{path.name}", "module (D100/D104)"))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            if ast.get_docstring(node) is None:
                gaps.append((f"{path.name}:{node.lineno} {node.name}",
                             "class (D101)"))
            for item in node.body:
                if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and not item.name.startswith("_")
                        and ast.get_docstring(item) is None):
                    gaps.append(
                        (f"{path.name}:{item.lineno} "
                         f"{node.name}.{item.name}", "method (D102)"))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            parent_is_module = any(
                node is item for item in tree.body)
            if (parent_is_module and not node.name.startswith("_")
                    and ast.get_docstring(node) is None):
                gaps.append((f"{path.name}:{node.lineno} {node.name}",
                             "function (D103)"))
    return gaps


@pytest.mark.parametrize("path", GATED, ids=lambda p: p.stem)
def test_public_surface_is_documented(path):
    tree = ast.parse(path.read_text())
    gaps = _missing(tree, path)
    assert not gaps, (
        "public names missing docstrings (CI enforces the same set via "
        f"ruff --select D100..D104): {gaps}")
