"""Unit tests for ring-interval arithmetic (paper §2.1 geometry)."""

from fractions import Fraction

import pytest

from repro.core.interval import (
    Arc,
    arcs_cover_ring,
    full_arc,
    linear_distance,
    midpoint_between,
    normalize,
    ring_distance,
)


class TestNormalize:
    def test_identity_inside(self):
        assert normalize(0.25) == 0.25
        assert normalize(0.0) == 0.0

    def test_wraps_above_one(self):
        assert normalize(1.25) == 0.25
        assert normalize(2.0) == 0.0

    def test_wraps_negative(self):
        assert normalize(-0.25) == 0.75

    def test_tiny_negative_does_not_return_one(self):
        v = normalize(-1e-18)
        assert 0.0 <= v < 1.0

    def test_fraction_exact(self):
        assert normalize(Fraction(5, 4)) == Fraction(1, 4)
        assert isinstance(normalize(Fraction(5, 4)), Fraction)

    def test_fraction_negative(self):
        assert normalize(Fraction(-1, 3)) == Fraction(2, 3)


class TestDistances:
    def test_linear_distance_is_absolute(self):
        assert linear_distance(0.1, 0.9) == pytest.approx(0.8)

    def test_ring_distance_wraps(self):
        assert ring_distance(0.1, 0.9) == pytest.approx(0.2)

    def test_ring_distance_symmetry(self):
        assert ring_distance(0.3, 0.8) == ring_distance(0.8, 0.3)

    def test_ring_distance_max_half(self):
        assert ring_distance(0.0, 0.5) == pytest.approx(0.5)

    def test_midpoint_plain(self):
        assert midpoint_between(0.2, 0.4) == pytest.approx(0.3)

    def test_midpoint_wrapping(self):
        assert midpoint_between(0.9, 0.1) == pytest.approx(0.0)


class TestArcBasics:
    def test_length_plain(self):
        assert Arc(0.2, 0.7).length == pytest.approx(0.5)

    def test_length_wrapping(self):
        assert Arc(0.9, 0.1).length == pytest.approx(0.2)

    def test_full_ring_length(self):
        assert full_arc().length == 1

    def test_contains_plain(self):
        a = Arc(0.2, 0.7)
        assert 0.2 in a          # half-open: start included
        assert 0.699 in a
        assert 0.7 not in a      # end excluded
        assert 0.1 not in a

    def test_contains_wrapping(self):
        a = Arc(0.9, 0.1)
        assert 0.95 in a
        assert 0.05 in a
        assert 0.0 in a
        assert 0.1 not in a
        assert 0.5 not in a

    def test_full_ring_contains_everything(self):
        a = Arc(0.3, 0.3)
        for p in (0.0, 0.3, 0.999):
            assert p in a

    def test_midpoint_plain(self):
        assert Arc(0.2, 0.4).midpoint == pytest.approx(0.3)

    def test_midpoint_wrapping(self):
        assert Arc(0.9, 0.1).midpoint == pytest.approx(0.0)

    def test_midpoint_in_arc(self):
        for arc in (Arc(0.1, 0.4), Arc(0.8, 0.2), Arc(0.0, 0.0)):
            assert arc.midpoint in arc


class TestArcPieces:
    def test_plain_single_piece(self):
        assert list(Arc(0.1, 0.6).pieces()) == [(0.1, 0.6)]

    def test_wrapping_two_pieces(self):
        assert list(Arc(0.8, 0.2).pieces()) == [(0.8, 1), (0, 0.2)]

    def test_full_ring_anchored_at_zero(self):
        assert list(Arc(0.0, 0.0).pieces()) == [(0, 1)]

    def test_full_ring_anchored_elsewhere(self):
        pieces = list(Arc(0.4, 0.4).pieces())
        assert pieces == [(0.4, 1), (0, 0.4)]
        assert sum(b - a for a, b in pieces) == pytest.approx(1.0)

    def test_pieces_lengths_sum_to_length(self):
        for arc in (Arc(0.3, 0.31), Arc(0.99, 0.01), Arc(0.5, 0.5)):
            total = sum(b - a for a, b in arc.pieces())
            assert total == pytest.approx(float(arc.length))


class TestArcSplit:
    def test_split_plain(self):
        left, right = Arc(0.2, 0.8).split(0.5)
        assert left == Arc(0.2, 0.5)
        assert right == Arc(0.5, 0.8)

    def test_split_wrapping_at_low_side(self):
        left, right = Arc(0.9, 0.2).split(0.1)
        assert left == Arc(0.9, 0.1)
        assert right == Arc(0.1, 0.2)

    def test_split_rejects_exterior_point(self):
        with pytest.raises(ValueError):
            Arc(0.2, 0.4).split(0.5)

    def test_split_rejects_start(self):
        with pytest.raises(ValueError):
            Arc(0.2, 0.4).split(0.2)

    def test_split_preserves_total_length(self):
        a, b = Arc(0.7, 0.3).split(0.9)
        assert float(a.length + b.length) == pytest.approx(0.6)


class TestArcIntersection:
    def test_disjoint(self):
        assert Arc(0.1, 0.2).intersection_length(Arc(0.3, 0.4)) == 0
        assert not Arc(0.1, 0.2).overlaps(Arc(0.3, 0.4))

    def test_nested(self):
        assert Arc(0.1, 0.5).intersection_length(Arc(0.2, 0.3)) == pytest.approx(0.1)

    def test_partial(self):
        assert Arc(0.1, 0.3).intersection_length(Arc(0.2, 0.5)) == pytest.approx(0.1)

    def test_wrapping_vs_plain(self):
        assert Arc(0.9, 0.2).intersection_length(Arc(0.0, 0.1)) == pytest.approx(0.1)

    def test_touching_half_open_do_not_overlap(self):
        assert Arc(0.1, 0.2).intersection_length(Arc(0.2, 0.3)) == 0

    def test_full_ring_intersection_is_other(self):
        assert full_arc().intersection_length(Arc(0.2, 0.5)) == pytest.approx(0.3)


class TestArcScaled:
    def test_halving_map_left(self):
        # l(y) = y/2: image of [0.2, 0.6) is [0.1, 0.3)
        img = Arc(0.2, 0.6).scaled(0.5, 0.0)
        assert img == Arc(0.1, 0.3)

    def test_halving_map_right(self):
        img = Arc(0.2, 0.6).scaled(0.5, 0.5)
        assert img == Arc(0.6, 0.8)

    def test_wrapping_arc_scales_by_length(self):
        # [0.75, 1) under l must give [0.375, 0.5) — regression for the
        # endpoint-0.0 bug (end stored as 0.0 stands for 1.0).
        img = Arc(0.75, 0.0).scaled(0.5, 0.0)
        assert img == Arc(0.375, 0.5)

    def test_two_piece_wrap_rejected(self):
        # [0.9, 0.1) has mass on both sides of the seam: its l-image is
        # [0.45, 0.5) ∪ [0, 0.05) — disconnected, so scaled() must refuse
        # (ContinuousGraph.image_arcs maps the pieces separately).
        with pytest.raises(ValueError):
            Arc(0.9, 0.1).scaled(0.5, 0.0)

    def test_image_arcs_handle_two_piece_wrap(self):
        from repro.core.continuous import ContinuousGraph

        g = ContinuousGraph(2)
        imgs = g.image_arcs_by_digit(Arc(0.9, 0.1))[0]
        assert Arc(0.45, 0.5) in imgs
        assert Arc(0.0, 0.05) in imgs
        total = sum(float(i.length) for i in imgs)
        assert total == pytest.approx(0.1)

    def test_full_ring_contracts(self):
        img = full_arc().scaled(0.5, 0.5)
        assert img == Arc(0.5, 0.0)  # [0.5, 1)
        assert float(img.length) == pytest.approx(0.5)

    def test_fraction_exactness(self):
        img = Arc(Fraction(1, 3), Fraction(2, 3)).scaled(Fraction(1, 2), Fraction(1, 2))
        assert img.start == Fraction(2, 3)
        assert img.end == Fraction(5, 6)


class TestCoverRing:
    def test_full_arc_covers(self):
        assert arcs_cover_ring([full_arc()])

    def test_two_halves_cover(self):
        assert arcs_cover_ring([Arc(0.0, 0.5), Arc(0.5, 0.0)])

    def test_gap_detected(self):
        assert not arcs_cover_ring([Arc(0.0, 0.5), Arc(0.6, 0.0)])

    def test_gap_at_seam_detected(self):
        assert not arcs_cover_ring([Arc(0.05, 0.95)])

    def test_overlapping_cover(self):
        arcs = [Arc(0.0, 0.4), Arc(0.3, 0.8), Arc(0.7, 0.1)]
        assert arcs_cover_ring(arcs)

    def test_empty_does_not_cover(self):
        assert not arcs_cover_ring([])
