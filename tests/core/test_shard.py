"""The multicore sharded execution backend (core/shard.py).

A real 2-worker :class:`ShardedExecutor` over shared-memory snapshot
columns must be **bit-identical** to the in-process engine on every
result field (including CSR paths), re-sync itself after membership
churn, shard the two-phase algorithm under explicit ``tau`` digits, and
own the shared-memory lifetime cleanly (close is idempotent; a closed
executor refuses work).
"""

import numpy as np
import pytest

from repro.core import DistanceHalvingNetwork
from repro.core.shard import (
    ShardedExecutor,
    available_workers,
    merge_results,
    slice_bounds,
)

N = 256
BATCH = 1500


def make_net(n=N, seed=0):
    rng = np.random.default_rng(seed)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(n)
    return net


def make_workload(net, size=BATCH, seed=1):
    rng = np.random.default_rng(seed)
    pts = net.segments.as_array()
    return pts[rng.integers(0, pts.size, size=size)], rng.random(size)


def assert_results_equal(a, b, paths=True):
    np.testing.assert_array_equal(a.sources, b.sources)
    np.testing.assert_array_equal(a.targets, b.targets)
    np.testing.assert_array_equal(a.source_idx, b.source_idx)
    np.testing.assert_array_equal(a.owner_idx, b.owner_idx)
    np.testing.assert_array_equal(a.t, b.t)
    np.testing.assert_array_equal(a.hops, b.hops)
    np.testing.assert_array_equal(a.points, b.points)
    if a.phase1_hops is not None or b.phase1_hops is not None:
        np.testing.assert_array_equal(a.phase1_hops, b.phase1_hops)
    if paths:
        np.testing.assert_array_equal(a.path_servers, b.path_servers)
        np.testing.assert_array_equal(a.path_offsets, b.path_offsets)


class TestSliceBounds:
    def test_covers_contiguously(self):
        bounds = slice_bounds(10, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        assert all(hi1 == lo2 for (_, hi1), (lo2, _) in
                   zip(bounds, bounds[1:]))
        assert sum(hi - lo for lo, hi in bounds) == 10

    def test_small_batch_uses_fewer_workers(self):
        assert slice_bounds(2, 8) == [(0, 1), (1, 2)]
        assert slice_bounds(1, 4) == [(0, 1)]
        assert slice_bounds(0, 4) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            slice_bounds(-1, 2)
        with pytest.raises(ValueError):
            slice_bounds(4, 0)


class TestMergeResults:
    def test_merge_of_slices_equals_unsliced(self):
        net = make_net()
        router = net.compile_router()
        src, tgt = make_workload(net)
        whole = router.batch_fast_lookup(src, tgt, keep_paths="csr")
        parts = [router.batch_fast_lookup(src[lo:hi], tgt[lo:hi],
                                          keep_paths="csr")
                 for lo, hi in slice_bounds(src.size, 4)]
        merged = merge_results(parts)
        assert_results_equal(merged, whole)

    def test_merge_reattaches_points(self):
        net = make_net(64)
        router = net.compile_router()
        src, tgt = make_workload(net, size=40)
        parts = [router.batch_fast_lookup(src[:20], tgt[:20]),
                 router.batch_fast_lookup(src[20:], tgt[20:])]
        for p in parts:
            p.points = None  # what shard workers strip before pickling
        merged = merge_results(parts, points=router.points)
        np.testing.assert_array_equal(merged.points, router.points)

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_results([])


class TestShardedExecutor:
    def test_fast_lookup_bit_identical(self):
        net = make_net()
        router = net.router(auto_refresh=True)
        src, tgt = make_workload(net)
        single = router.batch_fast_lookup(src, tgt, keep_paths="csr")
        with ShardedExecutor(router, workers=2) as ex:
            sharded = ex.batch_fast_lookup(src, tgt, keep_paths="csr")
        assert_results_equal(sharded, single)

    def test_resync_after_churn(self):
        net = make_net()
        router = net.router(auto_refresh=True)
        src, tgt = make_workload(net)
        with ShardedExecutor(router, workers=2) as ex:
            assert ex.syncs == 1
            ex.batch_fast_lookup(src, tgt)
            assert ex.syncs == 1  # fresh: sync is a no-op
            rng = np.random.default_rng(9)
            for _ in range(5):
                net.join(float(rng.random()))
            single = router.batch_fast_lookup(src, tgt, keep_paths="csr")
            sharded = ex.batch_fast_lookup(src, tgt, keep_paths="csr")
            assert ex.syncs == 2  # churn forced a re-export
            assert ex.version == router.version
            assert_results_equal(sharded, single)

    def test_dh_lookup_with_explicit_tau(self):
        net = make_net(128)
        router = net.router(auto_refresh=True, with_adjacency=True)
        src, tgt = make_workload(net, size=600, seed=3)
        tau = np.random.default_rng(4).integers(0, net.delta,
                                                size=(600, 64))
        single = router.batch_dh_lookup(src, tgt, tau=tau, keep_paths="csr")
        with ShardedExecutor(router, workers=2) as ex:
            sharded = ex.batch_dh_lookup(src, tgt, tau, keep_paths="csr")
        assert_results_equal(sharded, single)

    def test_dh_exports_adjacency_on_demand(self):
        net = make_net(64)
        router = net.router(auto_refresh=True)  # no adjacency yet
        src, tgt = make_workload(net, size=200, seed=5)
        tau = np.random.default_rng(6).integers(0, net.delta, size=(200, 64))
        with ShardedExecutor(router, workers=2) as ex:
            assert not ex._exported_adjacency
            sharded = ex.batch_dh_lookup(src, tgt, tau)
            assert ex._exported_adjacency
        single = router.batch_dh_lookup(src, tgt, tau=tau)
        assert_results_equal(sharded, single, paths=False)

    def test_tiny_batch_falls_back_in_process(self):
        net = make_net(64)
        router = net.router(auto_refresh=True)
        with ShardedExecutor(router, workers=4) as ex:
            res = ex.batch_fast_lookup([0.1], [0.9])
            assert res.size == 1

    def test_keep_paths_true_rejected(self):
        net = make_net(64)
        router = net.router(auto_refresh=True)
        with ShardedExecutor(router, workers=2) as ex:
            with pytest.raises(ValueError, match="csr"):
                ex.batch_fast_lookup([0.1], [0.9], keep_paths=True)

    def test_close_is_idempotent_and_final(self):
        net = make_net(64)
        router = net.router(auto_refresh=True)
        ex = ShardedExecutor(router, workers=2)
        ex.close()
        ex.close()  # second close is a no-op
        with pytest.raises(RuntimeError, match="closed"):
            ex.batch_fast_lookup([0.1], [0.9])

    def test_workers_below_two_rejected(self):
        net = make_net(64)
        router = net.router(auto_refresh=True)
        with pytest.raises(ValueError):
            ShardedExecutor(router, workers=1)


class TestRouterIntegration:
    def test_lookup_batch_workers_parity(self):
        net = make_net()
        router = net.router(auto_refresh=True)
        src, tgt = make_workload(net)
        single = router.lookup_batch(src, tgt)  # workers=1 path
        try:
            sharded = router.lookup_batch(src, tgt, workers=2)
        finally:
            router.close_executor()
        assert_results_equal(sharded, single, paths=False)

    def test_executor_cached_and_rebuilt_on_worker_change(self):
        net = make_net(64)
        router = net.router(auto_refresh=True)
        try:
            ex2 = router.sharded_executor(2)
            assert router.sharded_executor(2) is ex2
            ex3 = router.sharded_executor(3)
            assert ex3 is not ex2 and ex3.workers == 3
            assert ex2._pool is None  # old executor was closed
        finally:
            router.close_executor()

    def test_available_workers_positive(self):
        assert available_workers() >= 1
