"""Unit tests for De Bruijn graphs and the §2.1 isomorphism claim."""

import networkx as nx
import pytest

from repro.core.debruijn import (
    bit_reversal,
    debruijn_diameter,
    debruijn_graph,
    debruijn_nodes,
    debruijn_successors,
    distance_halving_is_debruijn,
    string_to_value,
    value_to_string,
)


class TestStructure:
    def test_node_count(self):
        assert len(list(debruijn_nodes(3))) == 8
        assert len(list(debruijn_nodes(2, delta=3))) == 9

    def test_edge_count_definition(self):
        # Definition 2: 2^r nodes, 2^{r+1} directed edges
        g = debruijn_graph(4)
        assert g.number_of_nodes() == 16
        assert g.number_of_edges() == 32

    def test_edge_count_delta(self):
        # Definition 4: Δ^r nodes and Δ^{r+1} edges
        g = debruijn_graph(2, delta=3)
        assert g.number_of_nodes() == 9
        assert g.number_of_edges() == 27

    def test_successors_shift_left(self):
        assert debruijn_successors((1, 0, 1)) == [(0, 1, 0), (0, 1, 1)]

    def test_out_degree_is_delta(self):
        g = debruijn_graph(3, delta=4)
        assert all(d == 4 for _, d in g.out_degree())

    def test_in_degree_is_delta(self):
        g = debruijn_graph(3, delta=4)
        assert all(d == 4 for _, d in g.in_degree())

    def test_rejects_r_zero(self):
        with pytest.raises(ValueError):
            list(debruijn_nodes(0))


class TestDiameter:
    @pytest.mark.parametrize("r,delta", [(3, 2), (4, 2), (2, 3), (3, 3)])
    def test_diameter_is_r(self, r, delta):
        """The De Bruijn graph meets the Moore bound: diameter log_Δ n = r."""
        g = debruijn_graph(r, delta)
        measured = max(
            max(lengths.values())
            for _, lengths in nx.all_pairs_shortest_path_length(g)
        )
        assert measured == debruijn_diameter(r, delta) == r


class TestValueConversions:
    def test_roundtrip(self):
        for v in range(16):
            assert string_to_value(value_to_string(v, 4)) == v

    def test_roundtrip_delta3(self):
        for v in range(27):
            assert string_to_value(value_to_string(v, 3, 3), 3) == v

    def test_bit_reversal_involution(self):
        s = (1, 0, 1, 1)
        assert bit_reversal(bit_reversal(s)) == s


class TestIsomorphism:
    """§2.1: G_x at x_i = i/Δ^r (no ring) ≅ the r-dimensional De Bruijn graph."""

    @pytest.mark.parametrize("r", [1, 2, 3, 4, 5])
    def test_binary(self, r):
        assert distance_halving_is_debruijn(r, 2)

    @pytest.mark.parametrize("r,delta", [(1, 3), (2, 3), (3, 3), (1, 4), (2, 4), (2, 5)])
    def test_general_alphabet(self, r, delta):
        assert distance_halving_is_debruijn(r, delta)
