"""Unit tests for the dynamic caching protocol (paper §3).

Checks the Continuous Hot Spots Protocol step by step (growth, blocking,
collapse), Observation 3.1's size bound, Lemma 3.3's depth bound, and the
content-update claim — plus the discrete mapping of active nodes to
servers (Figure 3).
"""

import itertools
import math

import numpy as np
import pytest

from repro.core import CacheSystem, DistanceHalvingNetwork
from repro.core.caching import ActiveTree, salt_indices, salted_key
from repro.core.pathtree import PathTree


def make_net(n=64, seed=0):
    rng = np.random.default_rng(seed)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(n)
    return net, rng


def drive_requests(cache, net, rng, item, count):
    pts = list(net.points())
    results = []
    for _ in range(count):
        src = pts[int(rng.integers(len(pts)))]
        results.append(cache.request(item, src, rng))
    return results


class TestActiveTreeProtocol:
    def test_root_always_active(self):
        tree = ActiveTree(PathTree(0.5), threshold=3)
        assert () in tree.active
        assert tree.size() == 1
        assert tree.is_leaf(())

    def test_serving_node_is_deepest_active_prefix(self):
        tree = ActiveTree(PathTree(0.5), threshold=3)
        tree.active |= {(0,), (1,), (0, 1)}
        assert tree.serving_node((0, 1, 1, 0)) == (0, 1)
        assert tree.serving_node((1, 1, 0)) == (1,)
        assert tree.serving_node(()) == ()

    def test_replication_after_threshold(self):
        tree = ActiveTree(PathTree(0.5), threshold=2)
        # two hits are fine, the third (> c) replicates
        tree.serve((0, 0))
        tree.serve((0, 1))
        assert tree.size() == 1
        node, rep = tree.serve((1, 0))
        assert rep
        assert tree.size() == 3
        assert (0,) in tree.active and (1,) in tree.active

    def test_blocked_leaf_does_not_replicate_twice(self):
        tree = ActiveTree(PathTree(0.5), threshold=1)
        tree.serve((0,))
        _, rep1 = tree.serve((1,))
        assert rep1
        # entry exactly at the root keeps hitting it but cannot re-replicate
        _, rep2 = tree.serve(())
        assert not rep2
        assert tree.size() == 3

    def test_deep_entries_stop_at_children_after_split(self):
        tree = ActiveTree(PathTree(0.5), threshold=1)
        tree.serve((0, 0))
        tree.serve((0, 1))  # replicates root -> children
        node, _ = tree.serve((0, 1))
        assert node == (0,)

    def test_collapse_quiet_epoch(self):
        tree = ActiveTree(PathTree(0.5), threshold=2)
        for tau in ((0, 0), (0, 1), (1, 0), (1, 1), (0, 0)):
            tree.serve(tau)
        assert tree.size() == 3
        tree.advance_epoch()  # children served < c each in the epoch? they
        # were hit 0 times (root served all) -> collapse
        assert tree.size() == 1

    def test_collapse_recursion_multiple_levels(self):
        tree = ActiveTree(PathTree(0.5), threshold=1)
        # force a depth-2 active tree
        tree.active |= {(0,), (1,), (0, 0), (0, 1)}
        removed = tree.advance_epoch()
        assert removed == 4
        assert tree.active == {()}

    def test_no_collapse_under_sustained_demand(self):
        tree = ActiveTree(PathTree(0.5), threshold=1)
        tree.active |= {(0,), (1,)}
        tree.served[(0,)] = 5
        tree.served[(1,)] = 5
        tree.advance_epoch()
        assert tree.size() == 3

    def test_counters_reset_between_epochs(self):
        tree = ActiveTree(PathTree(0.5), threshold=10)
        tree.serve((0,))
        tree.advance_epoch()
        assert sum(tree.served.values()) == 0
        assert tree.supplied_prev[()] == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ActiveTree(PathTree(0.1), threshold=0)


def _reference_collapse(active, served, c, delta=2):
    """Order-free fixpoint of steps 2–3 against *frozen* epoch counts."""
    active = set(active)
    removed = 0
    changed = True
    while changed:
        changed = False
        parents = {a[:-1] for a in active if a != ()}
        for parent in sorted(parents, key=len, reverse=True):
            siblings = [parent + (d,) for d in range(delta)]
            if not all(s in active for s in siblings):
                continue
            if any(any(s + (d,) in active for d in range(delta))
                   for s in siblings):
                continue  # not all leaves
            if all(served.get(s, 0) < c for s in siblings):
                for s in siblings:
                    active.discard(s)
                    removed += 1
                changed = True
    return active, removed


class TestAdvanceEpochOrderIndependence:
    """Regression pin for the step-2 recursion audit (ISSUE 6).

    The audit verdict: ``advance_epoch`` is order-independent because
    collapse decisions read only the ended epoch's ``served`` counters,
    which the sweep never mutates — these tests freeze that contract.
    """

    def test_decisions_use_current_epoch_counts_not_supplied_prev(self):
        tree = ActiveTree(PathTree(0.5), threshold=2)
        tree.active |= {(0,), (1,)}
        tree.served[(0,)] = 5
        tree.served[(1,)] = 5
        tree.advance_epoch()
        assert tree.size() == 3  # hot children survive their own epoch
        assert tree.supplied_prev[(0,)] == 5
        # next epoch is quiet: the (now stale) supplied_prev counts must
        # not keep the children alive
        removed = tree.advance_epoch()
        assert removed == 2
        assert tree.active == {()}

    def test_mixed_sibling_counts_block_the_group(self):
        tree = ActiveTree(PathTree(0.5), threshold=3)
        tree.active |= {(0,), (1,)}
        tree.served[(0,)] = 3   # exactly c: not cold
        tree.served[(1,)] = 2   # c - 1: cold
        assert tree.advance_epoch() == 0
        assert tree.size() == 3

    def test_cascade_does_not_consume_counts_mid_pass(self):
        # depth-2 tree where the deep group collapses and thereby turns
        # its parent into a leaf: the parent group must then be judged by
        # the same frozen counters, in the same call
        tree = ActiveTree(PathTree(0.5), threshold=2)
        tree.active |= {(0,), (1,), (0, 0), (0, 1)}
        tree.served[(0, 0)] = 1
        tree.served[(0, 1)] = 0
        tree.served[(1,)] = 1
        removed = tree.advance_epoch()
        assert removed == 4
        assert tree.active == {()}

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_order_free_reference(self, seed):
        """Random prefix-closed forests: the scalar sweep reaches exactly
        the reference fixpoint computed against frozen counts."""
        rng = np.random.default_rng(seed)
        c = int(rng.integers(1, 5))
        tree = ActiveTree(PathTree(0.3), threshold=c)
        # grow a random prefix-closed active set with full sibling groups
        frontier = [()]
        for _ in range(int(rng.integers(1, 8))):
            node = frontier[int(rng.integers(len(frontier)))]
            if len(node) >= 6:
                continue
            kids = [node + (0,), node + (1,)]
            if kids[0] not in tree.active:
                tree.active |= set(kids)
                frontier.extend(kids)
        for addr in list(tree.active):
            if rng.random() < 0.5:
                tree.served[addr] = int(rng.integers(0, 2 * c))
        expect_active, expect_removed = _reference_collapse(
            tree.active, dict(tree.served), c)
        removed = tree.advance_epoch()
        assert tree.active == expect_active
        assert removed == expect_removed


class TestSaltHelpers:
    def test_salt_indices_deterministic_and_in_range(self):
        pts = np.random.default_rng(0).random(1000)
        for s in (1, 2, 5):
            idx = salt_indices(pts, s)
            assert idx.min() >= 0 and idx.max() < s
            assert (idx == salt_indices(pts, s)).all()
        assert (salt_indices(pts, 1) == 0).all()

    def test_salt_indices_spread(self):
        pts = np.random.default_rng(1).random(4000)
        counts = np.bincount(salt_indices(pts, 4), minlength=4)
        assert (counts > 500).all()  # roughly balanced, no dead salt

    def test_salt_indices_validation(self):
        with pytest.raises(ValueError):
            salt_indices(np.asarray([0.5]), 0)

    def test_salted_keys_distinct(self):
        keys = {salted_key(item, j)
                for item, j in itertools.product(["x", 1, "1"], range(3))}
        assert len(keys) == 9  # types and salts never collide


class TestSaltedCacheSystem:
    def test_salts_route_to_salted_trees(self):
        net, rng = make_net(128, seed=20)
        cache = CacheSystem(net, threshold=2, salts=3)
        drive_requests(cache, net, rng, "hot", 150)
        assert all(isinstance(k, str) and "#salt" in k for k in cache.trees)
        assert cache.item_replications("hot") == sum(
            t.replications for t in cache.trees.values())
        assert cache.item_copies("hot") == cache.total_copies()

    def test_salts_one_is_the_plain_protocol(self):
        net, rng = make_net(64, seed=21)
        cache = CacheSystem(net, threshold=2)
        assert cache.route_key("hot", 0.25) == "hot"
        drive_requests(cache, net, rng, "hot", 50)
        assert set(cache.trees) == {"hot"}

    def test_salted_requests_still_shorten_paths(self):
        net, rng = make_net(64, seed=22)
        cache = CacheSystem(net, threshold=2, salts=2)
        for r in drive_requests(cache, net, rng, "hot", 100):
            assert r.hops <= r.lookup.hops

    def test_salts_validation(self):
        net, _ = make_net(16, seed=23)
        with pytest.raises(ValueError):
            CacheSystem(net, salts=0)


class TestObservation31:
    """Active tree ≤ 4q/c nodes at epoch end, for every initial tree."""

    @pytest.mark.parametrize("q,c", [(100, 5), (500, 10), (1000, 50)])
    def test_size_bound(self, q, c):
        rng = np.random.default_rng(q + c)
        tree = ActiveTree(PathTree(0.37), threshold=c)
        depth = 12
        for _ in range(q):
            tau = tuple(int(d) for d in rng.integers(0, 2, size=depth))
            tree.serve(tau)
        tree.advance_epoch()
        assert tree.size() <= max(1, 4 * q / c)


class TestLemma33:
    """Depth of the active tree ≤ log2(q/c) + O(1) w.h.p."""

    def test_depth_bound(self):
        rng = np.random.default_rng(1)
        c = 8
        q = 1024
        tree = ActiveTree(PathTree(0.61), threshold=c)
        for _ in range(q):
            tau = tuple(int(d) for d in rng.integers(0, 2, size=16))
            tree.serve(tau)
        assert tree.depth() <= math.log2(q / c) + 3


class TestCacheSystem:
    def test_requests_are_served_by_active_nodes(self):
        net, rng = make_net(64, seed=2)
        cache = CacheSystem(net, threshold=4)
        res = drive_requests(cache, net, rng, "hot", 50)
        for r in res:
            assert r.serving_node in cache.tree_for("hot").active

    def test_cache_path_never_longer_than_plain_lookup(self):
        """'No Caching Latency': serving at a cache only shortens the path."""
        net, rng = make_net(64, seed=3)
        cache = CacheSystem(net, threshold=2)
        res = drive_requests(cache, net, rng, "hot", 100)
        for r in res:
            assert r.hops <= r.lookup.hops

    def test_hot_item_replicates(self):
        net, rng = make_net(64, seed=4)
        cache = CacheSystem(net, threshold=2)
        drive_requests(cache, net, rng, "hot", 100)
        assert cache.tree_for("hot").size() > 1

    def test_cold_items_stay_single_copy(self):
        net, rng = make_net(64, seed=5)
        cache = CacheSystem(net, threshold=50)
        for i in range(20):
            drive_requests(cache, net, rng, f"cold{i}", 1)
        assert cache.total_copies() == 0

    def test_default_threshold_is_log_n(self):
        net, _ = make_net(256, seed=6)
        cache = CacheSystem(net)
        assert cache.c == 8

    def test_epoch_collapse_after_demand_stops(self):
        net, rng = make_net(64, seed=7)
        cache = CacheSystem(net, threshold=2)
        drive_requests(cache, net, rng, "hot", 200)
        cache.advance_epoch()  # hot epoch ends; counters reset
        removed = cache.advance_epoch()  # fully quiet epoch: collapse
        assert removed > 0
        assert cache.tree_for("hot").size() == 1

    def test_items_cached_accounting(self):
        net, rng = make_net(64, seed=8)
        cache = CacheSystem(net, threshold=2)
        drive_requests(cache, net, rng, "hot", 100)
        total = sum(cache.items_cached_at(p) for p in net.segments)
        # every active node lives on exactly one server
        assert total >= 1
        assert cache.max_items_cached() >= 1

    def test_requests_counter(self):
        net, rng = make_net(32, seed=9)
        cache = CacheSystem(net, threshold=3)
        drive_requests(cache, net, rng, "a", 17)
        assert cache.requests_served == 17
        assert cache.summary()["requests"] == 17.0


class TestContentUpdate:
    """§3 Content Update: O(log n) messages and time down the active tree."""

    def test_update_cost_matches_tree(self):
        net, rng = make_net(64, seed=10)
        cache = CacheSystem(net, threshold=2)
        drive_requests(cache, net, rng, "hot", 300)
        tree = cache.tree_for("hot")
        messages, time = tree.update_content(net)
        assert messages == tree.size() - 1
        assert time == tree.depth()
        q, c = 300, 2
        assert messages <= 4 * q / c
        assert time <= math.log2(q / c) + 3

    def test_update_on_cold_tree_is_free(self):
        net, rng = make_net(32, seed=11)
        cache = CacheSystem(net, threshold=5)
        tree = cache.tree_for("x")
        assert tree.update_content(net) == (0, 0)
