"""Unit tests for the lookup algorithms (paper §2.2).

Validates correctness (the path ends at the covering server and respects
adjacency), the Corollary 2.5 / Theorem 2.8 path-length bounds, and the
obliviousness / determinism properties noted in §2.2.3.
"""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core import DistanceHalvingNetwork, dh_lookup, fast_lookup


def make_net(n, seed=0, delta=2, smooth=False, with_ring=True):
    rng = np.random.default_rng(seed)
    net = DistanceHalvingNetwork(delta=delta, with_ring=with_ring, rng=rng)
    if smooth:
        for i in range(n):
            net.join(Fraction(i, n))
    else:
        net.populate(n)
    return net, rng


class TestFastLookupCorrectness:
    def test_reaches_owner(self):
        net, rng = make_net(128, seed=1)
        pts = list(net.points())
        for _ in range(100):
            src = pts[int(rng.integers(len(pts)))]
            y = float(rng.random())
            res = fast_lookup(net, src, y)
            assert res.server_path[-1] == res.owner
            assert res.owner == net.segments.cover_point(y)

    def test_path_respects_adjacency(self):
        net, rng = make_net(128, seed=2)
        pts = list(net.points())
        for _ in range(50):
            src = pts[int(rng.integers(len(pts)))]
            res = fast_lookup(net, src, float(rng.random()))
            assert res.verify_adjacent(net)

    def test_local_target_zero_hops(self):
        net, _ = make_net(64, seed=3)
        src = list(net.points())[10]
        seg = net.segment_of(src)
        res = fast_lookup(net, src, float(seg.midpoint))
        assert res.hops == 0
        assert res.t == 0

    def test_deterministic(self):
        net, _ = make_net(64, seed=4)
        src = list(net.points())[7]
        r1 = fast_lookup(net, src, 0.123)
        r2 = fast_lookup(net, src, 0.123)
        assert r1.server_path == r2.server_path

    def test_single_server_network(self):
        net = DistanceHalvingNetwork()
        net.join(0.5)
        res = fast_lookup(net, 0.5, 0.123)
        assert res.hops == 0

    def test_two_server_network(self):
        net = DistanceHalvingNetwork()
        net.join(0.0)
        net.join(0.5)
        for y in (0.1, 0.6, 0.99):
            res = fast_lookup(net, 0.0, y)
            assert res.server_path[-1] == net.segments.cover_point(y)


class TestFastLookupBound:
    """Corollary 2.5: path length ≤ log n + log ρ + 1 (in steps of the walk)."""

    @pytest.mark.parametrize("n", [16, 64, 256, 1024])
    def test_t_bound_random_ids(self, n):
        net, rng = make_net(n, seed=n)
        rho = net.smoothness()
        bound = math.log2(n) + math.log2(rho) + 1
        pts = list(net.points())
        for _ in range(50):
            src = pts[int(rng.integers(len(pts)))]
            res = fast_lookup(net, src, float(rng.random()))
            assert res.t <= bound + 1e-9
            assert res.hops <= res.t  # compression only shortens

    def test_t_bound_smooth(self):
        n = 256
        net, rng = make_net(n, smooth=True)
        # ρ = 1: bound is log n + 1
        for _ in range(50):
            src = list(net.points())[int(rng.integers(n))]
            res = fast_lookup(net, src, float(rng.random()))
            assert res.t <= math.log2(n) + 1

    def test_uses_local_knowledge_only(self):
        """Fast lookup needs no n or ρ: t is discovered, not computed."""
        net, rng = make_net(100, seed=6)
        src = list(net.points())[0]
        res = fast_lookup(net, src, 0.777)
        # t is minimal: walking one step fewer must leave the segment
        g = net.graph
        seg = net.segment_of(src)
        if res.t > 0:
            shorter = g.approach_digits(seg.midpoint, res.t - 1)
            assert g.walk(shorter, 0.777) not in seg


class TestDHLookupCorrectness:
    def test_reaches_owner(self):
        net, rng = make_net(128, seed=10)
        pts = list(net.points())
        for _ in range(100):
            src = pts[int(rng.integers(len(pts)))]
            y = float(rng.random())
            res = dh_lookup(net, src, y, rng)
            assert res.server_path[-1] == res.owner

    def test_path_respects_adjacency(self):
        net, rng = make_net(128, seed=11)
        pts = list(net.points())
        for _ in range(50):
            src = pts[int(rng.integers(len(pts)))]
            res = dh_lookup(net, src, float(rng.random()), rng)
            assert res.verify_adjacent(net)

    def test_fixed_tau_is_deterministic(self):
        net, rng = make_net(64, seed=12)
        src = list(net.points())[3]
        tau = [0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1, 0, 1, 1, 0, 0] * 3
        r1 = dh_lookup(net, src, 0.345, rng, tau=tau)
        r2 = dh_lookup(net, src, 0.345, rng, tau=tau)
        assert r1.server_path == r2.server_path
        assert r1.phase2_digits == r2.phase2_digits

    def test_phase2_digits_prefix_of_tau(self):
        net, rng = make_net(64, seed=13)
        src = list(net.points())[5]
        tau = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 0, 1, 1] * 3
        res = dh_lookup(net, src, 0.62, rng, tau=tau)
        assert list(res.phase2_digits) == tau[: len(res.phase2_digits)]

    def test_exhausted_tau_raises(self):
        net, rng = make_net(256, seed=14)
        src = list(net.points())[0]
        with pytest.raises(ValueError):
            dh_lookup(net, src, 0.9, rng, tau=[0])

    def test_single_server(self):
        net = DistanceHalvingNetwork()
        net.join(0.2)
        rng = np.random.default_rng(0)
        res = dh_lookup(net, 0.2, 0.8, rng)
        assert res.hops == 0


class TestTheorem28Bound:
    """Theorem 2.8: DH lookup path ≤ 2 log n + 2 log ρ."""

    @pytest.mark.parametrize("n", [32, 128, 512])
    def test_hop_bound(self, n):
        net, rng = make_net(n, seed=n + 1)
        rho = net.smoothness()
        bound = 2 * math.log2(n) + 2 * math.log2(rho)
        pts = list(net.points())
        for _ in range(50):
            src = pts[int(rng.integers(len(pts)))]
            res = dh_lookup(net, src, float(rng.random()), rng)
            # hops ≤ phase-I t + phase-II t + O(1) junction
            assert res.hops <= bound + 2

    def test_smooth_bound_tight(self):
        n = 256
        net, rng = make_net(n, smooth=True)
        hops = []
        for _ in range(200):
            src = list(net.points())[int(rng.integers(n))]
            hops.append(dh_lookup(net, src, float(rng.random()), rng).hops)
        assert max(hops) <= 2 * math.log2(n) + 2
        # and it actually routes (not degenerate)
        assert np.mean(hops) > 2


class TestGeneralDelta:
    """Theorem 2.13: degree Δ gives path length Θ(log_Δ n)."""

    @pytest.mark.parametrize("delta", [2, 4, 8])
    def test_fast_lookup_delta(self, delta):
        n = 256
        net, rng = make_net(n, seed=delta, delta=delta, smooth=True)
        bound = math.log(n, delta) + 1
        for _ in range(40):
            src = list(net.points())[int(rng.integers(n))]
            res = fast_lookup(net, src, float(rng.random()))
            assert res.t <= bound + 1e-9

    @pytest.mark.parametrize("delta", [2, 4, 8])
    def test_dh_lookup_delta(self, delta):
        n = 256
        net, rng = make_net(n, seed=delta + 100, delta=delta, smooth=True)
        for _ in range(40):
            src = list(net.points())[int(rng.integers(n))]
            res = dh_lookup(net, src, float(rng.random()), rng)
            assert res.server_path[-1] == res.owner

    def test_larger_delta_shorter_paths(self):
        n = 1024
        t2, t16 = [], []
        net2, rng2 = make_net(n, seed=50, delta=2, smooth=True)
        net16, rng16 = make_net(n, seed=51, delta=16, smooth=True)
        for _ in range(100):
            s2 = list(net2.points())[int(rng2.integers(n))]
            t2.append(fast_lookup(net2, s2, float(rng2.random())).t)
            s16 = list(net16.points())[int(rng16.integers(n))]
            t16.append(fast_lookup(net16, s16, float(rng16.random())).t)
        assert np.mean(t16) < np.mean(t2) / 2


class TestWithoutRing:
    def test_dh_lookup_still_works(self):
        net, rng = make_net(128, seed=60, with_ring=False)
        pts = list(net.points())
        for _ in range(30):
            src = pts[int(rng.integers(len(pts)))]
            res = dh_lookup(net, src, float(rng.random()), rng)
            assert res.server_path[-1] == res.owner
