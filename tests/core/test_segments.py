"""Unit tests for the dynamic segment decomposition (paper §2.1)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.interval import Arc
from repro.core.segments import SegmentMap


@pytest.fixture
def quarters():
    return SegmentMap([0.0, 0.25, 0.5, 0.75])


class TestConstruction:
    def test_empty(self):
        sm = SegmentMap()
        assert len(sm) == 0
        with pytest.raises(LookupError):
            sm.cover(0.5)

    def test_points_sorted(self):
        sm = SegmentMap([0.7, 0.1, 0.4])
        assert list(sm.points) == [0.1, 0.4, 0.7]

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            SegmentMap([0.3, 0.3])

    def test_normalizes_inputs(self):
        sm = SegmentMap([1.25, -0.5])
        assert list(sm.points) == [0.25, 0.5]


class TestCover:
    def test_interior(self, quarters):
        assert quarters.cover(0.3) == 1
        assert quarters.cover_point(0.3) == 0.25

    def test_point_is_own_cover(self, quarters):
        for i, p in enumerate(quarters.points):
            assert quarters.cover(p) == i

    def test_wrap_before_first(self):
        sm = SegmentMap([0.2, 0.6])
        # [0.6, 1)∪[0, 0.2) belongs to the last server
        assert sm.cover(0.1) == 1
        assert sm.cover(0.7) == 1
        assert sm.cover(0.3) == 0

    def test_single_server_covers_everything(self):
        sm = SegmentMap([0.4])
        for y in (0.0, 0.4, 0.9):
            assert sm.cover(y) == 0


class TestSegments:
    def test_segment_arcs(self, quarters):
        assert quarters.segment(0) == Arc(0.0, 0.25)
        assert quarters.segment(3) == Arc(0.75, 0.0)  # wrapping last segment

    def test_segment_of_point(self, quarters):
        assert quarters.segment_of(0.5) == Arc(0.5, 0.75)

    def test_single_segment_is_full_ring(self):
        sm = SegmentMap([0.3])
        assert float(sm.segment(0).length) == 1

    def test_lengths_sum_to_one(self, quarters):
        assert quarters.lengths().sum() == pytest.approx(1.0)

    def test_lengths_random(self):
        rng = np.random.default_rng(0)
        sm = SegmentMap(rng.random(100))
        assert sm.lengths().sum() == pytest.approx(1.0)
        assert len(sm.lengths()) == 100

    def test_predecessor_successor_ring(self, quarters):
        assert quarters.predecessor(0.0) == 0.75
        assert quarters.successor(0.75) == 0.0
        assert quarters.successor(0.25) == 0.5


class TestMutation:
    def test_insert_returns_index(self, quarters):
        assert quarters.insert(0.3) == 2
        assert quarters.cover(0.35) == 2

    def test_insert_duplicate_rejected(self, quarters):
        with pytest.raises(ValueError):
            quarters.insert(0.25)

    def test_insert_splits_segment(self, quarters):
        before = quarters.segment_of(0.25)
        quarters.insert(0.3)
        after = quarters.segment_of(0.25)
        assert float(after.length) < float(before.length)
        assert quarters.segment_of(0.3) == Arc(0.3, 0.5)

    def test_remove(self, quarters):
        quarters.remove(0.25)
        assert 0.25 not in quarters
        # predecessor's segment absorbed the range
        assert quarters.segment_of(0.0) == Arc(0.0, 0.5)

    def test_remove_missing_raises(self, quarters):
        with pytest.raises(KeyError):
            quarters.remove(0.33)

    def test_index_of_missing_raises(self, quarters):
        with pytest.raises(KeyError):
            quarters.index_of(0.33)

    def test_churn_preserves_invariants(self):
        rng = np.random.default_rng(42)
        sm = SegmentMap()
        alive = []
        for step in range(500):
            if not alive or rng.random() < 0.6:
                p = float(rng.random())
                if p not in sm:
                    sm.insert(p)
                    alive.append(p)
            else:
                p = alive.pop(int(rng.integers(len(alive))))
                sm.remove(p)
            if len(sm):
                sm.check_invariants()


class TestCovering:
    def test_arc_within_one_segment(self, quarters):
        assert quarters.covering(Arc(0.3, 0.4)) == [1]

    def test_arc_spanning_boundary(self, quarters):
        assert sorted(quarters.covering(Arc(0.2, 0.3))) == [0, 1]

    def test_arc_starting_on_boundary(self, quarters):
        assert quarters.covering(Arc(0.25, 0.5)) == [1]

    def test_wrapping_arc(self, quarters):
        assert sorted(quarters.covering(Arc(0.9, 0.1))) == [0, 3]

    def test_full_ring_covers_all(self, quarters):
        assert sorted(quarters.covering(Arc(0.0, 0.0))) == [0, 1, 2, 3]

    def test_single_server(self):
        sm = SegmentMap([0.5])
        assert sm.covering(Arc(0.1, 0.2)) == [0]

    def test_covering_points(self, quarters):
        assert quarters.covering_points(Arc(0.2, 0.3)) == [0.0, 0.25]

    def test_covering_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        sm = SegmentMap(rng.random(50))
        for _ in range(50):
            a, b = float(rng.random()), float(rng.random())
            arc = Arc(a, b)
            got = set(sm.covering(arc))
            # brute force: sample the arc densely and collect covers
            expect = set()
            for i in range(len(sm)):
                if sm.segment(i).intersection_length(arc) > 0:
                    expect.add(i)
                elif any(pa in arc for pa, _ in sm.segment(i).pieces()):
                    expect.add(i)
            assert got == expect


class TestSmoothness:
    def test_equal_spacing_is_perfectly_smooth(self):
        sm = SegmentMap([i / 8 for i in range(8)])
        assert sm.smoothness() == pytest.approx(1.0)

    def test_definition_ratio(self):
        sm = SegmentMap([0.0, 0.1, 0.5])  # lengths 0.1, 0.4, 0.5
        assert sm.smoothness() == pytest.approx(5.0)

    def test_is_smooth_predicate(self):
        sm = SegmentMap([0.0, 0.1, 0.5])
        assert sm.is_smooth(5.0)
        assert not sm.is_smooth(4.9)

    def test_random_points_rho_grows(self):
        """Lemma 4.1: uniform ids give max ~ log n / n, min ~ 1/n²: ρ ≫ 1."""
        rng = np.random.default_rng(11)
        sm = SegmentMap(rng.random(1000))
        assert sm.smoothness() > 10.0

    def test_exact_fraction_mode(self):
        sm = SegmentMap([Fraction(0), Fraction(1, 4), Fraction(1, 2)])
        assert sm.segment(0).length == Fraction(1, 4)
        assert sm.segment(2).length == Fraction(1, 2)
        assert sm.smoothness() == pytest.approx(2.0)
