"""Edge-case coverage: small helpers and error paths across core modules."""

import numpy as np
import pytest

from repro.core import DistanceHalvingNetwork, dh_lookup, fast_lookup
from repro.core.lookup import LookupResult
from repro.core.node import Server
from repro.core.segments import SegmentMap
from repro.sim.engine import EventLoop
from repro.sim.metrics import summarize


class TestServer:
    def test_default_name_from_point(self):
        s = Server(point=0.125)
        assert "0.125" in s.name

    def test_reset_counters(self):
        s = Server(point=0.5, name="x")
        s.messages_handled = 7
        s.lookups_initiated = 3
        s.reset_counters()
        assert s.messages_handled == 0 and s.lookups_initiated == 0

    def test_hashable_by_point(self):
        assert hash(Server(point=0.25)) == hash(Server(point=0.25, name="other"))


class TestLookupResult:
    def test_source_property(self):
        r = LookupResult(target=0.5, owner=0.4, server_path=[0.1, 0.4],
                         continuous_path=[], t=1)
        assert r.source == 0.1
        assert r.hops == 1

    def test_zero_hop_result(self):
        r = LookupResult(target=0.5, owner=0.4, server_path=[0.4],
                         continuous_path=[], t=0)
        assert r.hops == 0


class TestSegmentMapExtras:
    def test_as_array_dtype(self):
        sm = SegmentMap([0.5, 0.25])
        arr = sm.as_array()
        assert arr.dtype == np.float64
        assert list(arr) == [0.25, 0.5]

    def test_empty_analytics_raise(self):
        sm = SegmentMap()
        with pytest.raises(LookupError):
            sm.smoothness()
        with pytest.raises(LookupError):
            sm.min_segment_length()
        with pytest.raises(LookupError):
            sm.max_segment_length()
        with pytest.raises(LookupError):
            sm.covering_points(__import__("repro.core.interval", fromlist=["Arc"]).Arc(0.1, 0.2))

    def test_contains(self):
        sm = SegmentMap([0.5])
        assert 0.5 in sm
        assert 0.25 not in sm


class TestNetworkExtras:
    def test_server_at_and_owner_of(self):
        net = DistanceHalvingNetwork()
        net.join(0.2)
        net.join(0.7)
        assert net.server_at(0.2).point == 0.2
        assert net.owner_of(0.5).point == 0.2
        assert net.owner_of(0.9).point == 0.7

    def test_points_sorted_view(self):
        net = DistanceHalvingNetwork()
        for p in (0.9, 0.1, 0.5):
            net.join(p)
        assert list(net.points()) == [0.1, 0.5, 0.9]

    def test_average_degree_empty(self):
        assert DistanceHalvingNetwork().average_degree() == 0.0

    def test_lookup_from_non_server_point(self):
        """Sources may be arbitrary points; routing starts at their cover."""
        rng = np.random.default_rng(0)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(32)
        res = fast_lookup(net, 0.123456, 0.9)
        assert res.server_path[0] == net.segments.cover_point(0.123456)
        res2 = dh_lookup(net, 0.123456, 0.9, rng)
        assert res2.server_path[-1] == net.segments.cover_point(0.9)


class TestEngineExtras:
    def test_max_events_cap(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule(1.0, reschedule)

        loop.schedule(1.0, reschedule)
        loop.run(max_events=25)
        assert loop.events_run == 25

    def test_pending_count(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.pending() == 2


class TestMetricsExtras:
    def test_summary_as_dict(self):
        d = summarize([1.0, 2.0, 3.0]).as_dict()
        assert d["count"] == 3.0
        assert d["mean"] == pytest.approx(2.0)


class TestCliErrors:
    def test_failing_experiment_sets_exit_code(self, monkeypatch, capsys):
        from repro.cli import main
        from repro.experiments import common

        def fake(seed=0, quick=False):
            return common.ExperimentResult("FAKE", "t", "c", checks={"x": False})

        monkeypatch.setitem(common._REGISTRY, "FAKE", fake)
        assert main(["run", "FAKE"]) == 1
