"""The shared columnar-snapshot layer (core/snapshot.py).

Contract of the extraction: a frozen-column snapshot over a bounded
:class:`OpJournal` refreshes *incrementally* while the pending-op count
fits the budget and the journal window, falls back to a full rebuild
otherwise (budget exceeded, journal trimmed, subclass bail-out,
``force_full``), raises an actionable :class:`StaleSnapshotError` when
queried stale without ``auto_refresh``, and books every consumed op in
exactly one refresh-stats bucket.
"""

import numpy as np
import pytest

from repro.core.snapshot import (
    ColumnarSnapshot,
    OpJournal,
    SnapshotRefreshStats,
    StaleSnapshotError,
)


class ListSnapshot(ColumnarSnapshot):
    """Minimal concrete snapshot: one sorted column over a Python list.

    Ops are ``("insert", value, idx)`` / ``("remove", value, idx)``
    against the already-mutated ``source`` list.
    """

    COLUMNS = ("vals",)

    def __init__(self, source, journal, **kwargs):
        self._source = source
        self.rebuild_calls = 0
        self.patch_calls = 0
        super().__init__(journal=journal, **kwargs)

    def _rebuild(self):
        self.rebuild_calls += 1
        self.vals = np.asarray(sorted(self._source), dtype=np.float64)

    def _patch(self, pending):
        self.patch_calls += 1
        for kind, value, idx in pending:
            if kind == "insert":
                self.insert_row(idx, vals=value)
            else:
                self.delete_row(idx)
        return True


class NoPatchSnapshot(ListSnapshot):
    """A subclass without a patch rule (inherits the bail-out default)."""

    def _patch(self, pending):
        self.patch_calls += 1
        return False


def make(cls=ListSnapshot, values=(0.5, 0.25), cap=8192, **kwargs):
    journal = OpJournal(cap=cap)
    source = list(values)
    snap = cls(source, journal, **kwargs)
    return source, journal, snap


def insert(source, journal, value):
    source.append(value)
    idx = sorted(source).index(value)
    journal.append(("insert", value, idx))


def remove(source, journal, value):
    idx = sorted(source).index(value)
    source.remove(value)
    journal.append(("remove", value, idx))


class TestOpJournal:
    def test_append_bumps_version(self):
        j = OpJournal()
        assert j.version == 0
        assert j.append(("op", 1)) == 1
        assert j.append(("op", 2)) == 2
        assert j.ops_since(0) == [("op", 1), ("op", 2)]
        assert j.ops_since(1) == [("op", 2)]
        assert j.ops_since(2) == []

    def test_window_eviction_returns_none(self):
        j = OpJournal(cap=4)
        for i in range(10):
            j.append(("op", i))
        # versions 0..5 fell out of the 4-entry window
        assert j.ops_since(5) is None
        assert j.ops_since(6) == [("op", i) for i in range(6, 10)]
        assert j.ops_since(10) == []

    def test_future_version_rejected(self):
        j = OpJournal()
        j.append(("op",))
        with pytest.raises(ValueError):
            j.ops_since(2)


class TestBuildAndPatch:
    def test_initial_build_matches_source(self):
        _, journal, snap = make(values=(0.5, 0.25, 0.75))
        assert snap.version == journal.version == 0
        assert not snap.is_stale
        np.testing.assert_array_equal(snap.vals, [0.25, 0.5, 0.75])
        assert snap.n_rows == 3

    def test_incremental_patch_within_budget(self):
        source, journal, snap = make()
        insert(source, journal, 0.125)
        remove(source, journal, 0.5)
        assert snap.is_stale
        snap.refresh()
        np.testing.assert_array_equal(snap.vals, sorted(source))
        assert snap.version == journal.version
        assert snap.rebuild_calls == 1  # only the constructor
        st = snap.refresh_stats
        assert (st.refreshes, st.incremental, st.full_rebuilds) == (1, 1, 0)
        assert (st.ops_replayed, st.ops_absorbed) == (2, 0)

    def test_budget_triggers_full_rebuild(self):
        source, journal, snap = make(budget=3)
        for i in range(5):
            insert(source, journal, 0.01 * (i + 1))
        snap.refresh()
        np.testing.assert_array_equal(snap.vals, sorted(source))
        assert snap.rebuild_calls == 2
        assert snap.patch_calls == 0  # never attempted beyond budget
        st = snap.refresh_stats
        assert (st.incremental, st.full_rebuilds) == (0, 1)
        assert (st.ops_replayed, st.ops_absorbed) == (0, 5)

    def test_journal_window_eviction_triggers_full_rebuild(self):
        source, journal, snap = make(cap=4, budget=1000)
        for i in range(6):  # > cap: the suffix since v0 is gone
            insert(source, journal, 0.01 * (i + 1))
        snap.refresh()
        np.testing.assert_array_equal(snap.vals, sorted(source))
        assert snap.rebuild_calls == 2
        assert snap.refresh_stats.full_rebuilds == 1
        assert snap.refresh_stats.ops_absorbed == 6

    def test_subclass_bailout_falls_back(self):
        source, journal, snap = make(cls=NoPatchSnapshot)
        insert(source, journal, 0.1)
        snap.refresh()
        np.testing.assert_array_equal(snap.vals, sorted(source))
        assert snap.patch_calls == 1  # attempted, bailed
        assert snap.rebuild_calls == 2
        assert snap.refresh_stats.full_rebuilds == 1

    def test_force_full_rebuilds_even_when_fresh(self):
        _, _, snap = make()
        snap.refresh(force_full=True)
        assert snap.rebuild_calls == 2
        st = snap.refresh_stats
        assert (st.refreshes, st.full_rebuilds, st.ops_absorbed) == (1, 1, 0)

    def test_refresh_noop_when_fresh(self):
        _, _, snap = make()
        assert snap.refresh() is snap
        assert snap.refresh_stats.refreshes == 0

    def test_every_op_in_exactly_one_bucket(self):
        source, journal, snap = make(budget=2)
        insert(source, journal, 0.1)
        snap.refresh()  # 1 op incremental
        for i in range(4):
            insert(source, journal, 0.2 + 0.01 * i)
        snap.refresh()  # 4 ops over budget -> absorbed
        st = snap.refresh_stats
        assert st.ops_synced() == journal.version == 5
        assert (st.ops_replayed, st.ops_absorbed) == (1, 4)
        assert st.seconds >= 0.0
        assert st.seconds_per_op() == st.seconds / 5


class TestStaleness:
    def test_stale_query_raises_without_auto_refresh(self):
        source, journal, snap = make(stale_error="custom stale message")
        insert(source, journal, 0.9)
        with pytest.raises(StaleSnapshotError, match="custom stale message"):
            snap.ensure_fresh()

    def test_stale_error_is_a_runtime_error(self):
        source, journal, snap = make()
        insert(source, journal, 0.9)
        with pytest.raises(RuntimeError):
            snap.ensure_fresh()

    def test_auto_refresh_syncs_on_query(self):
        source, journal, snap = make(auto_refresh=True)
        insert(source, journal, 0.9)
        snap.ensure_fresh()
        assert not snap.is_stale
        np.testing.assert_array_equal(snap.vals, sorted(source))

    def test_static_snapshot_never_stale(self):
        snap = ListSnapshot([0.5], journal=None)
        assert not snap.is_stale
        snap.ensure_fresh()  # no journal, no error
        assert snap.version == 0


class TestRowEdits:
    class TwoCol(ColumnarSnapshot):
        COLUMNS = ("a", "b")

        def _rebuild(self):
            self.a = np.array([1.0, 2.0, 3.0])
            self.b = np.array([10, 20, 30], dtype=np.int64)

    def test_insert_row_aligns_all_columns(self):
        snap = self.TwoCol()
        snap.insert_row(1, a=1.5)  # b not supplied -> zero of its dtype
        np.testing.assert_array_equal(snap.a, [1.0, 1.5, 2.0, 3.0])
        np.testing.assert_array_equal(snap.b, [10, 0, 20, 30])
        assert snap.b.dtype == np.int64
        assert snap.n_rows == 4

    def test_delete_row_aligns_all_columns(self):
        snap = self.TwoCol()
        snap.delete_row(1)
        np.testing.assert_array_equal(snap.a, [1.0, 3.0])
        np.testing.assert_array_equal(snap.b, [10, 30])
        assert snap.n_rows == 2

    def test_snapshot_columns_is_the_export_surface(self):
        snap = self.TwoCol()
        cols = snap.snapshot_columns()
        assert set(cols) == {"a", "b"}
        assert cols["a"] is snap.a and cols["b"] is snap.b


class TestStatsDataclass:
    def test_zero_ops_rate_is_zero(self):
        st = SnapshotRefreshStats()
        assert st.ops_synced() == 0
        assert st.seconds_per_op() == 0.0
