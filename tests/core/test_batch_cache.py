"""Unit and regression tests for the batch caching engine (§3, vectorized).

Edge cases of the epoch machinery: the exact ``c`` boundary, a hit storm
pinned to the root, a collapse where the children split ``c-1`` / ``c``,
salted-mode counter merging, and degenerate batch shapes — each checked
against the scalar :class:`~repro.core.caching.CacheSystem` reference
where a replay is meaningful.
"""

import numpy as np
import pytest

from repro.core import (
    BatchCacheEngine,
    CacheSystem,
    DistanceHalvingNetwork,
    decode_node_key,
    encode_node_key,
)
from repro.core.lookup import dh_lookup
from repro.core.routing_stats import BatchCongestion


def make_net(n=64, seed=0):
    rng = np.random.default_rng(seed)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(n)
    return net


def deep_source(net, target, tau, min_t=1):
    """A server point whose lookup toward ``target`` consumes ≥ min_t digits."""
    rng = np.random.default_rng(0)
    for p in net.segments.as_array():
        res = dh_lookup(net, float(p), target, rng, tau=tau)
        if res.t >= min_t:
            return float(p)
    raise AssertionError("no source with a deep enough walk")  # pragma: no cover


def scalar_replay(net, items, threshold, salts, item_idx, sources, tau):
    """Drive a scalar CacheSystem over the identical request stream."""
    scal = CacheSystem(net, threshold=threshold, salts=salts)
    rng = np.random.default_rng(0)  # unused: tau pins every digit
    out = []
    for i in range(len(item_idx)):
        out.append(scal.request(items[int(item_idx[i])], float(sources[i]),
                                rng, tau=tuple(int(d) for d in tau[i])))
    return scal, out


class TestNodeKeys:
    def test_roundtrip(self):
        for delta in (2, 3, 4):
            for addr in [(), (0,), (1, 0), (0, 1, delta - 1), (delta - 1,) * 5]:
                key = encode_node_key(addr, delta)
                assert decode_node_key(key, delta) == addr

    def test_root_is_zero(self):
        assert encode_node_key((), 2) == 0
        assert decode_node_key(0, 2) == ()

    def test_bijective_on_a_range(self):
        seen = {decode_node_key(k, 2) for k in range(2**6 - 1)}
        assert len(seen) == 2**6 - 1  # all distinct: the code is injective

    def test_digit_validation(self):
        with pytest.raises(ValueError):
            encode_node_key((2,), 2)
        with pytest.raises(ValueError):
            decode_node_key(-1, 2)


class TestConstruction:
    def test_empty_universe_rejected(self):
        net = make_net(16)
        with pytest.raises(ValueError):
            BatchCacheEngine(net, [])

    def test_bad_salts_rejected(self):
        net = make_net(16)
        with pytest.raises(ValueError):
            BatchCacheEngine(net, ["a"], salts=0)

    def test_bad_threshold_rejected(self):
        net = make_net(16)
        with pytest.raises(ValueError):
            BatchCacheEngine(net, ["a"], threshold=0)

    def test_default_threshold_is_log_n(self):
        net = make_net(256)
        assert BatchCacheEngine(net, ["a"]).c == 8

    def test_tree_index_bounds(self):
        net = make_net(16)
        eng = BatchCacheEngine(net, ["a", "b"], salts=2)
        assert eng.tree_index(1, 1) == 3
        with pytest.raises(IndexError):
            eng.tree_index(2, 0)
        with pytest.raises(IndexError):
            eng.tree_index(0, 2)


class TestDegenerateBatches:
    def test_empty_batch(self):
        net = make_net(32, seed=1)
        eng = BatchCacheEngine(net, ["a"], threshold=3)
        cong = BatchCongestion()
        res = eng.serve_batch([], [], congestion=cong)
        assert res.size == 0
        assert res.path_offsets.tolist() == [0]
        assert eng.requests_served == 0
        assert cong.lookups == 0
        assert eng.summary()["requests"] == 0.0

    def test_single_request_matches_scalar(self):
        net = make_net(32, seed=1)
        items = ["a"]
        tau = np.ones((1, 64), dtype=np.int64)
        src = np.asarray([deep_source(net, net.item_hash("a"),
                                      tuple(tau[0]))])
        eng = BatchCacheEngine(net, items, threshold=3)
        res = eng.serve_batch([0], src, tau=tau)
        scal, replay = scalar_replay(net, items, 3, 1, [0], src, tau)
        assert res.serving_node(0) == replay[0].serving_node
        assert res.server_path(0) == replay[0].server_path
        assert int(res.hops[0]) == replay[0].hops
        assert eng.summary() == scal.summary()

    def test_missing_tau_and_rng_rejected(self):
        net = make_net(32)
        eng = BatchCacheEngine(net, ["a"])
        with pytest.raises(ValueError):
            eng.serve_batch([0], [0.25])

    def test_item_out_of_range_rejected(self):
        net = make_net(32)
        eng = BatchCacheEngine(net, ["a"])
        with pytest.raises(IndexError):
            eng.serve_batch([1], [0.25], rng=np.random.default_rng(0))

    def test_mismatched_lengths_rejected(self):
        net = make_net(32)
        eng = BatchCacheEngine(net, ["a"])
        with pytest.raises(ValueError):
            eng.serve_batch([0, 0], [0.25], rng=np.random.default_rng(0))


class TestThresholdBoundary:
    """The c boundary, exactly: hit c keeps the leaf, hit c+1 splits it."""

    C = 4

    def _drive(self, count, tau_digit=1):
        net = make_net(64, seed=3)
        items = ["hot"]
        tau = np.full((count, 64), tau_digit, dtype=np.int64)
        src = deep_source(net, net.item_hash("hot"), tuple(tau[0]))
        sources = np.full(count, src)
        eng = BatchCacheEngine(net, items, threshold=self.C)
        eng.serve_batch(np.zeros(count, np.int64), sources, tau=tau)
        return eng

    def test_exactly_c_hits_do_not_replicate(self):
        eng = self._drive(self.C)
        assert eng.tree_size(0) == 1
        assert eng.tree_replications(0) == 0
        assert eng.served_counts(0) == {(): self.C}

    def test_c_plus_one_replicates_once(self):
        eng = self._drive(self.C + 1)
        assert eng.tree_size(0) == 1 + 2
        assert eng.tree_replications(0) == 2
        # the trigger request itself is still served at the root
        assert eng.served_counts(0)[()] == self.C + 1

    def test_requests_after_trigger_serve_at_children(self):
        eng = self._drive(self.C + 3)
        counts = eng.served_counts(0)
        # c+1 root hits (trigger included), the two later deep entries
        # stop at the child on their digit string
        assert counts[()] == self.C + 1
        assert counts[(1,)] == 2
        assert eng.tree_size(0) == 3


class TestRootOnlyHitStorm:
    """Entries at depth 0 can replicate the root once but never descend."""

    def test_storm_matches_scalar(self):
        net = make_net(64, seed=4)
        items = ["hot"]
        root = net.item_hash("hot")
        # a source covering the root enters the tree at depth t = 0
        src = float(net.segments.cover_point(root))
        count, c = 50, 3
        tau = np.zeros((count, 64), dtype=np.int64)
        sources = np.full(count, src)
        eng = BatchCacheEngine(net, items, threshold=c)
        res = eng.serve_batch(np.zeros(count, np.int64), sources, tau=tau)
        assert set(res.t.tolist()) == {0}
        assert set(res.serving_depth.tolist()) == {0}
        # one replication when the storm crosses c, then the blocked
        # (non-leaf) root absorbs everything else
        assert eng.tree_size(0) == 3
        assert eng.tree_replications(0) == 2
        assert eng.served_counts(0) == {(): count}
        scal, _ = scalar_replay(net, items, c, 1, np.zeros(count, np.int64),
                                sources, tau)
        assert eng.summary() == scal.summary()


class TestCollapseSplit:
    """A parent whose children split exactly c-1 / c survives the epoch."""

    C = 4

    def _steered_engine(self):
        net = make_net(64, seed=5)
        items = ["hot"]
        root = net.item_hash("hot")
        tau0 = (0,) * 8
        tau1 = (1,) * 8
        src0 = deep_source(net, root, tau0)
        src1 = deep_source(net, root, tau1)
        # c+1 entries fire the root, then c hits on child (1,) and c-1
        # on child (0,) — counts land exactly on the collapse boundary
        taus, srcs = [], []
        for _ in range(self.C + 1):
            taus.append(tau1)
            srcs.append(src1)
        for _ in range(self.C):
            taus.append(tau1)
            srcs.append(src1)
        for _ in range(self.C - 1):
            taus.append(tau0)
            srcs.append(src0)
        tau = np.asarray(taus, dtype=np.int64)
        sources = np.asarray(srcs)
        eng = BatchCacheEngine(net, items, threshold=self.C)
        eng.serve_batch(np.zeros(len(taus), np.int64), sources, tau=tau)
        return eng, net, tau, sources

    def test_counts_land_on_the_boundary(self):
        eng, _, _, _ = self._steered_engine()
        counts = eng.served_counts(0)
        assert counts[()] == self.C + 1
        assert counts[(1,)] == self.C
        assert counts[(0,)] == self.C - 1

    def test_one_child_at_c_blocks_the_collapse(self):
        eng, net, tau, sources = self._steered_engine()
        removed = eng.advance_epoch()
        assert removed == 0
        assert eng.tree_size(0) == 3
        # the boundary epoch's counters survive as the snapshot
        assert eng.last_epoch_served(0)[(1,)] == self.C
        # a quiet epoch then collapses both children at once
        assert eng.advance_epoch() == 2
        assert eng.tree_size(0) == 1
        # scalar replay agrees on both epoch outcomes
        scal, _ = scalar_replay(net, ["hot"], self.C, 1,
                                np.zeros(tau.shape[0], np.int64), sources, tau)
        assert scal.advance_epoch() == 0
        assert scal.advance_epoch() == 2

    def test_both_children_below_c_collapse(self):
        eng, _, _, _ = self._steered_engine()
        # burn the boundary epoch, then one lonely deep hit < c
        eng.advance_epoch()
        assert eng.advance_epoch() == 2  # collapsed: back to the root
        assert eng.active_set(0) == {()}


class TestSaltedMode:
    def test_counters_merge_by_item(self):
        net = make_net(128, seed=6)
        items = ["hot", "cold"]
        rng = np.random.default_rng(7)
        B = 400
        pts = net.segments.as_array()
        sources = pts[rng.integers(0, len(pts), size=B)]
        tau = rng.integers(0, 2, size=(B, 64))
        item_idx = np.zeros(B, np.int64)  # every request is for "hot"
        eng = BatchCacheEngine(net, items, threshold=3, salts=4)
        eng.serve_batch(item_idx, sources, tau=tau)
        per_tree_rep = [eng.tree_replications(eng.tree_index(0, j))
                        for j in range(4)]
        per_tree_cop = [eng.tree_size(eng.tree_index(0, j)) - 1
                        for j in range(4)]
        assert eng.item_replications(0) == sum(per_tree_rep)
        assert eng.item_copies(0) == sum(per_tree_cop)
        # the load actually spread: more than one salt tree served
        served = sum(1 for j in range(4)
                     if eng.served_counts(eng.tree_index(0, j)))
        assert served > 1
        assert eng.item_replications(1) == 0

    def test_salted_parity_with_scalar(self):
        net = make_net(128, seed=8)
        items = ["hot"]
        rng = np.random.default_rng(9)
        B = 300
        pts = net.segments.as_array()
        sources = pts[rng.integers(0, len(pts), size=B)]
        tau = rng.integers(0, 2, size=(B, 64))
        item_idx = np.zeros(B, np.int64)
        eng = BatchCacheEngine(net, items, threshold=3, salts=3)
        res = eng.serve_batch(item_idx, sources, tau=tau)
        scal, replay = scalar_replay(net, items, 3, 3, item_idx, sources, tau)
        for i in range(B):
            assert res.serving_node(i) == replay[i].serving_node
            assert res.server_path(i) == replay[i].server_path
        assert eng.summary() == scal.summary()
        assert eng.item_replications(0) == scal.item_replications("hot")
        assert eng.item_copies(0) == scal.item_copies("hot")

    def test_content_update_merges_salts(self):
        net = make_net(64, seed=10)
        eng = BatchCacheEngine(net, ["hot"], threshold=1, salts=2)
        rng = np.random.default_rng(11)
        pts = net.segments.as_array()
        B = 200
        eng.serve_batch(np.zeros(B, np.int64),
                        pts[rng.integers(0, len(pts), size=B)], rng=rng)
        msgs, t = eng.content_update(0)
        assert msgs == eng.item_copies(0)
        assert t == max(eng.tree_depth(eng.tree_index(0, j)) for j in range(2))


class TestCongestionBooking:
    def test_cached_paths_book_into_batch_congestion(self):
        net = make_net(64, seed=12)
        eng = BatchCacheEngine(net, ["hot"], threshold=2)
        cong = BatchCongestion()
        rng = np.random.default_rng(13)
        pts = net.segments.as_array()
        B = 250
        res = eng.serve_batch(np.zeros(B, np.int64),
                              pts[rng.integers(0, len(pts), size=B)],
                              rng=rng, congestion=cong)
        assert cong.lookups == B
        assert cong.total_messages == int(res.hops.sum())
        summ = cong.summary(net.n)
        assert summ["max_load"] >= 1.0

    def test_shortened_never_longer_than_lookup(self):
        net = make_net(64, seed=14)
        eng = BatchCacheEngine(net, ["hot"], threshold=2)
        rng = np.random.default_rng(15)
        pts = net.segments.as_array()
        B = 300
        res = eng.serve_batch(np.zeros(B, np.int64),
                              pts[rng.integers(0, len(pts), size=B)], rng=rng)
        assert (res.hops <= res.lookup_hops).all()
        assert (res.saved_hops == np.maximum(0, res.lookup_hops - res.hops)).all()


class TestSequentialSemantics:
    def test_chunked_equals_one_batch(self):
        """Chunk boundaries are invisible: same stream, same final state."""
        net = make_net(128, seed=16)
        items = [f"i{k}" for k in range(4)]
        rng = np.random.default_rng(17)
        B = 500
        pts = net.segments.as_array()
        item_idx = rng.integers(0, 4, size=B)
        sources = pts[rng.integers(0, len(pts), size=B)]
        tau = rng.integers(0, 2, size=(B, 64))
        one = BatchCacheEngine(net, items, threshold=3)
        one.serve_batch(item_idx, sources, tau=tau)
        many = BatchCacheEngine(net, items, threshold=3)
        for lo in range(0, B, 97):
            many.serve_batch(item_idx[lo:lo + 97], sources[lo:lo + 97],
                             tau=tau[lo:lo + 97])
        assert one.summary() == many.summary()
        for k in range(4):
            assert one.active_set(k) == many.active_set(k)
            assert one.served_counts(k) == many.served_counts(k)
