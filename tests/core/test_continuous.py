"""Unit tests for the continuous Distance Halving graph (paper §2.1–2.3)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.continuous import ContinuousGraph, binary_digits, digits_to_point
from repro.core.interval import Arc, linear_distance


@pytest.fixture
def g2():
    return ContinuousGraph(2)


@pytest.fixture
def g4():
    return ContinuousGraph(4)


class TestEdgeMaps:
    def test_left_right_definitions(self, g2):
        # l(y) = y/2, r(y) = y/2 + 1/2
        assert g2.left(0.6) == pytest.approx(0.3)
        assert g2.right(0.6) == pytest.approx(0.8)

    def test_left_shifts_zero_bit(self, g2):
        # binary: l inserts a 0 at the front of the fraction
        y = 0.75  # 0.11
        assert g2.left(y) == pytest.approx(0.375)  # 0.011

    def test_right_shifts_one_bit(self, g2):
        y = 0.25  # 0.01
        assert g2.right(y) == pytest.approx(0.625)  # 0.101

    def test_backward_inverts_children(self, g2):
        for y in (0.0, 0.1, 0.5, 0.93):
            assert g2.backward(g2.left(y)) == pytest.approx(y)
            assert g2.backward(g2.right(y)) == pytest.approx(y)

    def test_backward_inverts_children_delta4(self, g4):
        for y in (0.0, 0.37, 0.99):
            for d in range(4):
                assert g4.backward(g4.child(y, d)) == pytest.approx(y)

    def test_child_digit_recovers_branch(self, g2, g4):
        for g in (g2, g4):
            for y in (0.1, 0.6, 0.9):
                for d in range(g.delta):
                    assert g.child_digit(g.child(y, d)) == d

    def test_out_neighbors_count(self, g4):
        assert len(g4.out_neighbors(0.3)) == 4

    def test_invalid_digit_rejected(self, g2):
        with pytest.raises(ValueError):
            g2.child(0.5, 2)
        with pytest.raises(ValueError):
            g2.child(0.5, -1)

    def test_right_requires_binary(self, g4):
        with pytest.raises(ValueError):
            g4.right(0.5)

    def test_delta_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            ContinuousGraph(1)


class TestDistanceHalving:
    """Observation 2.3: every edge map halves (divides by Δ) linear distance."""

    def test_halving_binary(self, g2):
        y, z = 0.13, 0.77
        assert linear_distance(g2.left(y), g2.left(z)) == pytest.approx(
            linear_distance(y, z) / 2
        )
        assert linear_distance(g2.right(y), g2.right(z)) == pytest.approx(
            linear_distance(y, z) / 2
        )

    def test_halving_after_t_steps(self, g2):
        rng = np.random.default_rng(7)
        y, z = 0.123456, 0.654321
        digits = tuple(int(d) for d in rng.integers(0, 2, size=20))
        wy, wz = g2.walk(digits, y), g2.walk(digits, z)
        assert linear_distance(wy, wz) == pytest.approx(
            linear_distance(y, z) * 2.0**-20
        )

    def test_division_by_delta(self, g4):
        y, z = 0.2, 0.9
        for d in range(4):
            assert linear_distance(g4.child(y, d), g4.child(z, d)) == pytest.approx(
                linear_distance(y, z) / 4
            )


class TestWalk:
    def test_empty_walk_is_identity(self, g2):
        assert g2.walk((), 0.42) == 0.42

    def test_walk_matches_iterated_children(self, g2):
        y = 0.3141592653589793
        digits = (1, 0, 0, 1, 1, 0, 1)
        expected = y
        for d in digits:
            expected = g2.child(expected, d)
        assert g2.walk(digits, y) == pytest.approx(expected, abs=1e-15)

    def test_walk_matches_iterated_children_delta3(self):
        g = ContinuousGraph(3)
        y = 0.77
        digits = (2, 0, 1, 2, 1)
        expected = y
        for d in digits:
            expected = g.child(expected, d)
        assert g.walk(digits, y) == pytest.approx(expected, abs=1e-15)

    def test_walk_points_are_continuous_path(self, g2):
        """Consecutive walk points are connected by a continuous edge."""
        y = 0.6180339887
        digits = (0, 1, 1, 0, 1)
        pts = g2.walk_points(digits, y)
        assert len(pts) == len(digits) + 1
        for k, d in enumerate(digits):
            assert g2.child(pts[k], d) == pytest.approx(pts[k + 1], abs=1e-15)

    def test_walk_exact_fractions(self, g2):
        y = Fraction(1, 3)
        digits = (1, 0, 1)
        res = g2.walk(digits, y)
        assert isinstance(res, Fraction)
        # closed form: (y + 1 + 0*2 + 1*4)/8
        assert res == (Fraction(1, 3) + 5) / 8

    def test_backward_inverts_walk_step(self, g2):
        """b strips exactly the last applied digit (phase-II semantics)."""
        y = 0.275
        digits = (1, 1, 0, 1)
        full = g2.walk(digits, y)
        assert g2.backward(full) == pytest.approx(g2.walk(digits[:-1], y))


class TestApproachWalk:
    """Claim 2.4: walking by the (reversed) digits of y approaches y."""

    @pytest.mark.parametrize("t", [1, 2, 5, 10, 20])
    def test_approach_bound_binary(self, g2, t):
        rng = np.random.default_rng(t)
        for _ in range(20):
            y, z = float(rng.random()), float(rng.random())
            w = g2.walk(g2.approach_digits(y, t), z)
            assert linear_distance(w, y) <= 2.0**-t + 1e-12

    @pytest.mark.parametrize("delta", [2, 3, 4, 8])
    def test_approach_bound_general_delta(self, delta):
        g = ContinuousGraph(delta)
        rng = np.random.default_rng(delta)
        t = 6
        for _ in range(20):
            y, z = float(rng.random()), float(rng.random())
            w = g.walk(g.approach_digits(y, t), z)
            assert linear_distance(w, y) <= float(delta) ** -t + 1e-12

    def test_approach_is_reversed_prefix(self, g2):
        y = 0.8125  # 0.1101 binary
        assert binary_digits(y, 4) == (1, 1, 0, 1)
        assert g2.approach_digits(y, 4) == (1, 0, 1, 1)

    def test_approach_independent_of_start(self, g2):
        """Claim 2.4: the bound holds regardless of the starting point z."""
        y = 0.356
        digits = g2.approach_digits(y, 12)
        for z in (0.0, 0.25, 0.999, y):
            assert linear_distance(g2.walk(digits, z), y) <= 2.0**-12 + 1e-12


class TestDigits:
    def test_binary_digits_msb_first(self):
        assert binary_digits(0.625, 3) == (1, 0, 1)  # 0.101

    def test_base3_digits(self):
        assert binary_digits(Fraction(5, 9), 2, delta=3) == (1, 2)  # 5/9 = 0.12 base 3

    def test_zero(self):
        assert binary_digits(0.0, 5) == (0, 0, 0, 0, 0)

    def test_digits_to_point_roundtrip(self):
        y = Fraction(11, 16)
        assert digits_to_point(binary_digits(y, 4)) == y

    def test_digits_to_point_base4(self):
        assert digits_to_point((3, 2), delta=4) == Fraction(3, 4) + Fraction(2, 16)

    def test_rejects_negative_t(self):
        with pytest.raises(ValueError):
            binary_digits(0.5, -1)

    def test_rejects_bad_digit(self):
        with pytest.raises(ValueError):
            digits_to_point((2,), delta=2)


class TestIntervalImages:
    def test_image_arcs_halve_length(self, g2):
        arc = Arc(0.2, 0.6)
        imgs = g2.image_arcs(arc)
        assert len(imgs) == 2
        for img in imgs:
            assert float(img.length) == pytest.approx(0.2)

    def test_image_arcs_are_fi_images(self, g4):
        arc = Arc(0.0, 0.4)
        imgs = g4.image_arcs(arc)
        for i, img in enumerate(imgs):
            assert img.start == pytest.approx(i / 4)
            assert float(img.length) == pytest.approx(0.1)

    def test_figure1_interval_mapping(self, g2):
        """Figure 1 (lower): a segment maps to two intervals of half size."""
        arc = Arc(0.3, 0.5)
        left_img, right_img = g2.image_arcs(arc)
        assert left_img == Arc(0.15, 0.25)
        assert right_img == Arc(0.65, 0.75)

    def test_preimage_contiguous_double_length(self, g2):
        arc = Arc(0.2, 0.3)
        pres = g2.preimage_arcs(arc)
        assert len(pres) == 1
        assert pres[0] == Arc(0.4, 0.6)

    def test_preimage_of_wrapping_arc(self, g2):
        arc = Arc(0.9, 0.05)  # pieces [0.9,1) and [0,0.05)
        pres = g2.preimage_arcs(arc)
        total = sum(float(p.length) for p in pres)
        assert total == pytest.approx(2 * float(arc.length))

    def test_preimage_saturates_to_full_ring(self, g2):
        assert g2.preimage_arcs(Arc(0.0, 0.6)) == [Arc(0.0, 0.0)]

    def test_points_in_image_have_edge_from_arc(self, g2):
        """Discretization soundness: image points come from arc points."""
        arc = Arc(0.42, 0.58)
        for img in g2.image_arcs(arc):
            mid = img.midpoint
            assert g2.backward(mid) in arc


class TestDiameterSteps:
    def test_matches_corollary_2_5(self, g2):
        # t = ceil(log2(n * rho)) + 1
        assert g2.diameter_steps(1024, 1.0) == 11
        assert g2.diameter_steps(1024, 4.0) == 13

    def test_delta_reduces_steps(self):
        g16 = ContinuousGraph(16)
        assert g16.diameter_steps(65536, 1.0) == 5  # log_16(65536) = 4, +1

    def test_rejects_nonpositive_n(self, g2):
        with pytest.raises(ValueError):
            g2.diameter_steps(0)
