"""Unit tests for the vectorized batch-lookup engine (core/batch.py).

The engine's contract is *bit-parity* with the scalar §2.2 algorithms:
same owners, same walk parameters, same hop counts, same compressed
server paths.  These tests pin that contract on small and degenerate
networks; tests/property/test_batch_parity.py covers random networks at
scale.
"""

import numpy as np
import pytest

from repro.balance import MultipleChoice
from repro.core import (
    DistanceHalvingNetwork,
    dh_lookup,
    equally_spaced_network,
    fast_lookup,
    lookup_many,
)


def make_net(n, seed=0, delta=2, with_ring=True, balanced=False):
    rng = np.random.default_rng(seed)
    net = DistanceHalvingNetwork(delta=delta, with_ring=with_ring, rng=rng)
    net.populate(n, selector=MultipleChoice(t=4) if balanced else None)
    return net, rng


def workload(net, size, seed):
    route = np.random.default_rng(seed)
    pts = net.segments.as_array()
    return pts[route.integers(0, net.n, size=size)], route.random(size)


class TestSnapshot:
    def test_cover_matches_segment_map(self):
        net, _ = make_net(64, seed=1)
        router = net.compile_router()
        ys = np.random.default_rng(2).random(500)
        expect = np.array([net.segments.cover(y) for y in ys])
        assert (router.cover(ys) == expect).all()

    def test_cover_array_on_segment_map(self):
        net, _ = make_net(33, seed=3)
        ys = np.random.default_rng(4).random(200)
        expect = np.array([net.segments.cover(y) for y in ys])
        assert (net.segments.cover_array(ys) == expect).all()

    def test_cover_wraps_below_first_point(self):
        net = DistanceHalvingNetwork()
        net.join(0.4)
        net.join(0.7)
        router = net.compile_router()
        assert (router.cover(np.array([0.1])) == [1]).all()

    def test_midpoints_match_arcs(self):
        net, _ = make_net(50, seed=5)
        router = net.compile_router()
        for i in range(net.n):
            assert router.midpoints[i] == float(net.segments.segment(i).midpoint)

    def test_empty_network_rejected(self):
        net = DistanceHalvingNetwork()
        with pytest.raises(LookupError):
            net.compile_router()

    def test_adjacency_arrays_match_neighbor_points(self):
        net, _ = make_net(40, seed=6)
        indptr, indices = net.adjacency_arrays()
        pts = list(net.segments)
        index = {p: i for i, p in enumerate(pts)}
        for i, p in enumerate(pts):
            row = set(indices[indptr[i]:indptr[i + 1]].tolist())
            assert row == {index[q] for q in net.neighbor_points(p)}

    def test_snapshot_ignores_later_churn(self):
        net, _ = make_net(32, seed=7)
        router = net.compile_router()
        net.join(0.123456)
        assert router.n == 32  # frozen; caller must recompile after churn


class TestBatchFastLookup:
    @pytest.mark.parametrize("n", [1, 2, 3, 16, 128])
    def test_parity_small_networks(self, n):
        net, _ = make_net(n, seed=n + 10)
        router = net.compile_router()
        src, tgt = workload(net, 200, n + 11)
        batch = router.batch_fast_lookup(src, tgt, keep_paths=True)
        for i, r in enumerate(lookup_many(net, src, tgt)):
            assert r.owner == batch.owner[i]
            assert r.t == batch.t[i]
            assert r.hops == batch.hops[i]
            assert r.server_path == batch.server_path(i)

    def test_parity_general_delta(self):
        net, _ = make_net(81, seed=30, delta=4)
        router = net.compile_router()
        src, tgt = workload(net, 150, 31)
        batch = router.batch_fast_lookup(src, tgt)
        for i, r in enumerate(lookup_many(net, src, tgt)):
            assert (r.owner, r.t, r.hops) == (
                batch.owner[i], batch.t[i], batch.hops[i])

    def test_parity_equally_spaced_dyadic(self):
        # Fraction ids, but dyadic, so the float snapshot is exact
        net = equally_spaced_network(6)
        router = net.compile_router()
        src, tgt = workload(net, 150, 32)
        batch = router.batch_fast_lookup(src, tgt, keep_paths=True)
        for i, r in enumerate(lookup_many(net, src, tgt)):
            assert [float(p) for p in r.server_path] == batch.server_path(i)

    def test_scalar_sources_broadcast(self):
        net, _ = make_net(32, seed=33)
        router = net.compile_router()
        src = float(net.segments.as_array()[0])
        tgt = np.random.default_rng(34).random(50)
        batch = router.batch_fast_lookup(src, tgt)
        assert batch.size == 50
        assert (batch.sources == src).all()

    def test_mismatched_lengths_rejected(self):
        net, _ = make_net(8, seed=35)
        router = net.compile_router()
        with pytest.raises(ValueError):
            router.batch_fast_lookup(np.zeros(4), np.zeros(3))

    def test_paths_require_keep_paths(self):
        net, _ = make_net(8, seed=36)
        router = net.compile_router()
        res = router.batch_fast_lookup(np.array([0.1]), np.array([0.5]))
        with pytest.raises(ValueError):
            res.server_path(0)

    def test_targets_normalized(self):
        net, _ = make_net(16, seed=37)
        router = net.compile_router()
        a = router.batch_fast_lookup(np.array([0.0]), np.array([1.25]))
        b = router.batch_fast_lookup(np.array([0.0]), np.array([0.25]))
        assert a.owner[0] == b.owner[0] and a.hops[0] == b.hops[0]


class TestBatchDHLookup:
    @pytest.mark.parametrize("with_ring", [True, False])
    def test_parity_fixed_tau(self, with_ring):
        net, _ = make_net(64, seed=40, with_ring=with_ring)
        router = net.compile_router(with_adjacency=True)
        src, tgt = workload(net, 120, 41)
        tau = np.random.default_rng(42).integers(0, 2, size=(120, 64))
        batch = router.batch_dh_lookup(src, tgt, tau=tau, keep_paths=True)
        scalar = lookup_many(net, src, tgt, algorithm="dh",
                             taus=[list(row) for row in tau])
        for i, r in enumerate(scalar):
            assert r.owner == batch.owner[i]
            assert r.t == batch.t[i]
            assert r.hops == batch.hops[i]
            assert r.phase1_hops == batch.phase1_hops[i]
            assert r.server_path == batch.server_path(i)

    def test_rng_mode_reaches_owner_within_bounds(self):
        net, _ = make_net(128, seed=43, balanced=True)
        router = net.compile_router(with_adjacency=True)
        src, tgt = workload(net, 500, 44)
        res = router.batch_dh_lookup(src, tgt, rng=np.random.default_rng(45))
        expect = net.segments.cover_array(res.targets)
        assert (res.owner_idx == expect).all()
        rho = net.smoothness()
        assert res.hops.max() <= 2 * np.log2(net.n) + 2 * np.log2(rho) + 2

    def test_shared_tau_row_broadcasts(self):
        net, _ = make_net(32, seed=46)
        router = net.compile_router(with_adjacency=True)
        src, tgt = workload(net, 20, 47)
        tau = np.random.default_rng(48).integers(0, 2, size=64)
        res = router.batch_dh_lookup(src, tgt, tau=tau)
        scalar = lookup_many(net, src, tgt, algorithm="dh",
                             taus=[list(tau)] * 20)
        assert [r.hops for r in scalar] == res.hops.tolist()

    def test_exhausted_tau_raises(self):
        net, _ = make_net(256, seed=49)
        router = net.compile_router(with_adjacency=True)
        with pytest.raises(ValueError):
            router.batch_dh_lookup(np.array([0.01]), np.array([0.9]),
                                   tau=np.array([[0]]))

    def test_needs_rng_or_tau(self):
        net, _ = make_net(8, seed=50)
        router = net.compile_router(with_adjacency=True)
        with pytest.raises(ValueError):
            router.batch_dh_lookup(np.array([0.1]), np.array([0.5]))

    def test_tau_digits_validated(self):
        net, _ = make_net(8, seed=51)
        router = net.compile_router(with_adjacency=True)
        with pytest.raises(ValueError):
            router.batch_dh_lookup(np.array([0.1]), np.array([0.5]),
                                   tau=np.array([[7, 0, 1]]))

    def test_single_server_zero_hops(self):
        net = DistanceHalvingNetwork()
        net.join(0.2)
        router = net.compile_router(with_adjacency=True)
        res = router.batch_dh_lookup(np.array([0.2, 0.2]), np.array([0.8, 0.1]),
                                     rng=np.random.default_rng(0))
        assert (res.hops == 0).all() and (res.t == 0).all()


class TestCsrPaths:
    """Unit contract of the CSR path representation (keep_paths='csr')."""

    def test_csr_paths_match_object_paths(self):
        net, _ = make_net(32, seed=70)
        router = net.compile_router()
        src, tgt = workload(net, 100, 71)
        obj = router.batch_fast_lookup(src, tgt, keep_paths=True)
        csr = router.batch_fast_lookup(src, tgt, keep_paths="csr")
        for i in range(100):
            assert obj.server_path(i) == csr.server_path(i)

    def test_csr_mode_drops_level_matrices(self):
        net, _ = make_net(16, seed=72)
        router = net.compile_router()
        res = router.batch_fast_lookup(np.array([0.1]), np.array([0.7]),
                                       keep_paths="csr")
        assert res._phase2_levels is None
        assert res.keeps_paths
        assert res.path_servers is not None

    def test_path_lengths_are_hops_plus_one(self):
        net, _ = make_net(64, seed=73)
        router = net.compile_router()
        src, tgt = workload(net, 80, 74)
        res = router.batch_fast_lookup(src, tgt, keep_paths="csr")
        assert np.array_equal(res.path_lengths(), res.hops + 1)

    def test_path_points_decode(self):
        net, _ = make_net(24, seed=75)
        router = net.compile_router()
        src, tgt = workload(net, 40, 76)
        res = router.batch_fast_lookup(src, tgt, keep_paths="csr")
        for i in (0, 17, 39):
            pts = res.path_points(i)
            assert pts.tolist() == res.server_path(i)
            assert pts[0] == res.points[res.source_idx[i]]

    def test_to_csr_requires_paths(self):
        net, _ = make_net(8, seed=77)
        router = net.compile_router()
        res = router.batch_fast_lookup(np.array([0.1]), np.array([0.5]))
        with pytest.raises(ValueError, match="keep_paths"):
            res.to_csr()
        with pytest.raises(ValueError, match="keep_paths"):
            res.path_lengths()

    def test_invalid_keep_paths_rejected(self):
        net, _ = make_net(8, seed=78)
        router = net.compile_router(with_adjacency=True)
        with pytest.raises(ValueError, match="keep_paths"):
            router.batch_fast_lookup(np.array([0.1]), np.array([0.5]),
                                     keep_paths="objects")
        with pytest.raises(ValueError, match="keep_paths"):
            router.batch_dh_lookup(np.array([0.1]), np.array([0.5]),
                                   rng=np.random.default_rng(0),
                                   keep_paths="objects")

    def test_dh_csr_covers_both_phases(self):
        net, _ = make_net(64, seed=79)
        router = net.compile_router(with_adjacency=True)
        src, tgt = workload(net, 60, 80)
        tau = np.random.default_rng(81).integers(0, 2, size=(60, 64))
        res = router.batch_dh_lookup(src, tgt, tau=tau, keep_paths="csr")
        scalar = lookup_many(net, src, tgt, algorithm="dh",
                             taus=[list(row) for row in tau])
        for i, r in enumerate(scalar):
            assert r.server_path == res.server_path(i)

    def test_empty_batch_yields_empty_csr(self):
        net, _ = make_net(8, seed=82)
        router = net.compile_router()
        res = router.batch_fast_lookup(np.zeros(0), np.zeros(0),
                                       keep_paths="csr")
        assert res.path_servers.size == 0
        assert res.path_offsets.tolist() == [0]


class TestLookupMany:
    def test_fast_matches_individual_calls(self):
        net, _ = make_net(32, seed=60)
        src, tgt = workload(net, 25, 61)
        many = lookup_many(net, src, tgt)
        for i, r in enumerate(many):
            assert r.server_path == fast_lookup(net, src[i], tgt[i]).server_path

    def test_dh_with_taus_matches_individual_calls(self):
        net, _ = make_net(32, seed=62)
        src, tgt = workload(net, 10, 63)
        taus = [list(np.random.default_rng(64 + i).integers(0, 2, 64))
                for i in range(10)]
        many = lookup_many(net, src, tgt, algorithm="dh", taus=taus)
        for i, r in enumerate(many):
            ref = dh_lookup(net, src[i], tgt[i], None, tau=taus[i])
            assert r.server_path == ref.server_path

    def test_rejects_unknown_algorithm(self):
        net, _ = make_net(4, seed=65)
        with pytest.raises(ValueError):
            lookup_many(net, [0.1], [0.2], algorithm="magic")

    def test_dh_requires_randomness(self):
        net, _ = make_net(4, seed=66)
        with pytest.raises(ValueError):
            lookup_many(net, [0.1], [0.2], algorithm="dh")


class TestUnitFold:
    """Walk values rounding to exactly 1.0 must fold to 0.0 (as the
    scalar engine's normalize-at-use does), or routes diverge."""

    def test_dh_parity_at_target_nextafter_one(self):
        net, _ = make_net(50, seed=3)
        router = net.compile_router(with_adjacency=True)
        y = np.nextafter(1.0, 0)  # y/2 + 1/2 rounds to exactly 1.0
        src = net.segments.as_array()[5]
        tau = np.full((1, 64), 1, dtype=np.int64)
        batch = router.batch_dh_lookup([src], [y], tau=tau, keep_paths=True)
        ref = dh_lookup(net, src, y, None, tau=list(tau[0]))
        assert ref.t == batch.t[0]
        assert ref.hops == batch.hops[0]
        assert ref.server_path == batch.server_path(0)

    def test_fast_parity_at_target_nextafter_one(self):
        net, _ = make_net(50, seed=3)
        router = net.compile_router()
        y = np.nextafter(1.0, 0)
        srcs = net.segments.as_array()
        batch = router.batch_fast_lookup(srcs, np.full(net.n, y),
                                         keep_paths=True)
        for i, r in enumerate(lookup_many(net, srcs, np.full(net.n, y))):
            assert r.t == batch.t[i]
            assert r.hops == batch.hops[i]
            assert r.server_path == batch.server_path(i)


class TestStaleRouter:
    def test_lazy_adjacency_after_churn_raises(self):
        net, _ = make_net(16, seed=9)
        router = net.compile_router()  # lazy adjacency
        net.join(0.987654)
        with pytest.raises(RuntimeError, match="rebuild"):
            router.batch_dh_lookup(
                [0.1], [0.3], tau=np.zeros((1, 32), dtype=np.int64)
            )


class TestDeepWalks:
    def test_fast_parity_beyond_mantissa_levels(self):
        # a ~2^-53-length segment forces t=55; power-of-two delta scales
        # exactly, so the batch engine must match the scalar one there
        net = DistanceHalvingNetwork()
        net.join(0.3)
        net.join(float(np.nextafter(np.nextafter(0.3, 1), 1)))
        router = net.compile_router()
        batch = router.batch_fast_lookup([0.3], [0.9], keep_paths=True)
        ref = fast_lookup(net, 0.3, 0.9)
        assert ref.t == batch.t[0] == 55
        assert ref.hops == batch.hops[0]
        assert ref.server_path == batch.server_path(0)
