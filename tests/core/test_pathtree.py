"""Unit tests for path trees (paper §3.1, Definition 5, Observation 3.2)."""

import pytest

from repro.core.continuous import ContinuousGraph
from repro.core.pathtree import PathTree


@pytest.fixture
def tree():
    return PathTree(0.2)


class TestStructure:
    def test_root_position(self, tree):
        assert tree.position(()) == 0.2

    def test_children_are_l_and_r(self, tree):
        g = ContinuousGraph(2)
        (c0, c1) = tree.children(())
        assert tree.position(c0) == pytest.approx(g.left(0.2))
        assert tree.position(c1) == pytest.approx(g.right(0.2))

    def test_figure2_first_layers(self):
        """Figure 2: the first two layers of the tree rooted at y.

        Children of y are y/2 and y/2 + 1/2; grandchildren are
        y/4, y/4 + 1/4, y/4 + 1/2, y/4 + 3/4.
        """
        y = 0.2
        t = PathTree(y)
        layer1 = sorted(t.position(a) for a in t.layer(1))
        assert layer1 == pytest.approx([y / 2, y / 2 + 0.5])
        layer2 = sorted(t.position(a) for a in t.layer(2))
        assert layer2 == pytest.approx([y / 4, y / 4 + 0.25, y / 4 + 0.5, y / 4 + 0.75])

    def test_parent_child_inverse(self, tree):
        addr = (1, 0, 1)
        for ch in tree.children(addr):
            assert tree.parent(ch) == addr

    def test_root_has_no_parent(self, tree):
        with pytest.raises(ValueError):
            tree.parent(())

    def test_layer_sizes(self, tree):
        assert len(list(tree.layer(0))) == 1
        assert len(list(tree.layer(3))) == 8

    def test_layer_sizes_delta3(self):
        t = PathTree(0.5, ContinuousGraph(3))
        assert len(list(t.layer(2))) == 9

    def test_rejects_negative_layer(self, tree):
        with pytest.raises(ValueError):
            list(tree.layer(-1))


class TestObservation32:
    """Distance between two points of layer j is at least 2^-j."""

    @pytest.mark.parametrize("j", [1, 2, 3, 4, 5])
    def test_layer_spacing(self, tree, j):
        positions = sorted(tree.position(a) for a in tree.layer(j))
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert min(gaps) >= tree.min_layer_spacing(j) - 1e-12

    def test_layer_positions_distinct(self, tree):
        positions = [tree.position(a) for a in tree.layer(6)]
        assert len(set(positions)) == len(positions)


class TestAscent:
    def test_ascending_path_prefixes(self, tree):
        tau = (1, 0, 1, 1)
        path = tree.ascending_path(tau)
        assert path == [(1, 0, 1, 1), (1, 0, 1), (1, 0), (1,), ()]

    def test_ascent_follows_backward_edges(self, tree):
        """Consecutive ascent positions are connected by b (phase-II moves)."""
        g = tree.graph
        tau = (0, 1, 1, 0, 1)
        path = tree.ascending_path(tau)
        for a, b in zip(path, path[1:]):
            assert g.backward(tree.position(a)) == pytest.approx(
                float(tree.position(b)), abs=1e-12
            )

    def test_entry_address(self, tree):
        assert tree.entry_address([1, 0]) == (1, 0)


class TestRandomEntry:
    def test_uniform_entry_distribution(self):
        """The 'key observation' of §3.1: a random τ enters each depth-t
        node with equal probability — exact by construction here."""
        import numpy as np

        tree = PathTree(0.3)
        rng = np.random.default_rng(0)
        counts = {}
        t = 3
        for _ in range(4000):
            tau = tuple(int(d) for d in rng.integers(0, 2, size=t))
            counts[tau] = counts.get(tau, 0) + 1
        assert len(counts) == 8
        freq = np.array(list(counts.values())) / 4000
        assert abs(freq - 1 / 8).max() < 0.03
