"""Unit tests for 2D multiple choice and Definition 7 smoothness (§5.3)."""

import math

import numpy as np
import pytest

from repro.balance import (
    TwoDimMultipleChoice,
    coarse_grid_side,
    fine_grid_side,
    is_smooth_2d,
    smoothness_2d,
)
from repro.balance.two_dim import cell_of


class TestGrids:
    def test_fine_grid_has_at_least_2n_cells(self):
        for n in (10, 100, 1000):
            assert fine_grid_side(n) ** 2 >= 2 * n

    def test_coarse_grid_has_at_most_half_n_cells(self):
        for n in (10, 100, 1000):
            assert coarse_grid_side(n) ** 2 <= n / 2

    def test_cell_of_corners(self):
        assert cell_of((0.0, 0.0), 4) == (0, 0)
        assert cell_of((0.999, 0.999), 4) == (3, 3)

    def test_cell_of_wraps(self):
        assert cell_of((1.25, -0.25), 4) == (1, 3)


class TestDefinition7:
    def test_perfect_grid_is_1_smooth(self):
        side = 16
        pts = [((i + 0.5) / side, (j + 0.5) / side) for i in range(side) for j in range(side)]
        assert is_smooth_2d(pts, 1.0)
        assert smoothness_2d(pts) == 1.0

    def test_clustered_points_not_smooth(self):
        pts = [(0.5 + i * 1e-4, 0.5 + j * 1e-4) for i in range(8) for j in range(8)]
        assert not is_smooth_2d(pts, 4.0)
        assert smoothness_2d(pts, max_rho=16) == math.inf

    def test_uniform_points_need_large_rho(self):
        """i.i.d. uniform 2D ids are badly smooth (the 2D analogue of Lemma 4.1)."""
        rng = np.random.default_rng(0)
        pts = [tuple(p) for p in rng.random((512, 2))]
        assert not is_smooth_2d(pts, 2.0)

    def test_empty_set_not_smooth(self):
        assert not is_smooth_2d([], 2.0)

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            is_smooth_2d([(0.1, 0.1)], 0.5)


class TestTwoDimMultipleChoice:
    def test_populate(self):
        algo = TwoDimMultipleChoice(256, t=3)
        rng = np.random.default_rng(1)
        algo.populate(rng=rng)
        assert algo.n == 256

    def test_lemma_5_3_smoothness(self):
        """After n joins the configuration is 2-smooth w.h.p.

        We verify the two halves of the guarantee at the grids the
        algorithm itself uses: every fine cell ≤ 1 point, and coarse
        occupancy near-complete (the asymptotic statement allows a
        vanishing number of stragglers at finite n).
        """
        n = 512
        algo = TwoDimMultipleChoice(n, t=4)
        rng = np.random.default_rng(2)
        algo.populate(rng=rng)
        fine = fine_grid_side(n)
        cells = [cell_of(p, fine) for p in algo.points]
        assert len(set(cells)) == len(cells)  # pairwise distinct fine cells
        coarse = coarse_grid_side(n)
        occupied = {cell_of(p, coarse) for p in algo.points}
        assert len(occupied) >= 0.98 * coarse * coarse

    def test_failures_are_rare(self):
        algo = TwoDimMultipleChoice(512, t=4)
        rng = np.random.default_rng(3)
        algo.populate(rng=rng)
        assert algo.failed <= 2

    def test_beats_uniform_sampling(self):
        """At the algorithm's own ρ=2 grids, MC dominates i.i.d. sampling:
        no fine-cell collisions (uniform has many) and better coarse
        coverage — the empirical content of Lemma 5.3."""
        n = 400
        rng = np.random.default_rng(4)
        algo = TwoDimMultipleChoice(n, t=4)
        algo.populate(rng=rng)
        uniform = [tuple(p) for p in np.random.default_rng(4).random((n, 2))]
        fine, coarse = fine_grid_side(n), coarse_grid_side(n)

        def fine_collisions(pts):
            cells = [cell_of(p, fine) for p in pts]
            return len(cells) - len(set(cells))

        def coarse_coverage(pts):
            return len({cell_of(p, coarse) for p in pts}) / coarse**2

        assert fine_collisions(algo.points) == 0
        assert fine_collisions(uniform) > 0
        assert coarse_coverage(algo.points) > coarse_coverage(uniform)

    def test_t_validation(self):
        with pytest.raises(ValueError):
            TwoDimMultipleChoice(100, t=0)
        with pytest.raises(ValueError):
            TwoDimMultipleChoice(0)
