"""Unit tests for the §4 id-selection strategies (Lemmas 4.1–4.3, Thm 4.4)."""

import math

import numpy as np
import pytest

from repro.balance import (
    ImprovedSingleChoice,
    MultipleChoice,
    SingleChoice,
    estimate_log_n,
)
from repro.core import DistanceHalvingNetwork
from repro.core.segments import SegmentMap


def grow(strategy, n, seed=0):
    rng = np.random.default_rng(seed)
    sm = SegmentMap()
    for _ in range(n):
        sm.insert(strategy.select(sm, rng))
    return sm


class TestSingleChoice:
    def test_lemma_4_1_longest_segment(self):
        """Longest segment is Θ(log n / n): within [0.3, 5]·log n/n."""
        n = 2048
        sm = grow(SingleChoice(), n, seed=1)
        longest = sm.max_segment_length()
        assert 0.3 * math.log(n) / n <= longest <= 5 * math.log(n) / n

    def test_lemma_4_1_shortest_segment(self):
        """Shortest segment can be as small as Θ(1/n²) — far below 1/(4n)."""
        n = 2048
        sm = grow(SingleChoice(), n, seed=2)
        assert sm.min_segment_length() < 1 / (4 * n)

    def test_rho_grows_superconstant(self):
        n = 1024
        sm = grow(SingleChoice(), n, seed=3)
        assert sm.smoothness() > math.log2(n)


class TestImprovedSingleChoice:
    def test_lemma_4_2_shortest_segment(self):
        """Shortest segment Θ(1/(n log n)): much better than single choice."""
        n = 2048
        sm = grow(ImprovedSingleChoice(), n, seed=4)
        assert sm.min_segment_length() >= 0.1 / (n * math.log2(n))

    def test_lemma_4_2_longest_segment(self):
        n = 2048
        sm = grow(ImprovedSingleChoice(), n, seed=5)
        assert sm.max_segment_length() <= 5 * math.log(n) / n

    def test_splits_covering_segment(self):
        rng = np.random.default_rng(6)
        sm = SegmentMap([0.0, 0.5])
        p = ImprovedSingleChoice().select(sm, rng)
        # must be a midpoint of one of the two segments
        assert p in (0.25, 0.75)

    def test_beats_single_choice_on_rho(self):
        n = 1024
        rho_single = grow(SingleChoice(), n, seed=7).smoothness()
        rho_improved = grow(ImprovedSingleChoice(), n, seed=7).smoothness()
        assert rho_improved < rho_single


class TestMultipleChoice:
    def test_lemma_4_3_shortest_segment(self):
        """With t ≥ 2, shortest segment ≥ 1/4n w.h.p."""
        n = 1024
        sm = grow(MultipleChoice(t=4), n, seed=8)
        assert sm.min_segment_length() >= 1 / (4 * n)

    def test_longest_segment_constant_over_n(self):
        n = 1024
        sm = grow(MultipleChoice(t=4), n, seed=9)
        assert sm.max_segment_length() <= 8 / n

    def test_rho_is_constant_like(self):
        """ρ stays bounded as n grows (the property the whole paper needs)."""
        rhos = [grow(MultipleChoice(t=4), n, seed=n).smoothness()
                for n in (256, 512, 1024)]
        assert max(rhos) <= 32

    def test_theorem_4_4_self_correction(self):
        """Adversarial start: after n more inserts the max segment is O(1/n)."""
        rng = np.random.default_rng(10)
        sm = SegmentMap()
        # adversary: m = 64 points crammed into [0, 1e-4)
        for i in range(64):
            sm.insert(i * 1e-6)
        strategy = MultipleChoice(t=8)
        n = 1024
        for _ in range(n):
            sm.insert(strategy.select(sm, rng))
        assert sm.max_segment_length() <= 16 / n

    def test_self_correction_does_not_fix_small_segments(self):
        """Paper caveat: tiny initial segments stay tiny."""
        rng = np.random.default_rng(11)
        sm = SegmentMap([0.0, 1e-9])
        strategy = MultipleChoice(t=4)
        for _ in range(256):
            sm.insert(strategy.select(sm, rng))
        assert sm.min_segment_length() <= 1e-9

    def test_estimated_log_n_mode(self):
        sm = grow(MultipleChoice(t=4, estimate=True), 512, seed=12)
        assert sm.smoothness() <= 64

    def test_t_validation(self):
        with pytest.raises(ValueError):
            MultipleChoice(t=0)


class TestNetworkIntegration:
    @pytest.mark.parametrize("strategy", [SingleChoice(), ImprovedSingleChoice(), MultipleChoice()])
    def test_usable_as_join_selector(self, strategy):
        rng = np.random.default_rng(13)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(64, selector=strategy)
        assert net.n == 64
        net.check_invariants()

    def test_multiple_choice_gives_low_degree_network(self):
        """§4 intro: these techniques yield constant-degree DHTs w.h.p."""
        rng = np.random.default_rng(14)
        net_mc = DistanceHalvingNetwork(rng=rng)
        net_mc.populate(512, selector=MultipleChoice(t=4))
        rng2 = np.random.default_rng(14)
        net_sc = DistanceHalvingNetwork(rng=rng2)
        net_sc.populate(512, selector=SingleChoice())
        assert net_mc.max_out_degree() < net_sc.max_out_degree()
        assert net_mc.max_out_degree() <= 10  # ρ + 4 with ρ ≤ 6


class TestEstimateLogN:
    def test_estimates_within_multiplicative_factor(self):
        rng = np.random.default_rng(15)
        n = 4096
        sm = SegmentMap(rng.random(n))
        true = math.log2(n)
        ests = [estimate_log_n(sm, p) for p in list(sm.points)[:200]]
        # the paper's bound: log n − log log n − 1 ≤ est ≤ 3 log n
        assert all(true - math.log2(true) - 2 <= e <= 3 * true + 1 for e in ests)

    def test_tiny_network(self):
        sm = SegmentMap([0.3])
        assert estimate_log_n(sm, 0.3) == 1
