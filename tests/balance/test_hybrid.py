"""Unit tests for the Kenthapadi–Manku hybrid probe strategy (§4.2)."""


import numpy as np
import pytest

from repro.balance import HybridChoice, ImprovedSingleChoice, SingleChoice
from repro.core.segments import SegmentMap


def grow(strategy, n, seed=0):
    rng = np.random.default_rng(seed)
    sm = SegmentMap()
    for _ in range(n):
        sm.insert(strategy.select(sm, rng))
    return sm


class TestHybridChoice:
    def test_empty_map(self):
        rng = np.random.default_rng(0)
        p = HybridChoice().select(SegmentMap(), rng)
        assert 0 <= p < 1

    def test_returns_midpoint_of_longest_in_run(self):
        rng = np.random.default_rng(1)
        sm = SegmentMap([0.0, 0.1, 0.5])  # lengths 0.1, 0.4, 0.5
        # with r = full scan, the longest segment in any run containing it wins
        p = HybridChoice(r=3).select(sm, rng)
        assert p == pytest.approx(0.75)  # midpoint of [0.5, 1.0)

    def test_smoothness_constant(self):
        sm = grow(HybridChoice(), 1024, seed=2)
        assert sm.smoothness() <= 16
        assert sm.min_segment_length() >= 1 / (8 * 1024)

    def test_between_improved_and_multiple(self):
        """§4.2's remark: sequential probes ≈ Multiple Choice quality at
        one lookup per join."""
        n = 1024
        rho_hybrid = grow(HybridChoice(), n, seed=3).smoothness()
        rho_improved = grow(ImprovedSingleChoice(), n, seed=3).smoothness()
        rho_single = grow(SingleChoice(), n, seed=3).smoothness()
        assert rho_hybrid <= rho_improved
        assert rho_hybrid < rho_single / 4

    def test_r_validation(self):
        with pytest.raises(ValueError):
            HybridChoice(r=0)

    def test_usable_as_selector(self):
        from repro.core import DistanceHalvingNetwork

        rng = np.random.default_rng(4)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(128, selector=HybridChoice())
        assert net.max_out_degree() <= net.smoothness() + 4
