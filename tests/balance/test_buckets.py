"""Unit tests for the bucket balancer (paper §4.1)."""

import math

import numpy as np
import pytest

from repro.balance import BucketBalancer


def churn(balancer, rng, joins, leaves_prob=0.0, steps=None):
    steps = steps if steps is not None else joins
    alive = []
    for _ in range(steps):
        if not alive or rng.random() >= leaves_prob:
            alive.append(balancer.join(rng))
        else:
            idx = int(rng.integers(len(alive)))
            balancer.leave(alive.pop(idx), rng)
    return alive


class TestBasics:
    def test_first_join(self):
        b = BucketBalancer()
        rng = np.random.default_rng(0)
        p = b.join(rng)
        assert b.n == 1
        assert 0 <= p < 1

    def test_join_many_invariants(self):
        b = BucketBalancer()
        rng = np.random.default_rng(1)
        for _ in range(300):
            b.join(rng)
        b.check_invariants()
        assert b.n == 300

    def test_bucket_sizes_logarithmic(self):
        b = BucketBalancer()
        rng = np.random.default_rng(2)
        for _ in range(500):
            b.join(rng)
        log_n = math.log2(500)
        sizes = [bk.size() for bk in b.buckets]
        assert max(sizes) <= b.hi_factor * log_n + 1
        # merge/split keep the minimum from collapsing (except transients)
        assert min(sizes) >= 1

    def test_leave_unknown_raises(self):
        b = BucketBalancer()
        rng = np.random.default_rng(3)
        b.join(rng)
        with pytest.raises(KeyError):
            b.leave(0.123456789, rng)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BucketBalancer(rebalance_threshold=0.5)


class TestSmoothnessUnderChurn:
    def test_smoothness_after_joins(self):
        b = BucketBalancer(rebalance_threshold=3.0)
        rng = np.random.default_rng(4)
        for _ in range(400):
            b.join(rng)
        # rebalancing keeps ρ polylog (vs Θ(n log n) for raw single choice)
        assert b.smoothness() <= 8 * math.log2(400) ** 2

    def test_random_deletions_do_not_blow_up(self):
        """The scenario of §4.1: delete half the servers at random."""
        b = BucketBalancer(rebalance_threshold=3.0)
        rng = np.random.default_rng(5)
        pts = [b.join(rng) for _ in range(600)]
        rng.shuffle(pts)
        for p in pts[:300]:
            b.leave(p, rng)
        b.check_invariants()
        n = b.n
        assert b.smoothness() <= 8 * math.log2(n) ** 2

    def test_sustained_churn(self):
        b = BucketBalancer(rebalance_threshold=3.0)
        rng = np.random.default_rng(6)
        churn(b, rng, joins=200)
        churn(b, rng, joins=0, leaves_prob=0.5, steps=400)
        b.check_invariants()
        assert b.n >= 2

    def test_cost_accounting(self):
        b = BucketBalancer(rebalance_threshold=2.0)
        rng = np.random.default_rng(7)
        for _ in range(200):
            b.join(rng)
        assert b.total_id_changes >= b.rebalances  # each rebalance moves ≥1
        # amortised cost should be modest: O(polylog) per op on average
        assert b.total_id_changes / 200 <= 4 * math.log2(200) ** 2

    def test_higher_threshold_fewer_rebalances(self):
        """Paper: 'rearrange only when smoothness exceeds a tunable parameter'."""
        rng1, rng2 = np.random.default_rng(8), np.random.default_rng(8)
        tight = BucketBalancer(rebalance_threshold=2.0)
        loose = BucketBalancer(rebalance_threshold=16.0)
        for _ in range(300):
            tight.join(rng1)
            loose.join(rng2)
        assert loose.rebalances <= tight.rebalances
