"""Golden-trace parity: the ported BucketBalancer vs pre-port behavior.

The §4.1 balancer was ported onto the shared columnar-snapshot layer
(``_PointsSnapshot`` patching a frozen sorted column from the balancer's
op journal instead of re-freezing ``SegmentMap.as_array`` per query).
These checkpoints were recorded on the **pre-port** implementation with
the exact driver below; every field — counts, bucket shapes, the full
``repr`` of the smoothness float, and a SHA-256 of the raw point bytes —
must still match exactly, so the port provably changed no behavior.
"""

import hashlib

import numpy as np
import pytest

from repro.balance.buckets import BucketBalancer

# (seed, steps, leave_prob, threshold) -> recorded quarter-step rows of
# (step, n, total_id_changes, rebalances, len(buckets),
#  sorted sizes[:5], repr(smoothness()), sha256(points)[:16])
GOLDEN = {
    (11, 240, 0.0, 3.0): [
        (60, 60, 507, 39, 4, [12, 14, 16, 18],
         "2.983438667369363", "2bc1013985dbbafc"),
        (120, 120, 1240, 78, 7, [15, 15, 15, 15, 16],
         "2.734355002046765", "2756dbb99a5c40db"),
        (180, 180, 2061, 118, 9, [15, 16, 16, 17, 21],
         "3.260854542094904", "1cb30671346a82e8"),
        (240, 240, 2975, 157, 11, [16, 16, 17, 17, 20],
         "4.196632664497566", "ae3d4f4cbe1e8c2d"),
    ],
    (12, 400, 0.45, 2.0): [
        (100, 4, 503, 73, 1, [4],
         "1.0", "ca4784e1cc87d921"),
        (200, 26, 1346, 154, 2, [10, 16],
         "1.371428571428578", "9f0b3e7691be5420"),
        (300, 32, 2557, 246, 3, [8, 11, 13],
         "1.3389687235841177", "e3eeb7b79542d4b4"),
        (400, 52, 3779, 336, 4, [12, 12, 12, 16],
         "3.0984400215169576", "cddafcd2200498a1"),
    ],
    (13, 320, 0.3, 4.0): [
        (80, 48, 472, 41, 4, [11, 11, 12, 14],
         "1.5060606060606148", "3f82e9edd91fb86e"),
        (160, 88, 1160, 80, 5, [13, 13, 16, 22, 24],
         "6.821736598847273", "0e7ef0c782910131"),
        (240, 102, 1734, 114, 7, [12, 13, 14, 14, 15],
         "3.7811609018607606", "001bf76b728dc3f7"),
        (320, 128, 2378, 152, 7, [16, 16, 17, 18, 18],
         "3.4876707866897494", "32d3f75ebd5b8ad3"),
    ],
}


def drive(seed, steps, leave_prob, threshold):
    """The exact recording driver — do not change it, it IS the trace."""
    b = BucketBalancer(rebalance_threshold=threshold)
    rng = np.random.default_rng(seed)
    alive = []
    rows = []
    for step in range(1, steps + 1):
        if not alive or rng.random() >= leave_prob:
            alive.append(b.join(rng))
        else:
            idx = int(rng.integers(len(alive)))
            b.leave(alive.pop(idx), rng)
        if step % (steps // 4) == 0:
            pts = np.asarray([float(p) for p in b.segments.points])
            digest = hashlib.sha256(pts.tobytes()).hexdigest()[:16]
            rows.append((step, b.n, b.total_id_changes, b.rebalances,
                         len(b.buckets),
                         sorted(bk.size() for bk in b.buckets)[:5],
                         repr(b.smoothness()), digest))
    b.check_invariants()
    return rows


@pytest.mark.parametrize("params", sorted(GOLDEN), ids=lambda p: f"seed{p[0]}")
def test_churn_trace_matches_pre_port_recording(params):
    recorded = [tuple(row) for row in GOLDEN[params]]
    replayed = [(s, n, ch, rb, nb, list(sz), sm, dg)
                for s, n, ch, rb, nb, sz, sm, dg in drive(*params)]
    assert replayed == [(s, n, ch, rb, nb, list(sz), sm, dg)
                        for s, n, ch, rb, nb, sz, sm, dg in recorded]
