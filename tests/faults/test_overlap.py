"""Unit tests for the overlapping DHT and fault models (paper §6)."""

import math

import numpy as np
import pytest

from repro.faults import (
    FaultPlan,
    OverlappingDHNetwork,
    canonical_path,
    random_byzantine,
    random_failstop,
    resistant_lookup,
    simple_lookup,
)
from repro.core.interval import Arc, arcs_cover_ring


@pytest.fixture(scope="module")
def net():
    rng = np.random.default_rng(5)
    return OverlappingDHNetwork(256, rng)


class TestStructure:
    def test_coverage_is_logarithmic(self, net):
        """Every point covered by Θ(log n) servers (§6.2 property list)."""
        rng = np.random.default_rng(0)
        counts = net.coverage_counts(rng.random(300))
        log_n = math.log2(net.n)
        assert counts.min() >= log_n / 4
        assert counts.max() <= 4 * log_n

    def test_degree_is_logarithmic(self, net):
        """Θ(log n) degree — §6 argues this is necessary for resilience."""
        log_n = math.log2(net.n)
        assert net.max_degree() <= 24 * log_n
        assert net.degree(net.points[0]) >= log_n / 2

    def test_segments_cover_ring(self, net):
        arcs = []
        for x in net.points:
            a, b = net.segment_of(x)
            arcs.append(Arc(a, (b + 1e-12) % 1.0))
        assert arcs_cover_ring(arcs)

    def test_alpha_estimates_log_n(self, net):
        log_n = math.log2(net.n)
        alphas = np.array(list(net.alpha.values()), dtype=float)
        assert np.median(alphas) >= log_n / 2
        assert alphas.max() <= 3.5 * log_n

    def test_covers_point_closed_segment(self, net):
        x = net.points[10]
        assert net.covers_point(x, x)
        assert net.covers_point(x, net.end[x])

    def test_replica_group_is_clique(self, net):
        """§6.2: servers of one item are pairwise connected."""
        net.store_item("item", 1)
        group = net.replica_group("item")
        assert len(group) >= 2
        for a in group:
            nbs = set(net.neighbors(a)) | {a}
            for b in group:
                assert b in nbs

    def test_coverage_factor_scales(self):
        rng = np.random.default_rng(6)
        thin = OverlappingDHNetwork(128, np.random.default_rng(6), coverage_factor=0.5)
        thick = OverlappingDHNetwork(128, np.random.default_rng(6), coverage_factor=2.0)
        probes = rng.random(100)
        assert thick.coverage_counts(probes).mean() > thin.coverage_counts(probes).mean()

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            OverlappingDHNetwork(4, np.random.default_rng(0))


class TestCanonicalPath:
    def test_ends_at_target(self, net):
        rng = np.random.default_rng(1)
        for _ in range(30):
            src = net.points[int(rng.integers(net.n))]
            t = float(rng.random())
            path = canonical_path(net, src, t)
            assert path[-1] == pytest.approx(t)

    def test_starts_in_source_segment(self, net):
        rng = np.random.default_rng(2)
        for _ in range(30):
            src = net.points[int(rng.integers(net.n))]
            path = canonical_path(net, src, float(rng.random()))
            a, b = net.segment_of(src)
            assert (path[0] - a) % 1.0 <= (b - a) % 1.0

    def test_length_theorem_6_3(self, net):
        """Path length ≤ log n + O(1)."""
        rng = np.random.default_rng(3)
        log_n = math.log2(net.n)
        for _ in range(50):
            src = net.points[int(rng.integers(net.n))]
            path = canonical_path(net, src, float(rng.random()))
            assert len(path) - 1 <= log_n + 3

    def test_consecutive_points_are_continuous_edges(self, net):
        rng = np.random.default_rng(4)
        g = net.graph
        src = net.points[7]
        path = canonical_path(net, src, float(rng.random()))
        for a, b in zip(path, path[1:]):
            # b = backward(a): a is a child of b
            assert g.backward(a) == pytest.approx(b, abs=1e-9)


class TestSimpleLookup:
    def test_no_faults_succeeds(self, net):
        rng = np.random.default_rng(5)
        net.store_item("k", "v")
        for _ in range(30):
            src = net.points[int(rng.integers(net.n))]
            res = simple_lookup(net, src, "k", rng)
            assert res.success
            assert res.parallel_time <= math.log2(net.n) + 3

    def test_theorem_6_4_random_failstop(self, net):
        """All surviving servers locate all items under p = 0.2."""
        rng = np.random.default_rng(6)
        plan = random_failstop(net.points, 0.2, rng)
        net.store_item("doc", "x")
        failures = 0
        trials = 0
        for i in range(0, net.n, 4):
            src = net.points[i]
            if not plan.is_alive(src):
                continue
            trials += 1
            if not simple_lookup(net, src, "doc", rng, plan).success:
                failures += 1
        assert trials > 20
        assert failures == 0

    def test_high_failure_rate_can_break_thin_coverage(self):
        """With tiny coverage and massive p, lookups may fail — the
        phenomenon Claim 6.5's 'sufficiently small p' guards against."""
        rng = np.random.default_rng(7)
        thin = OverlappingDHNetwork(64, rng, coverage_factor=0.4)
        thin.store_item("d", 1)
        plan = random_failstop(thin.points, 0.85, rng)
        results = [
            simple_lookup(thin, s, "d", rng, plan).success
            for s in thin.points
            if plan.is_alive(s)
        ]
        assert len(results) == 0 or not all(results) or len(results) < 20


class TestResistantLookup:
    def test_no_faults_succeeds(self, net):
        net.store_item("r", 9)
        res = resistant_lookup(net, net.points[0], "r")
        assert res.success

    def test_theorem_6_6_byzantine(self, net):
        """Correct majority survives p = 0.15 payload corruption."""
        rng = np.random.default_rng(8)
        plan = random_byzantine(net.points, 0.15, rng)
        net.store_item("z", 1)
        oks = [
            resistant_lookup(net, net.points[i], "z", plan).success
            for i in range(0, net.n, 8)
        ]
        assert sum(oks) / len(oks) >= 0.95

    def test_message_complexity_log_cubed(self, net):
        """O(log³ n) messages; parallel time ≤ log n + O(1)."""
        res = resistant_lookup(net, net.points[1], "z")
        log_n = math.log2(net.n)
        assert res.messages <= 8 * log_n**3
        assert res.messages >= log_n**2 / 4  # it really floods
        assert res.parallel_time <= log_n + 3

    def test_zero_hop_dead_replica_group_fails_cleanly(self, net):
        """Regression: a zero-hop lookup whose whole replica group is
        dead used to crash on the empty final majority; it now reports a
        plain failure with zero levels traversed."""
        src = net.points[3]
        plan = FaultPlan(failed=set(net.covers(src)) | {src})
        res = resistant_lookup(net, src, "k", plan, target=src)
        assert not res.success
        assert res.parallel_time == 0
        assert res.messages == 0

    def test_midpath_death_parallel_time_counts_traversed_levels(self, net):
        """Regression: dying at relay level k must report k, not the
        requested walk length."""
        y = 0.42
        plan = FaultPlan(failed=set(net.covers(y)))
        src = next(p for p in net.points if not net.covers_point(p, y))
        res = resistant_lookup(net, src, "k", plan, target=y)
        assert not res.success
        assert res.parallel_time == 1 < len(res.path_points) - 1

    def test_simple_lookup_fails_against_byzantine(self, net):
        """Contrast: the cheap lookup trusts a single holder, so a lying
        holder corrupts the answer — resistant lookup exists for a reason."""
        rng = np.random.default_rng(9)
        plan = FaultPlan(liars=set(net.replica_group("z")))
        res = simple_lookup(net, net.points[2], "z", rng, plan)
        assert not res.success
        res2 = resistant_lookup(net, net.points[2], "z", plan)
        assert not res2.success  # everyone lying is unrecoverable too


class TestFaultPlans:
    def test_failstop_probability(self):
        rng = np.random.default_rng(10)
        servers = list(np.arange(1000) / 1000.0)
        plan = random_failstop(servers, 0.3, rng)
        assert 230 <= len(plan.failed) <= 370

    def test_bad_probability_rejected(self):
        rng = np.random.default_rng(11)
        with pytest.raises(ValueError):
            random_failstop([0.1], 1.0, rng)
        with pytest.raises(ValueError):
            random_byzantine([0.1], -0.1, rng)

    def test_liar_answers_corrupt(self):
        plan = FaultPlan(liars={0.5})
        assert plan.answer_of(0.5, "v") != "v"
        assert plan.answer_of(0.4, "v") == "v"
