"""Self-healing storage: read-repair + re-encode of Reed-Solomon shares.

The §6.2 erasure remark makes items survive up to n−k share losses; this
suite exercises the *repair* loop a long-running soak needs on top: when
share holders fail-stop, `ErasureStore.read_repair` must reconstruct the
item from any k surviving shares, re-encode it over the alive replica
group, and restore full redundancy — byte-identically.
"""

import itertools

import numpy as np
import pytest

from repro.faults import ErasureStore, OverlappingDHNetwork, RepairReport
from repro.faults.models import random_failstop


def make_store(n=64, seed=7, data_fraction=0.5, items=6, payload=300):
    rng = np.random.default_rng(seed)
    net = OverlappingDHNetwork(n, rng=rng)
    store = ErasureStore(net, data_fraction=data_fraction)
    blobs = {}
    for i in range(items):
        key = f"item-{i}"
        data = bytes(rng.integers(0, 256, size=payload, dtype=np.uint8))
        store.put(key, data)
        blobs[key] = data
    return net, store, blobs


def kill_holders(net, store, key, kill):
    """Alive set with exactly ``kill`` of the key's share holders dead."""
    holders = list(store._items[key].share_at)
    return set(net.points_array.tolist()) - set(holders[:kill])


class TestReadRepair:
    def test_no_faults_is_a_no_op(self):
        net, store, blobs = make_store()
        alive = set(net.points_array.tolist())
        for key in store.keys():
            assert store.read_repair(key, alive) == 0
            assert store.get(key, alive) == blobs[key]

    def test_repair_after_max_tolerable_losses(self):
        """Kill exactly n−k holders: the worst survivable fault."""
        net, store, blobs = make_store()
        for key in store.keys():
            item = store._items[key]
            n_shares, k = len(item.share_at), item.code.k
            alive = kill_holders(net, store, key, n_shares - k)
            assert store.shares_alive(key, alive) == k
            assert store.is_recoverable(key, alive)
            rebuilt = store.read_repair(key, alive)
            assert rebuilt > 0
            # Full redundancy restored: every alive group member holds a
            # share and the decoded payload is byte-identical.
            group = net.covers(store._items[key].pos, alive=alive)
            assert set(store._items[key].share_at) == set(group)
            assert store.get(key, alive) == blobs[key]
            assert store.verify(key, alive)

    def test_repaired_tolerance_matches_alive_group(self):
        net, store, blobs = make_store()
        key = store.keys()[0]
        item = store._items[key]
        alive = kill_holders(net, store, key, len(item.share_at) - item.code.k)
        store.read_repair(key, alive)
        item = store._items[key]
        n_new = len(item.share_at)
        k_new = item.code.k
        assert k_new == max(1, round(n_new * store.data_fraction))
        assert store.tolerance(key) == n_new - k_new

    def test_repaired_shares_roundtrip_from_every_k_subset(self):
        """Any k of the re-encoded shares must decode byte-identically."""
        net, store, blobs = make_store(items=2)
        key = store.keys()[0]
        item = store._items[key]
        alive = kill_holders(net, store, key, len(item.share_at) - item.code.k)
        store.read_repair(key, alive)
        item = store._items[key]
        shares = list(item.share_at.values())
        for subset in itertools.combinations(shares, item.code.k):
            assert item.code.decode(list(subset)) == blobs[key]

    def test_repair_survives_a_second_fault_wave(self):
        """Heal, kill more holders, heal again — data still intact."""
        net, store, blobs = make_store()
        key = store.keys()[1]
        item = store._items[key]
        alive = kill_holders(net, store, key, len(item.share_at) - item.code.k)
        store.read_repair(key, alive)
        item = store._items[key]
        survivors = [s for s in item.share_at if s in alive]
        alive2 = alive - set(survivors[: len(item.share_at) - item.code.k])
        assert store.read_repair(key, alive2) > 0
        assert store.get(key, alive2) == blobs[key]

    def test_unrecoverable_raises(self):
        net, store, _ = make_store()
        key = store.keys()[0]
        item = store._items[key]
        alive = kill_holders(net, store, key,
                             len(item.share_at) - item.code.k + 1)
        assert not store.is_recoverable(key, alive)
        assert not store.verify(key, alive)
        with pytest.raises(ValueError, match="unrecoverable"):
            store.read_repair(key, alive)


class TestHealSweep:
    def test_heal_classifies_items(self):
        net, store, blobs = make_store(items=8, seed=11)
        rng = np.random.default_rng(3)
        plan = random_failstop(net.points_array.tolist(), 0.25, rng)
        alive = set(net.points_array.tolist()) - plan.failed
        expect_healthy = sum(
            all(s in alive for s in store._items[k].share_at)
            for k in store.keys()
        )
        report = store.heal(alive)
        assert report.items == len(store.keys())
        assert report.healthy == expect_healthy
        assert report.healthy + report.repaired + report.lost == report.items
        if report.repaired:
            assert report.shares_rebuilt > 0
        # Every surviving item now decodes byte-identically.
        for key in store.keys():
            if store.is_recoverable(key, alive):
                assert store.get(key, alive) == blobs[key]

    def test_heal_is_idempotent(self):
        net, store, _ = make_store(items=8, seed=11)
        rng = np.random.default_rng(3)
        plan = random_failstop(net.points_array.tolist(), 0.25, rng)
        alive = set(net.points_array.tolist()) - plan.failed
        first = store.heal(alive)
        second = store.heal(alive)
        assert second.repaired == 0
        assert second.shares_rebuilt == 0
        assert second.healthy == first.items - first.lost
        assert second.lost == first.lost

    def test_heal_leaves_lost_items_untouched(self):
        net, store, _ = make_store(items=4)
        key = store.keys()[0]
        item = store._items[key]
        before = dict(item.share_at)
        alive = kill_holders(net, store, key,
                             len(item.share_at) - item.code.k + 1)
        report = store.heal(alive, keys=[key])
        assert report.lost == 1 and report.repaired == 0
        assert store._items[key].share_at == before

    def test_heal_subset_of_keys(self):
        net, store, _ = make_store(items=4)
        alive = set(net.points_array.tolist())
        report = store.heal(alive, keys=store.keys()[:2])
        assert report.items == 2 and report.healthy == 2

    def test_report_merge_sums_counters(self):
        a = RepairReport(items=3, healthy=1, repaired=1,
                         shares_rebuilt=5, lost=1)
        b = RepairReport(items=2, healthy=2)
        a.merge(b)
        assert (a.items, a.healthy, a.repaired, a.shares_rebuilt, a.lost) \
            == (5, 3, 1, 5, 1)
