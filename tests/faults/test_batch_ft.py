"""Unit tests for the vectorized fault-tolerant batch engine (§6.3)."""

import math

import numpy as np
import pytest

from repro.core import BatchCongestion
from repro.core.lookup import MAX_WALK_STEPS, compress_path
from repro.faults import (
    FTBatchEngine,
    FaultPlan,
    OverlappingDHNetwork,
    canonical_path,
    random_byzantine,
    random_failstop,
    resistant_lookup,
    simple_lookup,
)


@pytest.fixture(scope="module")
def net():
    rng = np.random.default_rng(5)
    return OverlappingDHNetwork(256, rng)


@pytest.fixture(scope="module")
def engine(net):
    return FTBatchEngine(net)


def _random_workload(net, rng, count):
    src = net.points_array[rng.integers(0, net.n, size=count)]
    tgt = rng.random(count)
    u = rng.random((count, 32))
    return src, tgt, u


def _assert_simple_parity(net, engine, plan, seed, count=150):
    rng = np.random.default_rng(seed)
    src, tgt, u = _random_workload(net, rng, count)
    batch = engine.batch_simple_lookup(src, tgt, choices=u, plan=plan,
                                       keep_paths="csr")
    for i in range(count):
        ref = simple_lookup(net, float(src[i]), "k", plan=plan,
                            target=float(tgt[i]), choices=list(u[i]))
        assert bool(ref.success) == bool(batch.success[i])
        assert ref.messages == int(batch.messages[i])
        assert ref.parallel_time == int(batch.parallel_time[i])
        assert compress_path(ref.servers) == batch.server_path(i)
    return batch


def _assert_resistant_parity(net, engine, plan, seed, count=100):
    rng = np.random.default_rng(seed)
    src, tgt, _ = _random_workload(net, rng, count)
    batch = engine.batch_resistant_lookup(src, tgt, plan=plan)
    for i in range(count):
        ref = resistant_lookup(net, float(src[i]), "k", plan,
                               target=float(tgt[i]))
        assert bool(ref.success) == bool(batch.success[i])
        assert ref.messages == int(batch.messages[i])
        assert ref.parallel_time == int(batch.parallel_time[i])
    return batch


class TestCoverTable:
    def test_matches_scalar_covers(self, net):
        """Array-backed cover tables replay the scalar scan exactly."""
        probes = np.random.default_rng(0).random(200)
        cand, mask = net.cover_table(probes)
        for b, y in enumerate(probes):
            expected = net.covers(float(y))
            got = [float(net.points_array[cand[k, b]])
                   for k in range(net.max_back) if mask[k, b]]
            assert got == expected

    def test_id_points_covered_by_self(self, net):
        """Exact id points: the owning server is always among the covers."""
        cand, mask = net.cover_table(net.points_array)
        own = cand[0] == np.arange(net.n)
        assert own.all()
        assert mask[0].all()

    def test_coverage_counts_vectorized(self, net):
        probes = np.random.default_rng(1).random(100)
        counts = net.coverage_counts(probes)
        assert counts.min() >= 1
        assert (counts == [len(net.covers(float(p))) for p in probes]).all()


class TestFaultPlanMasks:
    def test_masks_match_sets(self, net):
        plan = random_failstop(net.points, 0.3, np.random.default_rng(2))
        plan.liars = set(net.points[:10])
        failed = plan.failed_mask(net.points_array)
        alive = plan.alive_mask(net.points_array)
        liars = plan.liar_mask(net.points_array)
        for i, p in enumerate(net.points):
            assert failed[i] == (p in plan.failed)
            assert alive[i] == plan.is_alive(p)
            assert liars[i] == (p in plan.liars)

    def test_from_masks_roundtrip(self, net):
        rng = np.random.default_rng(3)
        failed = rng.random(net.n) < 0.2
        liars = rng.random(net.n) < 0.1
        plan = FaultPlan.from_masks(net.points_array, failed=failed,
                                    liars=liars)
        assert (plan.failed_mask(net.points_array) == failed).all()
        assert (plan.liar_mask(net.points_array) == liars).all()

    def test_empty_plan_masks(self, net):
        plan = FaultPlan()
        assert not plan.failed_mask(net.points_array).any()
        assert plan.alive_mask(net.points_array).all()


class TestCanonicalWalks:
    def test_matches_scalar_canonical_path(self, net, engine):
        rng = np.random.default_rng(4)
        idx = rng.integers(0, net.n, size=100).astype(np.int64)
        tgt = rng.random(100)
        t, s = engine.canonical_walks(idx, tgt)
        for b in range(100):
            path = canonical_path(net, net.points[int(idx[b])], float(tgt[b]))
            assert len(path) - 1 == int(t[b])
            for level in range(int(t[b]) + 1):
                p = engine._level_points(tgt[b:b + 1], s[b:b + 1],
                                         np.array([level]))[0]
                assert p == path[int(t[b]) - level]

    def test_walk_length_theorem_6_3(self, net, engine):
        rng = np.random.default_rng(5)
        idx = rng.integers(0, net.n, size=300).astype(np.int64)
        t, _ = engine.canonical_walks(idx, rng.random(300))
        assert int(t.max()) <= math.log2(net.n) + 3
        assert int(t.max()) <= MAX_WALK_STEPS


class TestBatchSimpleLookup:
    def test_parity_no_faults(self, net, engine):
        batch = _assert_simple_parity(net, engine, FaultPlan(), seed=10)
        assert batch.success.all()

    def test_parity_failstop(self, net, engine):
        plan = random_failstop(net.points, 0.3, np.random.default_rng(11))
        _assert_simple_parity(net, engine, plan, seed=12)

    def test_parity_heavy_failstop(self, net, engine):
        """Past the knee: failures appear and still match bit-for-bit."""
        plan = random_failstop(net.points, 0.7, np.random.default_rng(13))
        batch = _assert_simple_parity(net, engine, plan, seed=14)
        assert not batch.success.all()

    def test_parity_byzantine(self, net, engine):
        plan = random_byzantine(net.points, 0.3, np.random.default_rng(15))
        batch = _assert_simple_parity(net, engine, plan, seed=16)
        # the cheap lookup trusts the holder: liars cost it lookups
        assert 0.4 < batch.success_rate() < 1.0

    def test_rng_mode_draws_choices(self, net, engine):
        src, tgt, _ = _random_workload(net, np.random.default_rng(17), 50)
        res = engine.batch_simple_lookup(src, tgt,
                                         rng=np.random.default_rng(18))
        assert res.success.all()
        assert res.parallel_time.max() <= math.log2(net.n) + 3

    def test_needs_rng_or_choices(self, net, engine):
        with pytest.raises(ValueError, match="rng or explicit choices"):
            engine.batch_simple_lookup(net.points_array[:2], [0.1, 0.2])

    def test_choices_exhausted_raises(self, net, engine):
        src, tgt, _ = _random_workload(net, np.random.default_rng(19), 20)
        with pytest.raises(ValueError, match="exhausted"):
            engine.batch_simple_lookup(src, tgt,
                                       choices=np.zeros((20, 1)))

    def test_source_must_be_id_point(self, net, engine):
        with pytest.raises(ValueError, match="server id points"):
            engine.batch_simple_lookup(np.array([0.5 * net.points[0]]),
                                       np.array([0.3]),
                                       rng=np.random.default_rng(0))

    def test_integer_sources_accepted(self, net, engine):
        rng = np.random.default_rng(20)
        idx = rng.integers(0, net.n, size=30)
        by_idx = engine.batch_simple_lookup(idx, np.full(30, 0.25),
                                            choices=np.full((30, 32), 0.0))
        by_pts = engine.batch_simple_lookup(net.points_array[idx],
                                            np.full(30, 0.25),
                                            choices=np.full((30, 32), 0.0))
        assert (by_idx.holder_idx == by_pts.holder_idx).all()
        assert (by_idx.messages == by_pts.messages).all()

    def test_all_covers_dead_fails_identically(self, net, engine):
        """A path point with zero alive covers kills the walk (both
        engines, same accounting)."""
        y = 0.123456
        plan = FaultPlan(failed=set(net.covers(y)))
        # a source that does not cover y, so the walk has to reach it
        src = next(p for p in net.points if not net.covers_point(p, y))
        u = np.zeros((1, 32))
        batch = engine.batch_simple_lookup(np.array([src]), np.array([y]),
                                           choices=u, plan=plan,
                                           keep_paths=True)
        ref = simple_lookup(net, src, "k", plan=plan, target=y,
                            choices=list(u[0]))
        assert not ref.success and not batch.success[0]
        assert ref.messages == int(batch.messages[0])
        assert ref.parallel_time == int(batch.parallel_time[0])
        assert int(batch.parallel_time[0]) < int(batch.t[0])

    def test_zero_hop_dead_source(self, net, engine):
        """t = 0 with the whole replica group dead: holder is the dead
        source itself."""
        src = net.points[7]
        plan = FaultPlan(failed=set(net.covers(src)) | {src})
        batch = engine.batch_simple_lookup(np.array([src]), np.array([src]),
                                           choices=np.zeros((1, 32)),
                                           plan=plan)
        ref = simple_lookup(net, src, "k", plan=plan, target=src,
                            choices=[0.0])
        assert int(batch.t[0]) == 0
        assert not batch.success[0] and not ref.success
        assert int(batch.parallel_time[0]) == ref.parallel_time == 0


class TestBatchResistantLookup:
    def test_parity_no_faults(self, net, engine):
        batch = _assert_resistant_parity(net, engine, FaultPlan(), seed=30)
        assert batch.success.all()

    def test_parity_byzantine(self, net, engine):
        plan = random_byzantine(net.points, 0.2, np.random.default_rng(31))
        _assert_resistant_parity(net, engine, plan, seed=32)

    def test_parity_heavy_mixed(self, net, engine):
        plan = FaultPlan(
            failed=random_failstop(net.points, 0.4,
                                   np.random.default_rng(33)).failed,
            liars=random_byzantine(net.points, 0.3,
                                   np.random.default_rng(34)).liars)
        batch = _assert_resistant_parity(net, engine, plan, seed=35)
        assert not batch.success.all()

    def test_message_complexity(self, net, engine):
        rng = np.random.default_rng(36)
        src, tgt, _ = _random_workload(net, rng, 200)
        res = engine.batch_resistant_lookup(src, tgt)
        logn = math.log2(net.n)
        assert int(res.messages.max()) <= 8 * logn**3
        assert float(res.messages.mean()) >= logn**2 / 4
        assert int(res.parallel_time.max()) <= logn + 3

    def test_hops_undefined_for_floods(self, net, engine):
        """Flood message counts must not masquerade as walk hops."""
        rng = np.random.default_rng(37)
        src, tgt, _ = _random_workload(net, rng, 5)
        res = engine.batch_resistant_lookup(src, tgt)
        with pytest.raises(ValueError, match="Simple Lookup batches only"):
            res.hops


class TestByzantineEdgeCases:
    """The satellite edge cases: ties, dead cover sets, lone liars."""

    def _source_avoiding(self, net, y):
        return next(p for p in net.points if not net.covers_point(p, y))

    def test_exact_tie_majority_is_no_majority(self, net, engine):
        """One honest + one lying replica split the vote 1–1: nothing
        clears the strict-majority filter and the flood dies."""
        y = 0.654321
        covers = net.covers(y)
        assert len(covers) >= 3
        plan = FaultPlan(failed=set(covers[2:]), liars={covers[1]})
        src = self._source_avoiding(net, y)
        ref = resistant_lookup(net, src, "k", plan, target=y)
        batch = engine.batch_resistant_lookup(np.array([src]), np.array([y]),
                                              plan=plan)
        assert not ref.success and not batch.success[0]
        # died at the very first relay level, after 1 level of travel
        assert ref.parallel_time == int(batch.parallel_time[0]) == 1
        assert ref.messages == int(batch.messages[0])

    def test_all_covers_dead_path_point(self, net, engine):
        y = 0.271828
        plan = FaultPlan(failed=set(net.covers(y)))
        src = self._source_avoiding(net, y)
        ref = resistant_lookup(net, src, "k", plan, target=y)
        batch = engine.batch_resistant_lookup(np.array([src]), np.array([y]),
                                              plan=plan)
        assert not ref.success and not batch.success[0]
        assert ref.messages == int(batch.messages[0]) == 0
        assert ref.parallel_time == int(batch.parallel_time[0]) == 1

    def test_zero_hop_all_dead_replica_group(self, net, engine):
        """t = 0 and the whole replica group dead: the scalar engine used
        to crash on the empty majority; now both report a failure."""
        src = net.points[11]
        plan = FaultPlan(failed=set(net.covers(src)) | {src})
        ref = resistant_lookup(net, src, "k", plan, target=src)
        batch = engine.batch_resistant_lookup(np.array([src]),
                                              np.array([src]), plan=plan)
        assert not ref.success and not batch.success[0]
        assert ref.parallel_time == int(batch.parallel_time[0]) == 0

    def test_lone_liar_forwards_its_corruption(self, net, engine):
        """A single surviving (lying) cover *does* clear the majority
        filter — its corruption rides to the requester, who then
        rejects it: resistant fails rather than returning garbage."""
        y = 0.314159
        covers = net.covers(y)
        plan = FaultPlan(failed=set(covers[1:]), liars={covers[0]})
        src = self._source_avoiding(net, y)
        ref = resistant_lookup(net, src, "k", plan, target=y)
        batch = engine.batch_resistant_lookup(np.array([src]), np.array([y]),
                                              plan=plan)
        assert not ref.success and not batch.success[0]
        # the corruption survived the whole path (no early death)
        assert ref.parallel_time == int(batch.parallel_time[0]) > 1
        assert ref.messages == int(batch.messages[0]) > 0

    def test_simple_and_resistant_agree_fault_free(self, net, engine):
        rng = np.random.default_rng(40)
        src, tgt, u = _random_workload(net, rng, 100)
        simple = engine.batch_simple_lookup(src, tgt, choices=u)
        resist = engine.batch_resistant_lookup(src, tgt)
        assert simple.success.all() and resist.success.all()
        assert (simple.t == resist.t).all()
        assert (simple.parallel_time == resist.parallel_time).all()


class TestParallelTimeLevelsTraversed:
    """Regression (satellite fix): parallel_time counts levels actually
    traversed, never the requested walk length."""

    def test_resistant_midpath_death_reports_traversed_levels(self, net):
        rng = np.random.default_rng(50)
        seen_early_death = False
        for _ in range(200):
            src = net.points[int(rng.integers(net.n))]
            y = float(rng.random())
            plan = random_failstop(net.points, 0.85,
                                   np.random.default_rng(int(rng.integers(1 << 31))))
            res = resistant_lookup(net, src, "k", plan, target=y)
            assert res.parallel_time <= len(res.path_points) - 1
            assert res.parallel_time <= MAX_WALK_STEPS
            if (not res.success
                    and 0 < res.parallel_time < len(res.path_points) - 1):
                seen_early_death = True
        assert seen_early_death, "sweep never exercised a mid-path death"

    def test_simple_failure_reports_traversed_levels(self, net):
        rng = np.random.default_rng(51)
        y = 0.777
        plan = FaultPlan(failed=set(net.covers(y)))
        src = next(p for p in net.points if not net.covers_point(p, y))
        res = simple_lookup(net, src, "k", rng, plan, target=y)
        assert not res.success
        assert res.parallel_time == len(res.servers) - 1
        assert res.parallel_time < len(res.path_points) - 1


class TestCsrPathContract:
    def test_csr_shape_and_decode(self, net, engine):
        rng = np.random.default_rng(60)
        src, tgt, u = _random_workload(net, rng, 80)
        res = engine.batch_simple_lookup(src, tgt, choices=u,
                                         keep_paths="csr")
        servers, offsets = res.to_csr()
        assert offsets.shape == (81,)
        assert offsets[0] == 0 and offsets[-1] == servers.size
        assert (np.diff(offsets) >= 1).all()
        assert servers.dtype == np.int32
        lengths = res.path_lengths()
        assert (lengths == res.messages + 1).all()  # compressed walks
        for i in (0, 13, 79):
            pts = res.path_points(i)
            assert pts[0] == res.points[res.source_idx[i]] or len(pts) >= 1
            assert res.server_path(i) == [float(p) for p in pts]

    def test_keep_paths_true_lazy_csr(self, net, engine):
        rng = np.random.default_rng(61)
        src, tgt, u = _random_workload(net, rng, 40)
        lazy = engine.batch_simple_lookup(src, tgt, choices=u,
                                          keep_paths=True)
        eager = engine.batch_simple_lookup(src, tgt, choices=u,
                                           keep_paths="csr")
        ls, lo = lazy.to_csr()
        es, eo = eager.to_csr()
        assert (ls == es).all() and (lo == eo).all()

    def test_no_paths_raises(self, net, engine):
        rng = np.random.default_rng(62)
        src, tgt, u = _random_workload(net, rng, 10)
        res = engine.batch_simple_lookup(src, tgt, choices=u)
        with pytest.raises(ValueError, match="keep_paths=False"):
            res.to_csr()

    def test_bad_keep_paths_rejected(self, net, engine):
        with pytest.raises(ValueError, match="keep_paths"):
            engine.batch_simple_lookup(net.points_array[:1], [0.5],
                                       choices=np.zeros((1, 32)),
                                       keep_paths="yes")

    def test_congestion_accounting_accepts_ft_batches(self, net, engine):
        """The CSR arrays plug straight into the PR-4 accounting spine."""
        rng = np.random.default_rng(63)
        src, tgt, u = _random_workload(net, rng, 500)
        res = engine.batch_simple_lookup(src, tgt, choices=u,
                                         keep_paths="csr")
        cong = BatchCongestion()
        cong.record_batch(res)
        assert cong.lookups == 500
        assert cong.total_messages == int(res.messages.sum())
        assert cong.max_load() >= 1
