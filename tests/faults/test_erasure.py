"""Unit tests for erasure-coded storage (the §6.2 erasure-code remark)."""

import numpy as np
import pytest

from repro.faults import ErasureStore, GF256, OverlappingDHNetwork, ReedSolomonCode
from repro.faults.models import random_failstop


class TestGF256:
    def test_addition_is_xor(self):
        assert GF256.add(0x53, 0xCA) == 0x53 ^ 0xCA

    def test_multiplicative_identity(self):
        for a in (1, 7, 123, 255):
            assert GF256.mul(a, 1) == a

    def test_zero_annihilates(self):
        assert GF256.mul(0, 99) == 0
        assert GF256.mul(99, 0) == 0

    def test_known_product(self):
        # AES field: 0x53 * 0xCA = 0x01
        assert GF256.mul(0x53, 0xCA) == 0x01

    def test_inverse(self):
        for a in range(1, 256):
            assert GF256.mul(a, GF256.inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    def test_mul_commutative_associative(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b, c = (int(x) for x in rng.integers(0, 256, 3))
            assert GF256.mul(a, b) == GF256.mul(b, a)
            assert GF256.mul(a, GF256.mul(b, c)) == GF256.mul(GF256.mul(a, b), c)

    def test_distributive(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            a, b, c = (int(x) for x in rng.integers(0, 256, 3))
            assert GF256.mul(a, GF256.add(b, c)) == GF256.add(
                GF256.mul(a, b), GF256.mul(a, c)
            )

    def test_pow(self):
        assert GF256.pow(2, 0) == 1
        assert GF256.pow(2, 1) == 2
        assert GF256.pow(2, 8) == 0x1B ^ 0x100 & 0xFF or GF256.pow(2, 8) == GF256.mul(GF256.pow(2, 4), GF256.pow(2, 4))


class TestReedSolomon:
    def test_roundtrip_all_shares(self):
        code = ReedSolomonCode(3, 6)
        data = b"the quick brown fox jumps over the lazy dog"
        shares = code.encode(data)
        assert len(shares) == 6
        assert code.decode(shares) == data

    def test_any_k_shares_suffice(self):
        code = ReedSolomonCode(3, 6)
        data = bytes(range(100))
        shares = code.encode(data)
        import itertools

        for combo in itertools.combinations(shares, 3):
            assert code.decode(list(combo)) == data

    def test_fewer_than_k_rejected(self):
        code = ReedSolomonCode(4, 8)
        shares = code.encode(b"data")
        with pytest.raises(ValueError):
            code.decode(shares[:3])

    def test_empty_payload(self):
        code = ReedSolomonCode(2, 4)
        assert code.decode(code.encode(b"")) == b""

    def test_binary_payload(self):
        rng = np.random.default_rng(2)
        data = bytes(rng.integers(0, 256, size=333, dtype=np.uint8))
        code = ReedSolomonCode(5, 9)
        shares = code.encode(data)
        assert code.decode(shares[4:]) == data  # parity-heavy subset

    def test_overhead(self):
        assert ReedSolomonCode(4, 6).overhead() == pytest.approx(1.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(0, 4)
        with pytest.raises(ValueError):
            ReedSolomonCode(5, 4)


class TestErasureStore:
    @pytest.fixture()
    def net(self):
        return OverlappingDHNetwork(128, np.random.default_rng(3))

    def test_put_get_roundtrip(self, net):
        store = ErasureStore(net)
        data = b"x" * 500
        n = store.put("doc", data)
        assert n >= 4
        assert store.get("doc") == data

    def test_survives_failstop_of_tolerated_shares(self, net):
        rng = np.random.default_rng(4)
        store = ErasureStore(net, data_fraction=0.5)
        data = b"precious bytes" * 20
        store.put("doc", data)
        tol = store.tolerance("doc")
        assert tol >= 1
        # kill exactly `tol` of the share holders
        holders = list(store._items["doc"].share_at)
        dead = set(holders[:tol])
        alive = set(net.points) - dead
        assert store.get("doc", alive=alive) == data

    def test_fails_beyond_tolerance(self, net):
        store = ErasureStore(net, data_fraction=0.5)
        store.put("doc", b"abc")
        holders = list(store._items["doc"].share_at)
        tol = store.tolerance("doc")
        alive = set(net.points) - set(holders[: tol + 1])
        with pytest.raises(ValueError):
            store.get("doc", alive=alive)

    def test_storage_beats_replication(self, net):
        """The Weatherspoon–Kubiatowicz point: same fault tolerance for
        a fraction of replication's bytes."""
        store = ErasureStore(net, data_fraction=0.5)
        data = b"y" * 1024
        store.put("doc", data)
        tol = store.tolerance("doc")
        replication_bytes = (tol + 1) * len(data)
        assert store.storage_bytes("doc") < replication_bytes

    def test_random_failstop_availability(self, net):
        """Under p=0.2 fail-stop the coded item stays retrievable."""
        rng = np.random.default_rng(5)
        store = ErasureStore(net, data_fraction=0.4)
        data = b"z" * 256
        store.put("doc", data)
        ok = 0
        for rep in range(20):
            plan = random_failstop(net.points, 0.2, rng)
            alive = set(net.points) - plan.failed
            try:
                ok += store.get("doc", alive=alive) == data
            except ValueError:
                pass
        assert ok >= 19

    def test_fraction_validation(self, net):
        with pytest.raises(ValueError):
            ErasureStore(net, data_fraction=0.0)
