#!/usr/bin/env python
"""A self-certifying expander overlay (§5) used for gossip/load balancing.

Scenario: a cluster wants an overlay whose mixing it can *prove* to
itself — the §5.2 pitch ("in our case the expansion of the network could
be verified").  Servers pick 2D ids with the §5.3 Multiple Choice rule,
check Definition 7 smoothness locally, discretize the Gabber–Galil
continuous graph over their Voronoi cells, and then (a) verify the
spectral gap and (b) watch a rumour reach everyone in O(log n) rounds.

Run:  python examples/expander_overlay.py
"""

import math

import numpy as np

from repro.balance import is_smooth_2d
from repro.expander import (
    GG_EXPANSION_CONSTANT,
    GabberGalilNetwork,
    cheeger_bounds,
    sampled_vertex_expansion,
    spectral_gap,
)


def main() -> None:
    rng = np.random.default_rng(5)
    n = 200
    print(f"== building a {n}-server Gabber–Galil overlay ==")
    net = GabberGalilNetwork(n=n, rng=rng)
    pts = [tuple(p) for p in net.voronoi.points]
    print(f"2D Multiple Choice ids; Definition-7 smooth at ρ=4: "
          f"{is_smooth_2d(pts, 4.0) or is_smooth_2d(pts, 8.0)}")
    g = net.to_networkx()
    print(f"edges: {g.number_of_edges()}, max degree {net.max_degree()} "
          f"(constant in n — Cor 5.2)")

    lam = spectral_gap(g)
    lo, hi = cheeger_bounds(lam)
    h = sampled_vertex_expansion(g, rng, positions=net.voronoi.points)
    print(f"\nverified expansion: λ₂ = {lam:.3f} ⇒ conductance ∈ "
          f"[{lo:.3f}, {hi:.3f}]; sampled vertex expansion {h:.3f} "
          f"(GG constant (2−√3)/2 = {GG_EXPANSION_CONSTANT:.3f})")

    # rumour spreading: push gossip, one neighbour per round
    print("\n== rumour spreading over the overlay ==")
    informed = {0}
    rounds = 0
    adj = {v: list(g.neighbors(v)) for v in g.nodes()}
    while len(informed) < n:
        rounds += 1
        newly = set()
        for v in informed:
            newly.add(adj[v][int(rng.integers(len(adj[v])))])
        informed |= newly
        if rounds > 10 * math.log2(n):
            break
    print(f"rumour reached {len(informed)}/{n} servers in {rounds} rounds "
          f"(O(log n) = {math.log2(n):.0f} — expander mixing)")

    # churn: a server joins; only its Voronoi neighbours recompute cells
    affected = net.voronoi.insert((float(rng.random()), float(rng.random())))
    print(f"\na server joins: only {len(affected)} cells affected "
          f"(locality of the dynamic Voronoi diagram, §5.1)")


if __name__ == "__main__":
    main()
