#!/usr/bin/env python
"""Quickstart: build a Distance Halving DHT, store items, route lookups.

Demonstrates the §2 core in ~60 lines:
* servers join with the Multiple Choice id strategy (§4) so the
  decomposition stays smooth;
* data items are hashed into [0,1) and stored at their covering server;
* lookups are routed with both algorithms of §2.2 and verified.

Run:  python examples/quickstart.py
"""

import math

import numpy as np

from repro.balance import MultipleChoice
from repro.core import DistanceHalvingNetwork, dh_lookup, fast_lookup


def main() -> None:
    rng = np.random.default_rng(42)
    net = DistanceHalvingNetwork(rng=rng)

    print("== joining 256 servers (Multiple Choice ids) ==")
    net.populate(256, selector=MultipleChoice(t=4))
    print(f"n = {net.n}, smoothness ρ = {net.smoothness():.2f}, "
          f"max degree = {max(net.degree(p) for p in net.points())}")
    print(f"edges = {net.edge_count()} (Theorem 2.1 bound: {3 * net.n - 1})")

    print("\n== storing 20 data items ==")
    for i in range(20):
        net.store_item(f"file-{i}.dat", f"contents of file {i}")
    owner = net.item_owner("file-7.dat")
    print(f"'file-7.dat' lives at server {owner.name}")

    print("\n== routing lookups ==")
    pts = list(net.points())
    hops_fast, hops_dh = [], []
    for k in range(200):
        src = pts[int(rng.integers(net.n))]
        key = f"file-{k % 20}.dat"
        target = net.item_hash(key)
        rf = fast_lookup(net, src, target)
        rd = dh_lookup(net, src, target, rng)
        assert rf.server_path[-1] == rd.server_path[-1] == net.item_owner(key).point
        hops_fast.append(rf.hops)
        hops_dh.append(rd.hops)
    print(f"fast lookup:  mean {np.mean(hops_fast):.2f} hops, max {max(hops_fast)} "
          f"(Cor 2.5 bound ≈ {math.log2(net.n) + math.log2(net.smoothness()) + 1:.1f})")
    print(f"DH lookup:    mean {np.mean(hops_dh):.2f} hops, max {max(hops_dh)} "
          f"(Thm 2.8 bound ≈ {2 * math.log2(net.n) + 2 * math.log2(net.smoothness()):.1f})")

    print("\n== churn: 64 leaves + 64 joins, items survive ==")
    for _ in range(64):
        victims = list(net.points())
        net.leave(victims[int(rng.integers(len(victims)))])
        net.join(selector=MultipleChoice(t=4))
    for i in range(20):
        assert net.get_item(f"file-{i}.dat") == f"contents of file {i}"
    print(f"all 20 items retrievable; ρ = {net.smoothness():.2f}")


if __name__ == "__main__":
    main()
