#!/usr/bin/env python
"""Resilient storage on the overlapping DHT (§6).

Scenario: a cooperative backup network where a power incident knocks out
a quarter of the servers, and some of the survivors are compromised and
serve corrupted blocks.  The overlapping Distance Halving DHT keeps every
block reachable (Theorem 6.4) and the majority-filtered lookup returns
correct data despite the liars (Theorem 6.6).

Run:  python examples/resilient_storage.py
"""

import math

import numpy as np

from repro.faults import (
    OverlappingDHNetwork,
    random_byzantine,
    random_failstop,
    resistant_lookup,
    simple_lookup,
)


def main() -> None:
    rng = np.random.default_rng(11)
    n = 512
    net = OverlappingDHNetwork(n, rng)
    print(f"== overlapping DHT, {n} servers ==")
    probes = rng.random(200)
    cov = net.coverage_counts(probes)
    print(f"every point covered by {cov.min()}–{cov.max()} servers "
          f"(log₂ n = {math.log2(n):.0f}); degree ≈ Θ(log n)")

    blocks = [f"block-{i}" for i in range(16)]
    for b in blocks:
        group = net.store_item(b, f"data<{b}>")
    print(f"each block replicated to its cover set "
          f"(e.g. {len(net.replica_group('block-0'))} replicas of block-0)")

    # -- power incident: 25% of servers fail-stop ---------------------------
    plan = random_failstop(net.points, 0.25, rng)
    print(f"\n*** power incident: {len(plan.failed)} servers down ***")
    ok = tot = 0
    times = []
    for b in blocks:
        for i in range(0, n, 64):
            src = net.points[i]
            if not plan.is_alive(src):
                continue
            res = simple_lookup(net, src, b, rng, plan)
            ok += res.success
            tot += 1
            times.append(res.parallel_time)
    print(f"simple lookup: {ok}/{tot} retrievals succeed "
          f"(Thm 6.4); time ≤ {max(times)} hops (Thm 6.3: log n + O(1))")

    # -- compromise: 10% of servers serve corrupted data --------------------
    byz = random_byzantine(net.points, 0.10, rng)
    print(f"\n*** compromise: {len(byz.liars)} servers serve corrupted blocks ***")
    ok_simple = ok_resist = tot = 0
    msgs = []
    for b in blocks[:8]:
        for i in range(0, n, 64):
            src = net.points[i]
            ok_simple += simple_lookup(net, src, b, rng, byz).success
            r = resistant_lookup(net, src, b, byz)
            ok_resist += r.success
            msgs.append(r.messages)
            tot += 1
    print(f"naive lookup trusts one holder:     {ok_simple}/{tot} correct")
    print(f"majority-filtered lookup (Thm 6.6): {ok_resist}/{tot} correct, "
          f"≈{int(np.mean(msgs))} messages each (O(log³ n) = "
          f"{int(math.log2(n) ** 3)})")


if __name__ == "__main__":
    main()
