#!/usr/bin/env python
"""Asynchronous message-passing swarm: the DHT under real concurrency.

The paper's analysis is hop-count-based with "no implied assumption of
synchrony" (§2.2 fn. 4).  This example runs every server as an asyncio
task with an inbox and routes a burst of concurrent lookups purely by
message passing — each node uses only its local segment and neighbour
table — then cross-checks the asynchronously-routed paths against the
deterministic reference implementation.

Run:  python examples/async_swarm.py
"""

import asyncio

import numpy as np

from repro.balance import MultipleChoice
from repro.core import DistanceHalvingNetwork, dh_lookup
from repro.sim.asyncnet import AsyncDHNetwork


async def swarm() -> None:
    rng = np.random.default_rng(3)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(128, selector=MultipleChoice(t=4))
    pts = list(net.points())

    fabric = AsyncDHNetwork(net, rng, latency=0.0)
    await fabric.start()
    try:
        print(f"== {net.n} asyncio server tasks started ==")
        queries = []
        taus = []
        for _ in range(200):
            src = pts[int(rng.integers(net.n))]
            tgt = float(rng.random())
            tau = [int(d) for d in rng.integers(0, 2, size=64)]
            queries.append((src, tgt))
            taus.append(tau)
        paths = await asyncio.gather(
            *(fabric.lookup(s, t, tau=tau) for (s, t), tau in zip(queries, taus))
        )
        print(f"routed {len(paths)} concurrent lookups")

        hops = [len(p) - 1 for p in paths]
        print(f"hops: mean {np.mean(hops):.2f}, max {max(hops)}")

        # verify against the deterministic reference, digit for digit
        mismatches = 0
        check_rng = np.random.default_rng(0)
        for (src, tgt), tau, path in zip(queries, taus, paths):
            ref = dh_lookup(net, src, tgt, check_rng, tau=tau)
            if ref.server_path != path:
                mismatches += 1
        print(f"asynchrony changed {mismatches}/200 paths "
              f"(0 expected: same τ ⇒ same route)")

        busiest = max(fabric.servers.values(), key=lambda s: s.handled)
        print(f"busiest server handled {busiest.handled} messages "
              f"(Θ(log n) per lookup spread over {net.n} servers)")
    finally:
        await fabric.stop()


if __name__ == "__main__":
    asyncio.run(swarm())
