#!/usr/bin/env python
"""Flash crowd: the §3 caching protocol serving a million requests.

Scenario (the paper's motivating example, at modern scale): a network of
16384 servers faces a Zipf(1.2) crowd of 10⁶ requests over 64 items —
a few of them wildly hot.  Without caching each item's owner would
absorb its full demand; the path-tree caching protocol spreads it over
active trees so no server is swamped.  The whole stream is served by the
vectorized batch engine in arrival-ordered chunks, then the hottest item
goes supernova on its own and the salted mitigation mode (the hot key
spread over 4 deterministic salt points) is compared head-to-head.

Run:  PYTHONPATH=src python examples/flash_crowd.py
"""

import math

import numpy as np

from repro.balance import MultipleChoice
from repro.core import BatchCacheEngine, DistanceHalvingNetwork
from repro.sim.workload import demand_stream, zipf_demands

N = 16384
REQUESTS = 1_000_000
N_ITEMS = 64
CHUNK = 1 << 17
SALTS = 4


def drive(engine, stream, sources, rng):
    for lo in range(0, stream.size, CHUNK):
        hi = min(stream.size, lo + CHUNK)
        engine.serve_batch(stream[lo:hi], sources[lo:hi], rng=rng)


def main() -> None:
    # Seed chosen by sweeping a few placements: salting's relief depends on
    # where the salt-tree roots land relative to fat segments (see the note
    # in caching_single.py); this one shows the effect clearly (~2x).
    rng = np.random.default_rng(9)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(N, selector=MultipleChoice(t=4))
    pts = net.segments.as_array()
    c = max(2, int(math.ceil(math.log2(N))))
    logn2 = int(math.log2(N) ** 2)

    print(f"== {N} servers; a Zipf(1.2) crowd of {REQUESTS:,} requests "
          f"hits {N_ITEMS} items ==")
    items = [f"story-{i}" for i in range(N_ITEMS)]
    demands = zipf_demands(N_ITEMS, REQUESTS, rng)
    stream = demand_stream(demands, rng)
    sources = pts[rng.integers(0, N, size=REQUESTS)]
    hottest = int(np.argmax(demands))
    print(f"hottest item {items[hottest]!r} alone is demanded "
          f"{demands[hottest]:,} times — its owner would melt\n")

    engine = BatchCacheEngine(net, items, threshold=c)
    drive(engine, stream, sources, rng)
    s = engine.summary()
    print(f"with caching (c = {c}), the busiest server anywhere:")
    print(f"  serves {s['max_cache_hits']:.0f} cache hits "
          f"(Thm 3.6/3.8: O((q/n)·log² n); log² n = {logn2})")
    print(f"  caches {s['max_items_cached']:.0f} distinct items "
          f"(Thm 3.8(i): O(log n) = {int(math.log2(N))})")
    print(f"  total extra copies in the network: {s['total_copies']:.0f}")
    size, depth = engine.tree_size(hottest), engine.tree_depth(hottest)
    q_hot = int(demands[hottest])
    print(f"  {items[hottest]!r}'s active tree: {size} nodes, depth {depth} "
          f"(Obs 3.1 bound {4 * q_hot // c:,}, Lem 3.3 bound "
          f"{math.log2(q_hot / c) + 3:.0f})")

    # -- the hottest item goes supernova: salted vs unsalted ---------------
    hq = 1_000_000
    print(f"\n== {items[hottest]!r} goes supernova: {hq:,} more requests "
          f"for it alone ==")
    hot_src = pts[rng.integers(0, N, size=hq)]
    hot_tau = rng.integers(0, net.delta, size=(hq, 64))
    plain = BatchCacheEngine(net, ["supernova"], threshold=c)
    salted = BatchCacheEngine(net, ["supernova"], threshold=c, salts=SALTS)
    zeros = np.zeros(hq, dtype=np.int64)
    for lo in range(0, hq, CHUNK):
        hi = min(hq, lo + CHUNK)
        plain.serve_batch(zeros[lo:hi], hot_src[lo:hi], tau=hot_tau[lo:hi])
        salted.serve_batch(zeros[lo:hi], hot_src[lo:hi], tau=hot_tau[lo:hi])
    pmax = int(plain.server_cache_hits().max())
    smax = int(salted.server_cache_hits().max())
    print(f"unsalted path caching: busiest server takes {pmax} hits")
    print(f"salted over {SALTS} points: busiest server takes {smax} hits "
          f"({pmax / max(1, smax):.2f}x relief)")

    # -- content update (E9) ----------------------------------------------
    msgs, steps = engine.content_update(hottest)
    print(f"\npublisher edits {items[hottest]!r}: the update reaches every "
          f"copy in {steps} steps with {msgs:,} messages (O(log n) time)")

    # -- demand fades -------------------------------------------------------
    engine.advance_epoch()
    removed = engine.advance_epoch()
    print(f"\ndemand stops: the quiet epoch collapses {removed:,} cached "
          f"copies; {items[hottest]!r}'s tree is back to "
          f"{engine.tree_size(hottest)} node(s)")


if __name__ == "__main__":
    main()
