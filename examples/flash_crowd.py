#!/usr/bin/env python
"""Flash crowd: the §3 dynamic-caching protocol relieving a hot spot.

Scenario (the paper's motivating example): a single data item suddenly
becomes wildly popular — every server in the network requests it in the
same epoch.  Without caching its owner would absorb all n requests; with
the path-tree caching protocol the load spreads over an active tree and
no server is swamped.

Run:  python examples/flash_crowd.py
"""

import math

import numpy as np

from repro.balance import MultipleChoice
from repro.core import CacheSystem, DistanceHalvingNetwork, dh_lookup


def main() -> None:
    rng = np.random.default_rng(7)
    n = 512
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(n, selector=MultipleChoice(t=4))
    pts = list(net.points())

    print(f"== network of {n} servers; item 'breaking-news' goes viral ==")
    net.store_item("breaking-news", "<html>…</html>")
    owner = net.item_owner("breaking-news")
    print(f"owner: {owner.name}")

    # -- without caching: every request routes to the owner ---------------
    owner_hits = 0
    for i in range(n):
        res = dh_lookup(net, pts[i], net.item_hash("breaking-news"), rng)
        owner_hits += res.server_path[-1] == owner.point
    print(f"\nwithout caching: owner handles {owner_hits}/{n} requests — swamped")

    # -- with the §3 protocol ---------------------------------------------
    c = max(2, int(math.ceil(math.log2(n))))
    cache = CacheSystem(net, threshold=c)
    for i in range(n):
        cache.request("breaking-news", pts[i], rng)
    tree = cache.tree_for("breaking-news")
    max_hits = max(cache.cache_hits.values())
    print(f"\nwith caching (c = {c}):")
    print(f"  active tree: {tree.size()} nodes, depth {tree.depth()} "
          f"(Obs 3.1 bound {4 * n // c}, Lem 3.3 bound "
          f"{math.log2(n / c) + 2:.0f})")
    print(f"  busiest cache hit {max_hits} times "
          f"(Thm 3.6: O(log² n) = {int(math.log2(n) ** 2)})")
    print(f"  extra copies in the network: {cache.total_copies()}")

    # -- content update -----------------------------------------------------
    msgs, steps = tree.update_content(net)
    print(f"\npublisher edits the item: update reaches every copy in "
          f"{steps} steps with {msgs} messages (both O(log n))")

    # -- demand fades --------------------------------------------------------
    cache.advance_epoch()
    removed = cache.advance_epoch()
    print(f"\ndemand stops: collapse removes {removed} cached copies; "
          f"tree is back to {cache.tree_for('breaking-news').size()} node(s)")


if __name__ == "__main__":
    main()
