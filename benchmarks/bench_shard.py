"""Benchmarks for the multicore sharded execution backend.

Kernels: one sharded bulk fast-lookup dispatch (2 workers over
shared-memory snapshot columns) against the in-process engine on the
same batch, and the pure :func:`merge_results` re-assembly.  The
headline test runs the shared :func:`measure_shard` protocol at smoke
size and asserts the bit-parity acceptance (merged congestion summary +
hop histogram identical); the ≥2x-with-≥4-workers throughput acceptance
is measured at n=2^18 (docs/BENCHMARKS.md) and only gates on machines
that actually have the cores, so here it is asserted exactly when
``speedup_gate_engaged`` reports the machine qualifies.
"""

import numpy as np
import pytest

from repro.core.shard import ShardedExecutor, merge_results, slice_bounds
from repro.experiments.shard_bench import measure_shard


def _workload(net, size, seed):
    route = np.random.default_rng(seed)
    pts = net.segments.as_array()
    sources = pts[route.integers(0, net.n, size=size)]
    targets = route.random(size)
    return sources, targets


@pytest.fixture(scope="module")
def router_512(balanced_net_512):
    router = balanced_net_512.router(auto_refresh=True)
    yield router
    router.close_executor()


def test_sharded_fast_kernel(benchmark, balanced_net_512, router_512):
    sources, targets = _workload(balanced_net_512, 10_000, 23)
    executor = router_512.sharded_executor(2)
    executor.batch_fast_lookup(sources[:128], targets[:128])  # warm pool

    res = benchmark(executor.batch_fast_lookup, sources, targets)
    assert (res.owner == res.points[res.owner_idx]).all()


def test_single_process_reference_kernel(benchmark, balanced_net_512,
                                         router_512):
    """The same batch in-process, for the dispatch-overhead comparison."""
    sources, targets = _workload(balanced_net_512, 10_000, 23)

    benchmark(router_512.batch_fast_lookup, sources, targets)


def test_merge_results_kernel(benchmark, balanced_net_512, router_512):
    sources, targets = _workload(balanced_net_512, 10_000, 24)
    parts = [router_512.batch_fast_lookup(sources[lo:hi], targets[lo:hi],
                                          keep_paths="csr")
             for lo, hi in slice_bounds(sources.size, 4)]

    merged = benchmark(merge_results, parts)
    assert merged.size == sources.size


def test_shard_parity_headline(balanced_net_512):
    """Acceptance: sharded == single-process, bit-for-bit, always."""
    res = measure_shard(lookups=30_000, workers=2, seed=0, chunk=8192,
                        net=balanced_net_512)
    assert res["parity_ok"], "sharded routing diverged from single-process"
    if res["speedup_gate_engaged"]:
        # only meaningful with >= workers CPUs; the full 2x/4-worker
        # acceptance runs at n=2^18 via `repro.cli bench-shard`
        assert res["shard_gain"] > 0.3


def test_executor_resync_after_churn(balanced_net_512):
    """A stale export is rebuilt exactly once per membership version."""
    router = balanced_net_512.router(auto_refresh=True)
    sources, targets = _workload(balanced_net_512, 2000, 25)
    with ShardedExecutor(router, workers=2) as ex:
        ex.batch_fast_lookup(sources, targets)
        syncs0 = ex.syncs
        balanced_net_512.join(0.123456)
        try:
            ex.batch_fast_lookup(sources, targets)
            ex.batch_fast_lookup(sources, targets)
            assert ex.syncs == syncs0 + 1
        finally:
            balanced_net_512.leave(0.123456)
