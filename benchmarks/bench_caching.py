"""Benchmarks for the vectorized §3 caching engine (E7–E9).

Kernels run on the shared 512-server balanced network; the headline
test reproduces the PR's acceptance numbers at n = 16384 with 10⁶
Zipf(1.2) requests — batch cache-serving ≥ 10x over the scalar
``CacheSystem.request`` loop, with the bit-parity trace replay and the
salted hotspot-relief verdicts asserted alongside.
"""

import math

import numpy as np
import pytest

from repro.core import BatchCacheEngine
from repro.experiments.caching_bench import measure_caching


@pytest.fixture()
def engine(balanced_net_512):
    return BatchCacheEngine(balanced_net_512, ["hot-item"], threshold=9)


def test_batch_serve_kernel(benchmark, balanced_net_512, engine, route_rng):
    pts = balanced_net_512.segments.as_array()
    B = 4096
    idx = np.zeros(B, dtype=np.int64)

    def run():
        src = pts[route_rng.integers(0, pts.size, size=B)]
        return engine.serve_batch(idx, src, rng=route_rng)

    res = benchmark(run)
    assert np.all(res.hops <= res.lookup_hops)  # caching never adds latency


def test_salted_serve_kernel(benchmark, balanced_net_512, route_rng):
    salted = BatchCacheEngine(balanced_net_512, ["hot-item"], threshold=9,
                              salts=4)
    pts = balanced_net_512.segments.as_array()
    B = 4096
    idx = np.zeros(B, dtype=np.int64)

    def run():
        src = pts[route_rng.integers(0, pts.size, size=B)]
        return salted.serve_batch(idx, src, rng=route_rng)

    res = benchmark(run)
    assert np.all(res.trees // 4 == 0)  # every request lands on a salt of item 0


def test_epoch_cycle_kernel(benchmark, balanced_net_512, route_rng):
    """One demand epoch end to end: serve a burst, collapse the fringe."""
    eng = BatchCacheEngine(balanced_net_512, ["hot-item"], threshold=4)
    pts = balanced_net_512.segments.as_array()
    B = 2048
    idx = np.zeros(B, dtype=np.int64)

    def run():
        src = pts[route_rng.integers(0, pts.size, size=B)]
        eng.serve_batch(idx, src, rng=route_rng)
        return eng.advance_epoch()

    benchmark(run)


def test_content_update_kernel(benchmark, balanced_net_512, route_rng):
    eng = BatchCacheEngine(balanced_net_512, ["hot-item"], threshold=4)
    pts = balanced_net_512.segments.as_array()
    eng.serve_batch(np.zeros(2048, np.int64),
                    pts[route_rng.integers(0, pts.size, size=2048)],
                    rng=route_rng)

    msgs, time = benchmark(eng.content_update, 0)
    assert time <= 2 * math.log2(balanced_net_512.n)


def test_caching_headline_16384():
    """The PR's acceptance numbers: ≥ 10x at n = 16384 over 10⁶ Zipf
    requests, scalar bit-parity on the side network, and the salted mode
    beating unsalted path-caching on the single-hotspot stream."""
    res = measure_caching(n=16384, requests=1_000_000, scalar_sample=600,
                          seed=1)
    assert res["parity_ok"], "batch/scalar trace replay diverged"
    assert res["salted_ok"], (
        f"salting failed to relieve the hottest server: "
        f"{res['unsalted_max_hits']} -> {res['salted_max_hits']}"
    )
    assert res["speedup"] >= 10.0, (
        f"batch cache serving only {res['speedup']:.1f}x over the scalar "
        f"loop (batch {res['batch_rate']:,.0f}/s vs scalar "
        f"{res['scalar_rate']:,.0f}/s)"
    )
    # Thm 3.8 (i) shape at the headline size
    assert res["max_items_cached"] <= 4 * math.log2(res["n"])
