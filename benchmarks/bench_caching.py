"""Benchmarks for dynamic caching (experiments E7–E9; §3)."""

import math

import numpy as np
import pytest

from repro.core import CacheSystem


@pytest.fixture()
def cache(balanced_net_512):
    return CacheSystem(balanced_net_512, threshold=9)


def test_cached_request_kernel(benchmark, balanced_net_512, cache, route_rng):
    pts = list(balanced_net_512.points())

    def run():
        src = pts[int(route_rng.integers(len(pts)))]
        return cache.request("hot-item", src, route_rng)

    res = benchmark(run)
    assert res.hops <= res.lookup.hops  # no caching latency


def test_epoch_collapse_kernel(benchmark, balanced_net_512, route_rng):
    cache = CacheSystem(balanced_net_512, threshold=4)
    pts = list(balanced_net_512.points())
    for i in range(400):
        cache.request("hot", pts[i % len(pts)], route_rng)

    def run():
        cache.advance_epoch()

    benchmark(run)


def test_content_update_kernel(benchmark, balanced_net_512, route_rng):
    cache = CacheSystem(balanced_net_512, threshold=4)
    pts = list(balanced_net_512.points())
    for i in range(400):
        cache.request("hot", pts[i % len(pts)], route_rng)
    tree = cache.tree_for("hot")

    msgs, time = benchmark(tree.update_content, balanced_net_512)
    assert time <= 2 * math.log2(balanced_net_512.n)


def test_hotspot_relief_shape(balanced_net_512, route_rng):
    """Table-level claim of §3: O(log² n) hits vs n without caching."""
    n = balanced_net_512.n
    cache = CacheSystem(balanced_net_512, threshold=int(math.log2(n)))
    pts = list(balanced_net_512.points())
    for i in range(n):
        cache.request("hot", pts[i % n], route_rng)
    max_hits = max(cache.cache_hits.values())
    assert max_hits <= 6 * math.log2(n) ** 2
    assert max_hits < n / 4  # massively below the uncached owner load
