"""Benchmarks regenerating the paper's figures F1–F4 (see DESIGN.md)."""

import pytest

from repro.experiments.figures import figure1, figure2, figure3, figure4


@pytest.mark.parametrize("fig", [figure1, figure2, figure3, figure4],
                         ids=["F1", "F2", "F3", "F4"])
def test_figure_generators(benchmark, fig):
    res = benchmark.pedantic(fig, rounds=1, iterations=1)
    assert res.passed, f"{res.experiment} checks failed: {res.checks}"
