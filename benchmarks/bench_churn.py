"""Benchmarks for incremental router maintenance under churn (X4).

Kernels: one join + incremental ``refresh()`` on a 4096-server network
vs the full ``compile_router()`` it replaces, and an adjacency-carrying
refresh for the two-phase lookup path.  The headline test soaks an
n=16384 network with churn and asserts the incremental refresh is ≥5x
faster per membership op than a from-scratch compile, while the patched
router stays bit-identical to a fresh compile — the roadmap's
"fast path survives churn" milestone.
"""

import time

import numpy as np
import pytest

from repro.balance import MultipleChoice
from repro.core import DistanceHalvingNetwork
from repro.experiments.churn_soak import measure_churn_soak


@pytest.fixture(scope="module")
def churn_net_4096():
    rng = np.random.default_rng(2007)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(4096, selector=MultipleChoice(t=4))
    return net


def test_incremental_refresh_kernel(benchmark, churn_net_4096):
    """One membership op + O(affected-region) re-sync of the router."""
    net = churn_net_4096
    router = net.router(auto_refresh=True)
    router.refresh()
    op_rng = np.random.default_rng(71)

    def one_op():
        net.join(float(op_rng.random()))
        router.refresh()

    benchmark(one_op)
    assert router.refresh_stats.full_rebuilds == 0
    assert router.version == net.membership_version


def test_incremental_refresh_with_adjacency_kernel(benchmark, churn_net_4096):
    """Same kernel with the neighbour table patched too (dh-lookup path)."""
    net = churn_net_4096
    router = net.router(auto_refresh=True, with_adjacency=True)
    router.refresh()
    op_rng = np.random.default_rng(72)

    def one_op():
        net.join(float(op_rng.random()))
        router.refresh()

    benchmark(one_op)
    assert router.refresh_stats.full_rebuilds == 0
    assert router._edge_keys is not None


def test_full_compile_baseline(benchmark, churn_net_4096):
    """The from-scratch snapshot the incremental path replaces."""
    benchmark(churn_net_4096.compile_router)


def test_refresh_speedup_headline_16384():
    """Acceptance: incremental refresh ≥5x over full compile at n=16384."""
    rng = np.random.default_rng(2008)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(16384, selector=MultipleChoice(t=4))

    compile_times = []
    for _ in range(3):
        t0 = time.perf_counter()
        net.compile_router()
        compile_times.append(time.perf_counter() - t0)
    full_secs = float(np.median(compile_times))

    router = net.router(auto_refresh=True)
    router.refresh()
    op_rng = np.random.default_rng(73)
    ops = 64
    t0 = time.perf_counter()
    for i in range(ops):
        if i % 3 == 2:
            pts = net.segments.as_array()
            net.leave(float(pts[int(op_rng.integers(net.n))]))
        else:
            net.join(float(op_rng.random()))
        router.refresh()
    per_op = (time.perf_counter() - t0) / ops

    assert router.refresh_stats.full_rebuilds == 0
    speedup = full_secs / per_op
    assert speedup >= 5.0, (
        f"incremental refresh {per_op * 1e6:.0f}us/op vs full compile "
        f"{full_secs * 1e3:.1f}ms = only {speedup:.1f}x"
    )

    # the patched snapshot must be bit-identical to a fresh compile
    fresh = net.compile_router()
    assert np.array_equal(router.points, fresh.points)
    assert np.array_equal(router.midpoints, fresh.midpoints)
    assert np.array_equal(router.seg_end, fresh.seg_end)


def test_churn_soak_smoke():
    """The full X4 measurement on a small instance keeps owners fresh."""
    res = measure_churn_soak(n=512, lookups=5_000, phases=2, churn_ops=48,
                             mass_n=256, seed=3)
    assert res["owners_ok"]
    assert res["refresh_speedup"] >= 2.0
    assert res["full_rebuilds"] == 0 or res["incremental_refreshes"] > 0
