"""Benchmarks for congestion measurement (experiment E4; Thm 2.7/2.9)."""

import math

import numpy as np

from repro.core import CongestionCounter, dh_lookup, fast_lookup


def test_congestion_batch_kernel(benchmark, balanced_net_512, route_rng):
    """Routing + accounting for a batch of 64 random lookups."""
    pts = list(balanced_net_512.points())

    def run():
        counter = CongestionCounter()
        for _ in range(64):
            src = pts[int(route_rng.integers(len(pts)))]
            counter.record(fast_lookup(balanced_net_512, src, float(route_rng.random())))
        return counter

    counter = benchmark(run)
    assert counter.lookups == 64


def test_congestion_shape(balanced_net_512, route_rng):
    """Max congestion ≈ Θ(log n / n) for both algorithms."""
    n = balanced_net_512.n
    pts = list(balanced_net_512.points())
    cf, cd = CongestionCounter(), CongestionCounter()
    for _ in range(2000):
        src = pts[int(route_rng.integers(len(pts)))]
        y = float(route_rng.random())
        cf.record(fast_lookup(balanced_net_512, src, y))
        cd.record(dh_lookup(balanced_net_512, src, y, route_rng))
    bound = 12 * math.log2(n) / n
    assert cf.max_congestion() <= bound
    assert cd.max_congestion() <= bound
