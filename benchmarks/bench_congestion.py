"""Benchmarks for congestion accounting (experiment E4; Thm 2.7/2.9).

Kernels: routing + CSR accounting of a whole batch (one ``np.bincount``
over the flattened ``path_servers``) vs the scalar per-lookup
``Counter`` loop, plus the cross-snapshot accumulator merge.  The
headline test asserts the batch path routes-and-accounts **≥10x** more
lookups/sec than the scalar loop at n=16384 while the two accountings
stay bit-identical on a shared subsample — the CSR path-accounting
milestone.
"""

import math


from repro.core import (
    BatchCongestion,
    CongestionCounter,
    dh_lookup,
    fast_lookup,
)
from repro.experiments.congestion import measure_congestion


def test_csr_accounting_kernel(benchmark, balanced_net_512, route_rng):
    """Route 10k lookups and account them with one bincount."""
    router = balanced_net_512.router(auto_refresh=True)
    pts = balanced_net_512.segments.as_array()
    src = pts[route_rng.integers(0, balanced_net_512.n, size=10_000)]
    tgt = route_rng.random(10_000)

    def run():
        counter = BatchCongestion()
        counter.record_batch(
            router.batch_fast_lookup(src, tgt, keep_paths="csr"))
        return counter

    counter = benchmark(run)
    assert counter.lookups == 10_000
    assert counter.max_load() > 0


def test_scalar_accounting_baseline(benchmark, balanced_net_512, route_rng):
    """The per-lookup loop the CSR spine replaces (64 random lookups)."""
    pts = list(balanced_net_512.points())

    def run():
        counter = CongestionCounter()
        for _ in range(64):
            src = pts[int(route_rng.integers(len(pts)))]
            counter.record(fast_lookup(balanced_net_512, src,
                                       float(route_rng.random())))
        return counter

    counter = benchmark(run)
    assert counter.lookups == 64


def test_congestion_merge_kernel(benchmark, balanced_net_512, route_rng):
    """Folding one accounted batch into a running accumulator."""
    router = balanced_net_512.router(auto_refresh=True)
    pts = balanced_net_512.segments.as_array()
    src = pts[route_rng.integers(0, balanced_net_512.n, size=10_000)]
    batch = BatchCongestion()
    batch.record_batch(router.batch_fast_lookup(
        src, route_rng.random(10_000), keep_paths="csr"))

    def run():
        total = BatchCongestion()
        total.merge(batch)
        return total

    total = benchmark(run)
    assert total.max_load() == batch.max_load()


def test_congestion_shape(balanced_net_512, route_rng):
    """Max congestion ≈ Θ(log n / n) for both algorithms (batch-routed),
    bit-identical to the scalar counters on the same workload."""
    net = balanced_net_512
    n = net.n
    router = net.router(auto_refresh=True, with_adjacency=True)
    pts = net.segments.as_array()
    src = pts[route_rng.integers(0, n, size=2000)]
    tgt = route_rng.random(2000)
    tau = route_rng.integers(0, net.delta, size=(2000, 64))

    cf, cd = BatchCongestion(), BatchCongestion()
    cf.record_batch(router.batch_fast_lookup(src, tgt, keep_paths="csr"))
    cd.record_batch(router.batch_dh_lookup(src, tgt, tau=tau,
                                           keep_paths="csr"))
    bound = 12 * math.log2(n) / n
    assert cf.max_congestion() <= bound
    assert cd.max_congestion() <= bound

    scal_f, scal_d = CongestionCounter(), CongestionCounter()
    for i in range(200):
        scal_f.record(fast_lookup(net, src[i], tgt[i]))
        scal_d.record(dh_lookup(net, src[i], tgt[i], None, tau=list(tau[i])))
    sub_f, sub_d = BatchCongestion(), BatchCongestion()
    sub_f.record_batch(router.batch_fast_lookup(src[:200], tgt[:200],
                                                keep_paths="csr"))
    sub_d.record_batch(router.batch_dh_lookup(src[:200], tgt[:200],
                                              tau=tau[:200],
                                              keep_paths="csr"))
    assert sub_f.summary(n) == scal_f.summary(n)
    assert sub_d.summary(n) == scal_d.summary(n)


def test_congestion_headline_16384():
    """Acceptance: CSR accounting ≥10x over the scalar loop at n=16384,
    with bit-identical summaries on the shared subsample."""
    res = measure_congestion(n=16384, lookups=100_000, scalar_sample=600,
                             seed=1)
    assert res["parity_ok"], "batch/scalar accounting summaries diverged"
    assert res["speedup"] >= 10.0, (
        f"batch accounting only {res['speedup']:.1f}x over the scalar loop"
    )
    assert res["cong_norm"] <= 12.0
