"""Benchmarks for cost-aware covering-edge routing (experiment X6).

Kernels: the per-hop cost gather + policy selection of the overlapping
engine's batch Simple Lookup and the core engine's cost-dh lookup,
against the uniform (cost-blind) pick they extend.  The headline test
asserts the X6 acceptance shape at n=16384: greedy selection cuts mean
cross-ISP traffic by ≥30% vs uniform at hop stretch ≤1.5x, with a
bit-identical scalar replay and a bit-identical ``tau_used`` replay of
the core cell.
"""

import numpy as np
import pytest

from repro.experiments.cost_routing import measure_cost_routing
from repro.faults import FTBatchEngine, OverlappingDHNetwork
from repro.peer import (
    CostAwareBatchRouter,
    CostMap,
    CostOracle,
    cross_isp_counts,
)


@pytest.fixture(scope="module")
def overlap_net():
    rng = np.random.default_rng(16)
    return OverlappingDHNetwork(512, rng)


@pytest.fixture(scope="module")
def ft_engine(overlap_net):
    return FTBatchEngine(overlap_net)


@pytest.fixture(scope="module")
def cost_map():
    return CostMap.synthetic(n_isps=8, rng=np.random.default_rng(17))


@pytest.fixture(scope="module")
def oracle(overlap_net, cost_map):
    return CostOracle(overlap_net.points_array, cost_map)


def test_batch_greedy_kernel(benchmark, overlap_net, ft_engine, oracle,
                             route_rng):
    """10k cost-greedy fault-tolerant lookups with CSR paths."""
    src = overlap_net.points_array[route_rng.integers(overlap_net.n,
                                                      size=10_000)]
    tgt = route_rng.random(10_000)

    def run():
        return ft_engine.batch_simple_lookup(src, tgt, keep_paths="csr",
                                             oracle=oracle, policy="greedy")

    res = benchmark(run)
    assert res.size == 10_000
    assert bool(res.success.all())


def test_batch_weighted_kernel(benchmark, overlap_net, ft_engine, oracle,
                               route_rng):
    """10k softmin-weighted lookups (the exp/cumsum selection path)."""
    src = overlap_net.points_array[route_rng.integers(overlap_net.n,
                                                      size=10_000)]
    tgt = route_rng.random(10_000)
    choices = route_rng.random((10_000, 32))

    def run():
        return ft_engine.batch_simple_lookup(src, tgt, choices=choices,
                                             keep_paths="csr", oracle=oracle,
                                             policy="weighted")

    res = benchmark(run)
    assert res.size == 10_000
    assert bool(res.success.all())


def test_core_cost_dh_kernel(benchmark, balanced_net_512, cost_map,
                             route_rng):
    """10k cost-dh lookups over the core engine's snapshot columns."""
    router = CostAwareBatchRouter(balanced_net_512, cost_map)
    pts = balanced_net_512.segments.as_array()
    src = pts[route_rng.integers(balanced_net_512.n, size=10_000)]
    tgt = route_rng.random(10_000)

    def run():
        return router.batch_cost_dh_lookup(src, tgt, policy="greedy",
                                           keep_paths="csr")

    res = benchmark(run)
    assert res.size == 10_000
    assert res.tau_used is not None


def test_cost_shape(overlap_net, ft_engine, oracle, route_rng):
    """Greedy beats uniform on cross-ISP traffic at equal hop counts."""
    src = overlap_net.points_array[route_rng.integers(overlap_net.n,
                                                      size=4000)]
    tgt = route_rng.random(4000)
    choices = route_rng.random((4000, 32))
    unif = ft_engine.batch_simple_lookup(src, tgt, choices=choices,
                                         keep_paths="csr")
    greedy = ft_engine.batch_simple_lookup(src, tgt, keep_paths="csr",
                                           oracle=oracle, policy="greedy")
    cross_u = cross_isp_counts(oracle.isp, unif.path_servers,
                               unif.path_offsets).mean()
    cross_g = cross_isp_counts(oracle.isp, greedy.path_servers,
                               greedy.path_offsets).mean()
    assert cross_g < cross_u
    # the canonical paths are policy-independent — only the cover picked
    # per level changes, never the number of levels traversed
    assert np.array_equal(unif.parallel_time, greedy.parallel_time)


def test_cost_headline_16384():
    """Acceptance: X6 shape at n=16384 — ≥30% cross-ISP reduction at
    ≤1.5x stretch, scalar + tau replays bit-identical."""
    res = measure_cost_routing(n=16384, pairs=100_000, scalar_sample=200,
                               core_n=4096, core_pairs=50_000, seed=1)
    assert res["parity_ok"], "batch/scalar cost-aware walks diverged"
    assert res["core_replay_ok"], "tau_used replay diverged"
    assert res["xisp_reduction"] >= 0.30, (
        f"greedy only cut cross-ISP traffic {res['xisp_reduction']:.1%}"
    )
    assert res["stretch"] <= 1.5, f"hop stretch {res['stretch']:.2f}x"
    assert res["weighted_between"]
