"""Benchmarks for the day-in-the-life soak scenario engine (X5).

Kernels: one chunk-sized routed batch booked into a `SoakStats`
accumulator, the accumulator merge itself, and the between-phase
invariant audit.  The headline test runs the full 8-phase default
scenario at n=4096 and asserts every cross-subsystem invariant holds —
the roadmap's "million-user day-in-the-life soak" milestone at bench
scale.
"""

import pytest

from repro.sim.scenario import DEFAULT_PHASES, ScenarioEngine, SoakStats


@pytest.fixture(scope="module")
def soak_engine_1024():
    return ScenarioEngine(n=1024, lookups=100_000, chunk=1 << 14, seed=41,
                          items=12)


def test_chunk_route_and_record_kernel(benchmark, soak_engine_1024):
    """One chunk of uniform lookups routed + booked into SoakStats."""
    eng = soak_engine_1024
    stats = SoakStats()
    benchmark(eng._route_stream, stats, eng.chunk)
    assert stats.route.lookups > 0


def test_soak_stats_merge_kernel(benchmark, soak_engine_1024):
    """Merging one populated phase snapshot into a running total."""
    eng = soak_engine_1024
    part = SoakStats()
    eng._route_stream(part, eng.chunk)

    def merge_once():
        total = SoakStats()
        total.merge(part)
        return total

    total = benchmark(merge_once)
    assert total.equals(part) or total.chunks == part.chunks


def test_invariant_audit_kernel(benchmark, soak_engine_1024):
    """The full between-phase audit (fresh compile + all checks)."""
    eng = soak_engine_1024
    stats = SoakStats()
    eng._route_stream(stats, eng.chunk)
    eng.phase_snapshots.append(("bench", stats.snapshot()))
    eng.total.merge(stats)
    rows = benchmark(eng.check_invariants, "bench")
    assert all(r["ok"] for r in rows)


def test_soak_headline_4096():
    """Acceptance: the 8-phase default scenario holds every invariant."""
    eng = ScenarioEngine(n=4096, lookups=200_000, chunk=1 << 15, seed=29,
                         items=16)
    res = eng.run(DEFAULT_PHASES)
    assert res["invariants_ok"], res["invariants"]
    assert res["healing_ok"] and res["owners_ok"] and res["merge_ok"]
    assert res["total_requests"] >= 200_000
    assert len(res["phases"]) >= 6
    assert res["stats"]["ft_success_rate"] >= 0.9
