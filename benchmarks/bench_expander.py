"""Benchmarks for the dynamic expander (experiment E12; §5)."""

import numpy as np
import pytest

from repro.expander import (
    GG_EXPANSION_CONSTANT,
    GabberGalilNetwork,
    sampled_vertex_expansion,
    spectral_gap,
)


@pytest.fixture(scope="module")
def gg_net():
    rng = np.random.default_rng(12)
    return GabberGalilNetwork(n=128, rng=rng, samples_per_cell=16)


def test_build_kernel(benchmark):
    def build():
        rng = np.random.default_rng(13)
        net = GabberGalilNetwork(n=64, rng=rng, samples_per_cell=12)
        return net.edges()

    edges = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(edges) > 64


def test_spectral_gap_kernel(benchmark, gg_net):
    g = gg_net.to_networkx()
    lam = benchmark(spectral_gap, g)
    assert lam > 0.05


def test_owner_query_kernel(benchmark, gg_net):
    rng = np.random.default_rng(14)
    probes = rng.random((256, 2))
    owners = benchmark(gg_net.voronoi.owner_many, probes)
    assert len(owners) == 256


def test_expander_shape(gg_net):
    """Cor 5.2: verified expansion above the Gabber–Galil constant / ρ."""
    rng = np.random.default_rng(15)
    h = sampled_vertex_expansion(gg_net.to_networkx(), rng,
                                 positions=gg_net.voronoi.points)
    assert h >= GG_EXPANSION_CONSTANT / 2
