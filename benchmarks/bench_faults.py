"""Benchmarks for fault-tolerant lookups (experiments E13/E14; §6.3).

Kernels: the vectorized fault-tolerant batch engine — canonical paths
per level, alive-cover gathers over the array-backed cover tables,
majority votes as counts — against the scalar per-hop walks it
replaces.  The headline test asserts the batch Simple Lookup routes
**≥10x** more lookups/sec than the scalar walk at n=16384 under a
p=0.2 fail-stop plan while staying bit-identical on a choice-driven
replay — the fourth pillar of the batch spine.
"""

import math

import numpy as np
import pytest

from repro.core import BatchCongestion
from repro.experiments.faults_exp import measure_faults
from repro.faults import (
    FTBatchEngine,
    OverlappingDHNetwork,
    random_byzantine,
    random_failstop,
    resistant_lookup,
    simple_lookup,
)
from repro.sim.workload import survivor_pairs


@pytest.fixture(scope="module")
def overlap_net():
    rng = np.random.default_rng(16)
    net = OverlappingDHNetwork(512, rng)
    net.store_item("doc", "payload")
    return net


@pytest.fixture(scope="module")
def ft_engine(overlap_net):
    return FTBatchEngine(overlap_net)


def test_batch_simple_kernel(benchmark, overlap_net, ft_engine, route_rng):
    """One bulk call routing 10k fault-tolerant lookups with CSR paths."""
    plan = random_failstop(overlap_net.points, 0.2,
                           np.random.default_rng(17))
    src, tgt = survivor_pairs(overlap_net.points_array,
                              plan.alive_mask(overlap_net.points_array),
                              route_rng, 10_000)
    choices = route_rng.random((10_000, 32))

    def run():
        return ft_engine.batch_simple_lookup(src, tgt, choices=choices,
                                             plan=plan, keep_paths="csr")

    res = benchmark(run)
    assert res.size == 10_000
    assert res.parallel_time.max() <= math.log2(overlap_net.n) + 3


def test_batch_resistant_kernel(benchmark, overlap_net, ft_engine, route_rng):
    """One bulk flood of 2k resistant lookups (majority votes as counts)."""
    plan = random_byzantine(overlap_net.points, 0.1,
                            np.random.default_rng(18))
    src = overlap_net.points_array[route_rng.integers(overlap_net.n,
                                                      size=2000)]
    tgt = route_rng.random(2000)

    def run():
        return ft_engine.batch_resistant_lookup(src, tgt, plan=plan)

    res = benchmark(run)
    assert res.size == 2000
    assert res.messages.max() <= 8 * math.log2(overlap_net.n) ** 3


def test_scalar_simple_baseline(benchmark, overlap_net, route_rng):
    """The per-hop walk the batch engine replaces (50 random lookups)."""
    plan = random_failstop(overlap_net.points, 0.2,
                           np.random.default_rng(17))

    def run():
        ok = 0
        for _ in range(50):
            src = overlap_net.points[int(route_rng.integers(overlap_net.n))]
            ok += simple_lookup(overlap_net, src, "doc", route_rng,
                                plan).success
        return ok

    benchmark(run)


def test_scalar_resistant_baseline(benchmark, overlap_net, route_rng):
    """The scalar flooding loop (10 resistant lookups)."""
    def run():
        for _ in range(10):
            src = overlap_net.points[int(route_rng.integers(overlap_net.n))]
            assert resistant_lookup(overlap_net, src, "doc").success

    benchmark(run)


def test_failstop_shape(overlap_net, ft_engine, route_rng):
    """Theorem 6.4 at p = 0.1: every sampled surviving pair reaches its
    target, and the batch booking feeds the congestion accounting."""
    plan = random_failstop(overlap_net.points, 0.1,
                           np.random.default_rng(17))
    src, tgt = survivor_pairs(overlap_net.points_array,
                              plan.alive_mask(overlap_net.points_array),
                              route_rng, 4000)
    res = ft_engine.batch_simple_lookup(src, tgt, rng=route_rng, plan=plan,
                                        keep_paths="csr")
    assert bool(res.success.all())
    cong = BatchCongestion()
    cong.record_batch(res)
    assert cong.lookups == 4000
    assert cong.total_messages == int(res.messages.sum())


def test_byzantine_shape(overlap_net, ft_engine, route_rng):
    """Theorem 6.6 at p = 0.1: majority filtering keeps answers correct."""
    plan = random_byzantine(overlap_net.points, 0.1,
                            np.random.default_rng(18))
    src = overlap_net.points_array[route_rng.integers(overlap_net.n,
                                                      size=1000)]
    res = ft_engine.batch_resistant_lookup(src, route_rng.random(1000),
                                           plan=plan)
    assert res.success_rate() >= 0.95
    assert res.parallel_time.max() <= math.log2(overlap_net.n) + 3


def test_faults_headline_16384():
    """Acceptance: batch Simple Lookup ≥10x over the scalar walk at
    n=16384 under p=0.2 fail-stop, bit-identical on the replay."""
    res = measure_faults(n=16384, pairs=100_000, p_fail=0.2,
                         scalar_sample=200, seed=1)
    assert res["parity_ok"], "batch/scalar fault-tolerant walks diverged"
    assert res["speedup"] >= 10.0, (
        f"batch FT engine only {res['speedup']:.1f}x over the scalar walk"
    )
    assert res["max_parallel_time"] <= res["logn_bound"]
