"""Benchmarks for fault-tolerant lookups (experiments E13/E14; §6)."""

import math

import numpy as np
import pytest

from repro.faults import (
    OverlappingDHNetwork,
    random_byzantine,
    random_failstop,
    resistant_lookup,
    simple_lookup,
)


@pytest.fixture(scope="module")
def overlap_net():
    rng = np.random.default_rng(16)
    net = OverlappingDHNetwork(512, rng)
    net.store_item("doc", "payload")
    return net


def test_simple_lookup_kernel(benchmark, overlap_net, route_rng):
    def run():
        src = overlap_net.points[int(route_rng.integers(overlap_net.n))]
        return simple_lookup(overlap_net, src, "doc", route_rng)

    res = benchmark(run)
    assert res.success
    assert res.parallel_time <= math.log2(overlap_net.n) + 3


def test_resistant_lookup_kernel(benchmark, overlap_net, route_rng):
    def run():
        src = overlap_net.points[int(route_rng.integers(overlap_net.n))]
        return resistant_lookup(overlap_net, src, "doc")

    res = benchmark(run)
    assert res.success
    assert res.messages <= 8 * math.log2(overlap_net.n) ** 3


def test_failstop_shape(overlap_net, route_rng):
    """Theorem 6.4 at p = 0.2: every tested survivor succeeds."""
    plan = random_failstop(overlap_net.points, 0.2, np.random.default_rng(17))
    for i in range(0, overlap_net.n, 16):
        src = overlap_net.points[i]
        if plan.is_alive(src):
            assert simple_lookup(overlap_net, src, "doc", route_rng, plan).success


def test_byzantine_shape(overlap_net):
    """Theorem 6.6 at p = 0.1: majority filtering keeps answers correct."""
    plan = random_byzantine(overlap_net.points, 0.1, np.random.default_rng(18))
    ok = sum(
        resistant_lookup(overlap_net, overlap_net.points[i], "doc", plan).success
        for i in range(0, overlap_net.n, 16)
    )
    assert ok >= (overlap_net.n // 16) * 0.95
