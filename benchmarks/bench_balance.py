"""Benchmarks for id balancing (experiments E10/E11; §4)."""


import numpy as np
import pytest

from repro.balance import (
    BucketBalancer,
    ImprovedSingleChoice,
    MultipleChoice,
    SingleChoice,
)
from repro.core.segments import SegmentMap


@pytest.fixture(scope="module")
def seg_map_512():
    rng = np.random.default_rng(3)
    sm = SegmentMap(np.unique(rng.random(512)))
    return sm


@pytest.mark.parametrize("strategy", [SingleChoice(), ImprovedSingleChoice(), MultipleChoice(t=4)],
                         ids=["single", "improved", "multiple"])
def test_selector_kernel(benchmark, seg_map_512, strategy):
    rng = np.random.default_rng(5)
    p = benchmark(strategy.select, seg_map_512, rng)
    assert 0.0 <= p < 1.0


def test_bucket_join_kernel(benchmark):
    rng = np.random.default_rng(6)
    bb = BucketBalancer(rebalance_threshold=3.0)
    for _ in range(256):
        bb.join(rng)

    def join_leave():
        h = bb.join(rng)
        bb.leave(h, rng)

    benchmark(join_leave)
    bb.check_invariants()


def test_balance_shape():
    """The §4 ladder: ρ(multiple) < ρ(improved) < ρ(single)."""
    rhos = {}
    for name, strat in (("single", SingleChoice()),
                        ("improved", ImprovedSingleChoice()),
                        ("multiple", MultipleChoice(t=4))):
        rng = np.random.default_rng(9)
        sm = SegmentMap()
        for _ in range(1024):
            sm.insert(strat.select(sm, rng))
        rhos[name] = sm.smoothness()
    assert rhos["multiple"] < rhos["improved"] < rhos["single"]
    assert rhos["multiple"] <= 16
