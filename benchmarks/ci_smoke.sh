#!/usr/bin/env bash
# The bench smoke gates CI runs, in one place (CI invokes this script;
# run it locally to reproduce the exact CI measurement).
#
# Each subcommand exits non-zero when its parity check fails or its
# speedup floor is missed, and writes its measurement dict as a JSON
# artifact under $OUT_DIR — CI uploads those and diffs them against the
# committed references in benchmarks/baselines/ via bench-compare.
#
# Usage: benchmarks/ci_smoke.sh [OUT_DIR]   (default: bench-artifacts)
set -euo pipefail

OUT_DIR="${1:-bench-artifacts}"
export PYTHONPATH="${PYTHONPATH:-src}"

run() {
  echo
  echo "== $*"
  "$@"
}

run python -m repro.cli bench-throughput --n 1024 \
  --json-out "$OUT_DIR/BENCH_throughput.json"

run python -m repro.cli bench-churn \
  --n 1024 --lookups 20000 --churn-ops 64 --mass-n 512 \
  --json-out "$OUT_DIR/BENCH_churn.json"

run python -m repro.cli bench-congestion \
  --n 1024 --lookups 20000 --scalar-sample 400 --min-speedup 5 \
  --json-out "$OUT_DIR/BENCH_congestion.json"

run python -m repro.cli bench-faults \
  --n 1024 --pairs 20000 --scalar-sample 200 --min-speedup 5 \
  --json-out "$OUT_DIR/BENCH_faults.json"

run python -m repro.cli bench-caching \
  --n 1024 --requests 50000 --scalar-sample 400 \
  --hotspot-requests 200000 --min-speedup 5 \
  --json-out "$OUT_DIR/BENCH_caching.json"

# Table 1 shoot-out across all seven baseline overlays.  The ≥5x
# acceptance floor is measured at n=16384 (docs/BENCHMARKS.md); at the
# smoke size the scalar loops are comparatively faster, so the smoke
# gates the conservative 3x floor per topology.
run python -m repro.cli bench-baselines \
  --n 1024 --lookups 20000 --scalar-sample 200 --min-speedup 3 \
  --json-out "$OUT_DIR/BENCH_baselines.json"

# Multicore sharded backend smoke: the merged congestion summary + hop
# histogram must be bit-identical to the single-process engine — gated
# on every machine.  The throughput gain is informational here
# (--min-speedup 0): CI runners routinely expose fewer CPUs than the
# worker count, and the 2x/4-worker acceptance is measured at n=2^18
# (docs/BENCHMARKS.md), not at smoke size.
run python -m repro.cli bench-shard \
  --n 1024 --lookups 20000 --workers 2 --chunk 4096 --min-speedup 0 \
  --json-out "$OUT_DIR/BENCH_shard.json"

# Cost-aware covering-edge routing smoke: the three selection policies
# over a synthetic ISP map.  The ≥30% cross-ISP reduction and ≤1.5x
# stretch acceptance is measured at n=16384 (docs/BENCHMARKS.md) but
# holds with wide margin at smoke size too; the speedup floor is the
# conservative 5x of the other smokes.  The 2-worker flag also gates
# the sharded cost-dh bit-parity on every run.
run python -m repro.cli bench-cost \
  --n 1024 --pairs 20000 --scalar-sample 100 --core-n 512 \
  --core-pairs 10000 --workers 2 --min-speedup 5 \
  --json-out "$OUT_DIR/BENCH_cost.json"

# Day-in-the-life soak smoke: every subsystem composed on one live
# network with all between-phase invariants on.  The artifact is
# seed-deterministic (no wall-clock keys), so bench-compare gates its
# booleans machine-independently.
run python -m repro.cli soak \
  --n 1024 --lookups 10000 --chunk 4096 --seed 0 \
  --json-out "$OUT_DIR/BENCH_soak.json"

echo
echo "all bench smokes passed; artifacts in $OUT_DIR/"
