"""Benchmarks regenerating Table 1 (experiment E1).

One timing per lookup scheme (the routed-lookup kernel that produces the
path-length/congestion columns), plus a shape assertion comparing the
measured classes at n = 256.
"""

import math

import numpy as np
import pytest

from repro.baselines import (
    CanNetwork,
    ChordNetwork,
    DistanceHalvingAdapter,
    KleinbergRing,
    KoordeNetwork,
    TapestryNetwork,
    ViceroyNetwork,
    measure_scheme,
)

N = 256


def _bench_lookups(benchmark, dht, seed=5):
    rng = np.random.default_rng(seed)
    ids = list(dht.node_ids())

    def run():
        src = ids[int(rng.integers(len(ids)))]
        return dht.lookup_path(src, float(rng.random()), rng)

    path = benchmark(run)
    assert len(path) >= 1


@pytest.fixture(scope="module")
def build_rng():
    return np.random.default_rng(11)


def test_chord_lookup(benchmark, build_rng):
    _bench_lookups(benchmark, ChordNetwork(N, build_rng))


def test_tapestry_lookup(benchmark, build_rng):
    _bench_lookups(benchmark, TapestryNetwork(N, build_rng))


def test_can_lookup(benchmark, build_rng):
    _bench_lookups(benchmark, CanNetwork(N, build_rng, d=2))


def test_small_world_lookup(benchmark, build_rng):
    _bench_lookups(benchmark, KleinbergRing(N, build_rng))


def test_viceroy_lookup(benchmark, build_rng):
    _bench_lookups(benchmark, ViceroyNetwork(N, build_rng))


def test_koorde_lookup(benchmark, build_rng):
    _bench_lookups(benchmark, KoordeNetwork(N, build_rng))


def test_distance_halving_lookup(benchmark, build_rng):
    _bench_lookups(benchmark, DistanceHalvingAdapter(N, build_rng, delta=2))


def test_table1_shape(build_rng):
    """Who wins: DH path ≈ Chord path with O(1) vs O(log n) linkage."""
    rng = np.random.default_rng(21)
    chord = measure_scheme(ChordNetwork(N, build_rng), rng, lookups=300)
    dh = measure_scheme(DistanceHalvingAdapter(N, build_rng, delta=2), rng, lookups=300)
    can = measure_scheme(CanNetwork(N, build_rng, d=2), rng, lookups=300)
    assert dh.mean_path <= 3 * chord.mean_path          # same log-class
    assert dh.mean_degree <= 12                          # constant linkage
    assert chord.mean_degree >= math.log2(N) / 2         # log linkage
    assert can.mean_path >= chord.mean_path              # n^{1/2} ≥ log n here
