"""Benchmarks for the Table 1 baseline batch routers (experiment E1).

One kernel per scheme: a 10k-lookup batch through the scheme's compiled
:class:`~repro.baselines.base.BaselineBatchRouter` on a shared n=1024
overlay, plus the scalar per-hop loop one scheme (Chord) keeps as the
speedup reference.  The headline test runs the full shoot-out driver
(:func:`repro.experiments.baseline_bench.measure_baselines`) and asserts
every scheme clears the speedup floor with a bit-identical scalar
replay — the measurement the ``bench-baselines`` CLI gate ships to CI.
"""

import numpy as np
import pytest

from repro.baselines import (
    CanNetwork,
    ChordNetwork,
    DistanceHalvingAdapter,
    KleinbergRing,
    KoordeNetwork,
    TapestryNetwork,
    ViceroyNetwork,
)
from repro.core.routing_stats import BatchCongestion
from repro.experiments.baseline_bench import measure_baselines

N = 1024
LOOKUPS = 10_000


@pytest.fixture(scope="module")
def nets():
    rng = np.random.default_rng(11)
    return {
        "chord": ChordNetwork(N, rng),
        "tapestry": TapestryNetwork(N, rng, base=2),
        "can": CanNetwork(N, rng, d=2),
        "small-world": KleinbergRing(N, rng),
        "viceroy": ViceroyNetwork(N, rng),
        "koorde": KoordeNetwork(N, rng),
        "dh-fast": DistanceHalvingAdapter(N, rng, delta=2, mode="fast"),
    }


def _bench_batch(benchmark, dht, seed=5):
    router = dht.batch_router()
    rng = np.random.default_rng(seed)
    src = rng.integers(0, N, size=LOOKUPS)
    tgt = rng.random(LOOKUPS)

    res = benchmark(router.route_batch, src, tgt)
    assert res.size == LOOKUPS
    assert (res.hops >= 0).all()


def test_chord_batch(benchmark, nets):
    _bench_batch(benchmark, nets["chord"])


def test_tapestry_batch(benchmark, nets):
    _bench_batch(benchmark, nets["tapestry"])


def test_can_batch(benchmark, nets):
    _bench_batch(benchmark, nets["can"])


def test_small_world_batch(benchmark, nets):
    _bench_batch(benchmark, nets["small-world"])


def test_viceroy_batch(benchmark, nets):
    _bench_batch(benchmark, nets["viceroy"])


def test_koorde_batch(benchmark, nets):
    _bench_batch(benchmark, nets["koorde"])


def test_distance_halving_batch(benchmark, nets):
    _bench_batch(benchmark, nets["dh-fast"])


def test_chord_scalar_baseline(benchmark, nets):
    """The per-hop loop the batch routers replace (speedup reference)."""
    dht = nets["chord"]
    rng = np.random.default_rng(7)
    ids = list(dht.node_ids())

    def run():
        src = ids[int(rng.integers(len(ids)))]
        return dht.lookup_path(src, float(rng.random()), rng)

    path = benchmark(run)
    assert len(path) >= 1


def test_batch_accounting_kernel(benchmark, nets):
    """Route-and-account: the E1 cell measurement inner loop."""
    router = nets["chord"].batch_router()
    rng = np.random.default_rng(9)
    src = rng.integers(0, N, size=LOOKUPS)
    tgt = rng.random(LOOKUPS)

    def run():
        cong = BatchCongestion()
        return router.route_chunked(src, tgt, congestion=cong, chunk=4096)

    hops, owners = benchmark(run)
    assert hops.size == LOOKUPS and owners.size == LOOKUPS


def test_shootout_headline(nets):
    """Acceptance: every scheme ≥3x over scalar at n=1024, bit-parity.

    The CI gate (``bench-baselines --min-speedup 5``) runs at n=16384
    where the scalar loops are slower per hop; this in-suite floor is the
    conservative small-n version of the same measurement.
    """
    result = measure_baselines(n=N, lookups=20_000, seed=3, scalar_sample=200)
    assert result["all_parity_ok"], {
        k: v["parity_ok"] for k, v in result["schemes"].items()
    }
    assert result["min_speedup_measured"] >= 3.0, {
        k: round(v["speedup"], 1) for k, v in result["schemes"].items()
    }
    # qualitative Table 1 shape at this size: CAN's n^{1/2} path is the
    # longest pure-geometry route and DH keeps constant linkage vs
    # Chord's log n fingers
    s = result["schemes"]
    assert s["can"]["mean_path"] > s["chord"]["mean_path"]
    assert s["dh-fast"]["mean_degree"] < s["chord"]["mean_degree"]
