"""Benchmarks for the vectorized batch-lookup engine (experiment X3).

Kernels: one bulk fast-lookup call on the shared 512-server network, the
scalar per-hop loop it replaces, and the bulk two-phase Distance Halving
lookup.  The headline test routes 100k lookups on an n=4096 network and
asserts the engine is ≥10x faster than the scalar loop measured in the
same run, with owners / walk parameters / hop counts bit-identical on
the scalar subsample — the roadmap's batching milestone.
"""

import time

import numpy as np
import pytest

from repro.balance import MultipleChoice
from repro.core import DistanceHalvingNetwork, lookup_many


@pytest.fixture(scope="session")
def balanced_net_4096():
    rng = np.random.default_rng(2005)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(4096, selector=MultipleChoice(t=4))
    return net


@pytest.fixture(scope="session")
def router_512(balanced_net_512):
    return balanced_net_512.compile_router(with_adjacency=True)


def _workload(net, size, seed):
    route = np.random.default_rng(seed)
    pts = net.segments.as_array()
    sources = pts[route.integers(0, net.n, size=size)]
    targets = route.random(size)
    return sources, targets


def test_batch_fast_kernel(benchmark, balanced_net_512, router_512):
    sources, targets = _workload(balanced_net_512, 10_000, 17)

    res = benchmark(router_512.batch_fast_lookup, sources, targets)
    # shape sanity: every route ends at the owner, t respects Cor 2.5
    assert (res.owner == res.points[res.owner_idx]).all()
    rho = balanced_net_512.smoothness()
    assert res.t.max() <= np.log2(512) + np.log2(rho) + 1


def test_batch_dh_kernel(benchmark, balanced_net_512, router_512):
    sources, targets = _workload(balanced_net_512, 10_000, 18)
    rng = np.random.default_rng(19)

    res = benchmark(router_512.batch_dh_lookup, sources, targets, rng)
    rho = balanced_net_512.smoothness()
    assert res.hops.max() <= 2 * np.log2(512) + 2 * np.log2(rho) + 2


def test_scalar_fast_baseline(benchmark, balanced_net_512):
    """The loop the batch engine replaces, for the speedup comparison."""
    sources, targets = _workload(balanced_net_512, 200, 17)

    benchmark(lookup_many, balanced_net_512, sources, targets)


def test_throughput_headline_100k(balanced_net_4096):
    """Acceptance: 100k lookups at n=4096, ≥10x over scalar, bit-parity."""
    net = balanced_net_4096
    router = net.compile_router()
    sources, targets = _workload(net, 100_000, 20)

    router.batch_fast_lookup(sources[:128], targets[:128])  # warm the kernels
    t0 = time.perf_counter()
    batch = router.batch_fast_lookup(sources, targets)
    batch_rate = 100_000 / (time.perf_counter() - t0)

    m = 1000
    t0 = time.perf_counter()
    scalar = lookup_many(net, sources[:m], targets[:m])
    scalar_rate = m / (time.perf_counter() - t0)

    for i, r in enumerate(scalar):
        assert r.owner == batch.owner[i]
        assert r.t == batch.t[i]
        assert r.hops == batch.hops[i]
    assert batch_rate >= 10 * scalar_rate, (
        f"batch {batch_rate:,.0f}/s vs scalar {scalar_rate:,.0f}/s"
    )


def test_batch_dh_parity_fixed_tau(balanced_net_512, router_512):
    """Same digit strings → bit-identical two-phase routes."""
    net = balanced_net_512
    sources, targets = _workload(net, 100, 21)
    tau = np.random.default_rng(22).integers(0, 2, size=(100, 64))

    batch = router_512.batch_dh_lookup(sources, targets, tau=tau, keep_paths=True)
    scalar = lookup_many(net, sources, targets, algorithm="dh",
                         taus=[list(row) for row in tau])
    for i, r in enumerate(scalar):
        assert r.server_path == batch.server_path(i)
        assert r.phase1_hops == batch.phase1_hops[i]
