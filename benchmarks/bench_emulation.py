"""Benchmarks for general graph emulation (experiment E15; §7)."""

import numpy as np
import pytest

from repro.balance import MultipleChoice
from repro.core.segments import SegmentMap
from repro.emulation import DeBruijnFamily, GraphEmulator, TorusFamily


@pytest.fixture(scope="module")
def emulator():
    rng = np.random.default_rng(19)
    sm = SegmentMap()
    mc = MultipleChoice(t=4)
    for _ in range(256):
        sm.insert(mc.select(sm, rng))
    return GraphEmulator(sm, TorusFamily())


def test_guest_mapping_kernel(benchmark, emulator):
    p = list(emulator.segments)[17]
    guests = benchmark(emulator.guests_of, p)
    assert len(guests) <= emulator.segments.smoothness() + 1


def test_host_edges_kernel(benchmark, emulator):
    edges = benchmark(emulator.host_edges)
    assert len(edges) > 0


def test_emulate_round_kernel(benchmark, emulator):
    rng = np.random.default_rng(20)
    values = {u: float(rng.random()) for u in range(1 << emulator.k)}
    out = benchmark(emulator.emulate_round, values)
    assert len(out) == 1 << emulator.k


def test_emulation_shape():
    """§7 properties hold for a De Bruijn guest on a fresh decomposition."""
    rng = np.random.default_rng(21)
    sm = SegmentMap()
    mc = MultipleChoice(t=4)
    for _ in range(128):
        sm.insert(mc.select(sm, rng))
    em = GraphEmulator(sm, DeBruijnFamily())
    assert all(em.check_properties().values())
