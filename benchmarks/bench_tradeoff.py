"""Benchmarks for the degree/path trade-off (experiment E6; Thm 2.13)."""

import math

import numpy as np
import pytest

from repro.balance import MultipleChoice
from repro.core import DistanceHalvingNetwork, fast_lookup

N = 512


@pytest.fixture(scope="module", params=[2, 8, 16])
def delta_net(request):
    rng = np.random.default_rng(request.param * 100)
    net = DistanceHalvingNetwork(delta=request.param, rng=rng)
    net.populate(N, selector=MultipleChoice(t=4))
    return net


def test_lookup_by_delta(benchmark, delta_net, route_rng):
    pts = list(delta_net.points())

    def run():
        src = pts[int(route_rng.integers(len(pts)))]
        return fast_lookup(delta_net, src, float(route_rng.random()))

    res = benchmark(run)
    assert res.t <= math.log(N, delta_net.delta) + math.log(
        delta_net.smoothness(), delta_net.delta
    ) + 1


def test_tradeoff_shape(route_rng):
    """Δ=16 at n=512: paths ≈ log_16 512 ≈ 2.25 ≪ log_2 512 = 9."""
    rng = np.random.default_rng(7)
    net2 = DistanceHalvingNetwork(delta=2, rng=rng)
    net2.populate(N, selector=MultipleChoice(t=4))
    net16 = DistanceHalvingNetwork(delta=16, rng=rng)
    net16.populate(N, selector=MultipleChoice(t=4))
    t2 = np.mean([
        fast_lookup(net2, list(net2.points())[int(route_rng.integers(N))],
                    float(route_rng.random())).t
        for _ in range(100)
    ])
    t16 = np.mean([
        fast_lookup(net16, list(net16.points())[int(route_rng.integers(N))],
                    float(route_rng.random())).t
        for _ in range(100)
    ])
    assert t16 < t2 / 2
    assert net16.average_degree() > net2.average_degree()
