"""Benchmarks for the ablation studies A1–A4 (design-choice costs)."""

import math

import numpy as np

from repro.balance import MultipleChoice
from repro.core import CacheSystem, DistanceHalvingNetwork, dh_lookup, fast_lookup


def test_ring_edges_cost(benchmark):
    """A1: marginal neighbour-set cost of the ring edges."""
    rng = np.random.default_rng(1)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(256, selector=MultipleChoice(t=4))
    p = list(net.points())[50]

    def with_and_without():
        ring = net.ring_neighbor_points(p)
        full = net.neighbor_points(p)
        return len(ring), len(full)

    r, f = benchmark(with_and_without)
    assert r == 2 and f >= r


def test_threshold_sweep_kernel(benchmark):
    """A2: one full hotspot epoch at c = log n."""
    rng = np.random.default_rng(2)
    net = DistanceHalvingNetwork(rng=rng)
    n = 128
    net.populate(n, selector=MultipleChoice(t=4))
    pts = list(net.points())

    def epoch():
        cache = CacheSystem(net, threshold=int(math.log2(n)))
        for i in range(n):
            cache.request("hot", pts[i % n], rng)
        cache.advance_epoch()
        return cache

    cache = benchmark.pedantic(epoch, rounds=3, iterations=1)
    assert cache.requests_served == n


def test_smoothness_cost_of_uniform_ids(benchmark):
    """A3: lookup on an unbalanced network (ρ huge) still meets its bound."""
    rng = np.random.default_rng(3)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(256)
    pts = list(net.points())

    def run():
        src = pts[int(rng.integers(len(pts)))]
        return fast_lookup(net, src, float(rng.random()))

    res = benchmark(run)
    rho = net.smoothness()
    assert res.t <= math.log2(net.n) + math.log2(rho) + 1


def test_two_phase_overhead(benchmark):
    """A4: the message-count price of Valiant randomisation."""
    rng = np.random.default_rng(4)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(256, selector=MultipleChoice(t=4))
    pts = list(net.points())

    def both():
        src = pts[int(rng.integers(len(pts)))]
        y = float(rng.random())
        return fast_lookup(net, src, y).hops, dh_lookup(net, src, y, rng).hops

    f, d = benchmark(both)
    assert d <= 4 * math.log2(net.n)
