"""Benchmarks for the structural theorems (experiment E2; Thm 2.1/2.2)."""

import math

import numpy as np

from repro.core import DistanceHalvingNetwork


def test_join_kernel(benchmark):
    """Cost of one Join (segment split + data movement bookkeeping)."""
    rng = np.random.default_rng(1)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(512)

    def join_leave():
        srv = net.join()
        net.leave(srv.point)

    benchmark(join_leave)
    assert net.n == 512


def test_edge_count_kernel(benchmark, balanced_net_512):
    edges = benchmark(balanced_net_512.edge_count)
    assert edges <= 3 * balanced_net_512.n - 1  # Theorem 2.1


def test_neighbor_query_kernel(benchmark, balanced_net_512):
    p = list(balanced_net_512.points())[100]
    neigh = benchmark(balanced_net_512.neighbor_points, p)
    rho = balanced_net_512.smoothness()
    assert len(neigh) <= (rho + 4) + (math.ceil(2 * rho) + 1) + 2  # Thm 2.2 + ring


def test_degree_bounds_shape(uniform_net_512):
    """Theorem 2.2 at terrible smoothness (uniform ids)."""
    rho = uniform_net_512.smoothness()
    assert uniform_net_512.max_out_degree() <= rho + 4
    assert uniform_net_512.max_in_degree() <= math.ceil(2 * rho) + 1
