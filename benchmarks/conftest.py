"""Shared fixtures for the benchmark suite.

Each ``bench_*.py`` module regenerates one paper artefact (table/figure/
theorem family — see DESIGN.md's experiment index): the pytest-benchmark
timings cover the *kernels* that the corresponding experiment harness
drives, and each module also asserts the headline shape of its artefact
on a small instance so `pytest benchmarks/ --benchmark-only` doubles as a
smoke reproduction.
"""

import numpy as np
import pytest

from repro.balance import MultipleChoice
from repro.core import DistanceHalvingNetwork


@pytest.fixture(scope="session")
def balanced_net_512():
    rng = np.random.default_rng(2003)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(512, selector=MultipleChoice(t=4))
    return net


@pytest.fixture(scope="session")
def uniform_net_512():
    rng = np.random.default_rng(2004)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(512)
    return net


@pytest.fixture()
def route_rng():
    return np.random.default_rng(99)
