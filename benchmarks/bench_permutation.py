"""Benchmarks for permutation routing (experiment E5; Thm 2.10/2.11)."""

import math


from repro.core import CongestionCounter, dh_lookup
from repro.sim.workload import bit_reversal_permutation, random_permutation


def test_permutation_routing_kernel(benchmark, balanced_net_512, route_rng):
    """Route a full random permutation (n simultaneous lookups)."""
    pts = list(balanced_net_512.points())

    def run():
        counter = CongestionCounter()
        for src, tgt in random_permutation(pts, route_rng):
            counter.record(dh_lookup(balanced_net_512, src, tgt, route_rng))
        return counter.max_load()

    load = benchmark.pedantic(run, rounds=1, iterations=1)
    assert load <= 8 * math.log2(balanced_net_512.n)


def test_bit_reversal_shape(balanced_net_512, route_rng):
    """Theorem 2.10 on the adversarial bit-reversal pattern."""
    pts = list(balanced_net_512.points())
    counter = CongestionCounter()
    for src, tgt in bit_reversal_permutation(pts):
        counter.record(dh_lookup(balanced_net_512, src, tgt, route_rng))
    assert counter.max_load() <= 8 * math.log2(balanced_net_512.n)
