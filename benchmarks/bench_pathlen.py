"""Benchmarks for lookup path lengths (experiment E3; Cor 2.5, Thm 2.8)."""

import math

import numpy as np

from repro.core import dh_lookup, fast_lookup


def test_fast_lookup_kernel(benchmark, balanced_net_512, route_rng):
    pts = list(balanced_net_512.points())

    def run():
        src = pts[int(route_rng.integers(len(pts)))]
        return fast_lookup(balanced_net_512, src, float(route_rng.random()))

    res = benchmark(run)
    n, rho = balanced_net_512.n, balanced_net_512.smoothness()
    assert res.t <= math.log2(n) + math.log2(rho) + 1


def test_dh_lookup_kernel(benchmark, balanced_net_512, route_rng):
    pts = list(balanced_net_512.points())

    def run():
        src = pts[int(route_rng.integers(len(pts)))]
        return dh_lookup(balanced_net_512, src, float(route_rng.random()), route_rng)

    res = benchmark(run)
    n, rho = balanced_net_512.n, balanced_net_512.smoothness()
    assert res.hops <= 2 * math.log2(n) + 2 * math.log2(rho) + 2


def test_path_length_shape(balanced_net_512, route_rng):
    """Two-phase ≈ 2× one-phase mean (the Theorem 2.8 factor)."""
    pts = list(balanced_net_512.points())
    f, d = [], []
    for _ in range(150):
        src = pts[int(route_rng.integers(len(pts)))]
        y = float(route_rng.random())
        f.append(fast_lookup(balanced_net_512, src, y).hops)
        d.append(dh_lookup(balanced_net_512, src, y, route_rng).hops)
    assert 1.2 <= np.mean(d) / max(1e-9, np.mean(f)) <= 3.2
