"""General graph emulation over a smooth decomposition (paper §7).

Given a family ``{G_k}`` with ``2^k`` vertices and degree ``d``, and a
smooth point set ``x`` on ``[0,1)``, server ``V_i`` simulates the guests

    ``Φ_k(u_j) = V_i  ⟺  j / 2^k ∈ s(x_i)``

and hosts an edge for every guest edge.  The §7 properties, all checked
by tests/E15:

1. every server simulates at most ``ρ + 1`` guests;
2. every host edge simulates at most ``ρ²`` guest edges;
3. the host degree is at most ``ρ·d`` — so a smooth decomposition gives
   a *real-time* (constant slow-down) emulation of ``G_{⌈log n⌉}``.

When servers do not know ``n``, each estimates ``n_i = 1/|s(V_i)|`` and
opens edges for every level in ``[log n_i − log ρ, log n_i + log ρ]``
(Theorem 7.1: degree ≤ ``2 d ρ log ρ``); :meth:`GraphEmulator.multi_level_hosts`
implements that variant.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Set, Tuple


from ..core.segments import SegmentMap
from .families import GraphFamily

__all__ = ["GraphEmulator"]


class GraphEmulator:
    """Emulates ``G_k`` on the servers of a segment decomposition."""

    def __init__(self, segments: SegmentMap, family: GraphFamily,
                 k: Optional[int] = None):
        if len(segments) < 1:
            raise ValueError("need at least one server")
        self.segments = segments
        self.family = family
        self.k = k if k is not None else max(1, math.ceil(math.log2(len(segments))))

    # ------------------------------------------------------------- mapping
    def host_of(self, guest: int, k: Optional[int] = None) -> float:
        """``Φ_k(u_guest)`` — the server covering ``guest / 2^k``."""
        k = self.k if k is None else k
        if not 0 <= guest < (1 << k):
            raise ValueError(f"guest {guest} out of range for k={k}")
        return self.segments.cover_point(guest / (1 << k))

    def guests_of(self, server_point: float, k: Optional[int] = None) -> List[int]:
        """All guests mapped to a server — computable locally from its segment."""
        k = self.k if k is None else k
        n = 1 << k
        seg = self.segments.segment_of(server_point)
        out: List[int] = []
        for a, b in seg.pieces():
            first = math.ceil(float(a) * n - 1e-12)
            while first / n < float(a):
                first += 1
            j = first
            while j / n < float(b) and j < n:
                out.append(j)
                j += 1
        return sorted(out)

    # ------------------------------------------------------------- topology
    def host_edges(self) -> Set[Tuple[float, float]]:
        """Distinct host pairs ``{Φ(u), Φ(v)}`` over guest edges (no loops)."""
        pairs: Set[Tuple[float, float]] = set()
        for u in range(1 << self.k):
            hu = self.host_of(u)
            for v in self.family.neighbors(self.k, u):
                hv = self.host_of(v)
                if hu != hv:
                    pairs.add((hu, hv) if hu <= hv else (hv, hu))
        return pairs

    def host_degree(self, server_point: float) -> int:
        """Degree of a server in the emulation overlay."""
        neighbors: Set[float] = set()
        for u in self.guests_of(server_point):
            for v in self.family.neighbors(self.k, u):
                hv = self.host_of(v)
                if hv != server_point:
                    neighbors.add(hv)
        return len(neighbors)

    def edge_multiplicity(self) -> Counter:
        """How many guest edges each host edge simulates (≤ ρ² each)."""
        counts: Counter = Counter()
        seen: Set[Tuple[int, int]] = set()
        for u in range(1 << self.k):
            for v in self.family.neighbors(self.k, u):
                e = (min(u, v), max(u, v))
                if e in seen:
                    continue
                seen.add(e)
                hu, hv = self.host_of(u), self.host_of(v)
                counts[(min(hu, hv), max(hu, hv))] += 1
        return counts

    # ----------------------------------------------------- §7 property checks
    def max_guests_per_server(self) -> int:
        return max(len(self.guests_of(p)) for p in self.segments)

    def check_properties(self) -> Dict[str, bool]:
        """Verify the three §7 emulation properties for the current ρ."""
        rho = self.segments.smoothness()
        d = self.family.degree_bound(self.k)
        guests_ok = self.max_guests_per_server() <= rho + 1
        mult = self.edge_multiplicity()
        mult_ok = (max(mult.values()) if mult else 0) <= rho * rho + 1e-9
        degree_ok = all(self.host_degree(p) <= rho * d for p in self.segments)
        return {
            "guests_le_rho_plus_1": guests_ok,
            "edge_multiplicity_le_rho_sq": mult_ok,
            "degree_le_rho_d": degree_ok,
        }

    # ------------------------------------------------- unknown-n (Thm 7.1)
    def level_list(self, server_point: float, rho_bound: float) -> List[int]:
        """Levels a server opens when ``n`` is unknown (§7's 2·log ρ list)."""
        seg_len = float(self.segments.segment_of(server_point).length)
        n_i = max(2.0, 1.0 / seg_len)
        log_rho = max(1.0, math.log2(max(2.0, rho_bound)))
        lo = max(1, math.floor(math.log2(n_i) - log_rho))
        hi = max(lo, math.ceil(math.log2(n_i) + log_rho))
        return list(range(lo, hi + 1))

    def multi_level_hosts(self, server_point: float, rho_bound: float
                          ) -> Set[float]:
        """Union of emulation neighbours over the server's level list.

        Theorem 7.1: with smoothness ≤ ρ the union has size at most
        ``2 d ρ log ρ`` and contains the true level ``⌈log n⌉``'s edges.
        """
        out: Set[float] = set()
        for k in self.level_list(server_point, rho_bound):
            for u in self.guests_of(server_point, k):
                for v in self.family.neighbors(k, u):
                    hv = self.host_of(v, k)
                    if hv != server_point:
                        out.add(hv)
        return out

    # ------------------------------------------------------ real-time demo
    def emulate_round(self, values: Dict[int, float]) -> Dict[int, float]:
        """One synchronous round of ``G_k``: every guest averages neighbours.

        Runs *on the hosts*: each server updates only its own guests,
        reading neighbour values through host edges — then the result is
        compared against the direct computation by the tests (real-time
        emulation in the sense of [28]/[23]).
        """
        new: Dict[int, float] = {}
        for p in self.segments:
            for u in self.guests_of(p):
                nb = self.family.neighbors(self.k, u)
                new[u] = sum(values[v] for v in nb) / len(nb)
        return new
