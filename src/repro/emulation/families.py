"""Fixed-degree graph families ``{G_1, G_2, …}`` for §7 emulation.

Section 7 emulates any family where ``G_k`` has ``2^k`` vertices and
maximum degree ``d``.  We provide the classical interconnection
topologies (Leighton's menagerie) plus the hypercube as an unbounded-
degree stress case:

* :class:`RingFamily` — degree 2;
* :class:`TorusFamily` — the 2D torus, degree 4;
* :class:`DeBruijnFamily` — degree ≤ 4 (undirected), the §2 star;
* :class:`ShuffleExchangeFamily` — degree ≤ 3;
* :class:`HypercubeFamily` — degree ``k`` (the emulation still applies,
  with the degree bound scaling accordingly).
"""

from __future__ import annotations

from typing import List, Protocol

__all__ = [
    "GraphFamily",
    "RingFamily",
    "TorusFamily",
    "DeBruijnFamily",
    "ShuffleExchangeFamily",
    "HypercubeFamily",
    "family_graph",
]


class GraphFamily(Protocol):
    """A family ``G_k`` of graphs on vertex sets ``{0, …, 2^k − 1}``."""

    name: str
    max_degree_formula: str

    def degree_bound(self, k: int) -> int:
        """Maximum degree ``d`` of ``G_k``."""
        ...  # pragma: no cover

    def neighbors(self, k: int, u: int) -> List[int]:
        """Neighbours of vertex ``u`` in ``G_k`` (undirected)."""
        ...  # pragma: no cover


def _validate(k: int, u: int) -> None:
    if k < 1:
        raise ValueError("k must be >= 1")
    if not 0 <= u < (1 << k):
        raise ValueError(f"vertex {u} out of range for k={k}")


class RingFamily:
    """The ``2^k``-cycle."""

    name = "ring"
    max_degree_formula = "2"

    def degree_bound(self, k: int) -> int:
        return 2

    def neighbors(self, k: int, u: int) -> List[int]:
        _validate(k, u)
        n = 1 << k
        return sorted({(u - 1) % n, (u + 1) % n} - {u})


class TorusFamily:
    """The ``2^⌈k/2⌉ × 2^⌊k/2⌋`` wrap-around grid."""

    name = "torus"
    max_degree_formula = "4"

    def degree_bound(self, k: int) -> int:
        return 4

    def _dims(self, k: int) -> tuple[int, int]:
        a = (k + 1) // 2
        return 1 << a, 1 << (k - a)

    def neighbors(self, k: int, u: int) -> List[int]:
        _validate(k, u)
        rows, cols = self._dims(k)
        r, c = divmod(u, cols)
        out = {
            ((r + 1) % rows) * cols + c,
            ((r - 1) % rows) * cols + c,
            r * cols + (c + 1) % cols,
            r * cols + (c - 1) % cols,
        }
        out.discard(u)
        return sorted(out)


class DeBruijnFamily:
    """The binary De Bruijn graph viewed undirected (degree ≤ 4)."""

    name = "debruijn"
    max_degree_formula = "4"

    def degree_bound(self, k: int) -> int:
        return 4

    def neighbors(self, k: int, u: int) -> List[int]:
        _validate(k, u)
        n = 1 << k
        out = {
            (2 * u) % n,
            (2 * u + 1) % n,
            u >> 1,
            (u >> 1) | (1 << (k - 1)),
        }
        out.discard(u)
        return sorted(out)


class ShuffleExchangeFamily:
    """Shuffle-exchange: rotate left, rotate right, flip lowest bit."""

    name = "shuffle-exchange"
    max_degree_formula = "3"

    def degree_bound(self, k: int) -> int:
        return 3

    def neighbors(self, k: int, u: int) -> List[int]:
        _validate(k, u)
        n = 1 << k
        rot_l = ((u << 1) | (u >> (k - 1))) & (n - 1)
        rot_r = (u >> 1) | ((u & 1) << (k - 1))
        out = {rot_l, rot_r, u ^ 1}
        out.discard(u)
        return sorted(out)


class HypercubeFamily:
    """The k-cube — degree ``k`` (the §7 bound scales with d = log n)."""

    name = "hypercube"
    max_degree_formula = "k"

    def degree_bound(self, k: int) -> int:
        return k

    def neighbors(self, k: int, u: int) -> List[int]:
        _validate(k, u)
        return sorted(u ^ (1 << b) for b in range(k))


def family_graph(family: GraphFamily, k: int):
    """``G_k`` as a NetworkX graph (for reference computations in tests)."""
    import networkx as nx

    g = nx.Graph()
    n = 1 << k
    g.add_nodes_from(range(n))
    for u in range(n):
        for v in family.neighbors(k, u):
            g.add_edge(u, v)
    return g
