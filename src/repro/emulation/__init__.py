"""General graph emulation over smooth decompositions (paper §7)."""

from .emulator import GraphEmulator
from .families import (
    DeBruijnFamily,
    GraphFamily,
    HypercubeFamily,
    RingFamily,
    ShuffleExchangeFamily,
    TorusFamily,
    family_graph,
)

__all__ = [
    "DeBruijnFamily",
    "GraphEmulator",
    "GraphFamily",
    "HypercubeFamily",
    "RingFamily",
    "ShuffleExchangeFamily",
    "TorusFamily",
    "family_graph",
]
