"""Baseline lookup schemes for the Table 1 comparison."""

from .base import (
    BaselineBatchResult,
    BaselineBatchRouter,
    BaselineDHT,
    MeasuredRow,
    measure_scheme,
    measure_scheme_batch,
)
from .can import CanBatchRouter, CanNetwork
from .chord import ChordBatchRouter, ChordNetwork
from .dh_adapter import DistanceHalvingAdapter, DistanceHalvingBatchRouter
from .kleinberg import KleinbergBatchRouter, KleinbergRing
from .koorde import KoordeBatchRouter, KoordeNetwork
from .tapestry import TapestryBatchRouter, TapestryNetwork
from .viceroy import ViceroyBatchRouter, ViceroyNetwork

__all__ = [
    "BaselineBatchResult",
    "BaselineBatchRouter",
    "BaselineDHT",
    "CanBatchRouter",
    "CanNetwork",
    "ChordBatchRouter",
    "ChordNetwork",
    "DistanceHalvingAdapter",
    "DistanceHalvingBatchRouter",
    "KleinbergBatchRouter",
    "KleinbergRing",
    "KoordeBatchRouter",
    "KoordeNetwork",
    "MeasuredRow",
    "TapestryBatchRouter",
    "TapestryNetwork",
    "ViceroyBatchRouter",
    "ViceroyNetwork",
    "measure_scheme",
    "measure_scheme_batch",
]
