"""Baseline lookup schemes for the Table 1 comparison."""

from .base import BaselineDHT, MeasuredRow, measure_scheme
from .can import CanNetwork
from .chord import ChordNetwork
from .dh_adapter import DistanceHalvingAdapter
from .kleinberg import KleinbergRing
from .koorde import KoordeNetwork
from .tapestry import TapestryNetwork
from .viceroy import ViceroyNetwork

__all__ = [
    "BaselineDHT",
    "CanNetwork",
    "ChordNetwork",
    "DistanceHalvingAdapter",
    "KleinbergRing",
    "KoordeNetwork",
    "MeasuredRow",
    "TapestryNetwork",
    "ViceroyNetwork",
    "measure_scheme",
]
