"""Chord (Stoica et al., SIGCOMM 2001) on the continuous ring.

Table 1 row: path length ``log n``, congestion ``(log n)/n``, linkage
``log n``.  Implemented with real-valued ids in ``[0, 1)``: finger ``j``
of node ``x`` is the successor of ``x + 2^{-j}``; a point is owned by its
successor node.  Routing is the standard greedy closest-preceding-finger
walk, giving ``O(log n)`` hops (≈ ½·log₂ n in expectation).

The finger table is compiled as one ``(n, m)`` index matrix (a single
``np.searchsorted`` per level), which both the scalar ``lookup_path``
and :class:`ChordBatchRouter` — the batch engine routing whole lookup
arrays one greedy hop per iteration — read from.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

import numpy as np

from .base import BaselineBatchResult, BaselineBatchRouter, BaselineDHT, _PathRecorder

__all__ = ["ChordBatchRouter", "ChordNetwork"]


class ChordNetwork(BaselineDHT):
    """A static Chord overlay on ``n`` uniformly random node ids."""

    name = "chord"

    def __init__(self, n: int, rng: np.random.Generator):
        if n < 2:
            raise ValueError("need at least two nodes")
        self._pts: np.ndarray = np.sort(rng.random(n))
        self.points: List[float] = self._pts.tolist()
        self.m = max(1, math.ceil(math.log2(n))) + 1  # finger levels
        # finger j of every node at once: successor of (x + 2^-j) mod 1
        cols = [
            np.searchsorted(self._pts, (self._pts + 2.0 ** -j) % 1.0) % n
            for j in range(1, self.m + 1)
        ]
        self._finger_idx: np.ndarray = np.stack(cols, axis=1).astype(np.int64)
        fvals = self._pts[self._finger_idx]
        # dedupe is deliberately skipped: farthest-first ordering matters
        self.fingers: Dict[float, List[float]] = {
            x: row for x, row in zip(self.points, fvals.tolist())
        }

    # ------------------------------------------------------------- geometry
    def _successor(self, y: float) -> float:
        """First node clockwise at or after ``y`` (owner of ``y``)."""
        i = bisect_left(self.points, y)
        return self.points[i % len(self.points)]

    @staticmethod
    def _clockwise(frm: float, to: float) -> float:
        """Clockwise distance from ``frm`` to ``to`` on the ring."""
        return (to - frm) % 1.0

    def _in_open_interval(self, y: float, a: float, b: float) -> bool:
        """y ∈ (a, b] clockwise."""
        return 0 < self._clockwise(a, y) <= self._clockwise(a, b)

    # ------------------------------------------------------------ interface
    @property
    def n(self) -> int:
        return len(self.points)

    def node_ids(self) -> Sequence[float]:
        return self.points

    def owner(self, target: float) -> float:
        return self._successor(target % 1.0)

    def degree(self, node: float) -> int:
        succ = self._successor((node + 1e-15) % 1.0)
        return len(set(self.fingers[node]) | {succ})

    def batch_router(self) -> "ChordBatchRouter":
        return ChordBatchRouter(self)

    def lookup_path(self, source: float, target: float, rng: np.random.Generator
                    ) -> List[float]:
        target = target % 1.0
        own = self.owner(target)
        path = [source]
        current = source
        for _ in range(4 * self.m + self.n):  # safety bound
            if current == own:
                return path
            succ = self._successor((current + 1e-15) % 1.0)
            if self._in_open_interval(target, current, succ):
                path.append(succ)
                return path
            # closest preceding finger of target
            best = succ
            best_d = self._clockwise(current, succ)
            for f in self.fingers[current]:
                if f == current:
                    continue
                d = self._clockwise(current, f)
                # f must strictly precede the target (not pass it)
                if d <= best_d:
                    continue
                if self._clockwise(current, f) < self._clockwise(current, target) or (
                    f == target
                ):
                    best = f
                    best_d = d
            path.append(best)
            current = best
        raise RuntimeError("chord lookup failed to converge")  # pragma: no cover


class ChordBatchRouter(BaselineBatchRouter):
    """Whole-batch greedy finger routing over the compiled arrays.

    Each iteration advances every unfinished lookup one hop: successor
    probe via one ``searchsorted``, then the closest-preceding-finger
    argmax over the ``(lanes, m)`` clockwise-distance matrix.  The
    scan-order tie-breaking of the scalar loop (first finger attaining
    the running maximum wins) is exactly ``np.argmax``'s
    first-occurrence rule, so paths replay bit-for-bit.
    """

    def __init__(self, net: ChordNetwork):
        self.scheme = net.name
        self.node_keys = net._pts
        self._finger_idx = net._finger_idx
        self._m = net.m

    def route_batch(
        self,
        source_idx: np.ndarray,
        targets: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> BaselineBatchResult:
        pts = self.node_keys
        n = pts.size
        src = np.asarray(source_idx, dtype=np.int64)
        tgt = np.asarray(targets, dtype=np.float64) % 1.0
        size = src.size
        own = np.searchsorted(pts, tgt) % n
        rec = _PathRecorder(size, src)
        # lanes whose source already owns the target route in zero hops
        live = np.flatnonzero(pts[src] != pts[own])
        cur = src[live]
        t = tgt[live]
        o = own[live]
        for _ in range(4 * self._m + n):
            if live.size == 0:
                break
            cpt = pts[cur]
            succ = np.searchsorted(pts, (cpt + 1e-15) % 1.0) % n
            spt = pts[succ]
            cw_t = (t - cpt) % 1.0
            cw_s = (spt - cpt) % 1.0
            in_seg = (0 < cw_t) & (cw_t <= cw_s)
            nxt = succ.copy()
            scan = np.flatnonzero(~in_seg)
            if scan.size:
                fidx = self._finger_idx[cur[scan]]          # (k, m)
                fpt = pts[fidx]
                d = (fpt - cpt[scan, None]) % 1.0
                valid = (
                    (fpt != cpt[scan, None])
                    & (d > cw_s[scan, None])
                    & ((d < cw_t[scan, None]) | (fpt == t[scan, None]))
                )
                dmask = np.where(valid, d, -1.0)
                bi = np.argmax(dmask, axis=1)
                rows = np.arange(scan.size)
                hit = dmask[rows, bi] > -1.0
                nxt[scan[hit]] = fidx[rows[hit], bi[hit]]
            rec.append(live, nxt)
            cur = nxt
            done = in_seg | (pts[cur] == pts[o])
            keep = ~done
            live, cur, t, o = live[keep], cur[keep], t[keep], o[keep]
        if live.size:  # pragma: no cover - scalar bound, never hit
            raise RuntimeError("chord batch lookup failed to converge")
        servers, offsets = rec.to_csr()
        return BaselineBatchResult(
            scheme=self.scheme, points=pts, source_idx=src, owner_idx=own,
            path_servers=servers, path_offsets=offsets,
        )
