"""Chord (Stoica et al., SIGCOMM 2001) on the continuous ring.

Table 1 row: path length ``log n``, congestion ``(log n)/n``, linkage
``log n``.  Implemented with real-valued ids in ``[0, 1)``: finger ``j``
of node ``x`` is the successor of ``x + 2^{-j}``; a point is owned by its
successor node.  Routing is the standard greedy closest-preceding-finger
walk, giving ``O(log n)`` hops (≈ ½·log₂ n in expectation).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, List, Sequence

import numpy as np

from .base import BaselineDHT

__all__ = ["ChordNetwork"]


class ChordNetwork(BaselineDHT):
    """A static Chord overlay on ``n`` uniformly random node ids."""

    name = "chord"

    def __init__(self, n: int, rng: np.random.Generator):
        if n < 2:
            raise ValueError("need at least two nodes")
        self.points: List[float] = sorted(float(p) for p in rng.random(n))
        self.m = max(1, math.ceil(math.log2(n))) + 1  # finger levels
        self.fingers: Dict[float, List[float]] = {}
        for x in self.points:
            fl = []
            for j in range(1, self.m + 1):
                fl.append(self._successor((x + 2.0**-j) % 1.0))
            # dedupe while keeping the farthest-first ordering meaningful
            self.fingers[x] = fl

    # ------------------------------------------------------------- geometry
    def _successor(self, y: float) -> float:
        """First node clockwise at or after ``y`` (owner of ``y``)."""
        i = bisect_left(self.points, y)
        return self.points[i % len(self.points)]

    @staticmethod
    def _clockwise(frm: float, to: float) -> float:
        """Clockwise distance from ``frm`` to ``to`` on the ring."""
        return (to - frm) % 1.0

    def _in_open_interval(self, y: float, a: float, b: float) -> bool:
        """y ∈ (a, b] clockwise."""
        return 0 < self._clockwise(a, y) <= self._clockwise(a, b)

    # ------------------------------------------------------------ interface
    @property
    def n(self) -> int:
        return len(self.points)

    def node_ids(self) -> Sequence[float]:
        return self.points

    def owner(self, target: float) -> float:
        return self._successor(target % 1.0)

    def degree(self, node: float) -> int:
        succ = self._successor((node + 1e-15) % 1.0)
        return len(set(self.fingers[node]) | {succ})

    def lookup_path(self, source: float, target: float, rng: np.random.Generator
                    ) -> List[float]:
        target = target % 1.0
        own = self.owner(target)
        path = [source]
        current = source
        for _ in range(4 * self.m + self.n):  # safety bound
            if current == own:
                return path
            succ = self._successor((current + 1e-15) % 1.0)
            if self._in_open_interval(target, current, succ):
                path.append(succ)
                return path
            # closest preceding finger of target
            best = succ
            best_d = self._clockwise(current, succ)
            for f in self.fingers[current]:
                if f == current:
                    continue
                d = self._clockwise(current, f)
                # f must strictly precede the target (not pass it)
                if d <= best_d:
                    continue
                if self._clockwise(current, f) < self._clockwise(current, target) or (
                    f == target
                ):
                    best = f
                    best_d = d
            path.append(best)
            current = best
        raise RuntimeError("chord lookup failed to converge")  # pragma: no cover
