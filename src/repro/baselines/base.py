"""Common interface for the Table 1 baseline lookup schemes.

The paper's Table 1 compares lookup schemes on three axes — expected
path length, congestion and linkage (degree).  Every baseline implements
:class:`BaselineDHT` so the E1 harness can measure all schemes uniformly:

============  ===============  ==================  =========
scheme        path length      congestion          linkage
============  ===============  ==================  =========
Chord         log n            (log n)/n           log n
Tapestry      log n            (log n)/n           log n
CAN           d·n^{1/d}        d·n^{1/d - 1}       d
Small Worlds  log² n           (log² n)/n          O(1)
Viceroy       log n            (log n)/n           O(1)
Koorde/DH     log_d n          (log_d n)/n         O(d)
============  ===============  ==================  =========
"""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["BaselineDHT", "MeasuredRow", "measure_scheme"]


class BaselineDHT(abc.ABC):
    """A static lookup scheme on ``n`` nodes.

    Nodes are identified by opaque hashables; ``lookup_path`` returns the
    node sequence a lookup message traverses (first element the source,
    last the owner of the target point).
    """

    name: str = "abstract"

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Number of nodes."""

    @abc.abstractmethod
    def node_ids(self) -> Sequence:
        """All node identifiers."""

    @abc.abstractmethod
    def owner(self, target: float) -> object:
        """The node responsible for a point of ``[0, 1)``."""

    @abc.abstractmethod
    def lookup_path(self, source, target: float, rng: np.random.Generator) -> List:
        """Route a lookup; returns the visited node sequence."""

    @abc.abstractmethod
    def degree(self, node) -> int:
        """Number of distinct links the node maintains."""

    # ------------------------------------------------------------- derived
    def max_degree(self) -> int:
        return max(self.degree(v) for v in self.node_ids())

    def mean_degree(self) -> float:
        ids = list(self.node_ids())
        return sum(self.degree(v) for v in ids) / len(ids)


@dataclass
class MeasuredRow:
    """One measured Table 1 row for one scheme at one size."""

    scheme: str
    n: int
    mean_path: float
    max_path: float
    max_congestion: float
    mean_degree: float
    max_degree: int
    lookups: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "scheme": self.scheme,
            "n": self.n,
            "mean_path": self.mean_path,
            "max_path": self.max_path,
            "max_congestion": self.max_congestion,
            "mean_degree": self.mean_degree,
            "max_degree": self.max_degree,
            "lookups": self.lookups,
        }


def measure_scheme(
    dht: BaselineDHT, rng: np.random.Generator, lookups: int = 2000
) -> MeasuredRow:
    """Route ``lookups`` random (source, point) queries and aggregate.

    This is Definition 3's experiment: sources uniform over nodes,
    targets uniform over ``[0, 1)``; congestion is the max per-node visit
    frequency.
    """
    ids = list(dht.node_ids())
    visits: Counter = Counter()
    lengths = np.empty(lookups)
    for k in range(lookups):
        src = ids[int(rng.integers(len(ids)))]
        target = float(rng.random())
        path = dht.lookup_path(src, target, rng)
        lengths[k] = len(path) - 1
        for v in path:
            visits[v] += 1
    return MeasuredRow(
        scheme=dht.name,
        n=dht.n,
        mean_path=float(lengths.mean()),
        max_path=float(lengths.max()),
        max_congestion=max(visits.values()) / lookups,
        mean_degree=dht.mean_degree(),
        max_degree=dht.max_degree(),
        lookups=lookups,
    )
