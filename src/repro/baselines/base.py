"""Common interface for the Table 1 baseline lookup schemes.

The paper's Table 1 compares lookup schemes on three axes — expected
path length, congestion and linkage (degree).  Every baseline implements
:class:`BaselineDHT` so the E1 harness can measure all schemes uniformly:

============  ===============  ==================  =========
scheme        path length      congestion          linkage
============  ===============  ==================  =========
Chord         log n            (log n)/n           log n
Tapestry      log n            (log n)/n           log n
CAN           d·n^{1/d}        d·n^{1/d - 1}       d
Small Worlds  log² n           (log² n)/n          O(1)
Viceroy       log n            (log n)/n           O(1)
Koorde/DH     log_d n          (log_d n)/n         O(d)
============  ===============  ==================  =========
"""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.batch import levels_to_csr
from ..core.routing_stats import BatchCongestion

__all__ = [
    "BaselineBatchResult",
    "BaselineBatchRouter",
    "BaselineDHT",
    "MeasuredRow",
    "measure_scheme",
    "measure_scheme_batch",
]


class BaselineDHT(abc.ABC):
    """A static lookup scheme on ``n`` nodes.

    Nodes are identified by opaque hashables; ``lookup_path`` returns the
    node sequence a lookup message traverses (first element the source,
    last the owner of the target point).
    """

    name: str = "abstract"

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Number of nodes."""

    @abc.abstractmethod
    def node_ids(self) -> Sequence:
        """All node identifiers."""

    @abc.abstractmethod
    def owner(self, target: float) -> object:
        """The node responsible for a point of ``[0, 1)``."""

    @abc.abstractmethod
    def lookup_path(self, source, target: float, rng: np.random.Generator) -> List:
        """Route a lookup; returns the visited node sequence."""

    @abc.abstractmethod
    def degree(self, node) -> int:
        """Number of distinct links the node maintains."""

    # ------------------------------------------------------------- derived
    def max_degree(self) -> int:
        return max(self.degree(v) for v in self.node_ids())

    def mean_degree(self) -> float:
        ids = list(self.node_ids())
        return sum(self.degree(v) for v in ids) / len(ids)

    def batch_router(self) -> "BaselineBatchRouter":
        """Compile this scheme's vectorized batch router (if ported)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no batch router yet"
        )


@dataclass
class MeasuredRow:
    """One measured Table 1 row for one scheme at one size."""

    scheme: str
    n: int
    mean_path: float
    max_path: float
    max_congestion: float
    mean_degree: float
    max_degree: int
    lookups: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "scheme": self.scheme,
            "n": self.n,
            "mean_path": self.mean_path,
            "max_path": self.max_path,
            "max_congestion": self.max_congestion,
            "mean_degree": self.mean_degree,
            "max_degree": self.max_degree,
            "lookups": self.lookups,
        }


@dataclass
class BaselineBatchResult:
    """Array-of-structs outcome of one batch of baseline lookups.

    The baseline counterpart of
    :class:`~repro.core.batch.BatchLookupResult`: paths live in the same
    CSR representation (``path_servers`` holds node *indices*,
    ``path_offsets`` is the length-``size + 1`` prefix sum), so
    :class:`~repro.core.routing_stats.BatchCongestion` books a whole
    batch with one ``np.bincount`` via :meth:`to_csr` — the duck
    interface ``record_batch`` consumes is ``to_csr()`` / ``points`` /
    ``size`` / ``hops``.

    ``points`` maps node index → congestion key: the ring id for the
    float-identified schemes (Chord, Koorde, Viceroy, DH), or simply
    ``float(index)`` for the integer-identified ones (CAN, Kleinberg,
    Tapestry) — the same keys the scalar
    :meth:`~repro.core.routing_stats.CongestionCounter.record_path`
    sees, so summaries match bit-for-bit.
    """

    scheme: str
    points: np.ndarray        # float64 congestion key of every node
    source_idx: np.ndarray
    owner_idx: np.ndarray
    path_servers: np.ndarray  # int32 node indices, CSR values
    path_offsets: np.ndarray  # int64 prefix sums, length size + 1

    @property
    def size(self) -> int:
        return int(self.source_idx.size)

    @property
    def hops(self) -> np.ndarray:
        """Per-lookup hop count (compressed path length − 1)."""
        return np.diff(self.path_offsets) - 1

    def to_csr(self) -> tuple:
        return self.path_servers, self.path_offsets

    def path_lengths(self) -> np.ndarray:
        return np.diff(self.path_offsets)

    def server_path(self, i: int) -> List[float]:
        """Congestion keys of lookup ``i``'s path (scalar-comparable)."""
        lo, hi = self.path_offsets[i], self.path_offsets[i + 1]
        return [float(self.points[k]) for k in self.path_servers[lo:hi]]


class _PathRecorder:
    """Accumulates one row of node indices per batch hop level.

    Rows are full-batch-width with ``-1`` marking "lane recorded
    nothing this level"; :meth:`to_csr` hands the stack to the public
    :func:`~repro.core.batch.levels_to_csr`, which drops the ``-1``
    entries and compresses consecutive duplicates per lane — exactly
    the scalar ``compress_path`` semantics, vectorized.
    """

    def __init__(self, size: int, first_row: np.ndarray):
        self.size = size
        self._rows: List[np.ndarray] = [
            np.asarray(first_row, dtype=np.int32).copy()
        ]

    def append(self, lanes: np.ndarray, values: np.ndarray) -> None:
        """Record ``values`` for the batch positions ``lanes``."""
        row = np.full(self.size, -1, dtype=np.int32)
        row[lanes] = values
        self._rows.append(row)

    def to_csr(self) -> tuple:
        return levels_to_csr(self.size, [np.vstack(self._rows)])


class BaselineBatchRouter(abc.ABC):
    """Compiled (frozen-array) form of a baseline scheme.

    The generalization of the :class:`~repro.core.batch.BatchRouter`
    pattern to the Table 1 competitors: construction compiles the
    topology to sorted id / finger / link index arrays, and
    :meth:`route_batch` advances *every* pending lookup one hop level
    per iteration — a gather + compare per level instead of a Python
    loop per hop per lookup.  Every float comparison replicates the
    scalar ``lookup_path`` operation ordering, so paths are
    bit-identical (the ``tests/baselines`` parity suite asserts this).

    Subclasses set ``scheme`` (display name) and ``node_keys`` (the
    float64 congestion key per node index) and implement
    :meth:`route_batch`.
    """

    scheme: str
    node_keys: np.ndarray

    @abc.abstractmethod
    def route_batch(
        self,
        source_idx: np.ndarray,
        targets: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> BaselineBatchResult:
        """Route one batch; sources are node indices, targets ∈ [0, 1)."""

    def route_chunked(
        self,
        source_idx: np.ndarray,
        targets: np.ndarray,
        congestion: Optional[BatchCongestion] = None,
        chunk: int = 8192,
        rng: Optional[np.random.Generator] = None,
    ) -> tuple:
        """Route a large workload in bounded-memory chunks.

        Books every chunk into ``congestion`` (if given) and discards
        its CSR arrays before routing the next, so peak memory is
        O(chunk · max-path) regardless of the workload size.  Returns
        ``(hops, owner_idx)`` arrays for the whole workload.
        """
        source_idx = np.asarray(source_idx, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.float64)
        hops_parts: List[np.ndarray] = []
        owner_parts: List[np.ndarray] = []
        for lo in range(0, targets.size, max(1, chunk)):
            res = self.route_batch(
                source_idx[lo:lo + chunk], targets[lo:lo + chunk], rng=rng
            )
            if congestion is not None:
                congestion.record_batch(res)
            hops_parts.append(res.hops)
            owner_parts.append(res.owner_idx)
        return (
            np.concatenate(hops_parts) if hops_parts else np.zeros(0, np.int64),
            np.concatenate(owner_parts) if owner_parts else np.zeros(0, np.int64),
        )


def measure_scheme(
    dht: BaselineDHT, rng: np.random.Generator, lookups: int = 2000
) -> MeasuredRow:
    """Route ``lookups`` random (source, point) queries and aggregate.

    This is Definition 3's experiment: sources uniform over nodes,
    targets uniform over ``[0, 1)``; congestion is the max per-node visit
    frequency.
    """
    ids = list(dht.node_ids())
    visits: Counter = Counter()
    lengths = np.empty(lookups)
    for k in range(lookups):
        src = ids[int(rng.integers(len(ids)))]
        target = float(rng.random())
        path = dht.lookup_path(src, target, rng)
        lengths[k] = len(path) - 1
        for v in path:
            visits[v] += 1
    return MeasuredRow(
        scheme=dht.name,
        n=dht.n,
        mean_path=float(lengths.mean()),
        max_path=float(lengths.max()),
        max_congestion=max(visits.values()) / lookups,
        mean_degree=dht.mean_degree(),
        max_degree=dht.max_degree(),
        lookups=lookups,
    )


def measure_scheme_batch(
    dht: BaselineDHT,
    rng: np.random.Generator,
    lookups: int = 100_000,
    chunk: int = 8192,
    router: Optional[BaselineBatchRouter] = None,
) -> MeasuredRow:
    """Definition 3's experiment on the vectorized spine.

    Same measurement as :func:`measure_scheme` — uniform sources,
    uniform targets, max per-node visit frequency — but the whole
    workload is batch-routed and accounted through
    :class:`~repro.core.routing_stats.BatchCongestion`, which is what
    lets E1/E6 run 10^5-lookup cells at n = 2^16.
    """
    br = router if router is not None else dht.batch_router()
    n = dht.n
    src = rng.integers(0, n, size=lookups)
    targets = rng.random(lookups)
    cong = BatchCongestion()
    hops, _owners = br.route_chunked(
        src, targets, congestion=cong, chunk=chunk, rng=rng
    )
    return MeasuredRow(
        scheme=dht.name,
        n=n,
        mean_path=float(hops.mean()) if lookups else 0.0,
        max_path=float(hops.max()) if lookups else 0.0,
        max_congestion=cong.max_congestion(),
        mean_degree=dht.mean_degree(),
        max_degree=dht.max_degree(),
        lookups=lookups,
    )
