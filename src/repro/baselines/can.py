"""CAN — the Content Addressable Network (Ratnasamy et al., SIGCOMM 2001).

Table 1 row: with dimension ``d``, path length ``d·n^{1/d}``, congestion
``d·n^{1/d-1}``, linkage ``d`` (2d face neighbours).  The d-dimensional
torus ``[0,1)^d`` is partitioned into boxes by successive joins — each
join splits the box containing a random point along its longest side —
and routing greedily forwards toward the target through face neighbours.

Only the first coordinate participates in the 1D target interface of
:class:`~repro.baselines.base.BaselineDHT`; full d-dimensional targets
are derived from the 1D point via digit interleaving so the target
distribution stays uniform over the torus.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import BaselineDHT

__all__ = ["CanNetwork"]


class _Box:
    """An axis-aligned box of the torus (half-open in every dimension)."""

    __slots__ = ("lo", "hi", "index")

    def __init__(self, lo: np.ndarray, hi: np.ndarray, index: int):
        self.lo = lo
        self.hi = hi
        self.index = index

    def contains(self, p: np.ndarray) -> bool:
        return bool(np.all(self.lo <= p) and np.all(p < self.hi))

    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2

    def split(self, new_index: int) -> "_Box":
        """Halve along the longest side; returns the new upper box."""
        dim = int(np.argmax(self.hi - self.lo))
        mid = (self.lo[dim] + self.hi[dim]) / 2
        upper_lo = self.lo.copy()
        upper_lo[dim] = mid
        upper = _Box(upper_lo, self.hi.copy(), new_index)
        new_hi = self.hi.copy()
        new_hi[dim] = mid
        self.hi = new_hi
        return upper


def _torus_delta(a: float, b: float) -> float:
    d = abs(a - b)
    return min(d, 1.0 - d)


class CanNetwork(BaselineDHT):
    """A static CAN on ``n`` zones in ``d`` dimensions."""

    name = "can"

    def __init__(self, n: int, rng: np.random.Generator, d: int = 2):
        if n < 2:
            raise ValueError("need at least two zones")
        if d < 1:
            raise ValueError("dimension must be >= 1")
        self.d = d
        self.name = f"can(d={d})"
        first = _Box(np.zeros(d), np.ones(d), 0)
        self.boxes: List[_Box] = [first]
        for k in range(1, n):
            p = rng.random(d)
            target = next(b for b in self.boxes if b.contains(p))
            self.boxes.append(target.split(k))
        self._build_neighbors()

    def _build_neighbors(self) -> None:
        """Face adjacency: overlap in d-1 dims, touching (mod 1) in one."""
        nb: List[set] = [set() for _ in self.boxes]
        for i, a in enumerate(self.boxes):
            for j in range(i + 1, len(self.boxes)):
                b = self.boxes[j]
                touch_dim = -1
                ok = True
                for dim in range(self.d):
                    lo1, hi1 = a.lo[dim], a.hi[dim]
                    lo2, hi2 = b.lo[dim], b.hi[dim]
                    overlap = min(hi1, hi2) - max(lo1, lo2)
                    if overlap > 0:
                        continue
                    touching = (
                        hi1 == lo2 or hi2 == lo1
                        or (hi1 == 1.0 and lo2 == 0.0)
                        or (hi2 == 1.0 and lo1 == 0.0)
                    )
                    if touching and touch_dim < 0:
                        touch_dim = dim
                    else:
                        ok = False
                        break
                if ok and touch_dim >= 0:
                    nb[i].add(j)
                    nb[j].add(i)
        self.neighbors: List[List[int]] = [sorted(s) for s in nb]

    # ------------------------------------------------------------- targets
    def point_to_coords(self, y: float) -> np.ndarray:
        """Spread a 1D point over the torus by interleaving its bits."""
        y = y % 1.0
        bits = 48
        v = int(y * (1 << bits))
        coords = np.zeros(self.d)
        scale = np.ones(self.d)
        for k in range(bits):
            dim = k % self.d
            scale[dim] /= 2
            if (v >> (bits - 1 - k)) & 1:
                coords[dim] += scale[dim]
        return coords

    def _zone_of(self, p: np.ndarray) -> int:
        for b in self.boxes:
            if b.contains(p):
                return b.index
        raise AssertionError("torus point uncovered")  # pragma: no cover

    # ------------------------------------------------------------ interface
    @property
    def n(self) -> int:
        return len(self.boxes)

    def node_ids(self) -> Sequence[int]:
        return range(len(self.boxes))

    def owner(self, target: float) -> int:
        return self._zone_of(self.point_to_coords(target))

    def degree(self, node: int) -> int:
        return len(self.neighbors[node])

    def _face_neighbor(self, box_idx: int, dim: int, direction: int,
                       p: np.ndarray) -> int:
        """The face neighbour of ``box`` crossed when leaving along ``dim``.

        ``direction`` +1 means leaving through ``hi[dim]`` (possibly
        wrapping to 0), −1 through ``lo[dim]``.  The neighbour must
        contain ``p`` in every other dimension — faces tile the boundary,
        so exactly one such neighbour exists.
        """
        cur = self.boxes[box_idx]
        for j in self.neighbors[box_idx]:
            b = self.boxes[j]
            if direction > 0:
                touching = b.lo[dim] == cur.hi[dim] or (
                    cur.hi[dim] == 1.0 and b.lo[dim] == 0.0
                )
            else:
                touching = b.hi[dim] == cur.lo[dim] or (
                    cur.lo[dim] == 0.0 and b.hi[dim] == 1.0
                )
            if not touching:
                continue
            if all(
                b.lo[k] <= p[k] < b.hi[k] for k in range(self.d) if k != dim
            ):
                return j
        raise AssertionError("torus faces must tile")  # pragma: no cover

    def lookup_path(self, source: int, target: float, rng: np.random.Generator
                    ) -> List[int]:
        """Straight-line CAN routing: fix one coordinate at a time.

        For each dimension, walk through face neighbours in the shorter
        torus direction until the current zone spans the target's
        coordinate, then pin that coordinate and proceed to the next
        dimension — the canonical greedy giving ``(d/4)·n^{1/d}`` expected
        hops.
        """
        goal_p = self.point_to_coords(target)
        path = [source]
        current = source
        p = self.boxes[current].center()
        for dim in range(self.d):
            cur = self.boxes[current]
            # shorter torus direction from the zone to the goal coordinate
            fwd = (goal_p[dim] - cur.lo[dim]) % 1.0
            back = (cur.hi[dim] - goal_p[dim]) % 1.0
            direction = 1 if fwd <= back + 1e-12 else -1
            guard = 0
            while not (cur.lo[dim] <= goal_p[dim] < cur.hi[dim]):
                nxt = self._face_neighbor(current, dim, direction, p)
                # entering coordinate along dim
                p[dim] = self.boxes[nxt].lo[dim] if direction > 0 else (
                    self.boxes[nxt].hi[dim] - 1e-12
                )
                current = nxt
                cur = self.boxes[current]
                path.append(current)
                guard += 1
                if guard > 4 * len(self.boxes):  # pragma: no cover
                    raise RuntimeError("CAN lookup failed to converge")
            p[dim] = goal_p[dim]
        return path
