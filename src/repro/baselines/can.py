"""CAN — the Content Addressable Network (Ratnasamy et al., SIGCOMM 2001).

Table 1 row: with dimension ``d``, path length ``d·n^{1/d}``, congestion
``d·n^{1/d-1}``, linkage ``d`` (2d face neighbours).  The d-dimensional
torus ``[0,1)^d`` is partitioned into boxes by successive joins — each
join splits the box containing a random point along its longest side —
and routing greedily forwards toward the target through face neighbours.

Construction descends the binary split tree (each join is one root-leaf
walk instead of a scan over all boxes) and maintains face adjacency
incrementally: a box adjacent to a fresh half either touches a face
plane inherited from the parent box (so it was already a neighbour of
the parent — per-dimension overlaps only shrink under splitting) or
touches the new interior mid plane, which by disjointness only the
sibling can do.  ``brute_force_neighbors`` keeps the quadratic
definition as a validator for the equivalence test.

Only the first coordinate participates in the 1D target interface of
:class:`~repro.baselines.base.BaselineDHT`; full d-dimensional targets
are derived from the 1D point via digit interleaving so the target
distribution stays uniform over the torus.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .base import BaselineBatchResult, BaselineBatchRouter, BaselineDHT, _PathRecorder

__all__ = ["CanBatchRouter", "CanNetwork"]

#: Bits of the 1D key consumed when interleaving it over the torus.
_COORD_BITS = 48


class _Box:
    """An axis-aligned box of the torus (half-open in every dimension)."""

    __slots__ = ("lo", "hi", "index")

    def __init__(self, lo: np.ndarray, hi: np.ndarray, index: int):
        self.lo = lo
        self.hi = hi
        self.index = index

    def contains(self, p: np.ndarray) -> bool:
        return bool(np.all(self.lo <= p) and np.all(p < self.hi))

    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2

    def split(self, new_index: int) -> "_Box":
        """Halve along the longest side; returns the new upper box."""
        dim = int(np.argmax(self.hi - self.lo))
        mid = (self.lo[dim] + self.hi[dim]) / 2
        upper_lo = self.lo.copy()
        upper_lo[dim] = mid
        upper = _Box(upper_lo, self.hi.copy(), new_index)
        new_hi = self.hi.copy()
        new_hi[dim] = mid
        self.hi = new_hi
        return upper


def _face_adjacent(a: _Box, b: _Box, d: int) -> bool:
    """Face adjacency: overlap in d-1 dims, touching (mod 1) in one."""
    touch_dim = -1
    for dim in range(d):
        lo1, hi1 = a.lo[dim], a.hi[dim]
        lo2, hi2 = b.lo[dim], b.hi[dim]
        overlap = min(hi1, hi2) - max(lo1, lo2)
        if overlap > 0:
            continue
        touching = (
            hi1 == lo2 or hi2 == lo1
            or (hi1 == 1.0 and lo2 == 0.0)
            or (hi2 == 1.0 and lo1 == 0.0)
        )
        if touching and touch_dim < 0:
            touch_dim = dim
        else:
            return False
    return touch_dim >= 0


class CanNetwork(BaselineDHT):
    """A static CAN on ``n`` zones in ``d`` dimensions."""

    name = "can"

    def __init__(self, n: int, rng: np.random.Generator, d: int = 2):
        if n < 2:
            raise ValueError("need at least two zones")
        if d < 1:
            raise ValueError("dimension must be >= 1")
        self.d = d
        self.name = f"can(d={d})"
        first = _Box(np.zeros(d), np.ones(d), 0)
        self.boxes: List[_Box] = [first]
        # split tree: internal nodes split on (dim, mid); leaves hold a box
        self._t_dim: List[int] = [-1]
        self._t_mid: List[float] = [0.0]
        self._t_child: List[List[int]] = [[-1, -1]]  # [lower, upper]
        self._t_leaf: List[int] = [0]                # box index, -1 internal
        leaf_of = [0]                                # box index -> tree node
        nb: List[set] = [set()]
        for k in range(1, n):
            p = rng.random(d)
            node = 0
            while self._t_leaf[node] < 0:
                side = int(p[self._t_dim[node]] >= self._t_mid[node])
                node = self._t_child[node][side]
            i = self._t_leaf[node]
            target = self.boxes[i]
            upper = target.split(k)
            self.boxes.append(upper)
            # the leaf becomes an internal node with two fresh leaves;
            # the split dimension is where the halves' bounds now differ
            dim = int(np.flatnonzero(target.hi != upper.hi)[0])
            self._t_dim[node] = dim
            self._t_mid[node] = float(upper.lo[dim])
            self._t_leaf[node] = -1
            lo_node, hi_node = len(self._t_leaf), len(self._t_leaf) + 1
            self._t_child[node] = [lo_node, hi_node]
            for leaf_box in (i, k):
                self._t_dim.append(-1)
                self._t_mid.append(0.0)
                self._t_child.append([-1, -1])
                self._t_leaf.append(leaf_box)
            leaf_of[i] = lo_node
            leaf_of.append(hi_node)
            # incremental face adjacency: candidates are the parent's old
            # neighbours plus the sibling (see module docstring)
            old_nb = nb[i]
            for j in old_nb:
                nb[j].discard(i)
            nb[i] = set()
            nb.append(set())
            for j in old_nb:
                if _face_adjacent(target, self.boxes[j], d):
                    nb[i].add(j)
                    nb[j].add(i)
                if _face_adjacent(upper, self.boxes[j], d):
                    nb[k].add(j)
                    nb[j].add(k)
            if _face_adjacent(target, upper, d):
                nb[i].add(k)
                nb[k].add(i)
        self.neighbors: List[List[int]] = [sorted(s) for s in nb]
        # frozen arrays for tree descent / batch routing
        self._tree_dim = np.asarray(self._t_dim, dtype=np.int64)
        self._tree_mid = np.asarray(self._t_mid, dtype=np.float64)
        self._tree_child = np.asarray(self._t_child, dtype=np.int64)
        self._tree_leaf = np.asarray(self._t_leaf, dtype=np.int64)
        self.box_lo = np.stack([b.lo for b in self.boxes])
        self.box_hi = np.stack([b.hi for b in self.boxes])

    def brute_force_neighbors(self) -> List[List[int]]:
        """The quadratic adjacency definition (validator for tests)."""
        nb: List[set] = [set() for _ in self.boxes]
        for i, a in enumerate(self.boxes):
            for j in range(i + 1, len(self.boxes)):
                if _face_adjacent(a, self.boxes[j], self.d):
                    nb[i].add(j)
                    nb[j].add(i)
        return [sorted(s) for s in nb]

    # ------------------------------------------------------------- targets
    def point_to_coords(self, y: float) -> np.ndarray:
        """Spread a 1D point over the torus by interleaving its bits."""
        return self.coords_of(np.asarray([y], dtype=np.float64))[0]

    def coords_of(self, ys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`point_to_coords` for a whole target array."""
        ys = np.asarray(ys, dtype=np.float64) % 1.0
        v = (ys * float(1 << _COORD_BITS)).astype(np.int64)
        coords = np.zeros((ys.size, self.d))
        scale = np.ones(self.d)
        for k in range(_COORD_BITS):
            dim = k % self.d
            scale[dim] /= 2
            bit = (v >> (_COORD_BITS - 1 - k)) & 1
            coords[:, dim] += scale[dim] * bit
        return coords

    def _zone_of(self, p: np.ndarray) -> int:
        return int(self.zones_of(p[None, :])[0])

    def zones_of(self, ps: np.ndarray) -> np.ndarray:
        """Owning zone of every torus point, via batch tree descent."""
        ps = np.asarray(ps, dtype=np.float64)
        node = np.zeros(ps.shape[0], dtype=np.int64)
        while True:
            at_leaf = self._tree_leaf[node] >= 0
            if at_leaf.all():
                break
            inner = np.flatnonzero(~at_leaf)
            nd = node[inner]
            side = (
                ps[inner, self._tree_dim[nd]] >= self._tree_mid[nd]
            ).astype(np.int64)
            node[inner] = self._tree_child[nd, side]
        return self._tree_leaf[node]

    # ------------------------------------------------------------ interface
    @property
    def n(self) -> int:
        return len(self.boxes)

    def node_ids(self) -> Sequence[int]:
        return range(len(self.boxes))

    def owner(self, target: float) -> int:
        return self._zone_of(self.point_to_coords(target))

    def degree(self, node: int) -> int:
        return len(self.neighbors[node])

    def batch_router(self) -> "CanBatchRouter":
        return CanBatchRouter(self)

    def _face_neighbor(self, box_idx: int, dim: int, direction: int,
                       p: np.ndarray) -> int:
        """The face neighbour of ``box`` crossed when leaving along ``dim``.

        ``direction`` +1 means leaving through ``hi[dim]`` (possibly
        wrapping to 0), −1 through ``lo[dim]``.  The neighbour must
        contain ``p`` in every other dimension — faces tile the boundary,
        so exactly one such neighbour exists.
        """
        cur = self.boxes[box_idx]
        for j in self.neighbors[box_idx]:
            b = self.boxes[j]
            if direction > 0:
                touching = b.lo[dim] == cur.hi[dim] or (
                    cur.hi[dim] == 1.0 and b.lo[dim] == 0.0
                )
            else:
                touching = b.hi[dim] == cur.lo[dim] or (
                    cur.lo[dim] == 0.0 and b.hi[dim] == 1.0
                )
            if not touching:
                continue
            if all(
                b.lo[k] <= p[k] < b.hi[k] for k in range(self.d) if k != dim
            ):
                return j
        raise AssertionError("torus faces must tile")  # pragma: no cover

    def lookup_path(self, source: int, target: float, rng: np.random.Generator
                    ) -> List[int]:
        """Straight-line CAN routing: fix one coordinate at a time.

        For each dimension, walk through face neighbours in the shorter
        torus direction until the current zone spans the target's
        coordinate, then pin that coordinate and proceed to the next
        dimension — the canonical greedy giving ``(d/4)·n^{1/d}`` expected
        hops.
        """
        goal_p = self.point_to_coords(target)
        path = [source]
        current = source
        p = self.boxes[current].center()
        for dim in range(self.d):
            cur = self.boxes[current]
            # shorter torus direction from the zone to the goal coordinate
            fwd = (goal_p[dim] - cur.lo[dim]) % 1.0
            back = (cur.hi[dim] - goal_p[dim]) % 1.0
            direction = 1 if fwd <= back + 1e-12 else -1
            guard = 0
            while not (cur.lo[dim] <= goal_p[dim] < cur.hi[dim]):
                nxt = self._face_neighbor(current, dim, direction, p)
                # entering coordinate along dim
                p[dim] = self.boxes[nxt].lo[dim] if direction > 0 else (
                    self.boxes[nxt].hi[dim] - 1e-12
                )
                current = nxt
                cur = self.boxes[current]
                path.append(current)
                guard += 1
                if guard > 4 * len(self.boxes):  # pragma: no cover
                    raise RuntimeError("CAN lookup failed to converge")
            p[dim] = goal_p[dim]
        return path


class CanBatchRouter(BaselineBatchRouter):
    """Whole-batch straight-line routing over padded neighbour matrices.

    Compilation freezes zone bounds as ``(n, d)`` arrays and the sorted
    face-neighbour lists as an ``(n, K)`` index matrix (pad ``-1``).
    Every outer iteration first *settles* each pending lookup — pinning
    coordinates and advancing its dimension counter while the current
    zone spans the goal, exactly the scalar per-dimension loop entry —
    then hops every still-pending lookup through one face neighbour.
    The neighbour scan keeps the sorted order, so ``np.argmax`` over the
    first valid slot reproduces the scalar first-match choice and paths
    replay bit-for-bit, including the entering-coordinate updates
    (``lo`` or ``hi − 1e-12``) that later dimensions' containment tests
    depend on.
    """

    def __init__(self, net: CanNetwork):
        self.scheme = net.name
        self.node_keys = np.arange(net.n, dtype=np.float64)
        self._net = net
        self._d = net.d
        self._lo = net.box_lo
        self._hi = net.box_hi
        width = max(1, max(len(r) for r in net.neighbors))
        self._nbr = np.full((net.n, width), -1, dtype=np.int64)
        for i, row in enumerate(net.neighbors):
            self._nbr[i, : len(row)] = row

    def route_batch(
        self,
        source_idx: np.ndarray,
        targets: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> BaselineBatchResult:
        net = self._net
        d = self._d
        lo, hi = self._lo, self._hi
        n = self.node_keys.size
        src = np.asarray(source_idx, dtype=np.int64)
        tgt = np.asarray(targets, dtype=np.float64) % 1.0
        size = src.size
        goal = net.coords_of(tgt)
        own = net.zones_of(goal)
        rec = _PathRecorder(size, src)

        cur = src.copy()
        p = (lo[cur] + hi[cur]) / 2            # box centers
        dim_i = np.zeros(size, dtype=np.int64)
        direction = np.zeros(size, dtype=np.int64)
        fresh_dim = np.ones(size, dtype=bool)  # direction not yet chosen
        live = np.arange(size)

        def settle(live: np.ndarray) -> np.ndarray:
            """Pin spanned coordinates / advance dims; drop finished lanes."""
            while live.size:
                dims = np.minimum(dim_i[live], d - 1)
                g = goal[live, dims]
                spanned = (dim_i[live] < d) & (lo[cur[live], dims] <= g) & (
                    g < hi[cur[live], dims]
                )
                if not spanned.any():
                    break
                idx = live[spanned]
                p[idx, dim_i[idx]] = goal[idx, dim_i[idx]]
                dim_i[idx] += 1
                fresh_dim[idx] = True
                live = live[dim_i[live] < d]
            return live[dim_i[live] < d]

        live = settle(live)
        guard = np.zeros(size, dtype=np.int64)
        for _ in range(4 * n * d + d + 1):
            if live.size == 0:
                break
            dims = dim_i[live]
            # choose torus direction on first visit of each dimension
            nf = np.flatnonzero(fresh_dim[live])
            if nf.size:
                idx = live[nf]
                dm = dim_i[idx]
                fwd = (goal[idx, dm] - lo[cur[idx], dm]) % 1.0
                back = (hi[cur[idx], dm] - goal[idx, dm]) % 1.0
                direction[idx] = np.where(fwd <= back + 1e-12, 1, -1)
                fresh_dim[idx] = False
                guard[idx] = 0
            c = cur[live]
            dirs = direction[live]
            rows = self._nbr[c]                              # (k, K)
            safe = np.maximum(rows, 0)
            cur_hi = hi[c, dims]
            cur_lo = lo[c, dims]
            ar = np.arange(live.size)
            nb_lo = lo[safe, dims[:, None]]
            nb_hi = hi[safe, dims[:, None]]
            pos = (nb_lo == cur_hi[:, None]) | (
                (cur_hi[:, None] == 1.0) & (nb_lo == 0.0)
            )
            neg = (nb_hi == cur_lo[:, None]) | (
                (cur_lo[:, None] == 0.0) & (nb_hi == 1.0)
            )
            touching = np.where((dirs > 0)[:, None], pos, neg)
            inside = (lo[safe] <= p[live, None, :]) & (
                p[live, None, :] < hi[safe]
            )
            np.put_along_axis(
                inside, dims[:, None, None], True, axis=2
            )
            valid = touching & inside.all(axis=2) & (rows >= 0)
            bi = np.argmax(valid, axis=1)
            # faces tile the boundary: a valid slot always exists
            nxt = rows[ar, bi]
            enter = np.where(
                dirs > 0, lo[nxt, dims], hi[nxt, dims] - 1e-12
            )
            p[live, dims] = enter
            cur[live] = nxt
            rec.append(live, nxt)
            guard[live] += 1
            if (guard[live] > 4 * n).any():  # pragma: no cover
                raise RuntimeError("CAN batch lookup failed to converge")
            live = settle(live)

        servers, offsets = rec.to_csr()
        return BaselineBatchResult(
            scheme=self.scheme, points=self.node_keys, source_idx=src,
            owner_idx=own, path_servers=servers, path_offsets=offsets,
        )
