"""Koorde (Kaashoek & Karger, IPTPS 2003) — the direct De Bruijn DHT.

The paper (§1.1) contrasts its continuous-discrete De Bruijn emulation
with the "direct" emulations of Fraigniaud–Gauron, Kaashoek–Karger and
Abraham et al.  Koorde is the cleanest of those: each node keeps its ring
successor and one De Bruijn pointer ``d = predecessor(2m)``, and routing
shifts the target's bits into an *imaginary* De Bruijn node, hopping to
``d`` when the imaginary node doubles and to the successor to re-align —
``O(log n)`` hops with constant linkage.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence

import numpy as np

from .base import BaselineBatchResult, BaselineBatchRouter, BaselineDHT, _PathRecorder

__all__ = ["KoordeBatchRouter", "KoordeNetwork"]


class KoordeNetwork(BaselineDHT):
    """A static Koorde overlay on the continuous ring."""

    name = "koorde"

    def __init__(self, n: int, rng: np.random.Generator):
        if n < 2:
            raise ValueError("need at least two nodes")
        self._pts: np.ndarray = np.sort(rng.random(n))
        self.points: List[float] = self._pts.tolist()
        self.bits = max(1, math.ceil(math.log2(n))) + 2
        # De Bruijn pointer of every node at once: predecessor(2x mod 1)
        self._db_idx: np.ndarray = (
            np.searchsorted(self._pts, (2 * self._pts) % 1.0, side="right") - 1
        ) % n
        self.debruijn: Dict[float, float] = dict(
            zip(self.points, self._pts[self._db_idx].tolist())
        )

    # ------------------------------------------------------------- geometry
    def _successor(self, y: float) -> float:
        i = bisect_left(self.points, y % 1.0)
        return self.points[i % len(self.points)]

    def _predecessor(self, y: float) -> float:
        i = bisect_right(self.points, y % 1.0) - 1
        return self.points[i % len(self.points)]

    @staticmethod
    def _in_interval(y: float, a: float, b: float) -> bool:
        """y ∈ (a, b] clockwise on the ring."""
        return 0 < (y - a) % 1.0 <= (b - a) % 1.0

    # ------------------------------------------------------------ interface
    @property
    def n(self) -> int:
        return len(self.points)

    def node_ids(self) -> Sequence[float]:
        return self.points

    def owner(self, target: float) -> float:
        return self._successor(target % 1.0)

    def degree(self, node: float) -> int:
        succ = self._successor((node + 1e-15) % 1.0)
        pred = self._predecessor((node - 1e-15) % 1.0)
        return len({succ, pred, self.debruijn[node]} - {node})

    def batch_router(self) -> "KoordeBatchRouter":
        return KoordeBatchRouter(self)

    def lookup_path(self, source: float, target: float, rng: np.random.Generator
                    ) -> List[float]:
        """Koorde's imaginary-node routing.

        The imaginary position ``i`` starts at the source and absorbs one
        target bit per De Bruijn hop: ``i ← 2i + b (mod 1)``.  The real
        message sits at the node preceding ``i``; successor hops realign
        when the imaginary point drifts outside the current segment.
        """
        target = target % 1.0
        path = [source]
        current = source
        # target bits, most significant first
        kshift = int(target * (1 << self.bits))
        bits_left = self.bits
        # the imaginary node starts just ahead of the source so the first
        # De Bruijn hop can fire (i ∈ (m, successor] in Koorde's pseudocode).
        # Truncate it to B bits: after B left-shifts its own bits must have
        # flushed out completely, leaving exactly the target's bits.
        imaginary = self._successor((source + 1e-15) % 1.0)
        imaginary = math.ceil(imaginary * (1 << self.bits)) / (1 << self.bits) % 1.0
        guard = 0
        while guard < 8 * self.bits + 2 * self.n:
            guard += 1
            succ = self._successor((current + 1e-15) % 1.0)
            if self._in_interval(target, current, succ):
                if succ != current:
                    path.append(succ)
                return path
            if bits_left > 0 and self._in_interval(imaginary, current, succ):
                # shift one target bit into the imaginary node (low end of
                # its B-bit window) and follow the De Bruijn pointer
                b = (kshift >> (bits_left - 1)) & 1
                bits_left -= 1
                imaginary = (2 * imaginary + b / (1 << self.bits)) % 1.0
                nxt = self.debruijn[current]
            else:
                nxt = succ
            if nxt != current:
                path.append(nxt)
            current = nxt
        raise RuntimeError("koorde lookup failed to converge")  # pragma: no cover


class KoordeBatchRouter(BaselineBatchRouter):
    """Whole-batch imaginary-node routing over the compiled arrays.

    Per-lane state is ``(current index, remaining target bits, shift
    register, imaginary point)``; each iteration evaluates the scalar
    loop body for every pending lookup at once — successor probe via
    one ``searchsorted``, interval tests elementwise, the De Bruijn
    gather where the imaginary point falls in the current segment.  All
    float updates (``2i + b/2^B mod 1``) repeat the scalar operation
    order, so the replay is bit-exact.
    """

    def __init__(self, net: KoordeNetwork):
        self.scheme = net.name
        self.node_keys = net._pts
        self._db_idx = net._db_idx
        self._bits = net.bits

    def route_batch(
        self,
        source_idx: np.ndarray,
        targets: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> BaselineBatchResult:
        pts = self.node_keys
        n = pts.size
        bits = self._bits
        scale = float(1 << bits)
        src = np.asarray(source_idx, dtype=np.int64)
        tgt = np.asarray(targets, dtype=np.float64) % 1.0
        size = src.size
        own = np.searchsorted(pts, tgt) % n
        rec = _PathRecorder(size, src)
        live = np.arange(size)
        cur = src.copy()
        t = tgt.copy()
        kshift = (t * scale).astype(np.int64)
        bits_left = np.full(size, bits, dtype=np.int64)
        imag = pts[np.searchsorted(pts, (pts[src] + 1e-15) % 1.0) % n]
        imag = np.ceil(imag * scale) / scale % 1.0
        for _ in range(8 * bits + 2 * n):
            if live.size == 0:
                break
            cpt = pts[cur]
            succ = np.searchsorted(pts, (cpt + 1e-15) % 1.0) % n
            spt = pts[succ]
            cw_s = (spt - cpt) % 1.0
            cw_t = (t - cpt) % 1.0
            done = (0 < cw_t) & (cw_t <= cw_s)
            cw_i = (imag - cpt) % 1.0
            use_db = ~done & (bits_left > 0) & (0 < cw_i) & (cw_i <= cw_s)
            shift = np.maximum(bits_left - 1, 0)
            b = np.where(use_db, (kshift >> shift) & 1, 0)
            imag = np.where(use_db, (2 * imag + b / scale) % 1.0, imag)
            bits_left = bits_left - use_db
            nxt = np.where(use_db, self._db_idx[cur], succ)
            # the scalar loop appends only on an actual move
            moved = pts[nxt] != cpt
            row = np.where(moved, nxt, -1)
            rec.append(live, row)
            cur = nxt
            keep = ~done
            live, cur, t = live[keep], cur[keep], t[keep]
            kshift, bits_left, imag = kshift[keep], bits_left[keep], imag[keep]
        if live.size:  # pragma: no cover - scalar bound, never hit
            raise RuntimeError("koorde batch lookup failed to converge")
        servers, offsets = rec.to_csr()
        return BaselineBatchResult(
            scheme=self.scheme, points=pts, source_idx=src, owner_idx=own,
            path_servers=servers, path_offsets=offsets,
        )

