"""Koorde (Kaashoek & Karger, IPTPS 2003) — the direct De Bruijn DHT.

The paper (§1.1) contrasts its continuous-discrete De Bruijn emulation
with the "direct" emulations of Fraigniaud–Gauron, Kaashoek–Karger and
Abraham et al.  Koorde is the cleanest of those: each node keeps its ring
successor and one De Bruijn pointer ``d = predecessor(2m)``, and routing
shifts the target's bits into an *imaginary* De Bruijn node, hopping to
``d`` when the imaginary node doubles and to the successor to re-align —
``O(log n)`` hops with constant linkage.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, List, Sequence

import numpy as np

from .base import BaselineDHT

__all__ = ["KoordeNetwork"]


class KoordeNetwork(BaselineDHT):
    """A static Koorde overlay on the continuous ring."""

    name = "koorde"

    def __init__(self, n: int, rng: np.random.Generator):
        if n < 2:
            raise ValueError("need at least two nodes")
        self.points: List[float] = sorted(float(p) for p in rng.random(n))
        self.bits = max(1, math.ceil(math.log2(n))) + 2
        self.debruijn: Dict[float, float] = {
            x: self._predecessor((2 * x) % 1.0) for x in self.points
        }

    # ------------------------------------------------------------- geometry
    def _successor(self, y: float) -> float:
        i = bisect_left(self.points, y % 1.0)
        return self.points[i % len(self.points)]

    def _predecessor(self, y: float) -> float:
        i = bisect_right(self.points, y % 1.0) - 1
        return self.points[i % len(self.points)]

    @staticmethod
    def _in_interval(y: float, a: float, b: float) -> bool:
        """y ∈ (a, b] clockwise on the ring."""
        return 0 < (y - a) % 1.0 <= (b - a) % 1.0

    # ------------------------------------------------------------ interface
    @property
    def n(self) -> int:
        return len(self.points)

    def node_ids(self) -> Sequence[float]:
        return self.points

    def owner(self, target: float) -> float:
        return self._successor(target % 1.0)

    def degree(self, node: float) -> int:
        succ = self._successor((node + 1e-15) % 1.0)
        pred = self._predecessor((node - 1e-15) % 1.0)
        return len({succ, pred, self.debruijn[node]} - {node})

    def lookup_path(self, source: float, target: float, rng: np.random.Generator
                    ) -> List[float]:
        """Koorde's imaginary-node routing.

        The imaginary position ``i`` starts at the source and absorbs one
        target bit per De Bruijn hop: ``i ← 2i + b (mod 1)``.  The real
        message sits at the node preceding ``i``; successor hops realign
        when the imaginary point drifts outside the current segment.
        """
        target = target % 1.0
        path = [source]
        current = source
        # target bits, most significant first
        kshift = int(target * (1 << self.bits))
        bits_left = self.bits
        # the imaginary node starts just ahead of the source so the first
        # De Bruijn hop can fire (i ∈ (m, successor] in Koorde's pseudocode).
        # Truncate it to B bits: after B left-shifts its own bits must have
        # flushed out completely, leaving exactly the target's bits.
        imaginary = self._successor((source + 1e-15) % 1.0)
        imaginary = math.ceil(imaginary * (1 << self.bits)) / (1 << self.bits) % 1.0
        guard = 0
        while guard < 8 * self.bits + 2 * self.n:
            guard += 1
            succ = self._successor((current + 1e-15) % 1.0)
            if self._in_interval(target, current, succ):
                if succ != current:
                    path.append(succ)
                return path
            if bits_left > 0 and self._in_interval(imaginary, current, succ):
                # shift one target bit into the imaginary node (low end of
                # its B-bit window) and follow the De Bruijn pointer
                b = (kshift >> (bits_left - 1)) & 1
                bits_left -= 1
                imaginary = (2 * imaginary + b / (1 << self.bits)) % 1.0
                nxt = self.debruijn[current]
            else:
                nxt = succ
            if nxt != current:
                path.append(nxt)
            current = nxt
        raise RuntimeError("koorde lookup failed to converge")  # pragma: no cover
