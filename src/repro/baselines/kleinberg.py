"""Kleinberg's small-world ring (STOC 2000) — Table 1's "Small Worlds" row.

One-dimensional navigable small world: ``n`` nodes on a ring lattice with
local edges to both neighbours and one long-range contact drawn from the
inverse-distance (harmonic) distribution — the unique exponent at which
greedy routing achieves polylogarithmic ``O(log² n)`` delivery time, with
constant linkage.

Construction draws all ``n·long_links`` harmonic distances in one
``rng.choice`` call and all signs in one ``rng.random`` call (per-node
scalar draws would dominate build time at n = 2^16).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .base import BaselineBatchResult, BaselineBatchRouter, BaselineDHT, _PathRecorder

__all__ = ["KleinbergBatchRouter", "KleinbergRing"]


class KleinbergRing(BaselineDHT):
    """Greedy-routable 1D small world with one harmonic long link per node."""

    name = "small-world"

    def __init__(self, n: int, rng: np.random.Generator, long_links: int = 1):
        if n < 3:
            raise ValueError("need at least three nodes")
        self.size = n
        # harmonic distribution over ring distance 1..n/2
        dists = np.arange(1, n // 2 + 1, dtype=float)
        probs = 1.0 / dists
        probs /= probs.sum()
        d = rng.choice(dists, size=(n, long_links), p=probs).astype(np.int64)
        sign = np.where(rng.random((n, long_links)) < 0.5, 1, -1)
        self._long: np.ndarray = (
            np.arange(n, dtype=np.int64)[:, None] + sign * d
        ) % n
        self.long: Dict[int, List[int]] = {
            u: row for u, row in enumerate(self._long.tolist())
        }

    # ------------------------------------------------------------- geometry
    def _ring_dist(self, a: int, b: int) -> int:
        d = abs(a - b)
        return min(d, self.size - d)

    def _node_of_point(self, y: float) -> int:
        return int((y % 1.0) * self.size) % self.size

    # ------------------------------------------------------------ interface
    @property
    def n(self) -> int:
        return self.size

    def node_ids(self) -> Sequence[int]:
        return range(self.size)

    def owner(self, target: float) -> int:
        return self._node_of_point(target)

    def degree(self, node: int) -> int:
        return len({(node - 1) % self.size, (node + 1) % self.size, *self.long[node]})

    def batch_router(self) -> "KleinbergBatchRouter":
        return KleinbergBatchRouter(self)

    def lookup_path(self, source: int, target: float, rng: np.random.Generator
                    ) -> List[int]:
        goal = self._node_of_point(target)
        path = [source]
        current = source
        while current != goal:
            neighbors = [(current - 1) % self.size, (current + 1) % self.size]
            neighbors += self.long[current]
            nxt = min(neighbors, key=lambda v: self._ring_dist(v, goal))
            # greedy always makes progress via the lattice edges
            if self._ring_dist(nxt, goal) >= self._ring_dist(current, goal):
                nxt = (current + 1) % self.size if (
                    self._ring_dist((current + 1) % self.size, goal)
                    < self._ring_dist((current - 1) % self.size, goal)
                ) else (current - 1) % self.size
            path.append(nxt)
            current = nxt
        return path


class KleinbergBatchRouter(BaselineBatchRouter):
    """Whole-batch greedy small-world routing over a candidate matrix.

    Compilation freezes every node's neighbour list — lattice pred,
    lattice succ, then the long links, in exactly the scalar list order —
    as an ``(n, 2 + L)`` index matrix.  Each iteration gathers the
    candidate rows of all pending lookups, takes ``np.argmin`` over ring
    distances (first-occurrence rule == Python ``min`` first-tie), and
    applies the lattice fallback wherever greedy made no progress, so
    hop sequences replay the scalar walk exactly.
    """

    def __init__(self, net: KleinbergRing):
        self.scheme = net.name
        n = net.size
        self.node_keys = np.arange(n, dtype=np.float64)
        ids = np.arange(n, dtype=np.int64)
        self._cand = np.concatenate(
            [((ids - 1) % n)[:, None], ((ids + 1) % n)[:, None], net._long],
            axis=1,
        )

    def route_batch(
        self,
        source_idx: np.ndarray,
        targets: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> BaselineBatchResult:
        n = self.node_keys.size
        src = np.asarray(source_idx, dtype=np.int64)
        tgt = np.asarray(targets, dtype=np.float64) % 1.0
        size = src.size
        own = ((tgt * n).astype(np.int64)) % n
        rec = _PathRecorder(size, src)

        def ring_dist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            d = np.abs(a - b)
            return np.minimum(d, n - d)

        live = np.flatnonzero(src != own)
        cur = src[live]
        goal = own[live]
        for _ in range(n + 1):
            if live.size == 0:
                break
            rows = self._cand[cur]                       # (k, 2 + L)
            dmat = ring_dist(rows, goal[:, None])
            bi = np.argmin(dmat, axis=1)
            ar = np.arange(live.size)
            nxt = rows[ar, bi]
            d_cur = ring_dist(cur, goal)
            stuck = dmat[ar, bi] >= d_cur
            if stuck.any():
                fwd, bwd = rows[stuck, 1], rows[stuck, 0]
                nxt[stuck] = np.where(
                    ring_dist(fwd, goal[stuck]) < ring_dist(bwd, goal[stuck]),
                    fwd, bwd,
                )
            rec.append(live, nxt)
            cur = nxt
            keep = cur != goal
            live, cur, goal = live[keep], cur[keep], goal[keep]
        if live.size:  # pragma: no cover - lattice fallback guarantees progress
            raise RuntimeError("small-world batch lookup failed to converge")

        servers, offsets = rec.to_csr()
        return BaselineBatchResult(
            scheme=self.scheme, points=self.node_keys, source_idx=src,
            owner_idx=own, path_servers=servers, path_offsets=offsets,
        )
