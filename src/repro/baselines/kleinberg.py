"""Kleinberg's small-world ring (STOC 2000) — Table 1's "Small Worlds" row.

One-dimensional navigable small world: ``n`` nodes on a ring lattice with
local edges to both neighbours and one long-range contact drawn from the
inverse-distance (harmonic) distribution — the unique exponent at which
greedy routing achieves polylogarithmic ``O(log² n)`` delivery time, with
constant linkage.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .base import BaselineDHT

__all__ = ["KleinbergRing"]


class KleinbergRing(BaselineDHT):
    """Greedy-routable 1D small world with one harmonic long link per node."""

    name = "small-world"

    def __init__(self, n: int, rng: np.random.Generator, long_links: int = 1):
        if n < 3:
            raise ValueError("need at least three nodes")
        self.size = n
        self.long: Dict[int, List[int]] = {}
        # harmonic distribution over ring distance 1..n/2
        dists = np.arange(1, n // 2 + 1, dtype=float)
        probs = 1.0 / dists
        probs /= probs.sum()
        for u in range(n):
            links = []
            for _ in range(long_links):
                d = int(rng.choice(dists, p=probs))
                sign = 1 if rng.random() < 0.5 else -1
                links.append((u + sign * d) % n)
            self.long[u] = links

    # ------------------------------------------------------------- geometry
    def _ring_dist(self, a: int, b: int) -> int:
        d = abs(a - b)
        return min(d, self.size - d)

    def _node_of_point(self, y: float) -> int:
        return int((y % 1.0) * self.size) % self.size

    # ------------------------------------------------------------ interface
    @property
    def n(self) -> int:
        return self.size

    def node_ids(self) -> Sequence[int]:
        return range(self.size)

    def owner(self, target: float) -> int:
        return self._node_of_point(target)

    def degree(self, node: int) -> int:
        return len({(node - 1) % self.size, (node + 1) % self.size, *self.long[node]})

    def lookup_path(self, source: int, target: float, rng: np.random.Generator
                    ) -> List[int]:
        goal = self._node_of_point(target)
        path = [source]
        current = source
        while current != goal:
            neighbors = [(current - 1) % self.size, (current + 1) % self.size]
            neighbors += self.long[current]
            nxt = min(neighbors, key=lambda v: self._ring_dist(v, goal))
            # greedy always makes progress via the lattice edges
            if self._ring_dist(nxt, goal) >= self._ring_dist(current, goal):
                nxt = (current + 1) % self.size if (
                    self._ring_dist((current + 1) % self.size, goal)
                    < self._ring_dist((current - 1) % self.size, goal)
                ) else (current - 1) % self.size
            path.append(nxt)
            current = nxt
        return path
