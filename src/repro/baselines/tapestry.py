"""Tapestry / Pastry-style prefix (Plaxton) routing — Table 1's second row.

Nodes carry base-``b`` digit ids (derived from their ring points); each
node keeps, for every prefix length ``ℓ`` and digit ``v``, a link to some
node agreeing with it on the first ``ℓ`` digits and having ``v`` next
(the Plaxton mesh).  Routing fixes one digit per hop — ``log_b n`` hops
with ``b·log_b n`` linkage.  Missing table entries fall back to surrogate
routing (deterministically take the next existing digit), which makes the
root of every target well defined exactly as in Plaxton/Tapestry.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import BaselineDHT

__all__ = ["TapestryNetwork"]


class TapestryNetwork(BaselineDHT):
    """A static Plaxton mesh over ``n`` random node ids."""

    name = "tapestry"

    def __init__(self, n: int, rng: np.random.Generator, base: int = 4):
        if n < 2:
            raise ValueError("need at least two nodes")
        if base < 2:
            raise ValueError("digit base must be >= 2")
        self.base = base
        self.levels = max(1, math.ceil(math.log(n, base))) + 2
        self.points: List[float] = sorted(float(p) for p in rng.random(n))
        self.ids: List[Tuple[int, ...]] = [self._digits(p) for p in self.points]
        self._by_id: Dict[Tuple[int, ...], int] = {d: i for i, d in enumerate(self.ids)}
        self._build_tables(rng)

    def _digits(self, y: float) -> Tuple[int, ...]:
        v = int((y % 1.0) * self.base**self.levels)
        out = []
        for k in range(self.levels - 1, -1, -1):
            out.append((v // self.base**k) % self.base)
        return tuple(out)

    def _build_tables(self, rng: np.random.Generator) -> None:
        """table[node][ℓ][v] = a node matching ids[node][:ℓ] + (v,), or None."""
        # bucket nodes by prefix for O(n · levels) construction
        by_prefix: Dict[Tuple[int, ...], List[int]] = {}
        for i, ident in enumerate(self.ids):
            for ell in range(self.levels + 1):
                by_prefix.setdefault(ident[:ell], []).append(i)
        self.table: List[List[List[Optional[int]]]] = []
        for i, ident in enumerate(self.ids):
            rows: List[List[Optional[int]]] = []
            for ell in range(self.levels):
                row: List[Optional[int]] = []
                for v in range(self.base):
                    cands = by_prefix.get(ident[:ell] + (v,), [])
                    if not cands:
                        row.append(None)
                    else:
                        # Random choice among the bucket (real Tapestry picks
                        # by network proximity) spreads relay load evenly.
                        # The digit fixed per hop depends only on the global
                        # bucket *availability*, and the deepest buckets are
                        # singletons, so every target's Plaxton root remains
                        # unique regardless of these choices.
                        row.append(cands[int(rng.integers(len(cands)))])
                rows.append(row)
            self.table.append(rows)
        # nodes sharing a *full* id (possible at finite digit length) keep a
        # sibling link to a canonical member, so every root is unique
        self._canonical: Dict[Tuple[int, ...], int] = {}
        for i, ident in enumerate(self.ids):
            self._canonical.setdefault(ident, i)

    # ------------------------------------------------------------- routing
    def _route(self, source: int, digits: Tuple[int, ...]) -> List[int]:
        """Stateful Plaxton descent: fix one digit per level.

        At level ``ℓ`` the desired digit is ``digits[ℓ]``; if no node
        carries the resolved prefix plus that digit, surrogate routing
        substitutes the cyclically-next *available* digit and continues —
        availability is a global property of the prefix, so every source
        resolves the same digit string and reaches the same root.
        """
        path = [source]
        current = source
        for ell in range(self.levels):
            desired = digits[ell]
            hop = None
            for off in range(self.base):
                cand = self.table[current][ell][(desired + off) % self.base]
                if cand is not None:
                    hop = cand
                    break
            if hop is None:  # pragma: no cover - own bucket is never empty
                return path
            if hop != current:
                path.append(hop)
                current = hop
        # normalise within the (rare) full-id-collision bucket
        root = self._canonical[self.ids[current]]
        if root != current:
            path.append(root)
        return path

    # ------------------------------------------------------------ interface
    @property
    def n(self) -> int:
        return len(self.points)

    def node_ids(self) -> Sequence[int]:
        return range(len(self.points))

    def owner(self, target: float) -> int:
        """The Plaxton root: where surrogate routing terminates."""
        return self._route(0, self._digits(target % 1.0))[-1]

    def degree(self, node: int) -> int:
        links = {
            hop
            for rows in self.table[node]
            for hop in rows
            if hop is not None and hop != node
        }
        return len(links)

    def lookup_path(self, source: int, target: float, rng: np.random.Generator
                    ) -> List[int]:
        return self._route(source, self._digits(target % 1.0))
