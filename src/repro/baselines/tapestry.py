"""Tapestry / Pastry-style prefix (Plaxton) routing — Table 1's second row.

Nodes carry base-``b`` digit ids (derived from their ring points); each
node keeps, for every prefix length ``ℓ`` and digit ``v``, a link to some
node agreeing with it on the first ``ℓ`` digits and having ``v`` next
(the Plaxton mesh).  Routing fixes one digit per hop — ``log_b n`` hops
with ``b·log_b n`` linkage.  Missing table entries fall back to surrogate
routing (deterministically take the next existing digit), which makes the
root of every target well defined exactly as in Plaxton/Tapestry.

Because node points are sorted, the nodes sharing any prefix form a
contiguous run of the sorted prefix-code array, so the whole Plaxton
mesh is compiled level-by-level with two ``np.searchsorted`` calls per
level (bucket bounds) plus one uniform draw per table slot (random
bucket member) — no per-node Python loops.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import BaselineBatchResult, BaselineBatchRouter, BaselineDHT, _PathRecorder

__all__ = ["TapestryBatchRouter", "TapestryNetwork"]


class TapestryNetwork(BaselineDHT):
    """A static Plaxton mesh over ``n`` random node ids."""

    name = "tapestry"

    def __init__(self, n: int, rng: np.random.Generator, base: int = 4):
        if n < 2:
            raise ValueError("need at least two nodes")
        if base < 2:
            raise ValueError("digit base must be >= 2")
        self.base = base
        self.levels = max(1, math.ceil(math.log(n, base))) + 2
        self._pts: np.ndarray = np.sort(rng.random(n))
        self.points: List[float] = self._pts.tolist()
        # full-length digit codes, sorted because the points are
        self._codes: np.ndarray = (
            self._pts * float(base**self.levels)
        ).astype(np.int64)
        self.ids: List[Tuple[int, ...]] = [self._digits(p) for p in self.points]
        self._build_tables(rng)

    def _digits(self, y: float) -> Tuple[int, ...]:
        v = int((y % 1.0) * self.base**self.levels)
        out = []
        for k in range(self.levels - 1, -1, -1):
            out.append((v // self.base**k) % self.base)
        return tuple(out)

    def _build_tables(self, rng: np.random.Generator) -> None:
        """table[node][ℓ][v] = a node matching ids[node][:ℓ] + (v,), or None.

        Level ``ℓ``'s buckets are the runs of equal length-``ℓ+1`` prefix
        codes; two searchsorteds give every slot's bucket bounds at once.
        Random choice among the bucket (real Tapestry picks by network
        proximity) spreads relay load evenly.  The digit fixed per hop
        depends only on the global bucket *availability*, and the deepest
        buckets are singletons, so every target's Plaxton root remains
        unique regardless of these choices.
        """
        n = self._codes.size
        base, levels = self.base, self.levels
        self._table_idx = np.full((n, levels, base), -1, dtype=np.int64)
        offs = np.arange(base, dtype=np.int64)
        for ell in range(levels):
            child = self._codes // base ** (levels - ell - 1)
            want = (self._codes // base ** (levels - ell))[:, None] * base + offs
            lo = np.searchsorted(child, want, side="left")
            hi = np.searchsorted(child, want, side="right")
            cnt = hi - lo
            pick = lo + (rng.random((n, base)) * cnt).astype(np.int64)
            self._table_idx[:, ell, :] = np.where(cnt > 0, pick, -1)
        self.table: List[List[List[Optional[int]]]] = [
            [[None if e < 0 else e for e in row] for row in rows]
            for rows in self._table_idx.tolist()
        ]
        # nodes sharing a *full* id (possible at finite digit length) keep a
        # sibling link to a canonical member, so every root is unique
        self._canon_idx: np.ndarray = np.searchsorted(
            self._codes, self._codes, side="left"
        )
        self._canonical = {
            ident: int(self._canon_idx[i]) for i, ident in enumerate(self.ids)
        }

    # ------------------------------------------------------------- routing
    def _route(self, source: int, digits: Tuple[int, ...]) -> List[int]:
        """Stateful Plaxton descent: fix one digit per level.

        At level ``ℓ`` the desired digit is ``digits[ℓ]``; if no node
        carries the resolved prefix plus that digit, surrogate routing
        substitutes the cyclically-next *available* digit and continues —
        availability is a global property of the prefix, so every source
        resolves the same digit string and reaches the same root.
        """
        path = [source]
        current = source
        for ell in range(self.levels):
            desired = digits[ell]
            hop = None
            for off in range(self.base):
                cand = self.table[current][ell][(desired + off) % self.base]
                if cand is not None:
                    hop = cand
                    break
            if hop is None:  # pragma: no cover - own bucket is never empty
                return path
            if hop != current:
                path.append(hop)
                current = hop
        # normalise within the (rare) full-id-collision bucket
        root = self._canonical[self.ids[current]]
        if root != current:
            path.append(root)
        return path

    # ------------------------------------------------------------ interface
    @property
    def n(self) -> int:
        return len(self.points)

    def node_ids(self) -> Sequence[int]:
        return range(len(self.points))

    def owner(self, target: float) -> int:
        """The Plaxton root: where surrogate routing terminates."""
        return self._route(0, self._digits(target % 1.0))[-1]

    def degree(self, node: int) -> int:
        links = {
            hop
            for rows in self.table[node]
            for hop in rows
            if hop is not None and hop != node
        }
        return len(links)

    def batch_router(self) -> "TapestryBatchRouter":
        return TapestryBatchRouter(self)

    def lookup_path(self, source: int, target: float, rng: np.random.Generator
                    ) -> List[int]:
        return self._route(source, self._digits(target % 1.0))


class TapestryBatchRouter(BaselineBatchRouter):
    """Whole-batch Plaxton descent over the compiled ``(n, L, b)`` mesh.

    All lookups march down the levels in lockstep — level ``ℓ`` is one
    gather of each lane's table row, a cyclic column reorder starting at
    the desired digit, and an ``argmax`` for the first filled slot (the
    scalar surrogate scan order) — so after ``levels`` iterations plus
    the canonical normalization every path replays the scalar
    ``_route`` exactly.
    """

    def __init__(self, net: TapestryNetwork):
        self.scheme = net.name
        self.node_keys = np.arange(net.n, dtype=np.float64)
        self._table = net._table_idx
        self._canon = net._canon_idx
        self._base = net.base
        self._levels = net.levels

    def route_batch(
        self,
        source_idx: np.ndarray,
        targets: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> BaselineBatchResult:
        base, levels = self._base, self._levels
        src = np.asarray(source_idx, dtype=np.int64)
        tgt = np.asarray(targets, dtype=np.float64) % 1.0
        size = src.size
        rec = _PathRecorder(size, src)
        v = (tgt * float(base**levels)).astype(np.int64)
        cur = src.copy()
        lanes = np.arange(size)
        offs = np.arange(base, dtype=np.int64)
        for ell in range(levels):
            desired = (v // base ** (levels - 1 - ell)) % base
            rows = self._table[cur, ell]                  # (size, base)
            cols = (desired[:, None] + offs) % base
            cands = rows[lanes[:, None], cols]
            bi = np.argmax(cands >= 0, axis=1)
            hop = cands[lanes, bi]
            # own bucket is never empty, so hop >= 0 always
            moved = hop != cur
            rec.append(lanes[moved], hop[moved])
            cur = np.where(moved, hop, cur)
        root = self._canon[cur]
        renorm = root != cur
        if renorm.any():
            rec.append(lanes[renorm], root[renorm])
            cur = np.where(renorm, root, cur)
        servers, offsets = rec.to_csr()
        return BaselineBatchResult(
            scheme=self.scheme, points=self.node_keys, source_idx=src,
            owner_idx=cur, path_servers=servers, path_offsets=offsets,
        )
