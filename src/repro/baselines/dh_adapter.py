"""Adapter exposing the Distance Halving DHT as a Table 1 scheme.

Lets the E1 harness measure our construction with exactly the same
driver as the baselines.  Two lookup modes (the paper's §2.2.1 and
§2.2.2) and arbitrary degree parameter Δ (§2.3) are supported, so the
Table 1 row "Distance Halving, 2 ≤ d ≤ √n" can be traced across ``d``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..balance.strategies import MultipleChoice
from ..core.lookup import dh_lookup, fast_lookup
from ..core.network import DistanceHalvingNetwork
from .base import BaselineBatchResult, BaselineBatchRouter, BaselineDHT

__all__ = ["DistanceHalvingAdapter", "DistanceHalvingBatchRouter"]


class DistanceHalvingAdapter(BaselineDHT):
    """Distance Halving as a measurable lookup scheme.

    ``mode`` selects Fast Lookup (deterministic, §2.2.1) or the two-phase
    Distance Halving Lookup (randomised, §2.2.2).  ``balanced`` joins the
    servers with the §4 Multiple Choice strategy — the configuration the
    paper's Table 1 row assumes (smooth ids); ``balanced=False`` uses
    uniform ids for the ablation.
    """

    def __init__(
        self,
        n: int,
        rng: np.random.Generator,
        delta: int = 2,
        mode: str = "dh",
        balanced: bool = True,
    ):
        if mode not in ("dh", "fast"):
            raise ValueError("mode must be 'dh' or 'fast'")
        self.mode = mode
        self.name = f"distance-halving(d={delta},{mode})"
        self.net = DistanceHalvingNetwork(delta=delta, rng=rng)
        selector = MultipleChoice(t=4) if balanced else None
        self.net.populate(n, selector=selector)

    @property
    def n(self) -> int:
        return self.net.n

    def node_ids(self) -> Sequence[float]:
        return self.net.points()

    def owner(self, target: float) -> float:
        return self.net.segments.cover_point(target)

    def degree(self, node: float) -> int:
        return self.net.degree(node)

    def lookup_path(self, source: float, target: float, rng: np.random.Generator
                    ) -> List[float]:
        if self.mode == "fast":
            return fast_lookup(self.net, source, target).server_path
        return dh_lookup(self.net, source, target, rng).server_path

    def batch_router(self) -> "DistanceHalvingBatchRouter":
        return DistanceHalvingBatchRouter(self)


class DistanceHalvingBatchRouter(BaselineBatchRouter):
    """The DH engine's own :class:`~repro.core.batch.BatchRouter`, adapted.

    Wraps ``net.compile_router()`` behind the baseline batch interface so
    the cross-topology harness drives our construction exactly like the
    competitors: node indices in, :class:`BaselineBatchResult` with CSR
    paths out.  ``fast`` mode replays the scalar ``fast_lookup``
    bit-for-bit (the core engine's own guarantee); ``dh`` mode draws its
    digit strings from the supplied ``rng`` batch-wise, matching the
    scalar algorithm in distribution.
    """

    def __init__(self, adapter: DistanceHalvingAdapter):
        self.scheme = adapter.name
        self._mode = adapter.mode
        self._router = adapter.net.compile_router()
        self.node_keys = self._router.points

    def route_batch(
        self,
        source_idx: np.ndarray,
        targets: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> BaselineBatchResult:
        src = np.asarray(source_idx, dtype=np.int64)
        sources = self.node_keys[src]
        if self._mode == "fast":
            res = self._router.batch_fast_lookup(
                sources, targets, keep_paths="csr"
            )
        else:
            if rng is None:
                raise ValueError("dh-mode batch routing needs an rng")
            res = self._router.batch_dh_lookup(
                sources, targets, rng=rng, keep_paths="csr"
            )
        servers, offsets = res.to_csr()
        return BaselineBatchResult(
            scheme=self.scheme, points=self.node_keys, source_idx=src,
            owner_idx=res.owner_idx, path_servers=servers,
            path_offsets=offsets,
        )
