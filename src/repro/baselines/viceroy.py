"""Viceroy (Malkhi, Naor & Ratajczak, PODC 2002) — butterfly emulation.

Table 1 row: path length ``log n``, congestion ``(log n)/n``, linkage
``O(1)``.  Viceroy approximates a butterfly: every node draws a level
``ℓ ∈ {1..log n}`` (here from its predecessor-gap estimate of ``log n``,
the paper's own §6.2 estimator), keeps ring links, same-level ring links,
one *up* link (nearest level-``ℓ−1`` node), and two *down* links (nearest
level-``ℓ+1`` nodes at ``x`` and ``x + 2^{-ℓ}``).  Routing proceeds in
the three canonical phases: climb to level 1, descend the butterfly
halving the distance scale per level, then walk the ring.

This is the faithful-parameter simplification documented in DESIGN.md:
it preserves Viceroy's constant degree and Θ(log n) routing, which is
what the Table 1 comparison measures.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

import numpy as np

from .base import BaselineBatchResult, BaselineBatchRouter, BaselineDHT, _PathRecorder

__all__ = ["ViceroyBatchRouter", "ViceroyNetwork"]

#: Sentinel level of padded link-matrix slots (beyond any real level).
_PAD_LEVEL = np.int64(1) << 30


class ViceroyNetwork(BaselineDHT):
    """A static simplified Viceroy overlay."""

    name = "viceroy"

    def __init__(self, n: int, rng: np.random.Generator):
        if n < 4:
            raise ValueError("need at least four nodes")
        self.points: List[float] = sorted(float(p) for p in rng.random(n))
        self.max_level = max(1, round(math.log2(n)))
        # level via the predecessor-gap estimator, clamped to [1, log n]
        self.level: Dict[float, int] = {}
        for i, x in enumerate(self.points):
            gap = (x - self.points[i - 1]) % 1.0
            est = max(1, round(math.log2(1.0 / gap))) if gap > 0 else self.max_level
            lvl = 1 + int(rng.integers(0, min(est, self.max_level)))
            self.level[x] = min(lvl, self.max_level)
        self._by_level: Dict[int, List[float]] = {}
        for x, lv in self.level.items():
            self._by_level.setdefault(lv, []).append(x)
        for lv in self._by_level:
            self._by_level[lv].sort()
        # ensure level 1 is inhabited (promote the first node if needed)
        if 1 not in self._by_level:
            x0 = self.points[0]
            self._by_level.setdefault(1, []).append(x0)
            self._by_level[self.level[x0]].remove(x0)
            self.level[x0] = 1
        self.links: Dict[float, List[float]] = {x: self._make_links(x) for x in self.points}

    # ------------------------------------------------------------- topology
    def _ring_succ(self, y: float) -> float:
        i = bisect_left(self.points, y)
        return self.points[i % len(self.points)]

    def _nearest_at_level(self, y: float, lvl: int) -> float:
        """First level-``lvl`` node clockwise from ``y`` (or any fallback)."""
        nodes = self._by_level.get(lvl)
        if not nodes:
            return self._ring_succ(y)
        i = bisect_left(nodes, y)
        return nodes[i % len(nodes)]

    def _make_links(self, x: float) -> List[float]:
        lvl = self.level[x]
        eps = 1e-15
        links = {
            self._ring_succ((x + eps) % 1.0),                      # ring succ
            self.points[(bisect_left(self.points, x) - 1) % self.n],  # ring pred
        }
        # same-level ring
        links.add(self._nearest_at_level((x + eps) % 1.0, lvl))
        # up
        if lvl > 1:
            links.add(self._nearest_at_level(x, lvl - 1))
        # down-left / down-right
        if lvl < self.max_level:
            links.add(self._nearest_at_level(x, lvl + 1))
            links.add(self._nearest_at_level((x + 2.0**-lvl) % 1.0, lvl + 1))
        links.discard(x)
        return sorted(links)

    # ------------------------------------------------------------ interface
    @property
    def n(self) -> int:
        return len(self.points)

    def node_ids(self) -> Sequence[float]:
        return self.points

    def owner(self, target: float) -> float:
        return self._ring_succ(target % 1.0)

    def degree(self, node: float) -> int:
        return len(self.links[node])

    def batch_router(self) -> "ViceroyBatchRouter":
        return ViceroyBatchRouter(self)

    def lookup_path(self, source: float, target: float, rng: np.random.Generator
                    ) -> List[float]:
        target = target % 1.0
        own = self.owner(target)
        path = [source]
        current = source

        def dist(a: float) -> float:
            return (target - a) % 1.0  # clockwise distance to target

        # Phase 1: climb to level 1.
        guard = 0
        while self.level[current] > 1 and guard < 4 * self.max_level:
            ups = [v for v in self.links[current] if self.level[v] < self.level[current]]
            if not ups:
                break
            current = min(ups, key=lambda v: self.level[v])
            path.append(current)
            guard += 1
        # Phase 2: descend, greedily halving clockwise distance.
        guard = 0
        while current != own and guard < 4 * self.max_level:
            downs = [v for v in self.links[current] if self.level[v] > self.level[current]]
            best = None
            for v in downs:
                if dist(v) <= dist(current) and (best is None or dist(v) < dist(best)):
                    best = v
            if best is None:
                break
            current = best
            path.append(current)
            guard += 1
        # Phase 3: ring walk (clockwise) to the owner.
        guard = 0
        while current != own and guard < self.n:
            nxt = min(self.links[current], key=dist)
            if dist(nxt) >= dist(current):
                nxt = self._ring_succ((current + 1e-15) % 1.0)
            current = nxt
            path.append(current)
            guard += 1
        return path


class ViceroyBatchRouter(BaselineBatchRouter):
    """Whole-batch butterfly routing over padded link matrices.

    The compile step freezes every node's (≤ 7) links into an ``(n, L)``
    index matrix plus a parallel level matrix (padded slots get
    ``_PAD_LEVEL``), in the same sorted order the scalar ``links`` lists
    use.  The three routing phases then run as three vectorized loops;
    because every scalar ``min(...)`` scans the sorted links list, its
    first-minimum tie-breaking is exactly ``np.argmin`` over the padded
    rows — so batch paths replay the scalar walk bit-for-bit.

    Per-lane phase guards stay aligned with the loop counter: a lane
    active in a phase hops exactly once per iteration, so the scalar
    per-lookup ``guard`` equals the number of iterations the lane has
    survived.
    """

    def __init__(self, net: ViceroyNetwork):
        self.scheme = net.name
        pts = np.asarray(net.points, dtype=np.float64)
        self.node_keys = pts
        n = pts.size
        self._max_level = net.max_level
        self._level = np.asarray(
            [net.level[x] for x in net.points], dtype=np.int64
        )
        width = max(len(net.links[x]) for x in net.points)
        self._link_idx = np.full((n, width), -1, dtype=np.int64)
        self._link_lvl = np.full((n, width), _PAD_LEVEL, dtype=np.int64)
        for i, x in enumerate(net.points):
            row = np.searchsorted(pts, np.asarray(net.links[x]))
            self._link_idx[i, : row.size] = row
            self._link_lvl[i, : row.size] = self._level[row]
        self._ring_succ_idx = (
            np.searchsorted(pts, (pts + 1e-15) % 1.0) % n
        )

    def route_batch(
        self,
        source_idx: np.ndarray,
        targets: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> BaselineBatchResult:
        pts = self.node_keys
        n = pts.size
        src = np.asarray(source_idx, dtype=np.int64)
        tgt = np.asarray(targets, dtype=np.float64) % 1.0
        size = src.size
        own = np.searchsorted(pts, tgt) % n
        rec = _PathRecorder(size, src)
        lvl = self._level
        lidx = self._link_idx
        llvl = self._link_lvl
        cur_all = src.copy()

        # Phase 1: climb to level 1 along the lowest-level up link.
        live = np.flatnonzero(lvl[cur_all] > 1)
        for _ in range(4 * self._max_level):
            if live.size == 0:
                break
            cur = cur_all[live]
            rows_lvl = llvl[cur]
            ups = rows_lvl < lvl[cur, None]
            has = ups.any(axis=1)
            live = live[has]
            if live.size == 0:
                break
            masked = np.where(ups[has], rows_lvl[has], _PAD_LEVEL)
            bi = np.argmin(masked, axis=1)
            nxt = lidx[cur_all[live], bi]
            cur_all[live] = nxt
            rec.append(live, nxt)
            live = live[lvl[nxt] > 1]

        # Phase 2: descend, greedily halving clockwise distance.
        live = np.flatnonzero(cur_all != own)
        for _ in range(4 * self._max_level):
            if live.size == 0:
                break
            cur = cur_all[live]
            d_cur = (tgt[live] - pts[cur]) % 1.0
            dn = (tgt[live, None] - pts[lidx[cur]]) % 1.0
            cand = (llvl[cur] > lvl[cur, None]) & (llvl[cur] < _PAD_LEVEL)
            cand &= dn <= d_cur[:, None]
            has = cand.any(axis=1)
            live = live[has]
            if live.size == 0:
                break
            masked = np.where(cand[has], dn[has], np.inf)
            bi = np.argmin(masked, axis=1)
            nxt = lidx[cur_all[live], bi]
            cur_all[live] = nxt
            rec.append(live, nxt)
            live = live[nxt != own[live]]

        # Phase 3: ring walk (clockwise) to the owner.
        live = np.flatnonzero(cur_all != own)
        for _ in range(n):
            if live.size == 0:
                break
            cur = cur_all[live]
            d_cur = (tgt[live] - pts[cur]) % 1.0
            rows = lidx[cur]
            dn = (tgt[live, None] - pts[rows]) % 1.0
            masked = np.where(rows >= 0, dn, np.inf)
            bi = np.argmin(masked, axis=1)
            ar = np.arange(live.size)
            nxt = rows[ar, bi]
            worse = masked[ar, bi] >= d_cur
            nxt = np.where(worse, self._ring_succ_idx[cur], nxt)
            cur_all[live] = nxt
            rec.append(live, nxt)
            live = live[nxt != own[live]]

        servers, offsets = rec.to_csr()
        return BaselineBatchResult(
            scheme=self.scheme, points=pts, source_idx=src, owner_idx=own,
            path_servers=servers, path_offsets=offsets,
        )
