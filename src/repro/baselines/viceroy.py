"""Viceroy (Malkhi, Naor & Ratajczak, PODC 2002) — butterfly emulation.

Table 1 row: path length ``log n``, congestion ``(log n)/n``, linkage
``O(1)``.  Viceroy approximates a butterfly: every node draws a level
``ℓ ∈ {1..log n}`` (here from its predecessor-gap estimate of ``log n``,
the paper's own §6.2 estimator), keeps ring links, same-level ring links,
one *up* link (nearest level-``ℓ−1`` node), and two *down* links (nearest
level-``ℓ+1`` nodes at ``x`` and ``x + 2^{-ℓ}``).  Routing proceeds in
the three canonical phases: climb to level 1, descend the butterfly
halving the distance scale per level, then walk the ring.

This is the faithful-parameter simplification documented in DESIGN.md:
it preserves Viceroy's constant degree and Θ(log n) routing, which is
what the Table 1 comparison measures.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .base import BaselineDHT

__all__ = ["ViceroyNetwork"]


class ViceroyNetwork(BaselineDHT):
    """A static simplified Viceroy overlay."""

    name = "viceroy"

    def __init__(self, n: int, rng: np.random.Generator):
        if n < 4:
            raise ValueError("need at least four nodes")
        self.points: List[float] = sorted(float(p) for p in rng.random(n))
        self.max_level = max(1, round(math.log2(n)))
        # level via the predecessor-gap estimator, clamped to [1, log n]
        self.level: Dict[float, int] = {}
        for i, x in enumerate(self.points):
            gap = (x - self.points[i - 1]) % 1.0
            est = max(1, round(math.log2(1.0 / gap))) if gap > 0 else self.max_level
            lvl = 1 + int(rng.integers(0, min(est, self.max_level)))
            self.level[x] = min(lvl, self.max_level)
        self._by_level: Dict[int, List[float]] = {}
        for x, l in self.level.items():
            self._by_level.setdefault(l, []).append(x)
        for l in self._by_level:
            self._by_level[l].sort()
        # ensure level 1 is inhabited (promote the first node if needed)
        if 1 not in self._by_level:
            x0 = self.points[0]
            self._by_level.setdefault(1, []).append(x0)
            self._by_level[self.level[x0]].remove(x0)
            self.level[x0] = 1
        self.links: Dict[float, List[float]] = {x: self._make_links(x) for x in self.points}

    # ------------------------------------------------------------- topology
    def _ring_succ(self, y: float) -> float:
        i = bisect_left(self.points, y)
        return self.points[i % len(self.points)]

    def _nearest_at_level(self, y: float, lvl: int) -> float:
        """First level-``lvl`` node clockwise from ``y`` (or any fallback)."""
        nodes = self._by_level.get(lvl)
        if not nodes:
            return self._ring_succ(y)
        i = bisect_left(nodes, y)
        return nodes[i % len(nodes)]

    def _make_links(self, x: float) -> List[float]:
        lvl = self.level[x]
        eps = 1e-15
        links = {
            self._ring_succ((x + eps) % 1.0),                      # ring succ
            self.points[(bisect_left(self.points, x) - 1) % self.n],  # ring pred
        }
        # same-level ring
        links.add(self._nearest_at_level((x + eps) % 1.0, lvl))
        # up
        if lvl > 1:
            links.add(self._nearest_at_level(x, lvl - 1))
        # down-left / down-right
        if lvl < self.max_level:
            links.add(self._nearest_at_level(x, lvl + 1))
            links.add(self._nearest_at_level((x + 2.0**-lvl) % 1.0, lvl + 1))
        links.discard(x)
        return sorted(links)

    # ------------------------------------------------------------ interface
    @property
    def n(self) -> int:
        return len(self.points)

    def node_ids(self) -> Sequence[float]:
        return self.points

    def owner(self, target: float) -> float:
        return self._ring_succ(target % 1.0)

    def degree(self, node: float) -> int:
        return len(self.links[node])

    def lookup_path(self, source: float, target: float, rng: np.random.Generator
                    ) -> List[float]:
        target = target % 1.0
        own = self.owner(target)
        path = [source]
        current = source

        def dist(a: float) -> float:
            return (target - a) % 1.0  # clockwise distance to target

        # Phase 1: climb to level 1.
        guard = 0
        while self.level[current] > 1 and guard < 4 * self.max_level:
            ups = [v for v in self.links[current] if self.level[v] < self.level[current]]
            if not ups:
                break
            current = min(ups, key=lambda v: self.level[v])
            path.append(current)
            guard += 1
        # Phase 2: descend, greedily halving clockwise distance.
        guard = 0
        while current != own and guard < 4 * self.max_level:
            downs = [v for v in self.links[current] if self.level[v] > self.level[current]]
            best = None
            for v in downs:
                if dist(v) <= dist(current) and (best is None or dist(v) < dist(best)):
                    best = v
            if best is None:
                break
            current = best
            path.append(current)
            guard += 1
        # Phase 3: ring walk (clockwise) to the owner.
        guard = 0
        while current != own and guard < self.n:
            nxt = min(self.links[current], key=dist)
            if dist(nxt) >= dist(current):
                nxt = self._ring_succ((current + 1e-15) % 1.0)
            current = nxt
            path.append(current)
            guard += 1
        return path
