"""Request workload generators for the experiments.

Each generator is a deterministic function of its RNG, covering the
demand patterns the paper analyses:

* uniform random points (Theorems 2.7 / 2.9 congestion);
* permutations, incl. the bit-reversal worst case (Theorem 2.10);
* hashed distinct items (Theorem 2.11);
* single/multiple hot spots with Zipf or adversarial skew (§3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

__all__ = [
    "uniform_points",
    "random_pairs",
    "random_permutation",
    "bit_reversal_permutation",
    "shift_permutation",
    "zipf_demands",
    "single_hotspot_demands",
    "adversarial_point_demands",
]


def uniform_points(rng: np.random.Generator, count: int) -> np.ndarray:
    """``count`` i.i.d. uniform targets in ``[0, 1)``."""
    return rng.random(count)


def random_pairs(
    points: Sequence[float], rng: np.random.Generator, count: int
) -> List[Tuple[float, float]]:
    """Random (source server, target point) pairs — Definition 3's model."""
    idx = rng.integers(0, len(points), size=count)
    targets = rng.random(count)
    return [(points[i], float(t)) for i, t in zip(idx, targets)]


def random_permutation(
    points: Sequence[float], rng: np.random.Generator
) -> List[Tuple[float, float]]:
    """η a uniform permutation: server i looks up a point in s(x_η(i))."""
    n = len(points)
    perm = rng.permutation(n)
    return [(points[i], points[perm[i]]) for i in range(n)]


def bit_reversal_permutation(points: Sequence[float]) -> List[Tuple[float, float]]:
    """The classic adversarial permutation for hypercubic networks.

    Server ``i`` targets the point whose binary expansion is the reversal
    of its own id point's first ``log2 n`` bits — the permutation that
    breaks deterministic oblivious routing (and motivates Valiant-style
    randomisation, §2.2.3).
    """
    n = len(points)
    bits = max(1, int(math.ceil(math.log2(max(2, n)))))
    out = []
    for p in points:
        v = int(p * (1 << bits)) & ((1 << bits) - 1)
        rev = int(format(v, f"0{bits}b")[::-1], 2)
        out.append((p, (rev + 0.5) / (1 << bits)))
    return out


def shift_permutation(points: Sequence[float], shift: float = 0.5) -> List[Tuple[float, float]]:
    """Everyone targets the diametrically shifted point (a cyclic shift)."""
    return [(p, (p + shift) % 1.0) for p in points]


def zipf_demands(
    n_items: int, total: int, rng: np.random.Generator, exponent: float = 1.2
) -> List[int]:
    """Demand vector ``q_i`` with ``Σ q_i = total`` following a Zipf law.

    The §3.4 setting: an arbitrary demand over ``n`` items summing to
    ``n``; Zipf is the canonical skew (a few very hot items).
    """
    ranks = np.arange(1, n_items + 1, dtype=float)
    weights = ranks**-exponent
    weights /= weights.sum()
    counts = rng.multinomial(total, weights)
    return counts.tolist()


def single_hotspot_demands(n_items: int, total: int, hot_index: int = 0) -> List[int]:
    """All demand on one item — the §3.3 single-hotspot stress."""
    q = [0] * n_items
    q[hot_index] = total
    return q


def funnel_workload(net, c: float = 0.37, depth: int = 4) -> List[Tuple[float, float]]:
    """Targets crafted so deterministic Fast-Lookup paths share one point.

    For each server the adversary (who knows the ids, as §2.2.3 allows)
    solves ``w(σ(z)_depth, y) = c`` for the target ``y``: the backward
    path of the Fast Lookup then passes through ``c`` at depth ``depth``,
    concentrating Ω(n) messages on the server covering ``c``.  The
    randomised two-phase lookup is immune — its digits are fresh per
    message — which is exactly the point of Theorem 2.10.

    Because the algorithm picks its own walk length ``t`` (and its digit
    string depends on ``t``), candidate targets are verified against the
    real algorithm and the best-aligned one is kept per source.
    """
    from ..core.lookup import fast_lookup  # local import to avoid a cycle

    g = net.graph
    pairs: List[Tuple[float, float]] = []
    scale = g.delta**depth
    for p in net.points():
        z = net.segments.segment_of(p).midpoint
        chosen = None
        for t in range(depth, depth + 24):
            digits = g.approach_digits(z, t)[:depth]
            off = sum(d * g.delta**k for k, d in enumerate(digits))
            # walk(digits, y) = (y + off)/scale, so walk = c ⟺ y = c·scale − off
            y = ((c * scale) - off) % 1.0
            res = fast_lookup(net, p, y)
            if any(abs(q - c) < 1e-9 for q in res.continuous_path):
                chosen = y
                break
        pairs.append((p, chosen if chosen is not None else c))
    return pairs


def adversarial_point_demands(
    points: Sequence[float], total: int
) -> List[Tuple[float, int]]:
    """Hot items placed exactly on the worst server boundary points.

    Lemma 3.5 holds 'even if an adversary is allowed to choose h(i)';
    this generator pins hot positions at segment boundaries to exercise
    that case (positions, not hashed items).
    """
    k = max(1, len(points) // 8)
    chosen = list(points)[:: max(1, len(points) // k)][:k]
    per = total // len(chosen)
    return [(p, per) for p in chosen]
