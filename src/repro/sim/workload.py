"""Request workload generators and the batch lookup driver.

Each generator is a deterministic function of its RNG, covering the
demand patterns the paper analyses:

* uniform random points (Theorems 2.7 / 2.9 congestion);
* permutations, incl. the bit-reversal worst case (Theorem 2.10);
* hashed distinct items (Theorem 2.11);
* single/multiple hot spots with Zipf or adversarial skew (§3).

:func:`route_pairs` is the vectorized driver the experiments feed those
workloads through: it routes a whole pair list as **one** batch over a
``net.router(auto_refresh=True)`` handle with CSR path accounting,
optionally booking the batch straight into a
:class:`~repro.core.routing_stats.BatchCongestion` accumulator — the
replacement for the per-lookup scalar loops E4/E5 used to run.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "uniform_points",
    "random_pairs",
    "survivor_pairs",
    "random_permutation",
    "bit_reversal_permutation",
    "shift_permutation",
    "zipf_demands",
    "single_hotspot_demands",
    "demand_stream",
    "adversarial_point_demands",
    "pairs_to_arrays",
    "route_pairs",
    "DH_TAU_DIGITS",
]

#: Digits per lookup for explicit-tau Distance Halving batches — far
#: beyond the Theorem 2.8 walk length at any size the experiments route
#: (the engine raises "tau exhausted" if a walk ever outruns it).
DH_TAU_DIGITS = 64


def pairs_to_arrays(pairs) -> Tuple[np.ndarray, np.ndarray]:
    """``(sources, targets)`` float arrays of a workload.

    A *tuple* input is always the already-split ``(sources, targets)``
    form (two equal-length 1-D arrays); any other sequence is a
    generator's list of ``(source, target)`` pairs.  The type-based rule
    keeps a split pair of plain lists from being mistaken for two
    routed pairs.
    """
    if isinstance(pairs, tuple):
        if len(pairs) != 2:
            raise ValueError("split form must be a (sources, targets) 2-tuple")
        src = np.asarray(pairs[0], dtype=np.float64)
        tgt = np.asarray(pairs[1], dtype=np.float64)
        if src.ndim != 1 or tgt.ndim != 1 or src.size != tgt.size:
            raise ValueError(
                "split (sources, targets) must be equal-length 1-D arrays"
            )
        return src, tgt
    if len(pairs) == 0:
        return np.zeros(0), np.zeros(0)
    arr = np.asarray(pairs, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("pairs must be (source, target) tuples")
    return arr[:, 0].copy(), arr[:, 1].copy()


def route_pairs(
    router,
    pairs,
    algorithm: str = "fast",
    rng: "np.random.Generator | None" = None,
    tau: "np.ndarray | None" = None,
    congestion=None,
    keep_paths="csr",
    workers: int = 1,
    policy: "str | None" = None,
    choices: "np.ndarray | None" = None,
    temperature: float = 1.0,
):
    """Route a whole workload through a batch router in one call.

    The vectorized lookup driver of the experiments: converts a
    generator's pair list (or a prebuilt array pair) with
    :func:`pairs_to_arrays`, routes it with the requested §2.2 algorithm
    — CSR path accounting by default — and, when ``congestion`` (a
    :class:`~repro.core.routing_stats.BatchCongestion`) is given, books
    the batch into it.  Returns the
    :class:`~repro.core.batch.BatchLookupResult`.

    ``workers > 1`` dispatches the batch over the router's cached
    shared-memory sharded executor (bit-identical results; the caller
    owns teardown via ``router.close_executor()``).  Sharded ``'dh'``
    requires explicit ``tau`` digits — the workers draw no shared rng.

    ``algorithm="cost"`` routes the cost-aware two-phase lookup
    (requires a :class:`~repro.peer.routing.CostAwareBatchRouter`):
    ``policy`` picks the covering-edge rule (default ``"weighted"``),
    ``choices`` supplies the shared per-step uniforms (required when
    sharded, unless the policy is ``"greedy"``), ``temperature`` tunes
    the softmin.
    """
    sources, targets = pairs_to_arrays(pairs)
    if algorithm == "fast":
        res = router.lookup_batch(sources, targets, workers=workers,
                                  keep_paths=keep_paths)
    elif algorithm == "dh":
        if workers > 1:
            res = router.sharded_executor(workers).batch_dh_lookup(
                sources, targets, tau, keep_paths=keep_paths)
        else:
            res = router.batch_dh_lookup(sources, targets, rng=rng, tau=tau,
                                         keep_paths=keep_paths)
    elif algorithm == "cost":
        pol = policy if policy is not None else "weighted"
        if workers > 1:
            res = router.sharded_executor(workers).batch_cost_dh_lookup(
                sources, targets, choices, policy=pol,
                temperature=temperature, keep_paths=keep_paths)
        else:
            res = router.batch_cost_dh_lookup(
                sources, targets, choices=choices, rng=rng, policy=pol,
                temperature=temperature, keep_paths=keep_paths)
    else:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; use 'fast', 'dh' or 'cost'")
    if congestion is not None:
        congestion.record_batch(res)
    return res


def uniform_points(rng: np.random.Generator, count: int) -> np.ndarray:
    """``count`` i.i.d. uniform targets in ``[0, 1)``."""
    return rng.random(count)


def random_pairs(
    points: Sequence[float], rng: np.random.Generator, count: int
) -> List[Tuple[float, float]]:
    """Random (source server, target point) pairs — Definition 3's model."""
    idx = rng.integers(0, len(points), size=count)
    targets = rng.random(count)
    return [(points[i], float(t)) for i, t in zip(idx, targets)]


def survivor_pairs(
    points: Sequence[float],
    alive_mask: np.ndarray,
    rng: np.random.Generator,
    count: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Random (surviving source server, target point) pairs.

    The Theorem 6.4 sampling model: sources are drawn uniformly from the
    servers a fail-stop plan left alive (dead servers cannot originate
    lookups), targets uniformly from the ring.  Returned in the split
    ``(sources, targets)`` array form :func:`pairs_to_arrays` accepts.
    """
    pts = np.asarray(points, dtype=np.float64)
    alive_idx = np.flatnonzero(np.asarray(alive_mask, dtype=bool))
    if alive_idx.size == 0:
        raise ValueError("survivor_pairs needs at least one alive server")
    src = pts[alive_idx[rng.integers(0, alive_idx.size, size=count)]]
    return src, rng.random(count)


def random_permutation(
    points: Sequence[float], rng: np.random.Generator
) -> List[Tuple[float, float]]:
    """η a uniform permutation: server i looks up a point in s(x_η(i))."""
    n = len(points)
    perm = rng.permutation(n)
    return [(points[i], points[perm[i]]) for i in range(n)]


def bit_reversal_permutation(points: Sequence[float]) -> List[Tuple[float, float]]:
    """The classic adversarial permutation for hypercubic networks.

    Server ``i`` targets the point whose binary expansion is the reversal
    of its own id point's first ``log2 n`` bits — the permutation that
    breaks deterministic oblivious routing (and motivates Valiant-style
    randomisation, §2.2.3).
    """
    n = len(points)
    bits = max(1, int(math.ceil(math.log2(max(2, n)))))
    out = []
    for p in points:
        v = int(p * (1 << bits)) & ((1 << bits) - 1)
        rev = int(format(v, f"0{bits}b")[::-1], 2)
        out.append((p, (rev + 0.5) / (1 << bits)))
    return out


def shift_permutation(points: Sequence[float], shift: float = 0.5) -> List[Tuple[float, float]]:
    """Everyone targets the diametrically shifted point (a cyclic shift)."""
    return [(p, (p + shift) % 1.0) for p in points]


def zipf_demands(
    n_items: int, total: int, rng: np.random.Generator, exponent: float = 1.2
) -> List[int]:
    """Demand vector ``q_i`` with ``Σ q_i = total`` following a Zipf law.

    The §3.4 setting: an arbitrary demand over ``n`` items summing to
    ``n``; Zipf is the canonical skew (a few very hot items).
    """
    ranks = np.arange(1, n_items + 1, dtype=float)
    weights = ranks**-exponent
    weights /= weights.sum()
    counts = rng.multinomial(total, weights)
    return counts.tolist()


def single_hotspot_demands(n_items: int, total: int, hot_index: int = 0) -> List[int]:
    """All demand on one item — the §3.3 single-hotspot stress."""
    q = [0] * n_items
    q[hot_index] = total
    return q


def demand_stream(demands: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Expand a demand vector into a shuffled item-index request stream.

    The array form of the request interleaving the scalar experiments
    built with Python lists: item ``i`` appears ``demands[i]`` times, in
    a uniformly random arrival order — ready to feed
    :meth:`~repro.core.batch_cache.BatchCacheEngine.serve_batch`.
    """
    counts = np.asarray(demands, dtype=np.int64)
    if (counts < 0).any():
        raise ValueError("demands must be non-negative")
    stream = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    return rng.permutation(stream)


def funnel_workload(net, c: float = 0.37, depth: int = 4) -> List[Tuple[float, float]]:
    """Targets crafted so deterministic Fast-Lookup paths share one point.

    For each server the adversary (who knows the ids, as §2.2.3 allows)
    solves ``w(σ(z)_depth, y) = c`` for the target ``y``: the backward
    path of the Fast Lookup then passes through ``c`` at depth ``depth``,
    concentrating Ω(n) messages on the server covering ``c``.  The
    randomised two-phase lookup is immune — its digits are fresh per
    message — which is exactly the point of Theorem 2.10.

    Because the algorithm picks its own walk length ``t`` (and its digit
    string depends on ``t``), candidate targets are verified against the
    real algorithm and the best-aligned one is kept per source.
    """
    from ..core.lookup import fast_lookup  # local import to avoid a cycle

    g = net.graph
    pairs: List[Tuple[float, float]] = []
    scale = g.delta**depth
    for p in net.points():
        z = net.segments.segment_of(p).midpoint
        chosen = None
        for t in range(depth, depth + 24):
            digits = g.approach_digits(z, t)[:depth]
            off = sum(d * g.delta**k for k, d in enumerate(digits))
            # walk(digits, y) = (y + off)/scale, so walk = c ⟺ y = c·scale − off
            y = ((c * scale) - off) % 1.0
            res = fast_lookup(net, p, y)
            if any(abs(q - c) < 1e-9 for q in res.continuous_path):
                chosen = y
                break
        pairs.append((p, chosen if chosen is not None else c))
    return pairs


def adversarial_point_demands(
    points: Sequence[float], total: int
) -> List[Tuple[float, int]]:
    """Hot items placed exactly on the worst server boundary points.

    Lemma 3.5 holds 'even if an adversary is allowed to choose h(i)';
    this generator pins hot positions at segment boundaries to exercise
    that case (positions, not hashed items).
    """
    k = max(1, len(points) // 8)
    chosen = list(points)[:: max(1, len(points) // k)][:k]
    per = total // len(chosen)
    return [(p, per) for p in chosen]
