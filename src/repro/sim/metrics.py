"""Statistics helpers shared by the experiment harness.

Small, dependency-light utilities: robust summaries of sample vectors and
log–log slope fitting, used to compare measured scaling exponents with
the paper's asymptotic claims (e.g. path length ~ log n, CAN ~ n^{1/d}).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = ["summarize", "loglog_slope", "log_slope", "Summary"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    p50: float
    p95: float
    max: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.max,
        }


def summarize(samples: Iterable[float]) -> Summary:
    """Summary statistics of a sample vector."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        return Summary(0, float("nan"), float("nan"), float("nan"), float("nan"), float("nan"))
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        max=float(arr.max()),
    )


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log y against log x.

    Used to recover polynomial scaling exponents: CAN's path length is
    ``Θ(n^{1/d})`` so the fitted slope over n should be ≈ 1/d.
    """
    x = np.log(np.asarray(xs, dtype=float))
    y = np.log(np.asarray(ys, dtype=float))
    if len(x) < 2:
        raise ValueError("need at least two points to fit a slope")
    return float(np.polyfit(x, y, 1)[0])


def log_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of y against log2 x.

    Logarithmic-growth check: path length ≈ c·log2 n gives slope ≈ c.
    """
    x = np.log2(np.asarray(xs, dtype=float))
    y = np.asarray(ys, dtype=float)
    if len(x) < 2:
        raise ValueError("need at least two points to fit a slope")
    return float(np.polyfit(x, y, 1)[0])
