"""Deterministic RNG plumbing.

Every stochastic component in the library takes an explicit
``numpy.random.Generator``; experiments derive independent child
generators per (experiment, repetition, component) from a root seed so
results are bit-for-bit reproducible and repetitions are independent.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["root_rng", "spawn", "spawn_many"]


def root_rng(seed: int) -> np.random.Generator:
    """The root generator of an experiment run."""
    return np.random.default_rng(np.random.SeedSequence(seed))


def spawn(rng: np.random.Generator, label: int) -> np.random.Generator:
    """A child generator independent of its siblings (by label)."""
    seq = np.random.SeedSequence(entropy=int(rng.integers(0, 2**63)), spawn_key=(label,))
    return np.random.default_rng(seq)


def spawn_many(seed: int, count: int) -> List[np.random.Generator]:
    """``count`` independent generators from one seed (per repetition)."""
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(count)]
