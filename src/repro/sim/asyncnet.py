"""Asyncio runtime for the Distance Halving protocols.

The discrete-event engine (:mod:`repro.sim.engine`) gives deterministic
hop-count semantics; this module demonstrates the same node logic running
under genuine asynchrony — every server is an ``asyncio`` task with an
inbox queue, and a routed lookup is a message physically forwarded from
task to task using only each node's *local* routing state (its segment
and neighbour table), as a real deployment would.

The paper's remark (footnote 4): the analysis has "no implied assumption
of synchrony" — :func:`run_async_lookups` validates that by checking the
asynchronously-routed paths match the deterministic
:func:`repro.core.lookup.dh_lookup` paths digit-for-digit when given the
same ``τ`` strings.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.interval import Arc, normalize
from ..core.lookup import MAX_WALK_STEPS
from ..core.network import DistanceHalvingNetwork

__all__ = ["AsyncLookupMessage", "AsyncServer", "AsyncDHNetwork", "run_async_lookups"]


@dataclass
class AsyncLookupMessage:
    """Header of an in-flight lookup (paper §2.2.2's message header)."""

    target: float
    source_point: float
    tau: List[int] = field(default_factory=list)
    t: int = 0
    phase: int = 1
    position: float = 0.0          # current w(τ_t, x_i) (phase I)
    image: float = 0.0             # current w(τ_t, y)  (phase I)
    path: List[float] = field(default_factory=list)
    done: "asyncio.Future[List[float]]" = None  # type: ignore[assignment]


class AsyncServer:
    """One server task: local segment + neighbour table + inbox.

    Routing state is snapshotted from the discrete network at start-up —
    the async layer exercises message passing, not churn.
    """

    def __init__(self, point: float, net: DistanceHalvingNetwork):
        self.point = point
        self.segment: Arc = net.segments.segment_of(point)
        self.neighbors: List[float] = net.neighbor_points(point)
        self.graph = net.graph
        self._seg_of: Dict[float, Arc] = {
            q: net.segments.segment_of(q) for q in self.neighbors
        }
        self.inbox: "asyncio.Queue[AsyncLookupMessage]" = asyncio.Queue()
        self.handled = 0

    def _local_cover(self, y: float) -> Optional[float]:
        """Which of {self} ∪ neighbours covers ``y`` — local knowledge only."""
        if y in self.segment:
            return self.point
        for q, seg in self._seg_of.items():
            if y in seg:
                return q
        return None

    async def run(self, fabric: "AsyncDHNetwork") -> None:
        while True:
            msg = await self.inbox.get()
            if msg is None:  # type: ignore[comparison-overlap]
                break
            self.handled += 1
            msg.path.append(self.point)
            await self._route(msg, fabric)

    async def _route(self, msg: AsyncLookupMessage, fabric: "AsyncDHNetwork") -> None:
        g = self.graph
        if msg.phase == 1:
            # phase I termination test: w(τ_t, y) covered here or next door
            holder = self._local_cover(msg.image)
            if holder == self.point:
                msg.phase = 2
                await self._route(msg, fabric)
                return
            if holder is not None:
                msg.phase = 2
                await fabric.send(holder, msg)
                return
            if msg.t > MAX_WALK_STEPS:  # pragma: no cover - safety valve
                msg.done.set_exception(RuntimeError("phase I diverged"))
                return
            d = int(fabric.rng.integers(0, g.delta)) if msg.t >= len(msg.tau) else msg.tau[msg.t]
            if msg.t >= len(msg.tau):
                msg.tau.append(d)
            msg.t += 1
            msg.position = g.child(msg.position, d)
            msg.image = g.child(msg.image, d)
            nxt = self._local_cover(msg.position)
            if nxt is None:  # neighbour tables stale — cannot happen when static
                msg.done.set_exception(RuntimeError("routing hole"))
                return
            if nxt == self.point:
                await self._route(msg, fabric)
            else:
                await fabric.send(nxt, msg)
        else:
            # phase II: walk backwards deleting the last digit of τ each hop.
            # Termination only at depth 0 (the cover of y itself) keeps the
            # path identical to the deterministic reference implementation.
            if msg.t == 0:
                msg.done.set_result(msg.path)
                return
            msg.t -= 1
            nxt_point = g.walk(tuple(msg.tau[: msg.t]), msg.target)
            nxt = self._local_cover(nxt_point)
            if nxt is None:
                msg.done.set_exception(RuntimeError("phase II hole"))
                return
            if nxt == self.point:
                await self._route(msg, fabric)
            else:
                await fabric.send(nxt, msg)


class AsyncDHNetwork:
    """Asyncio fabric over a (static snapshot of a) Distance Halving DHT."""

    def __init__(self, net: DistanceHalvingNetwork, rng: np.random.Generator,
                 latency: float = 0.0):
        self.net = net
        self.rng = rng
        self.latency = latency
        self.servers: Dict[float, AsyncServer] = {
            p: AsyncServer(p, net) for p in net.segments
        }
        self._tasks: List[asyncio.Task] = []

    async def send(self, recipient: float, msg: AsyncLookupMessage) -> None:
        if self.latency:
            await asyncio.sleep(self.latency)
        await self.servers[recipient].inbox.put(msg)

    async def start(self) -> None:
        for srv in self.servers.values():
            self._tasks.append(asyncio.create_task(srv.run(self)))

    async def stop(self) -> None:
        for srv in self.servers.values():
            await srv.inbox.put(None)  # type: ignore[arg-type]
        await asyncio.gather(*self._tasks, return_exceptions=True)

    async def lookup(self, source_point: float, target: float,
                     tau: Optional[Sequence[int]] = None) -> List[float]:
        """Route one lookup; resolves to the server path (id points)."""
        loop = asyncio.get_running_loop()
        src = normalize(float(source_point))
        msg = AsyncLookupMessage(
            target=normalize(float(target)),
            source_point=src,
            tau=list(tau) if tau is not None else [],
            position=src,
            image=normalize(float(target)),
            done=loop.create_future(),
        )
        await self.send(self.net.segments.cover_point(src), msg)
        return await msg.done


def run_async_lookups(
    net: DistanceHalvingNetwork,
    queries: Sequence[Tuple[float, float]],
    rng: np.random.Generator,
    taus: Optional[Sequence[Sequence[int]]] = None,
) -> List[List[float]]:
    """Route a batch of ``(source, target)`` lookups on the asyncio fabric.

    Returns the server path of each lookup.  Supplying ``taus`` pins the
    random digit strings so results can be compared hop-for-hop with the
    deterministic :func:`repro.core.lookup.dh_lookup`.
    """

    async def main() -> List[List[float]]:
        fabric = AsyncDHNetwork(net, rng)
        await fabric.start()
        try:
            coros = [
                fabric.lookup(s, t, tau=None if taus is None else taus[i])
                for i, (s, t) in enumerate(queries)
            ]
            return list(await asyncio.gather(*coros))
        finally:
            await fabric.stop()

    return asyncio.run(main())
