"""Deterministic discrete-event simulation engine.

The paper analyses protocols at the algorithmic layer (footnote 1 of §1
explicitly brackets out systems concerns), so the natural substrate is a
simulator whose observable quantities — hop counts, per-server message
loads, parallel time — coincide with the quantities in the theorems.

:class:`EventLoop` is a classic ``(time, seq)``-ordered heap scheduler;
:class:`SimNetwork` layers message passing with per-link latency and a
fail-stop set on top of it.  Handlers run atomically at their scheduled
time; the ``seq`` tiebreaker makes runs bit-for-bit reproducible.

Paper footnote 4 ("there is no implied assumption of synchrony") is
honoured: protocols built on this engine never read global state, only
messages — :mod:`repro.sim.asyncnet` re-runs the same node logic under
real asyncio concurrency as a cross-check.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional

__all__ = ["Event", "EventLoop", "Message", "SimNode", "SimNetwork"]


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, seq) for determinism."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventLoop:
    """Minimal deterministic event loop."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_run: int = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        ev = Event(self.now + delay, next(self._seq), action)
        heapq.heappush(self._heap, ev)
        return ev

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run events in order until the queue drains (or a limit hits)."""
        while self._heap and self.events_run < max_events:
            if until is not None and self._heap[0].time > until:
                break
            ev = heapq.heappop(self._heap)
            self.now = ev.time
            self.events_run += 1
            ev.action()

    def pending(self) -> int:
        return len(self._heap)


@dataclass
class Message:
    """A protocol message between simulated nodes."""

    sender: Hashable
    recipient: Hashable
    payload: Any
    kind: str = "msg"
    hops: int = 0


class SimNode:
    """Base class for protocol nodes: override :meth:`on_message`."""

    def __init__(self, node_id: Hashable):
        self.node_id = node_id
        self.network: Optional["SimNetwork"] = None
        self.received: int = 0
        self.sent: int = 0

    def on_message(self, msg: Message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def send(self, recipient: Hashable, payload: Any, kind: str = "msg") -> None:
        """Send a message through the owning network."""
        assert self.network is not None, "node not attached to a network"
        self.network.deliver(Message(self.node_id, recipient, payload, kind))


class SimNetwork:
    """Message-passing fabric over an :class:`EventLoop`.

    ``latency`` maps ``(sender, recipient)`` to a delay (default 1.0 per
    hop, matching the paper's hop-count metric).  Nodes in ``failed`` are
    fail-stop: messages to them vanish (§6 fault model); ``drop_rule``
    allows custom adversaries (e.g. probabilistic loss).
    """

    def __init__(
        self,
        latency: Optional[Callable[[Hashable, Hashable], float]] = None,
        drop_rule: Optional[Callable[[Message], bool]] = None,
    ) -> None:
        self.loop = EventLoop()
        self.nodes: Dict[Hashable, SimNode] = {}
        self.latency = latency or (lambda a, b: 1.0)
        self.drop_rule = drop_rule
        self.failed: set = set()
        self.delivered: int = 0
        self.dropped: int = 0

    def add_node(self, node: SimNode) -> SimNode:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        node.network = self
        self.nodes[node.node_id] = node
        return node

    def fail(self, node_id: Hashable) -> None:
        """Mark a node fail-stop (it stops sending and receiving)."""
        self.failed.add(node_id)

    def deliver(self, msg: Message) -> None:
        """Schedule delivery of a message (drops to/from failed nodes)."""
        if msg.sender in self.failed or msg.recipient in self.failed:
            self.dropped += 1
            return
        if self.drop_rule is not None and self.drop_rule(msg):
            self.dropped += 1
            return
        if msg.recipient not in self.nodes:
            self.dropped += 1
            return
        sender_node = self.nodes.get(msg.sender)
        if sender_node is not None:
            sender_node.sent += 1
        delay = self.latency(msg.sender, msg.recipient)

        def _arrive() -> None:
            if msg.recipient in self.failed:
                self.dropped += 1
                return
            node = self.nodes[msg.recipient]
            node.received += 1
            self.delivered += 1
            msg.hops += 1
            node.on_message(msg)

        self.loop.schedule(delay, _arrive)

    def run(self, until: Optional[float] = None) -> None:
        self.loop.run(until=until)
