"""The Distance Halving lookup as a discrete-event message protocol.

Paper footnote 1 distinguishes the combinatorial analysis from systems
concerns: "in 'real life' systems, an iterative lookup algorithm may
behave very differently from a recursive one".  This module makes that
difference measurable by running the §2.2.2 lookup on the
:class:`~repro.sim.engine.SimNetwork` in both styles:

* **recursive** — the message is forwarded hop by hop; the final holder
  replies straight to the requester (hops + 1 messages, latency = path
  latency);
* **iterative** — the requester drives every step itself: it asks the
  current server for the next hop and contacts that server directly
  (2·hops messages, latency = 2·path latency, but the requester observes
  every step — the robustness argument for iterative lookups).

Both implementations route with purely local node state (segment +
neighbour table snapshots), and a latency function / drop rule can model
heterogeneous links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..core.interval import Arc, normalize
from ..core.lookup import MAX_WALK_STEPS
from ..core.network import DistanceHalvingNetwork
from .engine import Message, SimNetwork, SimNode

__all__ = ["LookupOutcome", "DHProtocolNode", "build_protocol_network",
           "run_protocol_lookup"]


@dataclass
class LookupOutcome:
    """What the requester learns, plus transport-level accounting."""

    request_id: int
    target: float
    owner: Optional[float] = None
    done: bool = False
    hops: int = 0
    messages: int = 0
    completed_at: float = math.inf
    path: List[float] = field(default_factory=list)


class DHProtocolNode(SimNode):
    """A server participating in the message-level DH lookup protocol."""

    def __init__(self, point: float, net: DistanceHalvingNetwork):
        super().__init__(point)
        self.point = point
        self.segment: Arc = net.segments.segment_of(point)
        self.graph = net.graph
        self._seg_of: Dict[float, Arc] = {
            q: net.segments.segment_of(q) for q in net.neighbor_points(point)
        }

    # --------------------------------------------------------- local routing
    def local_cover(self, y: float) -> Optional[float]:
        if y in self.segment:
            return self.point
        for q, seg in self._seg_of.items():
            if y in seg:
                return q
        return None

    def next_step(self, state: dict, rng: np.random.Generator
                  ) -> Tuple[str, Optional[float], dict]:
        """One §2.2.2 protocol step from this node's local view.

        Returns ``(kind, next_node, new_state)`` where kind is ``done``
        (this node owns the target), ``forward`` (send to next_node) or
        ``error`` (routing hole — impossible on a static snapshot).
        """
        g = self.graph
        st = dict(state)
        if st["phase"] == 1:
            holder = self.local_cover(st["image"])
            if holder == self.point:
                st["phase"] = 2
                return self.next_step(st, rng)
            if holder is not None:
                st["phase"] = 2
                return "forward", holder, st
            if st["t"] > MAX_WALK_STEPS:  # pragma: no cover
                return "error", None, st
            d = int(rng.integers(0, g.delta))
            st["tau"] = st["tau"] + [d]
            st["t"] += 1
            st["position"] = g.child(st["position"], d)
            st["image"] = g.child(st["image"], d)
            nxt = self.local_cover(st["position"])
            if nxt is None:  # pragma: no cover
                return "error", None, st
            if nxt == self.point:
                return self.next_step(st, rng)
            return "forward", nxt, st
        # phase 2: strip digits walking back to the target
        if st["t"] == 0:
            return "done", None, st
        st["t"] -= 1
        back = g.walk(tuple(st["tau"][: st["t"]]), st["target"])
        nxt = self.local_cover(back)
        if nxt is None:  # pragma: no cover
            return "error", None, st
        if nxt == self.point:
            return self.next_step(st, rng)
        return "forward", nxt, st

    # ------------------------------------------------------------- messaging
    def on_message(self, msg: Message) -> None:
        kind = msg.payload["kind"]
        outcome: LookupOutcome = msg.payload["outcome"]
        rng: np.random.Generator = msg.payload["rng"]
        if kind == "lookup":  # recursive style
            outcome.path.append(self.point)
            verdict, nxt, state = self.next_step(msg.payload["state"], rng)
            if verdict == "done":
                outcome.done = True
                outcome.owner = self.point
                outcome.completed_at = self.network.loop.now
                outcome.messages += 1
                self.send(msg.payload["requester"], {"kind": "reply",
                                                     "outcome": outcome,
                                                     "rng": rng})
            elif verdict == "forward":
                outcome.hops += 1
                outcome.messages += 1
                self.send(nxt, {**msg.payload, "state": state})
        elif kind == "probe":  # iterative style: answer with the next hop
            verdict, nxt, state = self.next_step(msg.payload["state"], rng)
            outcome.messages += 1
            self.send(msg.payload["requester"], {
                "kind": "probe-reply", "outcome": outcome, "rng": rng,
                "verdict": verdict, "next": nxt, "state": state,
                "probed": self.point,
            })
        elif kind in ("reply", "probe-reply"):
            handler = msg.payload.get("on_reply")
            if handler is not None:  # pragma: no cover - requester only
                handler(msg)


class _Requester(DHProtocolNode):
    """A requester node driving iterative lookups."""

    def __init__(self, point: float, net: DistanceHalvingNetwork):
        super().__init__(point, net)
        self.pending: Dict[int, LookupOutcome] = {}

    def start_iterative(self, outcome: LookupOutcome, first: float,
                        state: dict, rng: np.random.Generator) -> None:
        self.pending[outcome.request_id] = outcome
        outcome.messages += 1
        self.send(first, {"kind": "probe", "outcome": outcome, "state": state,
                          "rng": rng, "requester": self.point})

    def on_message(self, msg: Message) -> None:
        kind = msg.payload["kind"]
        if kind == "probe-reply":
            outcome: LookupOutcome = msg.payload["outcome"]
            outcome.path.append(msg.payload["probed"])
            verdict = msg.payload["verdict"]
            rng = msg.payload["rng"]
            if verdict == "done":
                outcome.done = True
                outcome.owner = msg.payload["probed"]
                outcome.completed_at = self.network.loop.now
                self.pending.pop(outcome.request_id, None)
                return
            if verdict == "forward":
                outcome.hops += 1
                outcome.messages += 1
                self.send(msg.payload["next"], {
                    "kind": "probe", "outcome": outcome,
                    "state": msg.payload["state"], "rng": rng,
                    "requester": self.point,
                })
                return
            self.pending.pop(outcome.request_id, None)  # pragma: no cover
        elif kind == "reply":
            outcome = msg.payload["outcome"]
            self.pending.pop(outcome.request_id, None)
        else:
            super().on_message(msg)


def build_protocol_network(
    net: DistanceHalvingNetwork,
    latency: Optional[Callable[[Hashable, Hashable], float]] = None,
    drop_rule: Optional[Callable[[Message], bool]] = None,
) -> SimNetwork:
    """Wrap a DHT snapshot into a SimNetwork of protocol nodes."""
    sim = SimNetwork(latency=latency, drop_rule=drop_rule)
    for p in net.segments:
        sim.add_node(_Requester(p, net))
    return sim


def run_protocol_lookup(
    sim: SimNetwork,
    net: DistanceHalvingNetwork,
    source: float,
    target: float,
    rng: np.random.Generator,
    style: str = "recursive",
    request_id: int = 0,
) -> LookupOutcome:
    """Inject one lookup and run the event loop to completion."""
    if style not in ("recursive", "iterative"):
        raise ValueError("style must be 'recursive' or 'iterative'")
    src = normalize(float(source))
    tgt = normalize(float(target))
    first = net.segments.cover_point(src)
    outcome = LookupOutcome(request_id=request_id, target=tgt)
    state = {"phase": 1, "t": 0, "tau": [], "position": src, "image": tgt,
             "target": tgt}
    requester: _Requester = sim.nodes[first]  # type: ignore[assignment]
    if style == "recursive":
        outcome.messages += 1
        requester.send(first, {"kind": "lookup", "outcome": outcome,
                               "state": state, "rng": rng,
                               "requester": first})
        # self-delivery: SimNetwork handles same-node messages like any other
    else:
        requester.start_iterative(outcome, first, state, rng)
    sim.run()
    return outcome
