"""Churn processes: servers joining and leaving over time.

The cost-of-join/leave metric of §1 and the smoothness-under-deletions
question of §4.1 both need a driver that applies join/leave traces to a
network (or balancer) and records per-operation costs.  Two processes are
provided:

* :class:`ChurnTrace` — a reproducible sequence of join/leave ops with a
  tunable leave fraction (the "half the servers leave" stress of §4.1);
* :func:`run_churn` — applies a trace to a
  :class:`~repro.core.network.DistanceHalvingNetwork` with a chosen id
  strategy, measuring state-change cost (how many servers' neighbour
  sets were touched) per operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Literal, Optional

import numpy as np

from ..core.network import DistanceHalvingNetwork

__all__ = ["ChurnOp", "ChurnTrace", "run_churn", "ChurnReport"]

OpKind = Literal["join", "leave"]


@dataclass(frozen=True)
class ChurnOp:
    kind: OpKind
    # for leaves: index into the then-alive server list (mod current size)
    victim: int = 0


@dataclass
class ChurnTrace:
    """A reproducible interleaving of joins and leaves."""

    ops: List[ChurnOp]

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        steps: int,
        leave_prob: float = 0.3,
        warmup: int = 16,
    ) -> "ChurnTrace":
        ops: List[ChurnOp] = [ChurnOp("join") for _ in range(warmup)]
        for _ in range(steps):
            if rng.random() < leave_prob:
                ops.append(ChurnOp("leave", victim=int(rng.integers(1 << 30))))
            else:
                ops.append(ChurnOp("join"))
        return cls(ops)

    @classmethod
    def mass_departure(cls, rng: np.random.Generator, n: int, fraction: float = 0.5
                       ) -> "ChurnTrace":
        """Join n servers then delete a random ``fraction`` of them (§4.1)."""
        ops: List[ChurnOp] = [ChurnOp("join") for _ in range(n)]
        for _ in range(int(n * fraction)):
            ops.append(ChurnOp("leave", victim=int(rng.integers(1 << 30))))
        return cls(ops)


@dataclass
class ChurnReport:
    """Outcome of applying a churn trace."""

    smoothness_series: List[float] = field(default_factory=list)
    touched_per_op: List[int] = field(default_factory=list)
    final_n: int = 0

    def max_touched(self) -> int:
        return max(self.touched_per_op, default=0)

    def mean_touched(self) -> float:
        if not self.touched_per_op:
            return 0.0
        return float(np.mean(self.touched_per_op))

    def final_smoothness(self) -> float:
        return self.smoothness_series[-1] if self.smoothness_series else float("inf")


def run_churn(
    net: DistanceHalvingNetwork,
    trace: ChurnTrace,
    rng: np.random.Generator,
    selector: Optional[Callable] = None,
    sample_every: int = 8,
    on_op: Optional[Callable[[int, ChurnOp], None]] = None,
) -> ChurnReport:
    """Apply a churn trace; measure smoothness and per-op locality.

    The per-op cost counts the servers whose neighbour set changes — the
    §1 "cost of join/leave" metric.  Cost is measured exactly (before vs
    after neighbour sets of the affected region) every ``sample_every``
    ops to keep the driver fast, since neighbourhood recomputation is the
    expensive part.

    On measured joins the id point is chosen *first* (by the
    ``selector``, or uniformly from ``rng``) so the affected region is
    computed around the point the join actually lands on — measuring
    around a throwaway probe while a selector places the server
    elsewhere would report the wrong neighbourhood's cost.

    ``on_op(step, op)`` is invoked after every applied operation; the
    churn-soak experiment uses it to re-sync an incremental router and
    account its per-op refresh cost.
    """
    report = ChurnReport()
    step = 0
    for op in trace.ops:
        measure = (step % sample_every == 0) and net.n > 2
        if op.kind == "join" or net.n == 0:
            if measure:
                # pick the landing point up front so the measured region
                # is the neighbourhood the join really touches
                if selector is not None:
                    point = float(selector(net, rng))
                else:
                    point = float(rng.random())
                owner = net.segments.cover_point(point)
                region = [owner] + net.neighbor_points(owner)
                affected_before = {q: frozenset(net.neighbor_points(q))
                                   for q in region}
                net.join(point=point)
            else:
                net.join(selector=selector)
        else:
            pts = list(net.points())
            victim = pts[op.victim % len(pts)]
            if measure:
                region = [victim] + net.neighbor_points(victim)
                affected_before = {q: frozenset(net.neighbor_points(q))
                                   for q in region}
            net.leave(victim)
        if measure:
            touched = 0
            for q, before in affected_before.items():
                if q in net.servers and frozenset(net.neighbor_points(q)) != before:
                    touched += 1
                elif q not in net.servers:
                    touched += 1
            report.touched_per_op.append(touched)
            if net.n >= 2:
                report.smoothness_series.append(net.smoothness())
        if on_op is not None:
            on_op(step, op)
        step += 1
    report.final_n = net.n
    if net.n >= 2:
        report.smoothness_series.append(net.smoothness())
    return report
