"""Simulation substrate: event engine, asyncio runtime, workloads, churn."""

from .asyncnet import AsyncDHNetwork, run_async_lookups
from .churn import ChurnOp, ChurnReport, ChurnTrace, run_churn
from .engine import Event, EventLoop, Message, SimNetwork, SimNode
from .protocol import (
    DHProtocolNode,
    LookupOutcome,
    build_protocol_network,
    run_protocol_lookup,
)
from .metrics import Summary, log_slope, loglog_slope, summarize
from .rng import root_rng, spawn, spawn_many
from .scenario import (
    DEFAULT_PHASES,
    Phase,
    ScenarioEngine,
    SoakStats,
    parse_phases,
)
from .workload import (
    adversarial_point_demands,
    funnel_workload,
    bit_reversal_permutation,
    random_pairs,
    random_permutation,
    shift_permutation,
    single_hotspot_demands,
    uniform_points,
    zipf_demands,
)

__all__ = [
    "AsyncDHNetwork",
    "ChurnOp",
    "DEFAULT_PHASES",
    "Phase",
    "ScenarioEngine",
    "SoakStats",
    "parse_phases",
    "ChurnReport",
    "ChurnTrace",
    "DHProtocolNode",
    "LookupOutcome",
    "build_protocol_network",
    "run_protocol_lookup",
    "Event",
    "EventLoop",
    "Message",
    "SimNetwork",
    "SimNode",
    "Summary",
    "adversarial_point_demands",
    "bit_reversal_permutation",
    "log_slope",
    "loglog_slope",
    "funnel_workload",
    "random_pairs",
    "random_permutation",
    "root_rng",
    "run_async_lookups",
    "run_churn",
    "shift_permutation",
    "single_hotspot_demands",
    "spawn",
    "spawn_many",
    "summarize",
    "uniform_points",
    "zipf_demands",
]
