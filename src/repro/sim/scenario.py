"""Phase-scripted streaming soak scenarios — the day-in-the-life driver.

Every experiment so far exercises one subsystem at a time; this module
composes the whole batch spine into one sustained scenario on a *live*
network: chunked lookup streams (memory bound O(chunk)), churn waves
applied through the op-journal router refresh, a Zipf flash crowd served
through the batch cache, fail-stop and Byzantine fault plans on the
overlapping substrate with **self-healing storage** (read-repair +
re-encode of the Reed-Solomon shares when holders die), and
load-balance rebalancing — the §1 claim that the continuous-discrete
approach stays correct and balanced *under dynamism*, exercised all at
once.

Three layers:

* :class:`SoakStats` — the streaming accumulator.  Extends the
  :class:`~repro.core.routing_stats.BatchCongestion` merge discipline to
  every statistic a soak tracks (cache congestion, hop histograms, fault
  and repair counters, membership extrema): all fields merge with exact
  associative operations (sorted-array adds, ``int64`` sums, pad-and-add
  histograms, min/max), so splitting a request stream at *any* chunk
  boundaries and merging the snapshots is bit-identical to one-shot
  accumulation — the property the hypothesis suite asserts.
* :class:`ScenarioEngine` — the phase-scripted driver.  A scenario is a
  comma-separated phase string (``"lookups,churn:192,flash,..."``,
  see :func:`parse_phases`); each phase streams its requests in
  ``chunk``-sized batches through the appropriate engine and books them
  into per-phase :class:`SoakStats` snapshots that merge into a running
  total.
* the invariant checker — :meth:`ScenarioEngine.check_invariants` runs
  between phases and audits owner consistency against a fresh compile,
  the congestion-accumulator merge identity, erasure-share
  recoverability (byte-level, against put-time digests), and cache
  active-tree well-formedness, so the soak doubles as the repo's
  integration-test backbone.

Results are **seed-deterministic**: the dict :meth:`ScenarioEngine.run`
returns contains no wall-clock quantities, so two runs with the same
seed produce byte-identical ``--json-out`` artifacts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..balance import MultipleChoice
from ..core import DistanceHalvingNetwork
from ..core.batch_cache import BatchCacheEngine
from ..core.routing_stats import BatchCongestion
from ..faults.batch_ft import FTBatchEngine
from ..faults.erasure import ErasureStore, RepairReport
from ..faults.models import random_byzantine, random_failstop
from ..faults.overlap import OverlappingDHNetwork
from ..sim.churn import ChurnTrace, run_churn
from ..sim.rng import spawn_many
from ..sim.workload import demand_stream, survivor_pairs, zipf_demands

__all__ = ["SoakStats", "ScenarioEngine", "Phase", "parse_phases",
           "DEFAULT_PHASES", "DEFAULT_CHUNK"]

#: Default streaming chunk: the peak batch the driver materialises.
DEFAULT_CHUNK = 1 << 16

#: The default day-in-the-life script (7 phases, ≥6 required): sustained
#: lookups, a churn wave, more lookups on the churned network, a Zipf
#: flash crowd, fail-stop + Byzantine fault waves with healing, a
#: Multiple-Choice rebalancing cohort, and a §4.1 mass departure.
DEFAULT_PHASES = ("lookups,churn,lookups,flash,failstop,byzantine,"
                  "rebalance,mass")

_PHASE_KINDS = ("lookups", "churn", "flash", "failstop", "byzantine",
                "rebalance", "mass")


@dataclass(frozen=True)
class Phase:
    """One scripted phase: a kind plus its optional numeric argument."""

    kind: str
    arg: Optional[float] = None


def parse_phases(spec: str) -> List[Phase]:
    """Parse a ``"name[:arg],name[:arg],..."`` scenario script.

    Known kinds: ``lookups[:count]``, ``churn[:ops]``,
    ``flash[:requests]``, ``failstop[:prob]``, ``byzantine[:prob]``,
    ``rebalance[:joins]``, ``mass[:fraction]``.
    """
    phases: List[Phase] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        kind, _, raw = token.partition(":")
        if kind not in _PHASE_KINDS:
            raise ValueError(
                f"unknown phase {kind!r}; known: {', '.join(_PHASE_KINDS)}")
        arg = None
        if raw:
            arg = float(raw)
            if arg < 0:
                raise ValueError(f"phase argument must be >= 0: {token!r}")
        phases.append(Phase(kind, arg))
    if not phases:
        raise ValueError("scenario script has no phases")
    return phases


def _pad_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact histogram addition: pad the shorter to the longer, add."""
    if a.size < b.size:
        a, b = b, a
    out = a.copy()
    out[: b.size] += b
    return out


@dataclass
class SoakStats:
    """Mergeable streaming statistics of one soak (or one phase of it).

    Every field accumulates with an exact associative operation, so for
    any split of the request stream into chunks, merging the per-chunk
    snapshots reproduces the one-shot accumulator *bit-identically*
    (the :class:`~repro.core.routing_stats.BatchCongestion` discipline,
    extended to the whole soak).  Memory is O(servers + max hops), never
    O(requests).
    """

    route: BatchCongestion = field(default_factory=BatchCongestion)
    cache: BatchCongestion = field(default_factory=BatchCongestion)
    hop_hist: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64))
    cache_requests: int = 0
    ft_pairs: int = 0
    ft_successes: int = 0
    ft_messages: int = 0
    repair: RepairReport = field(default_factory=RepairReport)
    churn_ops: int = 0
    chunks: int = 0
    n_min: int = 0
    n_max: int = 0
    smoothness_max: float = 0.0

    # ------------------------------------------------------------- recording
    def record_route(self, result) -> None:
        """Book one routed batch (CSR paths) — lookups + hop histogram."""
        self.route.record_batch(result)
        hops = np.asarray(result.hops)
        if hops.size:
            self.hop_hist = _pad_add(
                self.hop_hist, np.bincount(hops).astype(np.int64))
        self.chunks += 1

    def record_cache(self, result) -> None:
        """Book one cache-served batch (shortened CSR paths)."""
        self.cache.record_batch(result)
        self.cache_requests += result.size
        self.chunks += 1

    def record_ft(self, result) -> None:
        """Book one fault-tolerant batch (simple or resistant)."""
        self.ft_pairs += result.size
        self.ft_successes += int(result.success.sum())
        self.ft_messages += int(result.messages.sum())
        self.chunks += 1

    def record_repair(self, report: RepairReport) -> None:
        self.repair.merge(report)

    def record_churn(self, ops: int) -> None:
        self.churn_ops += int(ops)

    def observe_network(self, n: int, smoothness: float) -> None:
        """Fold one membership observation into the extrema."""
        self.n_min = n if self.n_min == 0 else min(self.n_min, n)
        self.n_max = max(self.n_max, n)
        if math.isfinite(smoothness):
            self.smoothness_max = max(self.smoothness_max, float(smoothness))

    # --------------------------------------------------------------- merging
    def merge(self, other: "SoakStats") -> "SoakStats":
        """Fold another accumulator in (exact, associative)."""
        self.route.merge(other.route)
        self.cache.merge(other.cache)
        self.hop_hist = _pad_add(self.hop_hist, other.hop_hist)
        self.cache_requests += other.cache_requests
        self.ft_pairs += other.ft_pairs
        self.ft_successes += other.ft_successes
        self.ft_messages += other.ft_messages
        self.repair.merge(other.repair)
        self.churn_ops += other.churn_ops
        self.chunks += other.chunks
        if other.n_min:
            self.n_min = (other.n_min if self.n_min == 0
                          else min(self.n_min, other.n_min))
        self.n_max = max(self.n_max, other.n_max)
        self.smoothness_max = max(self.smoothness_max, other.smoothness_max)
        return self

    def equals(self, other: "SoakStats") -> bool:
        """Bit-identical equality — the merge-identity invariant."""
        return (
            np.array_equal(self.route._points, other.route._points)
            and np.array_equal(self.route._counts, other.route._counts)
            and self.route.lookups == other.route.lookups
            and self.route.total_messages == other.route.total_messages
            and np.array_equal(self.cache._points, other.cache._points)
            and np.array_equal(self.cache._counts, other.cache._counts)
            and self.cache.lookups == other.cache.lookups
            and self.cache.total_messages == other.cache.total_messages
            and np.array_equal(self.hop_hist, other.hop_hist)
            and self.cache_requests == other.cache_requests
            and self.ft_pairs == other.ft_pairs
            and self.ft_successes == other.ft_successes
            and self.ft_messages == other.ft_messages
            and (self.repair.items, self.repair.healthy, self.repair.repaired,
                 self.repair.shares_rebuilt, self.repair.lost)
            == (other.repair.items, other.repair.healthy,
                other.repair.repaired, other.repair.shares_rebuilt,
                other.repair.lost)
            and self.churn_ops == other.churn_ops
            and self.chunks == other.chunks
            and self.n_min == other.n_min
            and self.n_max == other.n_max
            and self.smoothness_max == other.smoothness_max
        )

    def snapshot(self) -> "SoakStats":
        """Deep copy — a mergeable point-in-time snapshot."""
        return SoakStats().merge(self)

    # --------------------------------------------------------------- digests
    @property
    def lookups(self) -> int:
        """Routed lookups booked into the route accumulator."""
        return self.route.lookups

    @property
    def total_requests(self) -> int:
        """Everything pushed through the network: routed + cached + FT."""
        return self.route.lookups + self.cache_requests + self.ft_pairs

    def mean_hops(self) -> float:
        total = int(self.hop_hist.sum())
        if total == 0:
            return 0.0
        return float((self.hop_hist
                      * np.arange(self.hop_hist.size)).sum() / total)

    def summary(self, n_servers: int) -> Dict[str, float]:
        """Flat JSON-native digest (NumPy-safe scalars only)."""
        out = {f"route_{k}": v
               for k, v in self.route.summary(n_servers).items()}
        out.update({f"cache_{k}": v
                    for k, v in self.cache.summary(n_servers).items()})
        out.update({
            "total_requests": float(self.total_requests),
            "cache_requests": float(self.cache_requests),
            "mean_hops": self.mean_hops(),
            "max_hops": float(self.hop_hist.size - 1
                              if self.hop_hist.size else 0),
            "ft_pairs": float(self.ft_pairs),
            "ft_success_rate": (self.ft_successes / self.ft_pairs
                                if self.ft_pairs else 1.0),
            "ft_messages": float(self.ft_messages),
            "repairs": float(self.repair.repaired),
            "shares_rebuilt": float(self.repair.shares_rebuilt),
            "items_lost": float(self.repair.lost),
            "churn_ops": float(self.churn_ops),
            "chunks": float(self.chunks),
            "n_min": float(self.n_min),
            "n_max": float(self.n_max),
            "smoothness_max": float(self.smoothness_max),
        })
        return out


class ScenarioEngine:
    """Streaming soak driver over one live network + one fault substrate.

    Parameters
    ----------
    n:
        Initial server count of the live (churning) Distance Halving
        network; a static ``max(8, n // 16)``-server
        :class:`~repro.faults.overlap.OverlappingDHNetwork` rides along
        as the §6 fault substrate with ``items`` erasure-coded blobs.
    lookups:
        Total routed lookups the ``lookups`` phases share (split evenly;
        an explicit ``lookups:COUNT`` phase keeps its own count).
    chunk:
        Streaming batch size — the peak number of in-flight requests
        (and the accumulator memory bound, O(chunk + n)).
    seed:
        Every stream (membership, workloads, faults, cache taus) derives
        from this; results are byte-reproducible per seed.
    invariants:
        Run :meth:`check_invariants` between phases (``strict`` raises
        on the first violation; otherwise violations are reported in the
        result dict).
    workers:
        ``> 1`` routes the lookup stream through the shared-memory
        sharded backend (``router.lookup_batch(..., workers=...)``).
        Results are bit-identical to single-process by construction —
        the merged :class:`SoakStats` and the byte-reproducibility of
        the artifact are unaffected.  The engine owns the executor and
        tears it down when :meth:`run` returns.
    """

    def __init__(
        self,
        n: int = 4096,
        lookups: int = 1_000_000,
        chunk: int = DEFAULT_CHUNK,
        seed: int = 0,
        items: int = 24,
        payload: int = 256,
        zipf_exponent: float = 1.2,
        invariants: bool = True,
        strict: bool = True,
        workers: int = 1,
    ) -> None:
        if n < 16:
            raise ValueError("soak needs n >= 16")
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.n0 = int(n)
        self.lookups_total = int(lookups)
        self.chunk = int(chunk)
        self.workers = int(workers)
        self.seed = int(seed)
        self.zipf_exponent = float(zipf_exponent)
        self.invariants = bool(invariants)
        self.strict = bool(strict)

        (build_rng, churn_rng, route_rng, fault_rng, cache_rng,
         check_rng) = spawn_many(seed * 31 + n, 6)
        self._churn_rng = churn_rng
        self._route_rng = route_rng
        self._fault_rng = fault_rng
        self._cache_rng = cache_rng
        self._check_rng = check_rng

        self.selector = MultipleChoice(t=4)
        self.net = DistanceHalvingNetwork(rng=build_rng)
        self.net.populate(self.n0, selector=self.selector)
        self.router = self.net.router(auto_refresh=True)

        # §6 fault substrate: static membership, erasure-coded blobs
        ft_n = max(8, self.n0 // 16)
        self.ft_net = OverlappingDHNetwork(ft_n, rng=build_rng)
        self.ft_engine = FTBatchEngine(self.ft_net)
        self.store = ErasureStore(self.ft_net)
        self._blobs: Dict[str, bytes] = {}
        for i in range(int(items)):
            key = f"item-{i}"
            data = bytes(fault_rng.integers(0, 256, size=int(payload),
                                            dtype=np.uint8))
            self.store.put(key, data)
            self._blobs[key] = data
        self.alive = set(self.ft_net.points_array.tolist())
        self._ft_points = self.ft_net.points_array

        self.total = SoakStats()
        self.phase_snapshots: List[Tuple[str, SoakStats]] = []
        self.invariant_rows: List[Dict] = []
        self._last_cache_engine: Optional[BatchCacheEngine] = None

    # --------------------------------------------------------------- helpers
    def _observe(self, stats: SoakStats) -> None:
        stats.observe_network(
            self.net.n,
            self.net.smoothness() if self.net.n >= 2 else math.inf)

    def _route_stream(self, stats: SoakStats, count: int) -> None:
        """Route ``count`` uniform lookups in chunk-sized CSR batches."""
        rng = self._route_rng
        done = 0
        while done < count:
            b = min(self.chunk, count - done)
            pts = self.net.segments.as_array()
            sources = pts[rng.integers(0, pts.size, size=b)]
            targets = rng.random(b)
            res = self.router.lookup_batch(sources, targets,
                                           workers=self.workers,
                                           keep_paths="csr")
            stats.record_route(res)
            done += b
        self._observe(stats)

    # ---------------------------------------------------------------- phases
    def _phase_lookups(self, stats: SoakStats, arg: Optional[float],
                       share: int) -> None:
        self._route_stream(stats, int(arg) if arg is not None else share)

    def _phase_churn(self, stats: SoakStats, arg: Optional[float]) -> None:
        ops = int(arg) if arg is not None else 192
        trace = ChurnTrace.generate(self._churn_rng, steps=ops,
                                    leave_prob=0.3, warmup=0)
        run_churn(self.net, trace, self._churn_rng, selector=self.selector,
                  sample_every=1 << 30,
                  on_op=lambda step, op: self.router.refresh())
        stats.record_churn(len(trace.ops))
        self._observe(stats)

    def _phase_flash(self, stats: SoakStats, arg: Optional[float]) -> None:
        """Zipf flash crowd through the batch cache, streamed in chunks.

        The cache engine snapshots a frozen router, so each flash phase
        builds a fresh engine on the *current* membership (a stale
        engine under churn raises rather than serving wrong covers).
        """
        requests = (int(arg) if arg is not None
                    else min(2 * self.chunk, max(1, self.lookups_total // 8)))
        rng = self._cache_rng
        n_items = max(8, min(64, self.net.n // 64))
        items = [f"hot-{i}" for i in range(n_items)]
        engine = BatchCacheEngine(self.net, items)
        demands = zipf_demands(n_items, requests, rng,
                               exponent=self.zipf_exponent)
        stream = demand_stream(demands, rng)
        pts = self.net.segments.as_array()
        for lo in range(0, stream.size, self.chunk):
            idx = stream[lo: lo + self.chunk]
            sources = pts[rng.integers(0, pts.size, size=idx.size)]
            res = engine.serve_batch(idx, sources, rng=rng)
            stats.record_cache(res)
        engine.advance_epoch()
        self._last_cache_engine = engine
        self._observe(stats)

    def _ft_stream(self, stats: SoakStats, count: int, plan,
                   resistant: bool) -> None:
        alive_mask = np.asarray(
            [p in self.alive for p in self._ft_points], dtype=bool)
        done = 0
        while done < count:
            b = min(self.chunk, count - done)
            pairs = survivor_pairs(self._ft_points, alive_mask,
                                   self._fault_rng, b)
            if resistant:
                res = self.ft_engine.batch_resistant_lookup(
                    pairs[0], pairs[1], plan=plan)
            else:
                res = self.ft_engine.batch_simple_lookup(
                    pairs[0], pairs[1], rng=self._fault_rng, plan=plan)
            stats.record_ft(res)
            done += b

    def _phase_failstop(self, stats: SoakStats,
                        arg: Optional[float]) -> None:
        """Fail-stop wave + simple lookups + read-repair healing."""
        p = float(arg) if arg is not None else 0.08
        plan = random_failstop(sorted(self.alive), p, self._fault_rng)
        self.alive -= plan.failed
        from ..faults.models import FaultPlan
        cumulative = FaultPlan(failed=set(self._ft_points.tolist())
                               - self.alive)
        self._ft_stream(stats, max(1, self.chunk // 2), cumulative,
                        resistant=False)
        stats.record_repair(self.store.heal(self.alive))
        self._observe(stats)

    def _phase_byzantine(self, stats: SoakStats,
                         arg: Optional[float]) -> None:
        """Byzantine liars + Theorem 6.6 resistant lookups."""
        p = float(arg) if arg is not None else 0.05
        plan = random_byzantine(sorted(self.alive), p, self._fault_rng)
        plan.failed |= set(self._ft_points.tolist()) - self.alive
        self._ft_stream(stats, max(1, self.chunk // 4), plan,
                        resistant=True)
        self._observe(stats)

    def _phase_rebalance(self, stats: SoakStats,
                         arg: Optional[float]) -> None:
        """A Multiple-Choice join cohort drives smoothness back down."""
        joins = int(arg) if arg is not None else max(32, self.n0 // 32)
        for _ in range(joins):
            self.net.join(selector=self.selector)
            self.router.refresh()
        stats.record_churn(joins)
        self._observe(stats)

    def _phase_mass(self, stats: SoakStats, arg: Optional[float]) -> None:
        """§4.1 stress: a cohort joins, then a fraction of the net leaves."""
        fraction = float(arg) if arg is not None else 0.3
        m = min(self.net.n, max(64, self.n0 // 8))
        trace = ChurnTrace.mass_departure(self._churn_rng, n=m,
                                          fraction=fraction)
        run_churn(self.net, trace, self._churn_rng, selector=self.selector,
                  sample_every=1 << 30,
                  on_op=lambda step, op: self.router.refresh())
        stats.record_churn(len(trace.ops))
        self._observe(stats)

    # ------------------------------------------------------------ invariants
    def check_invariants(self, phase: str) -> List[Dict]:
        """Audit the cross-subsystem invariants; one row per check.

        * **owners**: the auto-refresh router agrees with a from-scratch
          ``compile_router()`` and with the live segment map on sampled
          targets (a stale router cannot hide behind the journal);
        * **merge**: re-merging every per-phase :class:`SoakStats`
          snapshot reproduces the running total bit-identically;
        * **erasure**: every stored item that is still recoverable
          decodes byte-identically to its put-time sha256 under the
          current alive set;
        * **cache**: the latest flash crowd's active trees are
          well-formed (sorted keys, roots, prefix-closure, depths);
        * **network**: the live network's own structural invariants.
        """
        rows: List[Dict] = []

        def add(check: str, ok: bool, detail: str = "") -> None:
            rows.append({"phase": phase, "check": check, "ok": bool(ok),
                         "detail": detail})

        fresh = self.net.compile_router()
        ys = self._check_rng.random(min(1024, 4 * self.net.n))
        owners_ok = (
            self.router.version == self.net.membership_version
            and np.array_equal(self.router.points, fresh.points)
            and np.array_equal(self.router.cover(ys),
                               self.net.segments.cover_array(ys))
        )
        add("owners", owners_ok,
            f"router v{self.router.version} vs fresh compile, "
            f"{ys.size} sampled targets")

        merged = SoakStats()
        for _, snap in self.phase_snapshots:
            merged.merge(snap)
        add("merge", merged.equals(self.total),
            f"{len(self.phase_snapshots)} phase snapshots")

        recoverable = 0
        verified = 0
        for key in self.store.keys():
            if self.store.is_recoverable(key, self.alive):
                recoverable += 1
                verified += bool(
                    self.store.verify(key, self.alive)
                    and self.store.get(key, self.alive) == self._blobs[key])
        add("erasure", verified == recoverable,
            f"{verified}/{recoverable} recoverable items decode "
            "byte-identically")

        if self._last_cache_engine is not None:
            try:
                nodes = self._last_cache_engine.check_well_formed()
                add("cache", True, f"{nodes} active nodes audited")
            except ValueError as exc:
                add("cache", False, str(exc))

        try:
            self.net.check_invariants()
            add("network", True, f"n={self.net.n}")
        except AssertionError as exc:  # pragma: no cover - healthy net
            add("network", False, str(exc))

        self.invariant_rows.extend(rows)
        if self.strict:
            for row in rows:
                if not row["ok"]:
                    raise AssertionError(
                        f"soak invariant {row['check']!r} violated after "
                        f"phase {phase!r}: {row['detail']}")
        return rows

    # ----------------------------------------------------------------- drive
    def run(self, phases: "str | List[Phase]" = DEFAULT_PHASES) -> Dict:
        """Execute the scenario; returns a seed-deterministic result dict.

        The dict carries per-phase rows, the merged :class:`SoakStats`
        summary, and the invariant audit — no wall-clock values, so the
        artifact is byte-reproducible per seed (timing belongs to the
        caller, see ``experiments/soak.py``).
        """
        plan = parse_phases(phases) if isinstance(phases, str) else phases
        free = [ph for ph in plan
                if ph.kind == "lookups" and ph.arg is None]
        explicit = sum(int(ph.arg) for ph in plan
                       if ph.kind == "lookups" and ph.arg is not None)
        pool = max(0, self.lookups_total - explicit)
        share = pool // len(free) if free else 0
        shares = [share] * len(free)
        if free:
            shares[0] += pool - share * len(free)

        rows: List[Dict] = []
        free_i = 0
        try:
            for i, ph in enumerate(plan):
                stats = SoakStats()
                if ph.kind == "lookups":
                    if ph.arg is None:
                        self._phase_lookups(stats, None, shares[free_i])
                        free_i += 1
                    else:
                        self._phase_lookups(stats, ph.arg, 0)
                elif ph.kind == "churn":
                    self._phase_churn(stats, ph.arg)
                elif ph.kind == "flash":
                    self._phase_flash(stats, ph.arg)
                elif ph.kind == "failstop":
                    self._phase_failstop(stats, ph.arg)
                elif ph.kind == "byzantine":
                    self._phase_byzantine(stats, ph.arg)
                elif ph.kind == "rebalance":
                    self._phase_rebalance(stats, ph.arg)
                elif ph.kind == "mass":
                    self._phase_mass(stats, ph.arg)
                name = f"{i + 1}:{ph.kind}"
                self.phase_snapshots.append((name, stats.snapshot()))
                self.total.merge(stats)
                if self.invariants:
                    self.check_invariants(name)
                rows.append({
                    "phase": name,
                    "n": self.net.n,
                    "rho": round(float(self.net.smoothness()), 2)
                    if self.net.n >= 2 else math.inf,
                    "lookups": stats.route.lookups,
                    "cached": stats.cache_requests,
                    "ft": stats.ft_pairs,
                    "churn_ops": stats.churn_ops,
                    "repairs": stats.repair.repaired,
                    "mean_hops": round(stats.mean_hops(), 2),
                })
        finally:
            # the engine owns the sharded executor's lifetime: release
            # the worker pool + shared-memory blocks even on a strict
            # invariant failure mid-scenario
            self.router.close_executor()

        invariants_ok = all(r["ok"] for r in self.invariant_rows)
        alive_frac = len(self.alive) / self._ft_points.size
        return {
            "n": self.n0,
            "final_n": self.net.n,
            "seed": self.seed,
            "chunk": self.chunk,
            "phases": [ph.kind for ph in plan],
            "rows": rows,
            "stats": self.total.summary(self.net.n),
            "invariants": self.invariant_rows,
            "invariants_ok": invariants_ok,
            "invariant_checks": len(self.invariant_rows),
            "owners_ok": all(r["ok"] for r in self.invariant_rows
                             if r["check"] == "owners"),
            "merge_ok": all(r["ok"] for r in self.invariant_rows
                            if r["check"] == "merge"),
            "healing_ok": all(r["ok"] for r in self.invariant_rows
                              if r["check"] == "erasure")
            and self.total.repair.lost == 0,
            "cache_ok": all(r["ok"] for r in self.invariant_rows
                            if r["check"] == "cache"),
            "ft_alive_fraction": alive_frac,
            "total_requests": self.total.total_requests,
        }
