"""The Bucket Solution for smoothness under deletions (paper §4.1).

Joins alone can be balanced by Multiple Choice, but deletions break it:
deleting each of ``2n`` smooth points with probability ½ leaves, w.h.p.,
``Ω(log n)`` consecutive gaps — a segment of length ``Ω(log n / n)``.
The paper's remedy (following Viceroy) groups ``Θ(log n)`` consecutive
servers into *buckets* that split/merge to stay logarithmic in size and
internally re-spread their ids when their local decomposition degrades.

:class:`BucketBalancer` maintains the bucket structure over a
:class:`~repro.core.segments.SegmentMap` and reports the *cost* of every
operation (how many servers changed id), so experiment E11 can verify
both the smoothness guarantee and the paper's remark that "it makes more
sense to rearrange only when the smoothness within the bucket exceeds
some tunable parameter".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core.interval import normalize
from ..core.segments import SegmentMap
from ..core.snapshot import ColumnarSnapshot, OpJournal

__all__ = ["BucketBalancer", "Bucket"]


@dataclass
class Bucket:
    """A contiguous chain of servers; ``points`` kept in ring order.

    The bucket's *territory* runs from its first point (inclusive) to the
    next bucket's first point (exclusive).
    """

    points: List[float] = field(default_factory=list)

    def size(self) -> int:
        return len(self.points)


class _PointsSnapshot(ColumnarSnapshot):
    """Frozen sorted id-point column following the balancer's SegmentMap.

    Pre-extraction, every :meth:`BucketBalancer.smoothness` query
    re-froze the whole sorted point list (``SegmentMap.as_array`` is an
    O(n) Python-float walk).  Now the balancer journals each
    insert/remove it performs and this snapshot replays the suffix as
    one ``np.insert``/``np.delete`` per op — the analytics of a long
    churn trace touch only the affected rows.
    """

    COLUMNS = ("points",)

    def __init__(self, segments: SegmentMap, journal: OpJournal) -> None:
        self._segments = segments
        super().__init__(journal=journal, auto_refresh=True)

    def _rebuild(self) -> None:
        self.points = self._segments.as_array()

    def _patch(self, pending) -> bool:
        for kind, point, idx in pending:
            if kind == "insert":
                self.insert_row(idx, points=point)
            else:
                self.delete_row(idx)
        return True


class BucketBalancer:
    """Maintains smooth ids under joins *and* leaves via bucket coordination.

    Parameters mirror §4.1: bucket sizes are kept within
    ``[lo_factor·log2 n, hi_factor·log2 n]``; a bucket whose internal
    smoothness (max/min gap within its territory) exceeds
    ``rebalance_threshold`` re-spreads its members evenly — each such
    rearrangement costs one id change per member, which the balancer
    records in ``total_id_changes``.
    """

    def __init__(
        self,
        rebalance_threshold: float = 4.0,
        lo_factor: float = 0.5,
        hi_factor: float = 4.0,
    ) -> None:
        if rebalance_threshold < 1:
            raise ValueError("rebalance threshold must be >= 1")
        self.segments = SegmentMap()
        self.buckets: List[Bucket] = []
        self.rebalance_threshold = rebalance_threshold
        self.lo_factor = lo_factor
        self.hi_factor = hi_factor
        self.total_id_changes = 0
        self.rebalances = 0
        # Rebalancing relocates servers, so clients address them by a
        # stable handle; the balancer tracks each handle's current id.
        self._next_handle = 0
        self._location: dict[int, float] = {}
        self._handle_at: dict[float, int] = {}
        # Every insert/remove is journaled so the analytics snapshot can
        # patch its frozen sorted column instead of re-freezing the map.
        self._journal = OpJournal()
        self._points_snapshot = _PointsSnapshot(self.segments, self._journal)

    # ---------------------------------------------------- journaled mutation
    def _insert_point(self, p: float) -> None:
        self._journal.append(("insert", float(p), self.segments.insert(p)))

    def _remove_point(self, p: float) -> None:
        self._journal.append(("remove", float(p), self.segments.remove(p)))

    # ------------------------------------------------------------- internals
    @property
    def n(self) -> int:
        return len(self.segments)

    def _log_n(self) -> float:
        return max(1.0, math.log2(max(2, self.n)))

    def _bucket_index_covering(self, z: float) -> int:
        """Bucket whose territory contains ``z``.

        The bucket list is a *rotation* of sorted ring order, so the
        territory test must wrap: z ∈ [start_i, start_{i+1}) mod 1.
        """
        if not self.buckets:
            raise LookupError("no buckets")
        if len(self.buckets) == 1:
            return 0
        for i in range(len(self.buckets)):
            start = self.buckets[i].points[0]
            nxt = self.buckets[(i + 1) % len(self.buckets)].points[0]
            if start <= nxt:
                if start <= z < nxt:
                    return i
            else:  # territory wraps through the seam
                if z >= start or z < nxt:
                    return i
        # z coincides with no half-open territory only through float quirks;
        # fall back to the bucket with the largest start <= z.
        best = max(range(len(self.buckets)), key=lambda i: self.buckets[i].points[0])
        return best

    def _territory(self, i: int) -> tuple[float, float]:
        """(start, end) of bucket ``i``'s territory; end may wrap past 1."""
        start = self.buckets[i].points[0]
        nxt = self.buckets[(i + 1) % len(self.buckets)].points[0]
        end = nxt if nxt > start or len(self.buckets) == 1 else nxt + 1.0
        if len(self.buckets) == 1:
            end = start + 1.0
        return start, end

    def _local_smoothness(self, i: int) -> float:
        start, end = self._territory(i)
        pts = sorted(p if p >= start else p + 1.0 for p in self.buckets[i].points)
        bounds = pts + [end]
        gaps = [b - a for a, b in zip(bounds, bounds[1:])]
        gaps.insert(0, pts[0] - start)  # zero when first point anchors the bucket
        gaps = [g for g in gaps if g > 0]
        if not gaps:
            return 1.0
        return max(gaps) / min(gaps)

    def _respread(self, i: int) -> None:
        """Evenly re-space bucket ``i``'s members over its territory."""
        bucket = self.buckets[i]
        start, end = self._territory(i)
        k = bucket.size()
        width = (end - start) / k
        new_points = [normalize(start + j * width) for j in range(k)]
        handles = [self._handle_at.pop(p) for p in bucket.points]
        for p in bucket.points:
            self._remove_point(p)
        placed: List[float] = []
        for p in new_points:
            q = p
            while q in self.segments:  # avoid collisions with other buckets
                q = normalize(q + width * 1e-6)
            self._insert_point(q)
            placed.append(q)
        bucket.points = placed
        for h, q in zip(handles, placed):
            self._handle_at[q] = h
            self._location[h] = q
        self.total_id_changes += k
        self.rebalances += 1

    def _maybe_rebalance(self, i: int) -> None:
        if self.buckets[i].size() >= 2 and (
            self._local_smoothness(i) > self.rebalance_threshold
        ):
            self._respread(i)

    def _split_if_needed(self, i: int) -> None:
        hi = self.hi_factor * self._log_n()
        b = self.buckets[i]
        if b.size() > hi:
            mid = b.size() // 2
            start = b.points[0]
            # Sort by ring position but keep the original float values:
            # round-tripping through ±1.0 would perturb points near 0.
            ordered = sorted(b.points, key=lambda p: p if p >= start else p + 1.0)
            b.points = ordered[:mid]
            self.buckets.insert(i + 1, Bucket(ordered[mid:]))

    def _merge_if_needed(self, i: int) -> None:
        lo = self.lo_factor * self._log_n()
        if len(self.buckets) <= 1:
            return
        b = self.buckets[i]
        if b.size() < lo:
            j = (i + 1) % len(self.buckets)
            if j == i:
                return
            other = self.buckets[j]
            # merge into ring order: i's territory precedes j's, so the
            # merged bucket keeps i's first point as its territory anchor.
            merged = Bucket(b.points + other.points)
            if j > i:
                self.buckets[i] = merged
                del self.buckets[j]
            else:  # i is last, j == 0: merged bucket stays last in the rotation
                self.buckets[i] = merged
                del self.buckets[0]
                i -= 1
            self._split_if_needed(i)

    # ------------------------------------------------------------ operations
    def join(self, rng: np.random.Generator) -> int:
        """Insert a server with a Single Choice id; bucket machinery rebalances.

        Returns a stable *handle* for the newcomer (its id point may later
        move when its bucket rebalances; use :meth:`location`).
        """
        z = float(rng.random())
        while z in self.segments:
            z = float(rng.random())
        handle = self._next_handle
        self._next_handle += 1
        if not self.buckets:
            self._insert_point(z)
            self.buckets.append(Bucket([z]))
            self._handle_at[z] = handle
            self._location[handle] = z
            return handle
        i = self._bucket_index_covering(z)
        self._insert_point(z)
        self._handle_at[z] = handle
        self._location[handle] = z
        start, _ = self._territory(i)
        b = self.buckets[i]
        b.points.append(z)
        b.points.sort(key=lambda p: p if p >= start else p + 1.0)
        self._split_if_needed(i)
        i = self._bucket_index_covering(self._location[handle])
        self._maybe_rebalance(i)
        return handle

    def location(self, handle: int) -> float:
        """Current id point of a server handle."""
        return self._location[handle]

    def leave(self, handle: int, rng: np.random.Generator) -> None:
        """Remove a server by handle; merge/rebalance to preserve smoothness."""
        if handle not in self._location:
            raise KeyError(f"unknown server handle {handle!r}")
        point = self._location.pop(handle)
        del self._handle_at[point]
        for i, b in enumerate(self.buckets):
            if point in b.points:
                b.points.remove(point)
                self._remove_point(point)
                if b.size() == 0:
                    del self.buckets[i]
                    return
                self._merge_if_needed(i)
                i = min(i, len(self.buckets) - 1)
                self._maybe_rebalance(i)
                return
        raise AssertionError(
            f"point {point!r} tracked by handle {handle} but not in any bucket"
        )  # pragma: no cover

    # ------------------------------------------------------------- analytics
    def smoothness(self) -> float:
        """``ρ`` over the patched frozen column (no per-query re-freeze).

        Same IEEE-754 ops as :meth:`SegmentMap.smoothness` via the
        shared :meth:`SegmentMap.lengths_from_array`, so the result is
        bit-identical to the pre-snapshot delegation.
        """
        lens = SegmentMap.lengths_from_array(
            self._points_snapshot.refresh().points)
        if len(lens) == 0:
            raise LookupError("empty segment map has no smoothness")
        mn = lens.min()
        if mn <= 0:
            return math.inf
        return float(lens.max() / mn)

    def check_invariants(self) -> None:
        """Buckets partition the point set and stay in ring order."""
        all_pts = sorted(p for b in self.buckets for p in b.points)
        assert all_pts == list(self.segments.points), "bucket/segment mismatch"
        assert np.array_equal(
            self._points_snapshot.refresh().points, self.segments.as_array()
        ), "points snapshot out of sync with the segment map"
        assert sorted(self._handle_at) == all_pts, "handle map out of sync"
        assert sorted(self._location.values()) == all_pts, "location map out of sync"
        starts = [b.points[0] for b in self.buckets]
        if len(starts) > 1:
            rotation = starts.index(min(starts))
            rotated = starts[rotation:] + starts[:rotation]
            assert rotated == sorted(starts), "buckets out of ring order"
