"""Id load-balancing algorithms (paper §4 and §5.3).

Strategies keep the decomposition smoothness ρ small; the bucket balancer
additionally survives deletions.
"""

from .buckets import Bucket, BucketBalancer
from .strategies import (
    HybridChoice,
    ImprovedSingleChoice,
    MultipleChoice,
    SingleChoice,
    estimate_log_n,
)
from .two_dim import (
    TwoDimMultipleChoice,
    coarse_grid_side,
    fine_grid_side,
    is_smooth_2d,
    smoothness_2d,
)

__all__ = [
    "Bucket",
    "BucketBalancer",
    "HybridChoice",
    "ImprovedSingleChoice",
    "MultipleChoice",
    "SingleChoice",
    "TwoDimMultipleChoice",
    "coarse_grid_side",
    "estimate_log_n",
    "fine_grid_side",
    "is_smooth_2d",
    "smoothness_2d",
]
