"""Id-selection (load balancing) algorithms of paper §4.

The smoothness ``ρ`` of the id decomposition drives every bound in the
paper (degree, path length, congestion), so §4 is about making joining
servers pick ids that keep ``ρ`` small:

* **Single Choice** — uniform id.  Lemma 4.1: longest segment
  ``Θ(log n / n)``, shortest ``Θ(1/n²)`` ⇒ ``ρ = Θ(n log n)``.
* **Improved Single Choice** — sample a point, split the *covering*
  segment at its midpoint.  Lemma 4.2: shortest ``Θ(1/(n log n))``,
  longest ``O(log n / n)`` ⇒ ``ρ = O(log² n)``.
* **Multiple Choice** — sample ``t·log n`` points, split the longest
  segment found.  Lemma 4.3: shortest ``≥ 1/4n`` w.h.p.; Theorem 4.4:
  inserting ``n`` points *self-corrects* any adversarial configuration to
  max segment ``O(1/n)``.

Each strategy is a callable ``(network, rng) -> point`` usable directly
as the ``selector`` of :meth:`repro.core.DistanceHalvingNetwork.join`,
and also exposes ``select(segments, rng)`` for raw
:class:`~repro.core.segments.SegmentMap` experiments.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol

import numpy as np

from ..core.segments import SegmentMap

__all__ = [
    "IdStrategy",
    "SingleChoice",
    "ImprovedSingleChoice",
    "MultipleChoice",
    "HybridChoice",
    "estimate_log_n",
]


def estimate_log_n(segments: SegmentMap, point: float) -> int:
    """Estimate ``log2 n`` from the gap to the ring predecessor (§6.2).

    Viceroy's lemma (quoted as the display before Lemma 6.2):
    ``log n − log log n − 1 ≤ log(1/d(x_i, x_{i-1})) ≤ 3 log n`` w.h.p.,
    so ``round(log2(1/gap))`` is a multiplicative estimate of ``log n``.
    For the *current* point the predecessor gap is measured after its own
    insertion.
    """
    n = len(segments)
    if n <= 1:
        return 1
    pred = segments.predecessor(point)
    gap = (point - pred) % 1.0
    if gap <= 0:
        return 1
    return max(1, round(math.log2(1.0 / gap)))


class IdStrategy(Protocol):
    """Interface of an id-selection strategy (step 1 of Algorithm Join)."""

    def select(self, segments: SegmentMap, rng: np.random.Generator) -> float:
        """Choose an id given the current decomposition."""
        ...  # pragma: no cover

    def __call__(self, net, rng: np.random.Generator) -> float:
        ...  # pragma: no cover


class SingleChoice:
    """Algorithm Single Choice: a uniformly random id (§4)."""

    name = "single"

    def select(self, segments: SegmentMap, rng: np.random.Generator) -> float:
        return float(rng.random())

    def __call__(self, net, rng: np.random.Generator) -> float:
        return self.select(net.segments, rng)


class ImprovedSingleChoice:
    """Improved Single Choice: split the covering segment at its midpoint (§4)."""

    name = "improved"

    def select(self, segments: SegmentMap, rng: np.random.Generator) -> float:
        z = float(rng.random())
        if len(segments) == 0:
            return z
        seg = segments.segment(segments.cover(z))
        return float(seg.midpoint)

    def __call__(self, net, rng: np.random.Generator) -> float:
        return self.select(net.segments, rng)


class HybridChoice:
    """Local+random probing à la Kenthapadi–Manku (§4.2's pointer).

    §4.2 cites [21]: the Multiple Choice analysis generalises to the
    cheaper scheme probing *one* random location plus the ``r − 1``
    segments following it in key space — the probes ride the existing
    ring links instead of ``r`` independent lookups.  We implement it to
    validate that remark: smoothness lands between Improved Single
    Choice and full Multiple Choice at roughly one lookup per join.
    """

    name = "hybrid"

    def __init__(self, r: Optional[int] = None):
        if r is not None and r < 1:
            raise ValueError("probe run length r must be >= 1")
        self.r = r

    def select(self, segments: SegmentMap, rng: np.random.Generator) -> float:
        if len(segments) == 0:
            return float(rng.random())
        r = self.r if self.r is not None else max(
            1, math.ceil(math.log2(max(2, len(segments))))
        )
        i = segments.cover(float(rng.random()))
        n = len(segments)
        best = i
        best_len = float(segments.segment_length(i))
        for k in range(1, min(r, n)):
            j = (i + k) % n
            length = float(segments.segment_length(j))
            if length > best_len:
                best, best_len = j, length
        return float(segments.segment(best).midpoint)

    def __call__(self, net, rng: np.random.Generator) -> float:
        return self.select(net.segments, rng)


class MultipleChoice:
    """Multiple Choice Algorithm: probe ``t·log n`` segments, split the longest.

    ``t`` is the paper's constant (Lemma 4.3 needs ``t ≥ 2``; the
    self-correction proof of Theorem 4.4 uses ``t = 20``; we default to 4
    which already exhibits both behaviours at experiment sizes).  When
    ``log n`` cannot be read off the decomposition size (a real system
    would not know ``n``), :func:`estimate_log_n` on a random probe is
    used — set ``estimate=True`` to exercise that mode.
    """

    name = "multiple"

    def __init__(self, t: int = 4, estimate: bool = False):
        if t < 1:
            raise ValueError("probe multiplier t must be >= 1")
        self.t = int(t)
        self.estimate = estimate

    def _log_n(self, segments: SegmentMap, rng: np.random.Generator) -> int:
        if not self.estimate:
            return max(1, math.ceil(math.log2(max(2, len(segments)))))
        z = float(rng.random())
        return estimate_log_n(segments, segments.cover_point(z))

    def select(self, segments: SegmentMap, rng: np.random.Generator) -> float:
        if len(segments) == 0:
            return float(rng.random())
        probes = self.t * self._log_n(segments, rng)
        samples = rng.random(probes)
        best_idx = None
        best_len = -1.0
        seen: set[int] = set()
        for z in samples:
            i = segments.cover(float(z))
            if i in seen:
                continue
            seen.add(i)
            length = float(segments.segment_length(i))
            if length > best_len:
                best_len = length
                best_idx = i
        assert best_idx is not None
        return float(segments.segment(best_idx).midpoint)

    def __call__(self, net, rng: np.random.Generator) -> float:
        return self.select(net.segments, rng)
