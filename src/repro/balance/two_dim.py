"""Two-dimensional id balancing (paper §5.3) and Definition 7 smoothness.

In the 2D name space ``I = [0,1) × [0,1)`` the Multiple Choice idea
becomes grid-based: a joining server samples ``t·log n`` candidate
points, preferring one whose *fine* cell (grid of ~2n cells, ``r(z)``) is
empty and whose *coarse* cell (grid of ~n/2 cells, ``R(z)``) is also
empty; failing that, any empty fine cell.  Lemma 5.3: after ``n`` joins
the set is 2-smooth w.h.p. — every fine cell holds ≤ 1 point and every
coarse cell ≥ 1 point — which by Definition 7 is exactly what the
Gabber–Galil expander discretization (§5.2) needs.

Reproduction notes:

* The paper's algorithm divides I "to 2n rectangles" where ``n`` is the
  *final* population ("we assume for convenience that the estimation of n
  is accurate"), so :class:`TwoDimMultipleChoice` takes the target ``n``
  up front; a grid that grows while points arrive would let two old
  points share a cell of the final grid and void Lemma 5.3.
* Definition 7 as printed swaps its inequalities (ρn cells can not each
  contain "at least one" of n points, nor can n/ρ cells each contain "at
  most one"); we implement the evident intent — ≥ 1 point per *coarse*
  cell and ≤ 1 point per *fine* cell — which matches both the algorithm
  and the Voronoi-cell-area argument of §5.1.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = [
    "fine_grid_side",
    "coarse_grid_side",
    "cell_of",
    "TwoDimMultipleChoice",
    "is_smooth_2d",
    "smoothness_2d",
]

Point2D = Tuple[float, float]


def fine_grid_side(n: int) -> int:
    """Side of the ``r(z)`` grid: ≥ 2n cells of size ~1/√(2n)."""
    return max(1, math.ceil(math.sqrt(2 * max(1, n))))


def coarse_grid_side(n: int) -> int:
    """Side of the ``R(z)`` grid: ≤ n/2 cells of size ~√(2/n)."""
    return max(1, math.floor(math.sqrt(max(1, n) / 2)))


def cell_of(p: Point2D, side: int) -> Tuple[int, int]:
    """Integer grid cell of a point for a ``side × side`` division of I."""
    x, y = p[0] % 1.0, p[1] % 1.0
    return (min(side - 1, int(x * side)), min(side - 1, int(y * side)))


class TwoDimMultipleChoice:
    """The 2D Multiple Choice join algorithm (§5.3) for a target size ``n``.

    Maintains the occupied-cell sets incrementally so each join costs
    ``O(t log n)`` probes (the paper's lookups).  ``failed`` counts joins
    that fell through to step 4's last resort (``x ← z_1``), which
    Lemma 5.3 bounds in probability by ``1/n²`` per join.
    """

    def __init__(self, n_target: int, t: int = 3):
        if t < 1:
            raise ValueError("probe multiplier t must be >= 1")
        if n_target < 1:
            raise ValueError("target population must be >= 1")
        self.t = int(t)
        self.n_target = int(n_target)
        self.fine = fine_grid_side(n_target)
        self.coarse = coarse_grid_side(n_target)
        self.points: List[Point2D] = []
        self._occ_fine: Set[Tuple[int, int]] = set()
        self._occ_coarse: Set[Tuple[int, int]] = set()
        self.failed = 0

    @property
    def n(self) -> int:
        return len(self.points)

    def _samples(self, rng: np.random.Generator) -> List[Point2D]:
        k = self.t * max(1, math.ceil(math.log2(max(2, self.n_target))))
        return [(float(a), float(b)) for a, b in rng.random((k, 2))]

    def _accept(self, z: Point2D) -> Point2D:
        self.points.append(z)
        self._occ_fine.add(cell_of(z, self.fine))
        self._occ_coarse.add(cell_of(z, self.coarse))
        return z

    def join(self, rng: np.random.Generator) -> Point2D:
        """Insert one server; returns its chosen 2D id."""
        samples = self._samples(rng)
        # Step 3: a sample with both r(z) and R(z) empty.
        for z in samples:
            if cell_of(z, self.fine) not in self._occ_fine and (
                cell_of(z, self.coarse) not in self._occ_coarse
            ):
                return self._accept(z)
        # Step 4: any sample with empty r(z); else fail to z1.
        for z in samples:
            if cell_of(z, self.fine) not in self._occ_fine:
                return self._accept(z)
        self.failed += 1
        return self._accept(samples[0])

    def populate(self, count: Optional[int] = None, rng: Optional[np.random.Generator] = None) -> None:
        """Join ``count`` servers (default: up to the target population)."""
        assert rng is not None, "populate requires an rng"
        count = self.n_target if count is None else count
        for _ in range(count):
            self.join(rng)


def is_smooth_2d(points: Sequence[Point2D], rho: float) -> bool:
    """Definition 7 (with the printed inequality swap corrected).

    (1) dividing I into ~n/ρ coarse squares, each contains ≥ 1 point;
    (2) dividing I into ~ρn fine squares, each contains ≤ 1 point.
    Grid sides are rounded conservatively (floor for the "≥1" grid, ceil
    for the "≤1" grid) so a True answer certifies the property at the
    stated ρ.
    """
    n = len(points)
    if n == 0:
        return False
    if rho < 1:
        raise ValueError("rho must be >= 1")
    side_coarse = max(1, math.floor(math.sqrt(n / rho)))
    filled = {cell_of(p, side_coarse) for p in points}
    if len(filled) < side_coarse * side_coarse:
        return False
    side_fine = max(1, math.ceil(math.sqrt(rho * n)))
    counts: dict = {}
    for p in points:
        c = cell_of(p, side_fine)
        counts[c] = counts.get(c, 0) + 1
        if counts[c] > 1:
            return False
    return True


def smoothness_2d(points: Sequence[Point2D], max_rho: float = 64.0) -> float:
    """Smallest ``ρ`` (on a geometric ladder) certifying Definition 7.

    Returns ``inf`` when even ``max_rho`` fails — e.g. for i.i.d. uniform
    points, which are badly 2D-smooth exactly like the 1D Single Choice.
    """
    rho = 1.0
    while rho <= max_rho:
        if is_smooth_2d(points, rho):
            return rho
        rho *= 1.5
    return math.inf
