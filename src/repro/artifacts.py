"""Shared NumPy-safe JSON artifact helpers for the bench CLI.

Every ``bench-*``/``soak`` subcommand used to carry its own copy of the
"NumPy scalar → Python scalar" JSON dance; this module is the single
implementation.  :func:`write_artifact` wraps one measurement dict into
the artifact envelope CI uploads and ``bench-compare`` gates on — and
stamps the **execution shape** (``workers`` + machine ``cpu_count``)
into every artifact, so compares can refuse diffs across different
worker counts instead of mistaking a sharding change for a throughput
regression.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

__all__ = ["json_default", "to_jsonable", "artifact_payload",
           "write_artifact"]


def json_default(value):
    """``json.dump(default=...)`` hook: NumPy scalars to Python scalars."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON serializable: {type(value)!r}")


def to_jsonable(value):
    """Deep-convert a result tree to JSON-native types.

    NumPy scalars go through ``.item()``, arrays through ``.tolist()``,
    tuples become lists; dict keys are stringified the way ``json.dump``
    would.  Shared by the artifact writer and the soak experiment's
    deterministic payload, so "what the artifact holds" has exactly one
    definition.
    """
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # ndarray
        return value.tolist()
    if hasattr(value, "item"):  # NumPy scalar
        return value.item()
    return value


def artifact_payload(command: str, result: Dict, ok: bool,
                     workers: int = 1) -> Dict:
    """The artifact envelope: verdict + execution shape + measurement."""
    return {
        "command": command,
        "ok": bool(ok),
        "workers": int(workers),
        "cpu_count": int(os.cpu_count() or 1),
        "result": result,
    }


def write_artifact(path: Optional[str], command: str, result: Dict,
                   ok: bool, workers: int = 1) -> None:
    """Dump one bench measurement as a JSON artifact (NumPy-safe).

    No-op without a path.  The parent directory is created on demand and
    the file ends in a newline (byte-stable artifacts diff cleanly).
    """
    if not path:
        return
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    payload = artifact_payload(command, result, ok, workers=workers)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=json_default)
        fh.write("\n")
    print(f"wrote {path}")
