"""Applications of the dynamic expander (paper §5.2's application list).

"Possible applications for dynamic expanders include load balancing jobs
and an infrastructure for maintaining probabilistic quorums" — plus the
cited random-walk search of Gkantsidis–Mihail–Saberi [15].  This module
implements all three on top of any NetworkX graph (in practice the
:class:`~repro.expander.gabber_galil.GabberGalilNetwork` topology):

* :func:`random_walk` / :func:`mixing_time_estimate` — walks mix in
  O(log n) steps on an expander, the primitive everything else uses;
* :class:`ProbabilisticQuorum` — Malkhi–Reiter–Wright-style quorums: two
  random √(cn)-size samples intersect w.h.p.; the expander walk supplies
  near-uniform samples *without* global membership knowledge;
* :func:`balance_load_by_walks` — place jobs on walk endpoints; on an
  expander the max load stays within a constant of uniform placement.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Optional, Set

import networkx as nx
import numpy as np

__all__ = [
    "random_walk",
    "walk_endpoint_distribution",
    "mixing_time_estimate",
    "ProbabilisticQuorum",
    "balance_load_by_walks",
]


def random_walk(graph: nx.Graph, start: Hashable, steps: int,
                rng: np.random.Generator) -> Hashable:
    """Endpoint of a simple random walk of ``steps`` hops."""
    current = start
    for _ in range(steps):
        nbs = list(graph.neighbors(current))
        current = nbs[int(rng.integers(len(nbs)))]
    return current


def walk_endpoint_distribution(graph: nx.Graph, start: Hashable, steps: int,
                               rng: np.random.Generator, samples: int = 500
                               ) -> Counter:
    """Empirical endpoint distribution of many walks from ``start``."""
    return Counter(random_walk(graph, start, steps, rng) for _ in range(samples))


def mixing_time_estimate(graph: nx.Graph, rng: np.random.Generator,
                         tolerance: float = 0.25, max_steps: int = 256,
                         samples: int = 400) -> int:
    """Smallest walk length whose endpoint distribution is near-stationary.

    Total-variation distance against the degree-proportional stationary
    distribution, estimated from ``samples`` walks; expanders give
    O(log n), cycles Θ(n²) (the contrast tested in the suite).
    """
    nodes = list(graph.nodes())
    total_degree = sum(d for _, d in graph.degree())
    stationary = {v: graph.degree(v) / total_degree for v in nodes}
    start = nodes[0]
    steps = 1
    while steps <= max_steps:
        counts = walk_endpoint_distribution(graph, start, steps, rng, samples)
        tv = 0.5 * sum(
            abs(counts.get(v, 0) / samples - stationary[v]) for v in nodes
        )
        # empirical TV has sampling noise ~ sqrt(n/samples); accept below
        # tolerance + that floor
        noise = 0.5 * math.sqrt(len(nodes) / samples)
        if tv <= tolerance + noise:
            return steps
        steps *= 2
    return max_steps


class ProbabilisticQuorum:
    """Probabilistic quorums via expander walks (§5.2's application).

    A quorum is the endpoint multiset of ``quorum_size`` independent
    walks of ``walk_length`` steps.  With near-uniform endpoints, two
    quorums of size ``≥ √(2 λ n)`` intersect with probability
    ``≥ 1 − e^{−λ}`` (birthday bound) — no server needs a global view.
    """

    def __init__(self, graph: nx.Graph, rng: np.random.Generator,
                 walk_length: Optional[int] = None,
                 quorum_size: Optional[int] = None):
        self.graph = graph
        self.rng = rng
        n = graph.number_of_nodes()
        self.walk_length = walk_length if walk_length is not None else (
            max(2, 2 * int(math.ceil(math.log2(n))))
        )
        self.quorum_size = quorum_size if quorum_size is not None else (
            max(1, int(math.ceil(math.sqrt(4.0 * n))))
        )

    def sample(self, start: Hashable) -> Set[Hashable]:
        """Draw one quorum starting from a member's own position."""
        return {
            random_walk(self.graph, start, self.walk_length, self.rng)
            for _ in range(self.quorum_size)
        }

    def intersection_rate(self, trials: int = 100) -> float:
        """Empirical probability that two independent quorums intersect."""
        nodes = list(self.graph.nodes())
        hits = 0
        for _ in range(trials):
            a = self.sample(nodes[int(self.rng.integers(len(nodes)))])
            b = self.sample(nodes[int(self.rng.integers(len(nodes)))])
            hits += bool(a & b)
        return hits / trials


def balance_load_by_walks(graph: nx.Graph, jobs: int, rng: np.random.Generator,
                          walk_length: Optional[int] = None) -> Counter:
    """Place ``jobs`` by walking from random origins; returns per-node load.

    On an expander the endpoint distribution is near-stationary, so the
    max load matches balls-into-bins up to constants — the "load
    balancing jobs" application of §5.2.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    wl = walk_length if walk_length is not None else max(2, 2 * int(math.ceil(math.log2(n))))
    loads: Counter = Counter()
    for _ in range(jobs):
        origin = nodes[int(rng.integers(n))]
        loads[random_walk(graph, origin, wl, rng)] += 1
    return loads
