"""Dynamic Voronoi diagrams on the unit torus (paper §5.1).

In the 2D name space each server's cell is its Voronoi region — "a
simpler way" than CAN's rectangles, as the paper puts it (Definition 6).
The torus has no boundary, so we compute the planar diagram of the 3×3
tiling of the generator set and read off the central copy: every central
cell is then finite and correct, and Delaunay adjacency wraps properly.

Supported queries (all the §5 protocols need):

* ``owner(p)`` — nearest generator (toroidal metric), via a KD-tree on
  the tiling;
* ``cell_area(i)`` — Lebesgue measure of cell ``i`` (smooth sets have
  cells of area Θ(1/n), the fact Corollary 5.2 rests on);
* ``delaunay_neighbors(i)`` — the dual triangulation (degree 6 on
  average by Euler's formula, as §5.1 notes);
* incremental ``insert`` — the paper's point that a Voronoi diagram can
  be maintained locally; we rebuild lazily and expose
  ``affected_cells`` so tests can verify the locality claim.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np
from scipy.spatial import Delaunay, Voronoi, cKDTree

__all__ = ["TorusVoronoi"]

Point2D = Tuple[float, float]

_OFFSETS = [(dx, dy) for dx in (-1.0, 0.0, 1.0) for dy in (-1.0, 0.0, 1.0)]


class TorusVoronoi:
    """Voronoi diagram of a point set on ``[0,1)²`` with wrap-around."""

    def __init__(self, points: Sequence[Point2D]):
        pts = np.asarray([(p[0] % 1.0, p[1] % 1.0) for p in points], dtype=float)
        if len(pts) < 2:
            raise ValueError("need at least two generators")
        if len(np.unique(pts, axis=0)) != len(pts):
            raise ValueError("duplicate generators")
        self.points = pts
        self._build()

    def _build(self) -> None:
        n = len(self.points)
        tiles = []
        for dx, dy in _OFFSETS:
            tiles.append(self.points + np.array([dx, dy]))
        self._tiled = np.vstack(tiles)
        # center copy occupies the block at offset (0,0) — index it
        center_block = _OFFSETS.index((0.0, 0.0))
        self._center_offset = center_block * n
        self._tree = cKDTree(self._tiled)
        self._voronoi = Voronoi(self._tiled)
        self._delaunay = Delaunay(self._tiled)
        self._areas: Dict[int, float] = {}
        self._neighbors: Dict[int, Set[int]] = {}

    # -------------------------------------------------------------- queries
    @property
    def n(self) -> int:
        return len(self.points)

    def owner(self, p: Point2D) -> int:
        """Index of the generator whose cell contains ``p`` (torus metric)."""
        q = np.array([p[0] % 1.0, p[1] % 1.0])
        _, idx = self._tree.query(q)
        return int(idx % self.n)

    def owner_many(self, ps: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`owner` for an (m, 2) array."""
        qs = np.mod(ps, 1.0)
        _, idx = self._tree.query(qs)
        return (idx % self.n).astype(int)

    def cell_area(self, i: int) -> float:
        """Area of generator ``i``'s cell (areas sum to 1 over the torus)."""
        if i not in self._areas:
            region_idx = self._voronoi.point_region[self._center_offset + i]
            region = self._voronoi.regions[region_idx]
            if -1 in region or len(region) < 3:  # pragma: no cover - guards
                self._areas[i] = float("nan")
            else:
                poly = self._voronoi.vertices[region]
                x, y = poly[:, 0], poly[:, 1]
                self._areas[i] = float(
                    0.5 * abs(np.dot(x, np.roll(y, 1)) - np.dot(y, np.roll(x, 1)))
                )
        return self._areas[i]

    def cell_areas(self) -> np.ndarray:
        return np.array([self.cell_area(i) for i in range(self.n)])

    def delaunay_neighbors(self, i: int) -> List[int]:
        """Indices of cells adjacent to cell ``i`` in the dual triangulation."""
        if i not in self._neighbors:
            indptr, indices = self._delaunay.vertex_neighbor_vertices
            raw = indices[indptr[self._center_offset + i]: indptr[self._center_offset + i + 1]]
            self._neighbors[i] = {int(j % self.n) for j in raw} - {i}
        return sorted(self._neighbors[i])

    def average_delaunay_degree(self) -> float:
        """Euler's formula: always < 6 for planar triangulations."""
        return float(np.mean([len(self.delaunay_neighbors(i)) for i in range(self.n)]))

    # ------------------------------------------------------------- updates
    def insert(self, p: Point2D) -> Set[int]:
        """Add a generator; returns the cells adjacent to it afterwards.

        Locality claim of §5.1: "the entrance of a new generator ...
        affects only the cells adjacent to the location of the generator"
        — i.e. exactly the Delaunay neighbours of the new cell, which is
        what this returns (every cell whose shape changed is among them).
        """
        self.points = np.vstack([self.points, [p[0] % 1.0, p[1] % 1.0]])
        self._build()
        return set(self.delaunay_neighbors(self.n - 1))

    def remove(self, i: int) -> Set[int]:
        """Remove generator ``i``; returns its former neighbours (who absorb)."""
        affected = set(self.delaunay_neighbors(i))
        self.points = np.delete(self.points, i, axis=0)
        self._build()
        return {j - 1 if j > i else j for j in affected}
