"""Gabber–Galil dynamic expander and 2D substrate (paper §5)."""

from .applications import (
    ProbabilisticQuorum,
    balance_load_by_walks,
    mixing_time_estimate,
    random_walk,
    walk_endpoint_distribution,
)
from .expansion import (
    cheeger_bounds,
    sampled_vertex_expansion,
    spectral_gap,
    vertex_expansion_of_set,
)
from .quorums import PathQuorumSystem
from .gabber_galil import (
    GG_EXPANSION_CONSTANT,
    GabberGalilNetwork,
    gg_f,
    gg_f_inv,
    gg_g,
    gg_g_inv,
)
from .voronoi import TorusVoronoi

__all__ = [
    "GG_EXPANSION_CONSTANT",
    "PathQuorumSystem",
    "ProbabilisticQuorum",
    "balance_load_by_walks",
    "mixing_time_estimate",
    "random_walk",
    "walk_endpoint_distribution",
    "GabberGalilNetwork",
    "TorusVoronoi",
    "cheeger_bounds",
    "gg_f",
    "gg_f_inv",
    "gg_g",
    "gg_g_inv",
    "sampled_vertex_expansion",
    "spectral_gap",
    "vertex_expansion_of_set",
]
