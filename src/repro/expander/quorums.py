"""Dynamic quorum systems over the 2D continuous space (paper §5.1).

Section 5.1 notes that "in [37] the continuous-discrete approach was used
to construct a dynamic quorum system" (Naor & Wieder, *Scalable and
dynamic quorum systems*).  This module reproduces that companion
construction's core idea on our torus Voronoi substrate:

*think continuously* — in the unit square, any left-to-right crossing
curve intersects any bottom-to-top crossing curve (a topological fact);

*act discretely* — a **read quorum** is the set of cells traversed by a
horizontal crossing through a server's own cell, a **write quorum** the
cells of a vertical crossing.  Every read quorum then shares at least
one *cell* with every write quorum, regardless of which servers chose
them and of joins/leaves in between — consistency comes from geometry,
not coordination.

Quorum size is the number of cells a crossing visits: ``Θ(√n)`` for a
smooth tessellation (cells have diameter Θ(1/√n)), matching the optimal
grid quorum load.
"""

from __future__ import annotations

import math
from typing import List, Literal, Set, Tuple

import numpy as np

from .voronoi import TorusVoronoi

__all__ = ["PathQuorumSystem"]

Axis = Literal["horizontal", "vertical"]


class PathQuorumSystem:
    """Crossing-path quorums over a torus Voronoi tessellation.

    A crossing is computed by sampling the straight line through the
    generator's cell parallel to the chosen axis and collecting the cell
    owners — the discrete footprint of a continuous crossing curve, so
    the horizontal/vertical intersection property is inherited from the
    plane.
    """

    def __init__(self, voronoi: TorusVoronoi, samples_per_unit: int = 0):
        self.voronoi = voronoi
        # enough samples that consecutive hits fall in adjacent cells:
        # cell diameter ~ 1/√n ⇒ ~4√n samples across the unit interval
        self.samples = samples_per_unit or max(64, 6 * int(math.sqrt(voronoi.n) + 1) * 4)

    # --------------------------------------------------------------- quorums
    def _crossing(self, through: Tuple[float, float], axis: Axis) -> List[int]:
        ts = (np.arange(self.samples) + 0.5) / self.samples
        if axis == "horizontal":
            pts = np.stack([ts, np.full_like(ts, through[1] % 1.0)], axis=1)
        else:
            pts = np.stack([np.full_like(ts, through[0] % 1.0), ts], axis=1)
        owners = self.voronoi.owner_many(pts)
        out: List[int] = []
        for o in owners:
            if not out or out[-1] != o:
                out.append(int(o))
        if len(out) > 1 and out[0] == out[-1]:
            out.pop()  # the crossing is a cycle on the torus
        return out

    def read_quorum(self, member: int) -> Set[int]:
        """Horizontal crossing through server ``member``'s generator."""
        return set(self._crossing(tuple(self.voronoi.points[member]), "horizontal"))

    def write_quorum(self, member: int) -> Set[int]:
        """Vertical crossing through server ``member``'s generator."""
        return set(self._crossing(tuple(self.voronoi.points[member]), "vertical"))

    # ------------------------------------------------------------ properties
    def quorum_size_bound(self, rho: float = 4.0) -> float:
        """Smooth tessellations give crossings of O(√(ρ n)) cells."""
        return 4.0 * math.sqrt(rho * self.voronoi.n)

    def verify_intersection(self, trials: int, rng: np.random.Generator) -> float:
        """Fraction of random read/write quorum pairs that intersect.

        The geometric argument makes this 1.0 identically; returned as a
        rate so tests surface any discretization artefact.
        """
        n = self.voronoi.n
        hits = 0
        for _ in range(trials):
            r = self.read_quorum(int(rng.integers(n)))
            w = self.write_quorum(int(rng.integers(n)))
            hits += bool(r & w)
        return hits / trials

    def load(self, samples: int, rng: np.random.Generator) -> float:
        """Empirical quorum-system load: max access frequency over cells.

        Grid-style quorums achieve the O(1/√n) optimum up to smoothness
        constants.
        """
        from collections import Counter

        n = self.voronoi.n
        counts: Counter = Counter()
        for _ in range(samples):
            member = int(rng.integers(n))
            q = self.read_quorum(member) if rng.random() < 0.5 else (
                self.write_quorum(member)
            )
            for cell in q:
                counts[cell] += 1
        return max(counts.values()) / samples
