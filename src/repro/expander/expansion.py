"""Expansion verification: spectral gap, Cheeger bounds, sampled cuts.

"The main advantage of our approach is that in our case the expansion of
the network could be verified" (§5.2) — this module is that verifier.

For a graph ``G``:

* :func:`spectral_gap` — ``λ₂`` of the normalized Laplacian; by Cheeger,
  conductance ``h`` satisfies ``λ₂/2 ≤ h ≤ √(2 λ₂)``, so ``λ₂ > 0``
  bounded away from zero certifies expansion;
* :func:`sampled_vertex_expansion` — direct ``|δS|/|S|`` minimisation
  over random subsets *and* geometric (axis-aligned box) subsets, the
  natural near-worst cuts for a torus-derived graph;
* :func:`vertex_expansion_of_set` — exact boundary of one cut.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple

import networkx as nx
import numpy as np
import scipy.sparse.linalg as spla

__all__ = [
    "spectral_gap",
    "cheeger_bounds",
    "vertex_expansion_of_set",
    "sampled_vertex_expansion",
]


def spectral_gap(graph: nx.Graph) -> float:
    """``λ₂`` of the normalized Laplacian (0 iff disconnected)."""
    n = graph.number_of_nodes()
    if n < 3:
        raise ValueError("need at least three nodes")
    if not nx.is_connected(graph):
        return 0.0
    L = nx.normalized_laplacian_matrix(graph).astype(float)
    if n <= 600:
        eigvals = np.linalg.eigvalsh(L.toarray())
        return float(np.sort(eigvals)[1])
    vals = spla.eigsh(L.tocsc(), k=2, sigma=-0.01, which="LM",
                      return_eigenvectors=False)
    return float(np.sort(vals)[1])


def cheeger_bounds(lambda2: float) -> Tuple[float, float]:
    """Conductance bounds ``(λ₂/2, √(2 λ₂))`` from the spectral gap."""
    return lambda2 / 2.0, math.sqrt(max(0.0, 2.0 * lambda2))


def vertex_expansion_of_set(graph: nx.Graph, subset: Iterable) -> float:
    """``|δS| / |S|`` for one set: neighbours outside over size (§5.2)."""
    s = set(subset)
    if not s:
        raise ValueError("subset must be non-empty")
    boundary = set()
    for v in s:
        for u in graph.neighbors(v):
            if u not in s:
                boundary.add(u)
    return len(boundary) / len(s)


def sampled_vertex_expansion(
    graph: nx.Graph,
    rng: np.random.Generator,
    trials: int = 64,
    positions: Optional[Sequence[Tuple[float, float]]] = None,
) -> float:
    """Minimum observed ``|δS|/|S|`` over random and geometric cuts.

    Random subsets are drawn at several sizes up to ``n/2``.  When node
    ``positions`` on the torus are supplied, axis-aligned boxes are also
    tried — for a geometrically-derived graph these are the natural
    candidates for sparse cuts, so including them makes the certificate
    much stronger than purely random sampling.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    half = n // 2
    best = math.inf
    sizes = sorted({max(1, half // 8), max(1, half // 4), max(1, half // 2), half})
    for size in sizes:
        for _ in range(max(1, trials // len(sizes))):
            idx = rng.choice(n, size=size, replace=False)
            s = [nodes[i] for i in idx]
            best = min(best, vertex_expansion_of_set(graph, s))
    if positions is not None:
        pos = np.asarray(positions, dtype=float)
        for frac in (0.1, 0.25, 0.5):
            for axis in (0, 1):
                for start in (0.0, 0.3, 0.6):
                    lo, hi = start, start + frac
                    coords = pos[:, axis] % 1.0
                    mask = (coords >= lo) & (coords < hi) if hi <= 1.0 else (
                        (coords >= lo) | (coords < hi - 1.0)
                    )
                    chosen = [nodes[i] for i in np.nonzero(mask)[0]]
                    if 0 < len(chosen) <= half:
                        best = min(best, vertex_expansion_of_set(graph, chosen))
    return best
