"""The dynamic Gabber–Galil expander network (paper §5.2).

Continuous graph ``G`` over ``I = [0,1)²`` with the Margulis/
Gabber–Galil transformations::

    f(x, y) = (x + y, y) mod 1        g(x, y) = (x, x + y) mod 1

and their inverses; Theorem 5.1 gives every measurable set boundary
expansion ``(2 − √3)/2``.  Discretizing over a smooth set of cells
(Corollary 5.2) yields a *certified* constant-degree expander: degree
``Θ(ρ)``, expansion ``Ω((2−√3)/ρ)``.

The discrete edge relation — cells ``i, j`` are linked when some point
of cell ``i`` maps into cell ``j`` — is computed by dense stratified
sampling of the torus (a conservative subset of the true relation, so
any expansion we certify on the sampled graph is honest).  Delaunay
edges of the Voronoi tessellation are included as the 2D analogue of the
ring edges (they keep the graph connected exactly like §2.1's ring).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from ..balance.two_dim import TwoDimMultipleChoice
from .voronoi import TorusVoronoi

__all__ = [
    "gg_f",
    "gg_g",
    "gg_f_inv",
    "gg_g_inv",
    "GG_EXPANSION_CONSTANT",
    "GabberGalilNetwork",
]

#: Theorem 5.1's boundary-expansion constant (2 − √3)/2.
GG_EXPANSION_CONSTANT = (2.0 - math.sqrt(3.0)) / 2.0


def gg_f(p: np.ndarray) -> np.ndarray:
    """``f(x, y) = (x + y, y) mod 1`` (vectorised over (m, 2) arrays)."""
    out = p.copy()
    out[..., 0] = (p[..., 0] + p[..., 1]) % 1.0
    return out


def gg_g(p: np.ndarray) -> np.ndarray:
    """``g(x, y) = (x, x + y) mod 1``."""
    out = p.copy()
    out[..., 1] = (p[..., 0] + p[..., 1]) % 1.0
    return out


def gg_f_inv(p: np.ndarray) -> np.ndarray:
    """``f⁻¹(x, y) = (x − y, y) mod 1``."""
    out = p.copy()
    out[..., 0] = (p[..., 0] - p[..., 1]) % 1.0
    return out


def gg_g_inv(p: np.ndarray) -> np.ndarray:
    """``g⁻¹(x, y) = (x, y − x) mod 1``."""
    out = p.copy()
    out[..., 1] = (p[..., 1] - p[..., 0]) % 1.0
    return out


TRANSFORMS: List[Callable[[np.ndarray], np.ndarray]] = [gg_f, gg_g, gg_f_inv, gg_g_inv]


class GabberGalilNetwork:
    """A P2P network whose topology is a certified constant-degree expander.

    Parameters
    ----------
    points:
        2D server ids.  If omitted, ``n`` servers join via the §5.3
        2D Multiple Choice algorithm so the set is smooth (Lemma 5.3) —
        which is what *certifies* the expansion (Corollary 5.2).
    samples_per_cell:
        Stratified sampling density for the edge relation.
    include_delaunay:
        Keep the tessellation edges (the 2D "ring").
    """

    def __init__(
        self,
        n: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        points: Optional[Sequence[Tuple[float, float]]] = None,
        samples_per_cell: int = 24,
        include_delaunay: bool = True,
    ):
        if points is None:
            if n is None or rng is None:
                raise ValueError("need either explicit points or (n, rng)")
            algo = TwoDimMultipleChoice(n, t=4)
            algo.populate(rng=rng)
            points = algo.points
        self.voronoi = TorusVoronoi(points)
        self.samples_per_cell = int(samples_per_cell)
        self.include_delaunay = include_delaunay
        self._edges: Optional[Set[Tuple[int, int]]] = None

    @property
    def n(self) -> int:
        return self.voronoi.n

    # ------------------------------------------------------------- topology
    def _sample_points(self) -> np.ndarray:
        """Stratified torus samples: a jittered grid with ≥ samples/cell·n points."""
        total = self.samples_per_cell * self.n
        side = int(math.ceil(math.sqrt(total)))
        xs = (np.arange(side) + 0.5) / side
        grid = np.stack(np.meshgrid(xs, xs), axis=-1).reshape(-1, 2)
        return grid

    def edges(self) -> Set[Tuple[int, int]]:
        """The discrete edge set (unordered pairs, no self-loops)."""
        if self._edges is not None:
            return self._edges
        pts = self._sample_points()
        owners = self.voronoi.owner_many(pts)
        pairs: Set[Tuple[int, int]] = set()
        for tf in TRANSFORMS:
            img_owners = self.voronoi.owner_many(tf(pts))
            for a, b in zip(owners, img_owners):
                if a != b:
                    pairs.add((min(a, b), max(a, b)))
        if self.include_delaunay:
            for i in range(self.n):
                for j in self.voronoi.delaunay_neighbors(i):
                    if i != j:
                        pairs.add((min(i, j), max(i, j)))
        self._edges = pairs
        return pairs

    def degree(self, i: int) -> int:
        return sum(1 for a, b in self.edges() if a == i or b == i)

    def max_degree(self) -> int:
        deg: Dict[int, int] = {}
        for a, b in self.edges():
            deg[a] = deg.get(a, 0) + 1
            deg[b] = deg.get(b, 0) + 1
        return max(deg.values(), default=0)

    def to_networkx(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self.edges())
        return g

    # ----------------------------------------------------------- continuous
    @staticmethod
    def continuous_boundary_measure(region: Callable[[np.ndarray], np.ndarray],
                                    rng: np.random.Generator,
                                    samples: int = 200_000) -> Tuple[float, float]:
        """Monte-Carlo check of Theorem 5.1 for a measurable region.

        ``region`` maps an (m, 2) array to booleans.  Returns
        ``(µ(A), µ(δA))`` where ``δA`` is the set of points outside ``A``
        with a Gabber–Galil neighbour inside ``A``.
        """
        pts = rng.random((samples, 2))
        inside = region(pts)
        boundary = np.zeros(samples, dtype=bool)
        outside = ~inside
        for tf in TRANSFORMS:
            boundary |= outside & region(tf(pts))
        return float(inside.mean()), float(boundary.mean())
