"""Cost-aware BatchRouter: snapshot cost columns that survive churn/shards.

:class:`CostAwareBatchRouter` extends the core
:class:`~repro.core.batch.BatchRouter` with three snapshot columns —
``cost_isp`` (int64 label), ``cost_x``/``cost_y`` (pre-scaled float64
coordinates) — plus the non-column ``_isp_cost`` matrix.

Column invariants:

* the cost columns are **pure functions of the sorted point column**
  (hashes of the id points), so after any ``refresh()`` — incremental
  patch or full rebuild — they are recomputed wholesale and are
  bit-identical to a freshly compiled router over the same membership;
* they ride the ``COLUMNS`` registry, so ``snapshot_columns()`` exports
  them to shard workers over shared memory for free; the k×k
  ``_isp_cost`` matrix (not n-aligned, hence not a column) ships via
  the ``shard_extra_arrays()`` hook consumed by the executor's export.
"""

from typing import Dict

import numpy as np

from ..core.batch import BatchRouter
from .costmap import CostMap


class CostAwareBatchRouter(BatchRouter):
    """A BatchRouter whose snapshot carries per-server network costs.

    Construct it over a :class:`~repro.core.DistanceHalvingNetwork`
    exactly like a plain router, plus the :class:`CostMap`; the
    cost-aware lookup (``batch_cost_dh_lookup`` / ``lookup_batch`` with
    a ``policy=``) requires these columns and raises an actionable
    error on a plain router.
    """

    COLUMNS = BatchRouter.COLUMNS + ("cost_isp", "cost_x", "cost_y")

    def __init__(
        self,
        net,
        cost_map: CostMap,
        build_adjacency: bool = True,
        auto_refresh: bool = False,
        churn_budget=None,
    ) -> None:
        self.cost_map = cost_map
        super().__init__(
            net,
            build_adjacency=build_adjacency,
            auto_refresh=auto_refresh,
            churn_budget=churn_budget,
        )

    def _rebuild(self) -> None:
        """Full recompile, then rederive the cost columns from points."""
        super()._rebuild()
        self._refresh_cost_columns()

    def _patch(self, pending) -> bool:
        """Incremental patch; cost columns are rehashed afterwards."""
        if not super()._patch(pending):
            return False
        self._refresh_cost_columns()
        return True

    def _refresh_cost_columns(self) -> None:
        """Recompute labels/coordinates from the (possibly new) points.

        Pure hashing makes this O(n) and bit-reproducible, which is the
        whole churn-stability story: there is no per-column patch logic
        to drift out of sync with the point column.
        """
        cols = self.cost_map.columns(self.points)
        self.cost_isp = cols["cost_isp"]
        self.cost_x = cols["cost_x"]
        self.cost_y = cols["cost_y"]
        self._isp_cost = np.ascontiguousarray(
            self.cost_map.isp_cost, dtype=np.float64
        )

    def shard_extra_arrays(self) -> Dict[str, np.ndarray]:
        """Non-column arrays the shard executor must export alongside."""
        return {"_isp_cost": self._isp_cost}
