"""Deterministic per-server network-cost model (the P4P "provider map").

A :class:`CostMap` assigns every server an ISP label and a point in a
2-d coordinate space, both computed as **pure hashes of the server's id
point** (a splitmix64 finalizer over the float64 bit pattern).  That
purity is the column invariant the snapshot layer relies on: cost
columns can be recomputed wholesale after any churn patch or full
rebuild and are bit-identical to a fresh compile, and a shard worker
reconstructing them from exported arrays sees exactly the parent's
values.

The cost of sending a message from server ``a`` to server ``b`` is

    ``isp_cost[isp(a), isp(b)] + hypot(coords(a) - coords(b))``

where ``isp_cost`` is a symmetric k×k matrix (zero diagonal by
convention: intra-ISP traffic is free) and coordinates are pre-scaled
by ``dist_scale`` so the distance term never dominates the ISP term.
All cost arithmetic lives in :func:`pair_costs` so the scalar and batch
engines evaluate byte-identical float64 expressions.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

# Fixed salts: the labels/coordinates of a given id point are a global
# constant, not a per-run draw — only the isp_cost matrix is sampled.
_ISP_SALT = np.uint64(0x243F6A8885A308D3)  # pi digits
_X_SALT = np.uint64(0x13198A2E03707344)
_Y_SALT = np.uint64(0xA4093822299F31D0)

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _mix64(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over uint64 (vectorized, overflow wraps)."""
    with np.errstate(over="ignore"):
        z = (z + _GAMMA) * _MIX1
        z ^= z >> np.uint64(30)
        z *= _MIX2
        z ^= z >> np.uint64(27)
        z *= _MIX1
        z ^= z >> np.uint64(31)
    return z


def hash01(points, salt: np.uint64) -> np.ndarray:
    """Hash id points to uniform float64 in ``[0, 1)`` (pure, salted).

    The float64 bit pattern is mixed with a splitmix64 finalizer and the
    top 53 bits become the mantissa, so the result is deterministic in
    the point alone — churn cannot move a server's hash.
    """
    bits = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    z = _mix64(bits.view(np.uint64) ^ np.uint64(salt))
    return (z >> np.uint64(11)).astype(np.float64) * 2.0**-53


def pair_costs(isp_a, isp_b, xa, ya, xb, yb, isp_cost: np.ndarray):
    """Cost of the edge a→b: ISP matrix entry + Euclidean coordinate gap.

    Broadcasts over any matching shapes; every engine (scalar walk,
    batch gather, shard worker) must come through here so the float64
    operation sequence — and therefore bit-parity — is shared.
    """
    dx = xa - xb
    dy = ya - yb
    return isp_cost[isp_a, isp_b] + np.sqrt(dx * dx + dy * dy)


@dataclass(frozen=True)
class CostMap:
    """The provider-side cost database (ISP matrix + coordinate scale).

    ``isp_cost`` is the symmetric k×k inter-ISP cost matrix;
    ``dist_scale`` scales the hashed unit-square coordinates, bounding
    the distance term by ``dist_scale·√2``.  Labels and coordinates are
    derived on demand from id points via :func:`hash01`, so a CostMap
    is tiny and position-independent — shipping the matrix plus the
    point array to a shard worker reproduces every cost bit-for-bit.
    """

    isp_cost: np.ndarray
    dist_scale: float = 0.25

    def __post_init__(self) -> None:
        """Normalise the matrix to float64 and sanity-check its shape."""
        mat = np.ascontiguousarray(np.asarray(self.isp_cost, dtype=np.float64))
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1] or mat.shape[0] < 1:
            raise ValueError("isp_cost must be a square k x k matrix, k >= 1")
        object.__setattr__(self, "isp_cost", mat)

    @property
    def n_isps(self) -> int:
        """Number of ISPs (the side of the cost matrix)."""
        return int(self.isp_cost.shape[0])

    @classmethod
    def synthetic(
        cls,
        n_isps: int = 8,
        rng: Optional[np.random.Generator] = None,
        intra: float = 0.0,
        inter_low: float = 1.0,
        inter_high: float = 10.0,
        dist_scale: float = 0.25,
    ) -> "CostMap":
        """A random symmetric matrix: free intra-ISP, costly inter-ISP.

        With the defaults the distance term is at most ``0.25·√2 < 1``,
        strictly below any inter-ISP entry, so the greedy policy always
        prefers an intra-ISP cover when one is available.
        """
        if n_isps < 1:
            raise ValueError("n_isps must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        raw = rng.random((n_isps, n_isps))
        mat = inter_low + (inter_high - inter_low) * (raw + raw.T) / 2.0
        np.fill_diagonal(mat, intra)
        return cls(isp_cost=mat, dist_scale=dist_scale)

    @classmethod
    def degenerate(cls) -> "CostMap":
        """The all-zero map: one ISP, collapsed coordinates, every cost 0.

        Under it the temperature-weighted policy is provably
        bit-identical to the uniform policy (equal weights make the
        cumulative sums exact integers) — the degeneracy the parity
        tests pin.
        """
        return cls(isp_cost=np.zeros((1, 1)), dist_scale=0.0)

    def isp_of(self, points) -> np.ndarray:
        """ISP label of each id point (pure hash, stable under churn)."""
        lab = (hash01(points, _ISP_SALT) * self.n_isps).astype(np.int64)
        return np.minimum(lab, self.n_isps - 1)

    def coords_of(self, points) -> Tuple[np.ndarray, np.ndarray]:
        """Pre-scaled 2-d coordinates of each id point (pure hash)."""
        return (
            hash01(points, _X_SALT) * self.dist_scale,
            hash01(points, _Y_SALT) * self.dist_scale,
        )

    def columns(self, points) -> dict:
        """The three snapshot cost columns for a sorted point array."""
        x, y = self.coords_of(points)
        return {"cost_isp": self.isp_of(points), "cost_x": x, "cost_y": y}
