"""Covering-edge selection policies with bit-parity-proof scalar twins.

Three policies choose among K masked candidates per lane:

* ``uniform``  — the paper's rule: the ⌊u·cnt⌋-th valid candidate,
  byte-compatible with the inline selection in ``faults/batch_ft.py``;
* ``greedy``   — argmin cost among valid candidates (first-minimum
  tie-break, i.e. scan order = ring-predecessor order);
* ``weighted`` — softmin: weight ``exp(-(cost - min_cost)/temperature)``
  per valid candidate, sampled by inverse CDF from the same uniform.

The batch form :func:`select_rows` and the scalar form
:func:`select_index` are floating-point twins: given the same costs and
the same uniform they pick the same candidate **bit-for-bit**, because
the batch cumulative sums only ever add exact zeros for masked rows and
``cum > x`` first-hit equals ``searchsorted(side="right")``.  When every
cost is equal (e.g. the degenerate all-zero map) the weights are exactly
1.0, the cumulative sums are exact small integers, and ``weighted``
degenerates to ``uniform`` bit-for-bit.
"""

from typing import Optional

import numpy as np

POLICIES = ("uniform", "greedy", "weighted")


def check_policy(policy: str) -> None:
    """Raise ValueError on an unknown policy name."""
    if policy not in POLICIES:
        raise ValueError(
            f"unknown selection policy {policy!r}; expected one of {POLICIES}"
        )


def select_rows(
    costs: np.ndarray,
    ok: np.ndarray,
    u: Optional[np.ndarray],
    policy: str,
    temperature: float = 1.0,
) -> np.ndarray:
    """Pick one candidate row per lane from (K, B) masked costs.

    ``costs``/``ok`` are (K, B); ``u`` is the per-lane uniform in
    ``[0, 1)`` (unused by ``greedy``).  Returns int64 row indices of
    shape (B,).  Lanes with no valid row get an arbitrary index — the
    caller is responsible for masking them out (the FT engine marks
    them failed).
    """
    check_policy(policy)
    costs = np.asarray(costs, dtype=np.float64)
    ok = np.asarray(ok, dtype=bool)
    if policy == "greedy":
        return np.argmin(np.where(ok, costs, np.inf), axis=0).astype(np.int64)
    if u is None:
        raise ValueError(f"policy {policy!r} needs per-lane uniforms")
    u = np.asarray(u, dtype=np.float64)
    cnt = ok.sum(axis=0)
    if policy == "uniform":
        pick = np.minimum((u * cnt).astype(np.int64), np.maximum(cnt - 1, 0))
        hit = ok & (np.cumsum(ok, axis=0) == pick + 1)
        return np.argmax(hit, axis=0).astype(np.int64)
    if temperature <= 0.0:
        raise ValueError("temperature must be > 0")
    lo = np.where(ok, costs, np.inf).min(axis=0)
    lo = np.where(np.isfinite(lo), lo, 0.0)  # all-invalid lanes
    expo = np.where(ok, -(costs - lo[None, :]) / temperature, -np.inf)
    w = np.exp(expo)  # exactly 0.0 on masked rows
    cum = np.cumsum(w, axis=0)
    x = u * cum[-1]
    found = cum > x[None, :]
    sel = np.argmax(found, axis=0)
    last_valid = (ok.shape[0] - 1) - np.argmax(ok[::-1], axis=0)
    sel = np.where(found.any(axis=0), sel, np.maximum(last_valid, 0))
    return sel.astype(np.int64)


def select_index(
    costs: np.ndarray,
    u: Optional[float],
    policy: str,
    temperature: float = 1.0,
) -> int:
    """Scalar twin of :func:`select_rows` over an already-valid vector.

    ``costs`` holds only the valid candidates, in the same scan order as
    the batch rows; returns the index into that vector.  Bit-identical
    to the batch pick for the same costs and uniform.
    """
    check_policy(policy)
    costs = np.asarray(costs, dtype=np.float64)
    cnt = int(costs.size)
    if cnt == 0:
        raise ValueError("select_index needs at least one candidate")
    if policy == "greedy":
        return int(np.argmin(costs))
    if u is None:
        raise ValueError(f"policy {policy!r} needs a uniform")
    if policy == "uniform":
        return min(int(u * cnt), cnt - 1)
    if temperature <= 0.0:
        raise ValueError("temperature must be > 0")
    w = np.exp(-(costs - costs.min()) / temperature)
    cum = np.cumsum(w)
    x = u * cum[-1]
    return min(int(np.searchsorted(cum, x, side="right")), cnt - 1)
