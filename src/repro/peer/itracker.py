"""iTracker-like cost oracle + cross-ISP traffic accounting over CSR paths.

:class:`CostOracle` is the query side of the P4P picture: built from a
frozen sorted point array and a :class:`~repro.peer.costmap.CostMap`,
it precomputes the per-server label/coordinate columns once and answers
"what does the edge i→j cost?" as a pure array gather — the batch
engines call :meth:`CostOracle.edge_costs` with a (K, B) candidate
matrix, the scalar walks call :meth:`CostOracle.cost_between` with the
alive-cover list, and both evaluate the same float64 expression
(:func:`~repro.peer.costmap.pair_costs`), which is what makes the
policy picks bit-comparable.

The module-level functions account traffic over the CSR path arrays
(``path_servers``/``path_offsets``) every batch result emits: the
transition list never crosses a row boundary, so per-lookup cross-ISP
hop counts and summed path costs are one mask + one ``np.bincount``.
"""

from typing import Tuple

import numpy as np

from .costmap import CostMap, pair_costs


class CostOracle:
    """Scores candidate covering edges for a frozen point array.

    The point array must be sorted and static for the oracle's lifetime
    (it is the §6 overlapping network's ``points_array``); points are
    mapped back to indices by exact binary search, so the oracle can be
    driven with either indices or raw id points.
    """

    def __init__(self, points, cost_map: CostMap) -> None:
        pts = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
        if pts.ndim != 1 or pts.size == 0:
            raise ValueError("CostOracle needs a 1-d non-empty point array")
        if np.any(np.diff(pts) < 0):
            raise ValueError("CostOracle needs a sorted point array")
        self.points = pts
        self.cost_map = cost_map
        self.isp = cost_map.isp_of(pts)
        self.x, self.y = cost_map.coords_of(pts)

    @property
    def isp_cost(self) -> np.ndarray:
        """The k×k inter-ISP cost matrix."""
        return self.cost_map.isp_cost

    def index_of(self, points) -> np.ndarray:
        """Exact indices of id points in the frozen array (raises if absent)."""
        pts = np.asarray(points, dtype=np.float64)
        idx = np.searchsorted(self.points, pts)
        idx = np.minimum(idx, self.points.size - 1)
        if not np.all(self.points[idx] == pts):
            raise ValueError("point not present in the oracle's point array")
        return idx

    def edge_costs(self, i_idx, j_idx) -> np.ndarray:
        """Cost of edges i→j by index; broadcasts, e.g. (B,) × (K, B)."""
        i_idx = np.asarray(i_idx)
        j_idx = np.asarray(j_idx)
        return pair_costs(
            self.isp[i_idx], self.isp[j_idx],
            self.x[i_idx], self.y[i_idx],
            self.x[j_idx], self.y[j_idx],
            self.cost_map.isp_cost,
        )

    def cost_between(self, p_from, p_to) -> np.ndarray:
        """Costs from one id point to a list of id points (scalar walks)."""
        return self.edge_costs(
            self.index_of(p_from), self.index_of(np.asarray(p_to))
        )


def csr_transitions(
    path_servers: np.ndarray, path_offsets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Within-row transitions of a CSR path block.

    Returns ``(frm, to, row)`` index arrays — one entry per message
    (consecutive duplicates are already compressed out of CSR paths),
    with transitions that would span two lookups' rows removed.
    """
    rows = np.repeat(
        np.arange(path_offsets.size - 1), np.diff(path_offsets)
    )
    same = rows[:-1] == rows[1:] if rows.size else np.zeros(0, dtype=bool)
    return path_servers[:-1][same], path_servers[1:][same], rows[:-1][same]


def hop_counts(path_offsets: np.ndarray) -> np.ndarray:
    """Per-lookup hop counts implied by the CSR row lengths."""
    return np.maximum(np.diff(path_offsets) - 1, 0)


def cross_isp_counts(
    isp_labels: np.ndarray,
    path_servers: np.ndarray,
    path_offsets: np.ndarray,
) -> np.ndarray:
    """Per-lookup count of hops that cross an ISP boundary.

    ``isp_labels`` is the per-server label column (``CostOracle.isp``
    or ``CostAwareBatchRouter.cost_isp``) aligned with the server
    indices stored in the CSR path arrays.
    """
    frm, to, row = csr_transitions(path_servers, path_offsets)
    cross = isp_labels[frm] != isp_labels[to]
    return np.bincount(row[cross], minlength=path_offsets.size - 1)


def path_cost_totals(
    oracle: CostOracle,
    path_servers: np.ndarray,
    path_offsets: np.ndarray,
) -> np.ndarray:
    """Per-lookup total network cost of the routed path."""
    frm, to, row = csr_transitions(path_servers, path_offsets)
    costs = oracle.edge_costs(frm, to)
    return np.bincount(
        row, weights=costs, minlength=path_offsets.size - 1
    )
