"""P4P/ALTO-style network-cost layer over the continuous-discrete DHT.

The paper's lookups pick uniformly among covering edges; real
deployments pick by network cost.  This package supplies the pieces —
a deterministic :class:`~repro.peer.costmap.CostMap` (per-server ISP
labels + coordinates hashed from the id point), an iTracker-like
:class:`~repro.peer.itracker.CostOracle` scoring candidate covering
edges, the shared selection policies (uniform / greedy-cheapest /
temperature-weighted) with bit-parity-proof scalar twins, and
:class:`~repro.peer.routing.CostAwareBatchRouter`, a BatchRouter whose
snapshot carries cost columns through churn refresh and sharded
execution.  See ``docs/COST_MODEL.md`` for the determinism rules.
"""

from .costmap import CostMap, hash01, pair_costs
from .itracker import (
    CostOracle,
    cross_isp_counts,
    hop_counts,
    path_cost_totals,
)
from .policy import POLICIES, check_policy, select_index, select_rows
from .routing import CostAwareBatchRouter

__all__ = [
    "POLICIES",
    "CostAwareBatchRouter",
    "CostMap",
    "CostOracle",
    "check_policy",
    "cross_isp_counts",
    "hash01",
    "hop_counts",
    "pair_costs",
    "path_cost_totals",
    "select_index",
    "select_rows",
]
