"""repro — Continuous-Discrete P2P architectures (Naor & Wieder, SPAA 2003).

A full reproduction of the paper's systems:

* :mod:`repro.core` — the Distance Halving DHT, its lookup algorithms and
  the dynamic caching protocol (paper §2–§3);
* :mod:`repro.hashing` — k-wise independent hash families (§2.2.3, §3.4);
* :mod:`repro.balance` — id load-balancing algorithms (§4);
* :mod:`repro.expander` — the Gabber–Galil dynamic expander and 2D name
  space (§5);
* :mod:`repro.faults` — the fault-tolerant overlapping DHT (§6);
* :mod:`repro.emulation` — general graph emulation (§7);
* :mod:`repro.baselines` — Chord / Tapestry / CAN / small-world /
  Viceroy / Koorde comparators (Table 1);
* :mod:`repro.sim` — discrete-event and asyncio simulation substrate;
* :mod:`repro.experiments` — the paper-vs-measured experiment harness.

Quickstart::

    import numpy as np
    from repro.core import DistanceHalvingNetwork, dh_lookup

    rng = np.random.default_rng(0)
    net = DistanceHalvingNetwork(rng=rng)
    net.populate(256)
    src = net.points()[0]
    res = dh_lookup(net, src, 0.73, rng)
    print(res.hops, res.owner)
"""

__version__ = "1.0.0"

from . import core  # re-export the primary API at package level
from .core import (
    CacheSystem,
    ContinuousGraph,
    DistanceHalvingNetwork,
    SegmentMap,
    dh_lookup,
    fast_lookup,
)

__all__ = [
    "CacheSystem",
    "ContinuousGraph",
    "DistanceHalvingNetwork",
    "SegmentMap",
    "core",
    "dh_lookup",
    "fast_lookup",
    "__version__",
]
