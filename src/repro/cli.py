"""Command-line entry point: ``python -m repro.cli``.

Examples::

    PYTHONPATH=src python -m repro.cli list
    PYTHONPATH=src python -m repro.cli run E1 E3 --quick
    PYTHONPATH=src python -m repro.cli run all --out results/
    PYTHONPATH=src python -m repro.cli bench-throughput --n 4096
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

EPILOG = """\
subcommands:
  list              print every registered experiment id (E*, F*, A*, X*)
  run IDS|all       run experiments; --quick shrinks sizes, --out DIR
                    writes one JSON result file per experiment
  bench-throughput  measure the vectorized batch-lookup engine against
                    the scalar per-hop loop on one network, with a
                    bit-parity cross-check (see docs/BENCHMARKS.md)

invocation: PYTHONPATH=src python -m repro.cli <subcommand> [options]
"""


def _bench_throughput(args) -> int:
    from .experiments.throughput import format_throughput_report, measure_throughput

    if args.n < 1 or args.lookups < 1 or args.scalar_sample < 1:
        print(
            "bench-throughput: --n, --lookups and --scalar-sample must be >= 1",
            file=sys.stderr,
        )
        return 2
    if args.delta < 2:
        print("bench-throughput: --delta must be >= 2", file=sys.stderr)
        return 2

    result = measure_throughput(
        n=args.n,
        lookups=args.lookups,
        seed=args.seed,
        scalar_sample=args.scalar_sample,
        algorithm=args.algorithm,
        delta=args.delta,
    )
    print(format_throughput_report(result))
    ok = result["parity_ok"] and result["speedup"] >= args.min_speedup
    verdict = "PASS" if ok else "FAIL"
    print(f"[{verdict}] parity and speedup ≥ {args.min_speedup:g}x")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of Naor & Wieder (SPAA 2003).",
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")

    runp = sub.add_parser("run", help="run experiments")
    runp.add_argument("names", nargs="+", help="experiment ids or 'all'")
    runp.add_argument("--quick", action="store_true", help="smaller sizes")
    runp.add_argument("--seed", type=int, default=0)
    runp.add_argument("--out", default=None, help="directory for JSON results")

    benchp = sub.add_parser(
        "bench-throughput",
        help="vectorized vs scalar lookup throughput (with parity check)",
    )
    benchp.add_argument("--n", type=int, default=4096, help="network size")
    benchp.add_argument(
        "--lookups", type=int, default=100_000, help="batch workload size"
    )
    benchp.add_argument(
        "--scalar-sample",
        type=int,
        default=1000,
        help="lookups routed through the scalar baseline (also parity-checked)",
    )
    benchp.add_argument(
        "--algorithm",
        choices=("fast", "dh"),
        default="fast",
        help="fast (greedy, §2.2.1) or dh (two-phase, §2.2.2)",
    )
    benchp.add_argument("--delta", type=int, default=2, help="graph degree Δ")
    benchp.add_argument("--seed", type=int, default=0)
    benchp.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="exit non-zero when the batch engine is slower than this factor",
    )

    args = parser.parse_args(argv)

    from .experiments.common import all_experiments
    from .experiments.runner import run_experiments  # noqa: F401 (fills registry)

    available = list(all_experiments())
    if args.command == "list":
        for name in available:
            print(name)
        return 0
    if args.command == "bench-throughput":
        return _bench_throughput(args)

    names = args.names
    lowered = [n.lower() for n in names]
    if "all" in lowered and len(names) > 1:
        print(
            "run: 'all' cannot be combined with explicit experiment ids",
            file=sys.stderr,
        )
        return 2
    if lowered != ["all"]:
        unknown = [n for n in names if n.upper() not in available]
        if unknown:
            print(
                f"unknown experiment id(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            print(
                f"available: {', '.join(available)}",
                file=sys.stderr,
            )
            return 2
    results = run_experiments(names, seed=args.seed, quick=args.quick,
                              out_dir=args.out)
    return 0 if all(r.passed for r in results) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
