"""Command-line entry point: ``python -m repro.cli``.

Examples::

    PYTHONPATH=src python -m repro.cli list
    PYTHONPATH=src python -m repro.cli run E1 E3 --quick
    PYTHONPATH=src python -m repro.cli run all --out results/
    PYTHONPATH=src python -m repro.cli bench-throughput --n 4096
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

EPILOG = """\
subcommands:
  list              print every registered experiment id (E*, F*, A*, X*)
  run IDS|all       run experiments; --quick shrinks sizes, --out DIR
                    writes one JSON result file per experiment
  bench-throughput  measure the vectorized batch-lookup engine against
                    the scalar per-hop loop on one network, with a
                    bit-parity cross-check (see docs/BENCHMARKS.md)
  bench-churn       soak the auto-refresh router under churn traces
                    (incl. a 50% mass departure) interleaved with bulk
                    lookup batches; reports lookups/sec, incremental
                    refresh cost per membership op, and the refresh
                    speedup over a full compile_router()
  bench-congestion  route-and-account a random-pair workload with CSR
                    batch path accounting (BatchCongestion) against the
                    scalar per-lookup Counter loop; summaries must be
                    bit-identical on a shared subsample
  bench-faults      route one fault-sweep cell (random fail-stop plan,
                    surviving sources) through the vectorized
                    fault-tolerant batch engine against the scalar
                    per-hop walk, with a bit-identical choice-driven
                    replay on a subsample
  bench-caching     serve a Zipf hot-key stream through the vectorized
                    §3 cache engine against the scalar per-request
                    loop, with a bit-identical trace replay on a side
                    network and a salted-vs-unsalted hotspot relief
                    check
  bench-baselines   Table 1 shoot-out: route every baseline overlay
                    (Chord, Tapestry, CAN, small-world, Viceroy,
                    Koorde, DH) through its compiled batch router
                    against its scalar lookup_path loop; every scheme
                    must hold the --min-speedup floor and replay its
                    scalar subsample bit-for-bit
  soak              day-in-the-life streaming soak: a phase-scripted
                    scenario (lookups, churn, flash crowd, fail-stop +
                    Byzantine waves with Reed-Solomon read-repair
                    healing, rebalancing, mass departure) on one live
                    network, with cross-subsystem invariant checks
                    between phases; --json-out artifacts are
                    byte-reproducible per --seed
  bench-shard       multicore shoot-out: route the same random-pair
                    workload chunk-by-chunk through the single-process
                    batch engine and the sharded multiprocessing
                    backend (--workers N over shared-memory snapshot
                    columns); merged congestion summary and hop
                    histogram must be bit-identical, and the sharded
                    gain must hold --min-speedup when the machine has
                    at least N CPUs
  bench-cost        cost-aware covering-edge routing (P4P/ALTO-style):
                    route the same workload under uniform / greedy /
                    weighted cover selection over a synthetic ISP cost
                    map; gates the greedy cross-ISP reduction floor,
                    the hop-stretch ceiling, the scalar bit-parity
                    replay and the core engine's tau_used replay
  bench-compare     regression gate: diff this run's bench-artifacts/
                    BENCH_*.json against the committed references in
                    benchmarks/baselines/; any throughput ("speedup" /
                    "*_rate") value below (1 - tolerance)·reference or
                    any parity flag flipping off fails the build;
                    --update-refs re-baselines the references

every bench-* subcommand accepts --json-out FILE to additionally write
the measurement dict (plus the pass/fail verdict) as machine-readable
JSON — the artifact CI uploads per run and bench-compare gates on —
and --workers N to run batch routing on the sharded multiprocessing
backend (default 1 = in-process; artifacts record workers + cpu count,
and bench-compare refuses diffs across different worker counts).

invocation: PYTHONPATH=src python -m repro.cli <subcommand> [options]
"""


def _write_json_out(path: Optional[str], command: str, result: dict,
                    ok: bool, workers: int = 1) -> None:
    """Dump one bench measurement as a JSON artifact (NumPy-safe).

    Thin wrapper over :func:`repro.artifacts.write_artifact` — the one
    shared serializer — stamping the worker count into the envelope.
    """
    from .artifacts import write_artifact

    write_artifact(path, command, result, ok, workers=workers)


def _check_workers(args, command: str) -> Optional[int]:
    """Validate ``--workers``; returns an exit code on error, else None."""
    if args.workers < 1:
        print(f"{command}: --workers must be >= 1", file=sys.stderr)
        return 2
    return None


def _bench_throughput(args) -> int:
    from .experiments.throughput import format_throughput_report, measure_throughput

    if args.n < 1 or args.lookups < 1 or args.scalar_sample < 1:
        print(
            "bench-throughput: --n, --lookups and --scalar-sample must be >= 1",
            file=sys.stderr,
        )
        return 2
    if args.delta < 2:
        print("bench-throughput: --delta must be >= 2", file=sys.stderr)
        return 2
    if (rc := _check_workers(args, "bench-throughput")) is not None:
        return rc

    result = measure_throughput(
        n=args.n,
        lookups=args.lookups,
        seed=args.seed,
        scalar_sample=args.scalar_sample,
        algorithm=args.algorithm,
        delta=args.delta,
        workers=args.workers,
    )
    print(format_throughput_report(result))
    ok = result["parity_ok"] and result["speedup"] >= args.min_speedup
    verdict = "PASS" if ok else "FAIL"
    print(f"[{verdict}] parity and speedup ≥ {args.min_speedup:g}x")
    _write_json_out(args.json_out, "bench-throughput", result, ok,
                    workers=args.workers)
    return 0 if ok else 1


def _bench_churn(args) -> int:
    from .experiments.churn_soak import format_churn_report, measure_churn_soak

    if args.n < 8 or args.lookups < 1 or args.churn_ops < 1 or args.phases < 1:
        print(
            "bench-churn: --n must be >= 8; --lookups, --churn-ops and "
            "--phases must be >= 1",
            file=sys.stderr,
        )
        return 2
    if not 0.0 <= args.leave_prob <= 1.0:
        print("bench-churn: --leave-prob must be in [0, 1]", file=sys.stderr)
        return 2
    if (rc := _check_workers(args, "bench-churn")) is not None:
        return rc
    if args.workers > 1:
        print("bench-churn: the refresh soak is single-process (it measures "
              "journal replay, not routing); --workers recorded only")

    result = measure_churn_soak(
        n=args.n,
        lookups=args.lookups,
        phases=args.phases,
        churn_ops=args.churn_ops,
        leave_prob=args.leave_prob,
        mass_n=args.mass_n,
        seed=args.seed,
        churn_budget=args.churn_budget,
    )
    print(format_churn_report(result))
    ok = result["owners_ok"] and result["refresh_speedup"] >= args.min_refresh_speedup
    verdict = "PASS" if ok else "FAIL"
    print(
        f"[{verdict}] owners fresh and incremental refresh ≥ "
        f"{args.min_refresh_speedup:g}x over full compile"
    )
    _write_json_out(args.json_out, "bench-churn", result, ok,
                    workers=args.workers)
    return 0 if ok else 1


def _bench_congestion(args) -> int:
    from .experiments.congestion import (
        format_congestion_report,
        measure_congestion,
    )

    if args.n < 2 or args.lookups < 1 or args.scalar_sample < 1:
        print(
            "bench-congestion: --n must be >= 2; --lookups and "
            "--scalar-sample must be >= 1",
            file=sys.stderr,
        )
        return 2
    if args.delta < 2:
        print("bench-congestion: --delta must be >= 2", file=sys.stderr)
        return 2
    if (rc := _check_workers(args, "bench-congestion")) is not None:
        return rc

    result = measure_congestion(
        n=args.n,
        lookups=args.lookups,
        seed=args.seed,
        scalar_sample=args.scalar_sample,
        algorithm=args.algorithm,
        delta=args.delta,
        workers=args.workers,
    )
    print(format_congestion_report(result))
    ok = result["parity_ok"] and result["speedup"] >= args.min_speedup
    verdict = "PASS" if ok else "FAIL"
    print(f"[{verdict}] accounting parity and speedup ≥ {args.min_speedup:g}x")
    _write_json_out(args.json_out, "bench-congestion", result, ok,
                    workers=args.workers)
    return 0 if ok else 1


def _bench_faults(args) -> int:
    from .experiments.faults_exp import format_faults_report, measure_faults

    if args.n < 8 or args.pairs < 1 or args.scalar_sample < 1:
        print(
            "bench-faults: --n must be >= 8; --pairs and --scalar-sample "
            "must be >= 1",
            file=sys.stderr,
        )
        return 2
    if not 0.0 <= args.p_fail < 1.0:
        print("bench-faults: --p-fail must be in [0, 1)", file=sys.stderr)
        return 2
    if (rc := _check_workers(args, "bench-faults")) is not None:
        return rc
    if args.workers > 1:
        print("bench-faults: the FT engine's choice-driven replay is "
              "single-process; --workers recorded only")

    result = measure_faults(
        n=args.n,
        pairs=args.pairs,
        p_fail=args.p_fail,
        seed=args.seed,
        scalar_sample=args.scalar_sample,
    )
    print(format_faults_report(result))
    ok = result["parity_ok"] and result["speedup"] >= args.min_speedup
    verdict = "PASS" if ok else "FAIL"
    print(f"[{verdict}] replay parity and speedup ≥ {args.min_speedup:g}x")
    _write_json_out(args.json_out, "bench-faults", result, ok,
                    workers=args.workers)
    return 0 if ok else 1


def _bench_caching(args) -> int:
    from .experiments.caching_bench import format_caching_report, measure_caching

    if args.n < 2 or args.requests < 1 or args.scalar_sample < 1:
        print(
            "bench-caching: --n must be >= 2; --requests and "
            "--scalar-sample must be >= 1",
            file=sys.stderr,
        )
        return 2
    if args.salts < 2:
        print("bench-caching: --salts must be >= 2 to spread a hot key",
              file=sys.stderr)
        return 2
    if (rc := _check_workers(args, "bench-caching")) is not None:
        return rc
    if args.workers > 1:
        print("bench-caching: serve_batch's replication fixpoint is "
              "order-dependent across the batch, so caching is never "
              "sharded; --workers recorded only")

    result = measure_caching(
        n=args.n,
        requests=args.requests,
        seed=args.seed,
        scalar_sample=args.scalar_sample,
        n_items=args.items,
        salts=args.salts,
        parity_n=args.parity_n,
        hotspot_requests=args.hotspot_requests,
    )
    print(format_caching_report(result))
    ok = (result["parity_ok"] and result["salted_ok"]
          and result["speedup"] >= args.min_speedup)
    verdict = "PASS" if ok else "FAIL"
    print(f"[{verdict}] trace parity, salted relief and speedup ≥ "
          f"{args.min_speedup:g}x")
    _write_json_out(args.json_out, "bench-caching", result, ok,
                    workers=args.workers)
    return 0 if ok else 1


def _bench_baselines(args) -> int:
    from .experiments.baseline_bench import (
        SCHEME_BUILDERS,
        format_baselines_report,
        measure_baselines,
    )

    if args.n < 8 or args.lookups < 1 or args.scalar_sample < 1:
        print(
            "bench-baselines: --n must be >= 8; --lookups and "
            "--scalar-sample must be >= 1",
            file=sys.stderr,
        )
        return 2
    schemes = None
    if args.schemes:
        schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
        unknown = [s for s in schemes if s not in SCHEME_BUILDERS]
        if unknown:
            print(
                f"bench-baselines: unknown scheme(s) {', '.join(unknown)}; "
                f"have {', '.join(sorted(SCHEME_BUILDERS))}",
                file=sys.stderr,
            )
            return 2
    if (rc := _check_workers(args, "bench-baselines")) is not None:
        return rc
    if args.workers > 1:
        print("bench-baselines: the per-scheme scalar comparison is "
              "single-process; --workers recorded only")

    result = measure_baselines(
        n=args.n,
        lookups=args.lookups,
        seed=args.seed,
        scalar_sample=args.scalar_sample,
        schemes=schemes,
        chunk=args.chunk,
    )
    print(format_baselines_report(result))
    ok = (result["all_parity_ok"]
          and result["min_speedup_measured"] >= args.min_speedup)
    verdict = "PASS" if ok else "FAIL"
    print(f"[{verdict}] per-topology parity and speedup ≥ "
          f"{args.min_speedup:g}x for every scheme")
    _write_json_out(args.json_out, "bench-baselines", result, ok,
                    workers=args.workers)
    return 0 if ok else 1


def _compare_payload(ref, run, tolerance: float):
    """Diff one reference artifact against the same run artifact.

    Walks the nested dicts in parallel.  Gated leaves are (a) booleans —
    a reference ``True`` (parity / verdict flag) may not flip off — and
    (b) throughput numbers, i.e. keys containing ``speedup`` or ending in
    ``_rate``, which must stay ≥ ``(1 - tolerance) ×`` the reference.
    Everything else (sizes, seeds, path lengths, wall-clock seconds) is
    informational and ignored.  Returns ``(findings, gated_count)``.
    """
    findings = []
    gated = 0

    def walk(prefix, r, c):
        nonlocal gated
        if isinstance(r, dict):
            if not isinstance(c, dict):
                findings.append((prefix or ".", "section missing from run"))
                return
            for key, rv in r.items():
                walk(f"{prefix}.{key}" if prefix else key, rv, c.get(key))
            return
        leaf = prefix.rsplit(".", 1)[-1]
        if isinstance(r, bool):
            gated += 1
            if r and c is not True:
                findings.append((prefix, f"flag flipped: ref true, run {c!r}"))
            return
        if isinstance(r, (int, float)) and (
            "speedup" in leaf or leaf.endswith("_rate")
        ):
            gated += 1
            if not isinstance(c, (int, float)) or isinstance(c, bool):
                findings.append((prefix, f"ref {r:g}, run {c!r}"))
            elif c < r * (1.0 - tolerance):
                findings.append(
                    (prefix,
                     f"regression: ref {r:g}, run {c:g} "
                     f"({c / r:.0%} < {1.0 - tolerance:.0%} floor)")
                )

    walk("", ref, run)
    return findings, gated


def _bench_compare(args) -> int:
    import glob
    import json
    import os
    import shutil

    if not 0.0 <= args.tolerance < 1.0:
        print("bench-compare: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2
    run_files = sorted(glob.glob(os.path.join(args.run_dir, "BENCH_*.json")))
    if args.update_refs:
        if not run_files:
            print(f"bench-compare: no BENCH_*.json under {args.run_dir} to "
                  "re-baseline from", file=sys.stderr)
            return 2
        os.makedirs(args.ref_dir, exist_ok=True)
        for path in run_files:
            dst = os.path.join(args.ref_dir, os.path.basename(path))
            shutil.copyfile(path, dst)
            print(f"updated {dst}")
        return 0

    ref_files = sorted(glob.glob(os.path.join(args.ref_dir, "BENCH_*.json")))
    if not ref_files:
        print(f"bench-compare: no reference artifacts under {args.ref_dir}",
              file=sys.stderr)
        return 2
    failures = []
    total_gated = 0
    for ref_path in ref_files:
        base = os.path.basename(ref_path)
        with open(ref_path, encoding="utf-8") as fh:
            ref = json.load(fh)
        run_path = os.path.join(args.run_dir, base)
        if not os.path.exists(run_path):
            failures.append((base, ".", "run artifact missing"))
            print(f"{base}: MISSING from {args.run_dir}")
            continue
        with open(run_path, encoding="utf-8") as fh:
            run = json.load(fh)
        ref_workers = int(ref.get("workers", 1))
        run_workers = int(run.get("workers", 1))
        if ref_workers != run_workers:
            # a sharding change is not a throughput regression (or gain);
            # re-baseline with --update-refs instead of comparing across
            failures.append((base, "workers",
                             f"cross-worker-count diff refused: reference "
                             f"ran with {ref_workers} worker(s), this run "
                             f"with {run_workers}"))
            print(f"{base}: REFUSED (workers {ref_workers} vs {run_workers})")
            continue
        found, gated = _compare_payload(ref, run, args.tolerance)
        total_gated += gated
        if found:
            failures.extend((base, where, msg) for where, msg in found)
            print(f"{base}: {len(found)} regression(s)")
            for where, msg in found:
                print(f"  {where}: {msg}")
        else:
            print(f"{base}: ok ({gated} gated values)")
    ok = not failures
    verdict = "PASS" if ok else "FAIL"
    print(f"[{verdict}] {len(ref_files)} artifact(s), {total_gated} gated "
          f"values, {len(failures)} regression(s) at "
          f"{args.tolerance:.0%} tolerance")
    return 0 if ok else 1


def _soak(args) -> int:
    from .experiments.soak import (
        deterministic_payload,
        format_soak_report,
        measure_soak,
    )
    from .sim.scenario import parse_phases

    if args.n < 16 or args.lookups < 1 or args.chunk < 1 or args.items < 1:
        print("soak: --n must be >= 16 and --lookups/--chunk/--items >= 1",
              file=sys.stderr)
        return 2
    try:
        parse_phases(args.phases)
    except ValueError as exc:
        print(f"soak: {exc}", file=sys.stderr)
        return 2
    if (rc := _check_workers(args, "soak")) is not None:
        return rc

    result = measure_soak(
        n=args.n,
        lookups=args.lookups,
        phases=args.phases,
        chunk=args.chunk,
        seed=args.seed,
        items=args.items,
        invariants=not args.no_invariants,
        strict=False,
        workers=args.workers,
    )
    print(format_soak_report(result))
    ok = (result["invariants_ok"] and result["healing_ok"]
          and result["stats"]["ft_success_rate"] >= args.min_ft_success)
    verdict = "PASS" if ok else "FAIL"
    print(f"[{verdict}] invariants + healing + ft success "
          f"≥ {args.min_ft_success:g}")
    # wall-clock keys are stripped so same-seed runs write identical bytes
    _write_json_out(args.json_out, "soak", deterministic_payload(result), ok,
                    workers=args.workers)
    return 0 if ok else 1


def _bench_shard(args) -> int:
    from .experiments.shard_bench import format_shard_report, measure_shard

    if args.n < 8 or args.lookups < 1 or args.chunk < 1:
        print("bench-shard: --n must be >= 8 and --lookups/--chunk >= 1",
              file=sys.stderr)
        return 2
    if args.workers < 2:
        print("bench-shard: --workers must be >= 2 (there is nothing to "
              "shard for 1)", file=sys.stderr)
        return 2

    result = measure_shard(
        n=args.n,
        lookups=args.lookups,
        workers=args.workers,
        seed=args.seed,
        chunk=args.chunk,
    )
    print(format_shard_report(result))
    gate = result["speedup_gate_engaged"] and args.min_speedup > 0
    ok = result["parity_ok"] and (
        not gate or result["shard_gain"] >= args.min_speedup)
    verdict = "PASS" if ok else "FAIL"
    if gate:
        print(f"[{verdict}] shard parity and gain ≥ {args.min_speedup:g}x "
              f"with {args.workers} workers")
    else:
        print(f"[{verdict}] shard parity (gain gate waived: "
              f"{result['cpu_count']} CPU(s) < {args.workers} workers "
              "or --min-speedup 0)")
    _write_json_out(args.json_out, "bench-shard", result, ok,
                    workers=args.workers)
    return 0 if ok else 1


def _bench_cost(args) -> int:
    from .experiments.cost_routing import (
        format_cost_report,
        measure_cost_routing,
    )

    if args.n < 8 or args.core_n < 8 or args.pairs < 1 or args.core_pairs < 1:
        print("bench-cost: --n/--core-n must be >= 8 and --pairs/"
              "--core-pairs >= 1", file=sys.stderr)
        return 2
    if args.isps < 1:
        print("bench-cost: --isps must be >= 1", file=sys.stderr)
        return 2
    if args.temperature <= 0:
        print("bench-cost: --temperature must be > 0", file=sys.stderr)
        return 2
    if (rc := _check_workers(args, "bench-cost")) is not None:
        return rc

    result = measure_cost_routing(
        n=args.n,
        pairs=args.pairs,
        seed=args.seed,
        isps=args.isps,
        temperature=args.temperature,
        scalar_sample=args.scalar_sample,
        core_n=args.core_n,
        core_pairs=args.core_pairs,
        workers=args.workers,
    )
    print(format_cost_report(result))
    ok = (result["parity_ok"] and result["core_replay_ok"]
          and result["core_shard_parity_ok"]
          and result["xisp_reduction"] >= args.min_xisp_reduction
          and result["stretch"] <= args.max_stretch
          and result["speedup"] >= args.min_speedup)
    verdict = "PASS" if ok else "FAIL"
    print(f"[{verdict}] parity, cross-ISP reduction ≥ "
          f"{args.min_xisp_reduction:.0%}, stretch ≤ {args.max_stretch:g}x "
          f"and speedup ≥ {args.min_speedup:g}x")
    _write_json_out(args.json_out, "bench-cost", result, ok,
                    workers=args.workers)
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of Naor & Wieder (SPAA 2003).",
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")

    runp = sub.add_parser("run", help="run experiments")
    runp.add_argument("names", nargs="+", help="experiment ids or 'all'")
    runp.add_argument("--quick", action="store_true", help="smaller sizes")
    runp.add_argument("--seed", type=int, default=0)
    runp.add_argument("--out", default=None, help="directory for JSON results")

    benchp = sub.add_parser(
        "bench-throughput",
        help="vectorized vs scalar lookup throughput (with parity check)",
    )
    benchp.add_argument("--n", type=int, default=4096, help="network size")
    benchp.add_argument(
        "--lookups", type=int, default=100_000, help="batch workload size"
    )
    benchp.add_argument(
        "--scalar-sample",
        type=int,
        default=1000,
        help="lookups routed through the scalar baseline (also parity-checked)",
    )
    benchp.add_argument(
        "--algorithm",
        choices=("fast", "dh"),
        default="fast",
        help="fast (greedy, §2.2.1) or dh (two-phase, §2.2.2)",
    )
    benchp.add_argument("--delta", type=int, default=2, help="graph degree Δ")
    benchp.add_argument("--seed", type=int, default=0)
    benchp.add_argument(
        "--workers", type=int, default=1,
        help="worker processes of the sharded execution backend (default 1 "
        "= in-process; recorded in --json-out artifacts)",
    )
    benchp.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="exit non-zero when the batch engine is slower than this factor",
    )
    benchp.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the measurement dict + verdict as JSON",
    )

    churnp = sub.add_parser(
        "bench-churn",
        help="churn soak: auto-refresh router vs full recompiles (owner check)",
    )
    churnp.add_argument(
        "--n", type=int, default=16384, help="initial network size (up to 65536)"
    )
    churnp.add_argument(
        "--lookups", type=int, default=100_000, help="batch workload size"
    )
    churnp.add_argument(
        "--churn-ops", type=int, default=256, help="churn ops per soak phase"
    )
    churnp.add_argument(
        "--phases", type=int, default=2, help="churn/lookup phases before the "
        "mass departure"
    )
    churnp.add_argument(
        "--leave-prob", type=float, default=0.3, help="leave fraction of the "
        "generated traces"
    )
    churnp.add_argument(
        "--mass-n",
        type=int,
        default=None,
        help="cohort size of the final 50%% mass-departure trace "
        "(default min(n, 16384))",
    )
    churnp.add_argument(
        "--churn-budget",
        type=int,
        default=None,
        help="pending-op budget before an incremental refresh falls back to "
        "a full rebuild (default max(16, n//16))",
    )
    churnp.add_argument("--seed", type=int, default=0)
    churnp.add_argument(
        "--workers", type=int, default=1,
        help="recorded in --json-out artifacts (the refresh soak itself is "
        "single-process)",
    )
    churnp.add_argument(
        "--min-refresh-speedup",
        type=float,
        default=5.0,
        help="exit non-zero when incremental refresh per churn op is not at "
        "least this much faster than a full compile_router()",
    )
    churnp.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the measurement dict + verdict as JSON",
    )

    congp = sub.add_parser(
        "bench-congestion",
        help="CSR batch path accounting vs the scalar Counter loop "
        "(bit-identical summaries)",
    )
    congp.add_argument("--n", type=int, default=16384, help="network size")
    congp.add_argument(
        "--lookups", type=int, default=100_000, help="batch workload size"
    )
    congp.add_argument(
        "--scalar-sample",
        type=int,
        default=1000,
        help="lookups routed+accounted through the scalar baseline (its "
        "summary must match the batch accounting bit-for-bit)",
    )
    congp.add_argument(
        "--algorithm",
        choices=("fast", "dh"),
        default="fast",
        help="fast (greedy, §2.2.1) or dh (two-phase, §2.2.2)",
    )
    congp.add_argument("--delta", type=int, default=2, help="graph degree Δ")
    congp.add_argument("--seed", type=int, default=0)
    congp.add_argument(
        "--workers", type=int, default=1,
        help="worker processes of the sharded execution backend (default 1 "
        "= in-process; recorded in --json-out artifacts)",
    )
    congp.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="exit non-zero when batch route-and-account is slower than "
        "this factor over the scalar loop",
    )
    congp.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the measurement dict + verdict as JSON",
    )

    faultp = sub.add_parser(
        "bench-faults",
        help="vectorized fault-tolerant batch lookups vs the scalar walk "
        "(bit-identical choice-driven replay)",
    )
    faultp.add_argument("--n", type=int, default=16384, help="network size")
    faultp.add_argument(
        "--pairs", type=int, default=100_000,
        help="(surviving source, target) pairs routed as one batch"
    )
    faultp.add_argument(
        "--p-fail", type=float, default=0.2,
        help="independent fail-stop probability of the drawn fault plan"
    )
    faultp.add_argument(
        "--scalar-sample",
        type=int,
        default=200,
        help="lookups replayed through the scalar per-hop walk with the "
        "same choice uniforms (must match bit-for-bit)",
    )
    faultp.add_argument("--seed", type=int, default=0)
    faultp.add_argument(
        "--workers", type=int, default=1,
        help="recorded in --json-out artifacts (the FT replay is "
        "single-process)",
    )
    faultp.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="exit non-zero when the batch engine is slower than this factor",
    )
    faultp.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the measurement dict + verdict as JSON",
    )

    cachep = sub.add_parser(
        "bench-caching",
        help="vectorized §3 cache serving vs the scalar request loop "
        "(bit-identical trace replay + salted hotspot relief)",
    )
    cachep.add_argument("--n", type=int, default=16384, help="network size")
    cachep.add_argument(
        "--requests", type=int, default=1_000_000,
        help="Zipf cache requests served as chunked batches"
    )
    cachep.add_argument(
        "--items", type=int, default=64, help="item universe of the Zipf demand"
    )
    cachep.add_argument(
        "--salts", type=int, default=4,
        help="salt points of the salted-mode hotspot comparison"
    )
    cachep.add_argument(
        "--scalar-sample",
        type=int,
        default=1500,
        help="requests served through the scalar CacheSystem baseline",
    )
    cachep.add_argument(
        "--parity-n",
        type=int,
        default=512,
        help="side-network size of the full bit-parity trace replay (≤ 1024)",
    )
    cachep.add_argument(
        "--hotspot-requests",
        type=int,
        default=None,
        help="single-hotspot stream length of the salted-vs-unsalted "
        "comparison (default: same as --requests, capped at 10^6)",
    )
    cachep.add_argument("--seed", type=int, default=1)
    cachep.add_argument(
        "--workers", type=int, default=1,
        help="recorded in --json-out artifacts (the caching fixpoint is "
        "order-dependent and never sharded)",
    )
    cachep.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="exit non-zero when the batch engine is slower than this factor",
    )
    cachep.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the measurement dict + verdict as JSON",
    )

    basep = sub.add_parser(
        "bench-baselines",
        help="Table 1 shoot-out: every baseline's batch router vs its "
        "scalar loop (per-topology parity + speedup gate)",
    )
    basep.add_argument("--n", type=int, default=16384, help="network size")
    basep.add_argument(
        "--lookups", type=int, default=100_000,
        help="batch workload size per scheme"
    )
    basep.add_argument(
        "--scalar-sample",
        type=int,
        default=400,
        help="lookups per scheme routed through the scalar lookup_path loop "
        "(the batch replay of this subsample must match bit-for-bit)",
    )
    basep.add_argument(
        "--schemes",
        default=None,
        metavar="A,B,...",
        help="comma-separated scheme subset (default: all seven)",
    )
    basep.add_argument(
        "--chunk", type=int, default=8192,
        help="batch chunk size of the chunked measurement drive"
    )
    basep.add_argument("--seed", type=int, default=0)
    basep.add_argument(
        "--workers", type=int, default=1,
        help="recorded in --json-out artifacts (the scheme shoot-out is "
        "single-process)",
    )
    basep.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="exit non-zero when ANY scheme's batch router is slower than "
        "this factor over its scalar loop",
    )
    basep.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the measurement dict + verdict as JSON",
    )

    soakp = sub.add_parser(
        "soak",
        help="phase-scripted streaming soak with self-healing storage and "
        "between-phase invariant checks",
    )
    soakp.add_argument(
        "--n", type=int, default=16384, help="initial network size"
    )
    soakp.add_argument(
        "--lookups", type=int, default=1_000_000,
        help="total routed lookups shared by the lookup phases"
    )
    soakp.add_argument(
        "--phases", default=None,
        help="comma-separated scenario script, e.g. "
        "'lookups,churn:192,flash,failstop:0.08,byzantine:0.05,"
        "rebalance,mass:0.3' (default: the 8-phase day-in-the-life script)"
    )
    soakp.add_argument(
        "--chunk", type=int, default=None,
        help="streaming batch size (peak in-flight requests; default 2^16)"
    )
    soakp.add_argument("--seed", type=int, default=0)
    soakp.add_argument(
        "--workers", type=int, default=1,
        help="worker processes sharding the lookup phases (default 1 = "
        "in-process; merged stats are bit-identical either way)",
    )
    soakp.add_argument(
        "--items", type=int, default=24,
        help="erasure-coded blobs stored on the fault substrate"
    )
    soakp.add_argument(
        "--no-invariants", action="store_true",
        help="skip the between-phase invariant checker (timing runs only)"
    )
    soakp.add_argument(
        "--min-ft-success", type=float, default=0.9,
        help="exit non-zero when the fault-tolerant lookup success rate "
        "drops below this"
    )
    soakp.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write the deterministic result dict + verdict as JSON "
        "(byte-identical across runs with the same seed)",
    )

    shardp = sub.add_parser(
        "bench-shard",
        help="multicore sharded batch routing vs the single-process engine "
        "(bit-identical merged congestion + hop histogram)",
    )
    shardp.add_argument(
        "--n", type=int, default=1 << 18, help="network size (default 2^18)"
    )
    shardp.add_argument(
        "--lookups", type=int, default=1_000_000,
        help="random-pair lookups routed by both backends"
    )
    shardp.add_argument(
        "--workers", type=int, default=4,
        help="worker processes of the sharded backend (>= 2)"
    )
    shardp.add_argument(
        "--chunk", type=int, default=1 << 17,
        help="per-dispatch batch size of the chunked drive (default 2^17)"
    )
    shardp.add_argument("--seed", type=int, default=0)
    shardp.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="exit non-zero when the sharded gain is below this factor; "
        "only enforced when the machine has >= --workers CPUs (parity is "
        "always enforced); 0 disables the gain gate",
    )
    shardp.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the measurement dict + verdict as JSON",
    )

    costp = sub.add_parser(
        "bench-cost",
        help="cost-aware covering-edge routing over a synthetic ISP map "
        "(cross-ISP reduction + stretch + bit-parity replay gates)",
    )
    costp.add_argument(
        "--n", type=int, default=16384,
        help="overlapping-network size of the policy shoot-out"
    )
    costp.add_argument(
        "--pairs", type=int, default=100_000,
        help="(source, target) pairs routed per policy"
    )
    costp.add_argument(
        "--isps", type=int, default=8,
        help="ISP count of the synthetic cost map"
    )
    costp.add_argument(
        "--temperature", type=float, default=1.0,
        help="softmin temperature of the weighted policy"
    )
    costp.add_argument(
        "--scalar-sample", type=int, default=200,
        help="lookups per cost policy replayed through the scalar walk "
        "with the same uniforms (must match bit-for-bit)",
    )
    costp.add_argument(
        "--core-n", type=int, default=4096,
        help="core-engine cell network size (tau_used replay check)"
    )
    costp.add_argument(
        "--core-pairs", type=int, default=50_000,
        help="pairs routed by the core-engine cell"
    )
    costp.add_argument("--seed", type=int, default=0)
    costp.add_argument(
        "--workers", type=int, default=1,
        help="also route the core greedy cell on the sharded backend "
        "with this many workers and require bit-parity",
    )
    costp.add_argument(
        "--min-xisp-reduction", type=float, default=0.3,
        help="exit non-zero when greedy cuts mean cross-ISP traffic by "
        "less than this fraction vs uniform",
    )
    costp.add_argument(
        "--max-stretch", type=float, default=1.5,
        help="exit non-zero when greedy's mean hop count exceeds "
        "uniform's by more than this factor",
    )
    costp.add_argument(
        "--min-speedup", type=float, default=10.0,
        help="exit non-zero when the batch engine is slower than this "
        "factor over the scalar replay",
    )
    costp.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the measurement dict + verdict as JSON",
    )

    cmpp = sub.add_parser(
        "bench-compare",
        help="regression gate: diff run bench artifacts against committed "
        "references (throughput floor + parity flags)",
    )
    cmpp.add_argument(
        "--run-dir",
        default="bench-artifacts",
        help="directory holding this run's BENCH_*.json artifacts",
    )
    cmpp.add_argument(
        "--ref-dir",
        default="benchmarks/baselines",
        help="directory holding the committed reference artifacts",
    )
    cmpp.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional throughput drop below the reference "
        "before failing (default 0.30 = fail on >30%% regression)",
    )
    cmpp.add_argument(
        "--update-refs",
        action="store_true",
        help="instead of comparing, copy the run artifacts over the "
        "references (re-baseline after an intentional change)",
    )

    args = parser.parse_args(argv)

    from .experiments.common import all_experiments
    from .experiments.runner import run_experiments  # noqa: F401 (fills registry)

    available = list(all_experiments())
    if args.command == "list":
        for name in available:
            print(name)
        return 0
    if args.command == "bench-throughput":
        return _bench_throughput(args)
    if args.command == "bench-churn":
        return _bench_churn(args)
    if args.command == "bench-congestion":
        return _bench_congestion(args)
    if args.command == "bench-faults":
        return _bench_faults(args)
    if args.command == "bench-caching":
        return _bench_caching(args)
    if args.command == "bench-baselines":
        return _bench_baselines(args)
    if args.command == "bench-shard":
        return _bench_shard(args)
    if args.command == "bench-cost":
        return _bench_cost(args)
    if args.command == "soak":
        from .sim.scenario import DEFAULT_CHUNK, DEFAULT_PHASES

        if args.phases is None:
            args.phases = DEFAULT_PHASES
        if args.chunk is None:
            args.chunk = DEFAULT_CHUNK
        return _soak(args)
    if args.command == "bench-compare":
        return _bench_compare(args)

    names = args.names
    lowered = [n.lower() for n in names]
    if "all" in lowered and len(names) > 1:
        print(
            "run: 'all' cannot be combined with explicit experiment ids",
            file=sys.stderr,
        )
        return 2
    if lowered != ["all"]:
        unknown = [n for n in names if n.upper() not in available]
        if unknown:
            print(
                f"unknown experiment id(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            print(
                f"available: {', '.join(available)}",
                file=sys.stderr,
            )
            return 2
    results = run_experiments(names, seed=args.seed, quick=args.quick,
                              out_dir=args.out)
    return 0 if all(r.passed for r in results) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
