"""Command-line entry point: ``repro-experiments``.

Examples::

    repro-experiments list
    repro-experiments run E1 E3 --quick
    repro-experiments run all --out results/
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the experiments of Naor & Wieder (SPAA 2003).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    runp = sub.add_parser("run", help="run experiments")
    runp.add_argument("names", nargs="+", help="experiment ids or 'all'")
    runp.add_argument("--quick", action="store_true", help="smaller sizes")
    runp.add_argument("--seed", type=int, default=0)
    runp.add_argument("--out", default=None, help="directory for JSON results")
    args = parser.parse_args(argv)

    from .experiments.runner import EXPERIMENT_IDS, run_experiments

    if args.command == "list":
        for name in EXPERIMENT_IDS:
            print(name)
        return 0
    results = run_experiments(args.names, seed=args.seed, quick=args.quick,
                              out_dir=args.out)
    return 0 if all(r.passed for r in results) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
