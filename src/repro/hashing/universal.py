"""Low-independence hash families used as weaker comparison points.

Section 3.3 of the paper emphasises that the single-hotspot cache bounds
only need *one-wise* independence ("a very weak requirement; for instance
the common notion of a pairwise independent family satisfies this").  The
ablation experiments therefore also run the caching protocol with a
pairwise family to verify the theorem's hypothesis is as weak as claimed.
"""

from __future__ import annotations

import numpy as np

from .kwise import MERSENNE_P, Key, KWiseHash, key_to_int

__all__ = ["PairwiseHash", "OneWiseHash", "AdversarialConstantHash"]


class PairwiseHash(KWiseHash):
    """``h(x) = (a x + b mod p)/p`` — the classic 2-wise independent family."""

    def __init__(self, rng: np.random.Generator):
        super().__init__(2, rng)


class OneWiseHash(KWiseHash):
    """Uniform marginals only (degree-0 polynomial plus key mixing).

    A random shift ``h(x) = (x + b mod p)/p``.  Marginally uniform for any
    fixed key (the Lemma 3.7 hypothesis) but the *joint* distribution over
    several keys is maximally correlated, making it a good adversarial
    stress for the multi-hotspot experiment E8.
    """

    def __init__(self, rng: np.random.Generator):
        super().__init__(1, rng)
        self._shift = self.coefficients[0]

    def hash_int(self, key: Key) -> int:
        return (key_to_int(key) + self._shift) % self.prime


class AdversarialConstantHash:
    """A pathological ``h`` that maps every item to the same point.

    Lemma 3.5 "holds even if an adversary is allowed to choose h(i)" — the
    single-hotspot cache bound does not use hash randomness at all.  This
    class lets the test suite exercise exactly that adversary.
    """

    def __init__(self, point: float = 0.0):
        self.point = float(point) % 1.0

    def __call__(self, key: Key) -> float:
        return self.point

    def hash_int(self, key: Key) -> int:
        return int(self.point * MERSENNE_P)
