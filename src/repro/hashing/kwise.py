"""k-wise independent hash families over ``[0, 1)``.

The paper's congestion theorems need hash functions with bounded
independence rather than idealised random oracles:

* Theorem 2.11 (permutation routing with hashed targets) assumes ``h`` is
  ``log n``-wise independent;
* Theorem 3.8 (multiple hotspots) assumes ``k >= log n``;
* Lemma 3.7 only needs 1-wise (uniform marginals).

We implement the textbook construction: a degree-``(k-1)`` polynomial with
uniform coefficients over the prime field ``GF(p)``, ``p = 2^61 - 1`` (a
Mersenne prime, so reduction is cheap and the field is large enough that
the ``[0, 1)`` image is effectively continuous: collisions of distinct
keys happen with probability ``≈ 2^-61`` per pair).

Keys may be integers, strings or bytes; non-integers are first mapped to
integers with BLAKE2b (a fixed, seedless digest, so a hash family member
is a deterministic pure function of its coefficients).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

__all__ = ["MERSENNE_P", "KWiseHash", "key_to_int", "PointHasher"]

MERSENNE_P = (1 << 61) - 1

Key = Union[int, str, bytes]


def key_to_int(key: Key) -> int:
    """Stable injective-ish mapping of a key into ``GF(p)``.

    Integers are reduced mod ``p``; strings/bytes go through BLAKE2b so
    that adversarially chosen names (the §3 hotspot adversary picks data
    items, not hash values) cannot align with the polynomial structure.
    """
    if isinstance(key, bool):  # bool is an int subclass; keep it distinct from 0/1 keys
        key = int(key) + (1 << 40)
    if isinstance(key, int):
        return key % MERSENNE_P
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, bytes):
        digest = hashlib.blake2b(key, digest_size=16).digest()
        return int.from_bytes(digest, "big") % MERSENNE_P
    raise TypeError(f"unsupported key type {type(key)!r}")


class KWiseHash:
    """A random member of a ``k``-wise independent family ``GF(p) -> [0, 1)``.

    Evaluates ``h(x) = (a_0 + a_1 x + … + a_{k-1} x^{k-1} mod p) / p``
    by Horner's rule.  With coefficients drawn uniformly the values on any
    ``k`` distinct keys are independent and uniform on ``{0/p, …, (p-1)/p}``
    — the discrete approximation of uniform-on-``[0,1)`` the paper's
    precision remark (§2.2.3) sanctions.
    """

    def __init__(self, k: int, rng: np.random.Generator, prime: int = MERSENNE_P):
        if k < 1:
            raise ValueError("independence parameter k must be >= 1")
        self.k = int(k)
        self.prime = int(prime)
        # rng.integers is limited to 64-bit; compose two draws for safety margin.
        self.coefficients: list[int] = [
            (int(rng.integers(0, 1 << 61)) ^ (int(rng.integers(0, 1 << 61)) << 1))
            % self.prime
            for _ in range(self.k)
        ]

    def hash_int(self, key: Key) -> int:
        """Polynomial evaluation in ``GF(p)`` (an integer in ``[0, p)``)."""
        x = key_to_int(key)
        acc = 0
        for a in reversed(self.coefficients):
            acc = (acc * x + a) % self.prime
        return acc

    def __call__(self, key: Key) -> float:
        """Hash a key to a point of ``[0, 1)``."""
        return self.hash_int(key) / self.prime

    def hash_many(self, keys: Iterable[Key]) -> np.ndarray:
        """Vectorised convenience: hash a sequence of keys to float64 points."""
        return np.asarray([self(k) for k in keys], dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KWiseHash(k={self.k}, coeffs[0]={self.coefficients[0]})"


class PointHasher:
    """The system-wide item-to-point map ``h`` handed to every joining server.

    Paper §2.1 ("Mapping the data items to servers"): *"we assume that h is
    some hash function (for instance a k-wise independent function for some
    k), which is chosen at the construction of the system and is given to
    every server upon joining."*  This wrapper fixes ``k = max(log2 n_max,
    pairwise)`` at construction and memoises item positions so repeated
    lookups of the same item are cheap and consistent.
    """

    def __init__(self, rng: np.random.Generator, k: int = 64):
        self._fn = KWiseHash(k, rng)
        self._memo: dict[Key, float] = {}

    @property
    def k(self) -> int:
        """Independence of the underlying family."""
        return self._fn.k

    def __call__(self, key: Key) -> float:
        if key not in self._memo:
            self._memo[key] = self._fn(key)
        return self._memo[key]

    def clear_memo(self) -> None:
        """Drop memoised positions (e.g. between experiment repetitions)."""
        self._memo.clear()
