"""Vectorized batch-lookup engine for the Distance Halving DHT.

The scalar algorithms in :mod:`repro.core.lookup` route one message at a
time through Python objects — perfect for validating the paper's theorems,
far too slow for the "heavy traffic" workloads the roadmap targets.  This
module routes *arrays* of lookups through the same continuous-discrete
scheme:

* the segment decomposition is frozen into sorted NumPy arrays (id
  points, segment bounds, midpoints, a CSR neighbour table), so a cover
  query for a whole batch is one ``np.searchsorted``;
* the walk functions of §2.2 are evaluated in closed form per *routing
  level* instead of per hop per lookup — level ``t`` of the fast lookup
  is ``w(σ(z)_t, y) = (y + ⌊z·Δ^t⌋) / Δ^t`` for every pending lookup at
  once, and the backward descent reuses ``⌊z·Δ^t⌋ mod Δ^j``;
* the two-phase Distance Halving lookup advances every in-flight message
  one level per iteration (`pos/Δ + d/Δ` elementwise) and resolves the
  "target image covered by me or a neighbour" test with a binary search
  over a sorted edge-key table.

Every float operation mirrors the scalar implementation ULP-for-ULP (same
order of IEEE-754 operations), so batch results are *bit-identical* to
:func:`repro.core.lookup.fast_lookup` — owners, walk parameters ``t``,
hop counts, and (with ``keep_paths=True``) full server paths — and to
:func:`repro.core.lookup.dh_lookup` when both are driven by the same
digit strings ``tau``.  That parity is what the property tests and the
built-in scalar-subsample cross-check of ``repro.cli bench-throughput``
assert.

The router is a *snapshot*: it does not observe joins or leaves made
after construction.  Rebuild it (``net.compile_router()``) after churn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .lookup import MAX_WALK_STEPS, compress_path
from .segments import cover_indices, fold_unit, normalize_array

__all__ = ["BatchRouter", "BatchLookupResult"]

def _normalize_array(values, size: Optional[int] = None) -> np.ndarray:
    """:func:`~repro.core.segments.normalize_array` with scalar broadcast.

    Scalars broadcast to ``size`` when given; arrays are flattened.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(size if size is not None else 1, float(arr))
    return normalize_array(arr.ravel())


@dataclass
class BatchLookupResult:
    """Array-of-structs outcome of a routed batch of lookups.

    Mirrors :class:`repro.core.lookup.LookupResult` field-for-field, but
    every per-lookup quantity is a NumPy array of length ``size``.
    ``owner_idx``/``source_idx`` index into ``points`` (the router's
    sorted id vector).  When the batch was routed with
    ``keep_paths=True``, :meth:`server_path` reconstructs the exact
    compressed server path of any single lookup for cross-checking
    against the scalar engine.
    """

    algorithm: str
    points: np.ndarray
    targets: np.ndarray
    sources: np.ndarray
    source_idx: np.ndarray
    owner_idx: np.ndarray
    t: np.ndarray
    hops: np.ndarray
    phase1_hops: Optional[np.ndarray] = None
    # internal path matrices (levels × size); -1 marks "no server recorded"
    _phase1_levels: Optional[np.ndarray] = field(default=None, repr=False)
    _phase2_levels: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def size(self) -> int:
        return int(self.targets.size)

    @property
    def owner(self) -> np.ndarray:
        """Id points of the servers owning each target."""
        return self.points[self.owner_idx]

    @property
    def keeps_paths(self) -> bool:
        return self._phase2_levels is not None

    def server_path(self, i: int) -> List[float]:
        """Compressed server path of lookup ``i`` (requires ``keep_paths``).

        Identical to ``LookupResult.server_path`` of the scalar engine
        for the same (source, target) — the parity tests compare them
        element-wise.
        """
        if not self.keeps_paths:
            raise ValueError("batch was routed with keep_paths=False")
        seq: List[int] = []
        if self._phase1_levels is not None:
            for row in self._phase1_levels:
                v = int(row[i])
                if v >= 0:
                    seq.append(v)
        ti = int(self.t[i])
        back = self._phase2_levels
        for j in range(ti, -1, -1):
            v = int(back[j, i])
            if v >= 0:
                seq.append(v)
        return compress_path([float(self.points[k]) for k in seq])

    def mean_hops(self) -> float:
        return float(self.hops.mean()) if self.size else 0.0


class BatchRouter:
    """Frozen NumPy snapshot of a network that routes lookups in bulk.

    Parameters
    ----------
    net:
        The :class:`~repro.core.network.DistanceHalvingNetwork` to
        snapshot.  Coordinates are cast to ``float64``; networks built on
        exact :class:`~fractions.Fraction` ids keep bit-parity with the
        scalar engine as long as the ids are dyadic (e.g. the equally
        spaced De Bruijn instance).
    build_adjacency:
        Precompute the neighbour table needed by
        :meth:`batch_dh_lookup`.  Costs one pass over all segment images
        (O(n·Δ) cover queries); skipped by default because
        :meth:`batch_fast_lookup` never consults adjacency.
    """

    def __init__(self, net, build_adjacency: bool = False) -> None:
        if net.n == 0:
            raise LookupError("cannot compile a router over an empty network")
        self.delta = int(net.delta)
        self.with_ring = bool(net.with_ring)
        self.n = int(net.n)
        self.points = net.segments.as_array()
        starts, ends = net.segments.bounds_arrays()
        self.seg_start = starts
        self.seg_end = ends
        self.midpoints = net.segments.midpoints_array()
        self._edge_keys: Optional[np.ndarray] = None
        self._net = net
        if build_adjacency:
            self._build_adjacency()

    # ------------------------------------------------------------- snapshot
    def _build_adjacency(self) -> None:
        """Sorted ``i·n + j`` keys of every directed neighbour pair."""
        if self._net.n != self.n or not np.array_equal(
            self._net.segments.as_array(), self.points
        ):
            raise RuntimeError(
                "network changed since compile_router(); the router is a "
                "frozen snapshot — rebuild it (net.compile_router()) after "
                "joins or leaves"
            )
        indptr, indices = self._net.adjacency_arrays()
        rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(indptr))
        self._edge_keys = np.sort(rows * self.n + indices.astype(np.int64))

    def _edge_member(self, row: np.ndarray, col: np.ndarray) -> np.ndarray:
        """Vectorized ``col[i] in neighbours(row[i])`` membership test."""
        if self._edge_keys is None:
            self._build_adjacency()
        keys = self._edge_keys
        if len(keys) == 0:
            return np.zeros(row.shape, dtype=bool)
        q = row.astype(np.int64) * self.n + col.astype(np.int64)
        pos = np.searchsorted(keys, q)
        pos_c = np.minimum(pos, len(keys) - 1)
        return (pos < len(keys)) & (keys[pos_c] == q)

    # ---------------------------------------------------------------- cover
    def cover(self, ys: np.ndarray) -> np.ndarray:
        """Indices of the segments covering each point (one searchsorted).

        ``ys`` must already lie in ``[0, 1)`` (the engine normalizes at
        entry and folds after every walk step).  Under that precondition
        it matches ``SegmentMap.cover`` exactly: greatest ``x_i <= y``,
        wrapping below ``x_0`` to the last server.  For raw ring points
        use :meth:`SegmentMap.cover_array`, which normalizes first.
        """
        return cover_indices(self.points, ys)

    def cover_points(self, ys: np.ndarray) -> np.ndarray:
        return self.points[self.cover(ys)]

    def _in_segment(self, p: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Vector version of ``p in segment(idx)`` (wrap-aware half-open)."""
        if self.n == 1:
            return np.ones(p.shape, dtype=bool)
        start = self.seg_start[idx]
        end = self.seg_end[idx]
        inseg = (p >= start) & (p < end)
        # only the seam-crossing last segment has start > end; for those
        # lanes the half-open test is a disjunction instead
        wraps = start > end
        if wraps.any():
            inseg[wraps] = (p[wraps] >= start[wraps]) | (p[wraps] < end[wraps])
        return inseg

    # ---------------------------------------------------------- fast lookup
    def batch_fast_lookup(
        self,
        sources,
        targets,
        keep_paths: bool = False,
        max_levels: int = MAX_WALK_STEPS,
    ) -> BatchLookupResult:
        """Vectorized Fast (greedy) Lookup (§2.2.1) for a batch of pairs.

        ``sources`` and ``targets`` are arrays of points in ``[0, 1)``
        (scalars broadcast), in the same order as the scalar
        ``fast_lookup(net, source_point, target)``.  One routing level
        costs one closed-form walk evaluation plus one ``searchsorted``
        over the whole batch; per Corollary 2.5 at most
        ``log_Δ n + log_Δ ρ + 1`` levels run.

        For power-of-two ``Δ`` the ``Δ^t`` scaling is exact in float64 at
        every level, so the level budget is the scalar engine's
        ``MAX_WALK_STEPS`` and parity holds on arbitrarily unsmooth
        decompositions.  For other ``Δ`` levels beyond ``≈ 52/log2(Δ)``
        would overflow the float64 mantissa of ``⌊z·Δ^t⌋``; such levels
        only occur when some segment is shorter than ``Δ^-52`` and raise
        ``RuntimeError`` rather than silently diverging from the
        (integer-exact) scalar engine.
        """
        y = _normalize_array(targets)
        src = _normalize_array(sources, size=y.size)
        if src.size != y.size:
            raise ValueError("sources and targets must have the same length")
        size = y.size
        ci = self.cover(src)
        z = self.midpoints[ci]

        t = np.zeros(size, dtype=np.int64)
        s_final = np.zeros(size, dtype=np.float64)  # ⌊z·Δ^t⌋ at the chosen t
        pending = np.ones(size, dtype=bool)
        if self.delta & (self.delta - 1) == 0:
            level_cap = max_levels
        else:
            level_cap = min(max_levels, int(52 / math.log2(self.delta)))
        for level in range(level_cap + 1):
            if level == 0:
                p = y
                s_level = None
            else:
                scale = float(self.delta) ** level
                s_level = np.trunc(z * scale)
                p = fold_unit((y + s_level) / scale)
            inseg = self._in_segment(p, ci)
            newly = pending & inseg
            t[newly] = level
            if s_level is not None:
                s_final[newly] = s_level[newly]
            pending &= ~inseg
            if not pending.any():
                break
        else:  # pragma: no cover - beyond every Corollary 2.5 bound
            raise RuntimeError("batch_fast_lookup failed to converge")

        owner_idx = self.cover(y)
        hops = np.zeros(size, dtype=np.int64)
        cur = ci.copy()
        tmax = int(t.max()) if size else 0
        back = None
        if keep_paths:
            back = np.full((tmax + 1, size), -1, dtype=np.int64)
            back[t, np.arange(size)] = ci
        for j in range(tmax - 1, -1, -1):
            scale_j = float(self.delta) ** j
            off = np.mod(s_final, scale_j)
            p = fold_unit((y + off) / scale_j)
            c = self.cover(p)
            live = t > j
            hops += live & (c != cur)
            cur = np.where(live, c, cur)
            if back is not None:
                back[j, live] = c[live]
        return BatchLookupResult(
            algorithm="fast",
            points=self.points,
            targets=y,
            sources=src,
            source_idx=ci,
            owner_idx=owner_idx,
            t=t,
            hops=hops,
            _phase2_levels=back,
        )

    # ------------------------------------------------------------ dh lookup
    def batch_dh_lookup(
        self,
        sources,
        targets,
        rng: Optional[np.random.Generator] = None,
        tau: Optional[np.ndarray] = None,
        keep_paths: bool = False,
        max_steps: int = MAX_WALK_STEPS,
    ) -> BatchLookupResult:
        """Vectorized two-phase Distance Halving Lookup (§2.2.2).

        Phase I advances every unresolved lookup one random digit per
        iteration (``pos/Δ + d/Δ``, the same elementwise IEEE ops as the
        scalar ``child``); the stop test "target image covered by me or
        by a neighbour" is a segment-bound comparison plus one binary
        search in the sorted edge-key table.  Phase II descends the
        closed-form backward walk one level per iteration, exactly like
        the fast path.

        Supply ``tau`` (shape ``(size, L)`` or ``(L,)``, digits in
        ``[0, Δ)``) to fix the random strings — with the same ``tau`` the
        result is bit-identical to scalar ``dh_lookup``.  With ``rng``
        the *distribution* matches but digits are drawn batch-wise, so
        individual paths differ from a scalar replay of the same
        generator.
        """
        y = _normalize_array(targets)
        src = _normalize_array(sources, size=y.size)
        if src.size != y.size:
            raise ValueError("sources and targets must have the same length")
        if rng is None and tau is None:
            raise ValueError("batch_dh_lookup needs an rng or explicit tau")
        size = y.size
        tau_arr: Optional[np.ndarray] = None
        if tau is not None:
            tau_arr = np.asarray(tau, dtype=np.int64)
            if tau_arr.ndim == 1:
                tau_arr = np.broadcast_to(tau_arr, (size, tau_arr.size))
            if tau_arr.shape[0] != size:
                raise ValueError("tau must have one digit string per lookup")
            if tau_arr.size and ((tau_arr < 0) | (tau_arr >= self.delta)).any():
                raise ValueError(f"tau digits out of range for delta={self.delta}")

        delta = self.delta
        cur = self.cover(src)
        src_idx = cur.copy()
        pos = src.copy()
        image = y.copy()
        t = np.zeros(size, dtype=np.int64)
        off = np.zeros(size, dtype=np.float64)  # Σ d_k Δ^k, exact in float64
        hops1 = np.zeros(size, dtype=np.int64)
        done = np.zeros(size, dtype=bool)
        p1_rows: List[np.ndarray] = [cur.copy()] if keep_paths else []

        # beyond ~52/log2(Δ) digits the float64 offset accumulator loses
        # exactness (the scalar engine carries exact integer offsets, so
        # it can converge on such walks — segments shorter than Δ^-52 —
        # where we must raise loudly instead of silently diverging);
        # Theorem 2.8 keeps real walks far below that
        step_cap = min(max_steps, int(52 / math.log2(delta)))
        step = 0
        while not done.all():
            if step > step_cap:  # pragma: no cover - beyond Theorem 2.8
                raise RuntimeError("batch_dh_lookup phase I failed to converge")
            active = ~done
            done |= active & self._in_segment(image, cur)
            rem = active & ~done
            row = None
            if rem.any():
                holder = self.cover(image)
                via_neighbor = rem & self._edge_member(cur, holder)
                # the holder covers a point outside s(cur), so it is a
                # distinct server: appending it always costs one hop
                hops1 += via_neighbor
                if keep_paths:
                    row = np.full(size, -1, dtype=np.int64)
                    row[via_neighbor] = holder[via_neighbor]
                cur = np.where(via_neighbor, holder, cur)
                done |= via_neighbor
                cont = rem & ~via_neighbor
                if cont.any():
                    if tau_arr is not None:
                        if step >= tau_arr.shape[1]:
                            raise ValueError(
                                "supplied tau exhausted before lookup finished"
                            )
                        d = tau_arr[:, step].astype(np.float64)
                    else:
                        d = rng.integers(0, delta, size=size).astype(np.float64)
                    pos = fold_unit(np.where(cont, pos / delta + d / delta, pos))
                    image = fold_unit(
                        np.where(cont, image / delta + d / delta, image)
                    )
                    off = np.where(cont, off + d * float(delta) ** step, off)
                    t += cont
                    c = self.cover(pos)
                    hops1 += cont & (c != cur)
                    if row is not None:
                        row[cont] = c[cont]
                    cur = np.where(cont, c, cur)
            if keep_paths and row is not None:
                p1_rows.append(row)
            step += 1

        # Phase II: closed-form backward descent w(τ[:j], y) for j = t_i..0.
        owner_idx = self.cover(y)
        hops = hops1.copy()
        last = cur.copy()
        tmax = int(t.max()) if size else 0
        back = np.full((tmax + 1, size), -1, dtype=np.int64) if keep_paths else None
        for j in range(tmax, -1, -1):
            scale_j = float(delta) ** j
            off_j = np.mod(off, scale_j)
            p = fold_unit((y + off_j) / scale_j)
            c = self.cover(p)
            live = t >= j
            hops += live & (c != last)
            last = np.where(live, c, last)
            if back is not None:
                back[j, live] = c[live]
        return BatchLookupResult(
            algorithm="dh",
            points=self.points,
            targets=y,
            sources=src,
            source_idx=src_idx,
            owner_idx=owner_idx,
            t=t,
            hops=hops,
            phase1_hops=hops1,
            _phase1_levels=np.vstack(p1_rows) if keep_paths else None,
            _phase2_levels=back,
        )
