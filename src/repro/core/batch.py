"""Vectorized batch-lookup engine for the Distance Halving DHT.

The scalar algorithms in :mod:`repro.core.lookup` route one message at a
time through Python objects — perfect for validating the paper's theorems,
far too slow for the "heavy traffic" workloads the roadmap targets.  This
module routes *arrays* of lookups through the same continuous-discrete
scheme:

* the segment decomposition is frozen into sorted NumPy arrays (id
  points, segment bounds, midpoints, a CSR neighbour table), so a cover
  query for a whole batch is one ``np.searchsorted``;
* the walk functions of §2.2 are evaluated in closed form per *routing
  level* instead of per hop per lookup — level ``t`` of the fast lookup
  is ``w(σ(z)_t, y) = (y + ⌊z·Δ^t⌋) / Δ^t`` for every pending lookup at
  once, and the backward descent reuses ``⌊z·Δ^t⌋ mod Δ^j``;
* the two-phase Distance Halving lookup advances every in-flight message
  one level per iteration (`pos/Δ + d/Δ` elementwise) and resolves the
  "target image covered by me or a neighbour" test with a binary search
  over a sorted edge-key table.

Every float operation mirrors the scalar implementation ULP-for-ULP (same
order of IEEE-754 operations), so batch results are *bit-identical* to
:func:`repro.core.lookup.fast_lookup` — owners, walk parameters ``t``,
hop counts, and (with ``keep_paths=True``) full server paths — and to
:func:`repro.core.lookup.dh_lookup` when both are driven by the same
digit strings ``tau``.  That parity is what the property tests and the
built-in scalar-subsample cross-check of ``repro.cli bench-throughput``
assert.

The router snapshots the decomposition, but it is not doomed to die at
the first membership change: every network keeps a membership version
counter plus a bounded op journal, and a router obtained from
``net.router(auto_refresh=True)`` re-syncs *incrementally* before each
batch — pending joins/leaves are replayed as O(affected-region) patches
to the sorted point/segment/midpoint arrays and the touched adjacency
rows, falling back to a full recompile only past a configurable churn
budget.  A plain ``net.compile_router()`` handle instead raises an
actionable stale-router error rather than silently serving an outdated
snapshot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

import numpy as np

from .lookup import MAX_WALK_STEPS, compress_path
from .segments import cover_indices, fold_unit, normalize_array
from .snapshot import ColumnarSnapshot, SnapshotRefreshStats

__all__ = ["BatchRouter", "BatchLookupResult", "RouterRefreshStats",
           "levels_to_csr"]

#: The router's refresh accounting is the shared snapshot layer's —
#: kept under its historical name for the churn-soak experiment and
#: the refresh test suite.
RouterRefreshStats = SnapshotRefreshStats

#: Fixed row stride of the sorted adjacency keys ``row·STRIDE + col``.
#: Independent of ``n`` so incremental insertions/deletions only have to
#: shift indices, never re-encode the whole table (requires n < 2^31).
_ROW_STRIDE = np.int64(1) << 31

#: One message for every stale-router raise site, so the guidance and the
#: substrings tests match on ("stale", "rebuild", "auto_refresh") cannot drift.
_STALE_ROUTER_ERROR = (
    "stale router: the network changed since compile_router() (membership "
    "version moved on); the router is a frozen snapshot — rebuild it "
    "(net.compile_router()) after joins or leaves, or compile with "
    "net.router(auto_refresh=True) to follow churn automatically"
)


def _isin_sorted(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Vectorized membership of ``values`` in a *sorted* int table."""
    if len(table) == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.searchsorted(table, values)
    pos_c = np.minimum(pos, len(table) - 1)
    return (pos < len(table)) & (table[pos_c] == values)


def _check_keep_paths(keep_paths) -> None:
    """Reject anything but the three supported path-recording modes."""
    if keep_paths not in (False, True, "csr"):
        raise ValueError(
            f"keep_paths must be False, True, or 'csr'; got {keep_paths!r}"
        )


def levels_to_csr(size: int, level_mats) -> tuple:
    """Flatten per-level server matrices into CSR path arrays.

    ``level_mats`` lists ``(levels × size)`` int matrices whose rows are
    in path order for every lookup (column); ``-1`` marks "no server
    recorded at this level".  The result is the vectorized equivalent of
    running :func:`~repro.core.lookup.compress_path` per column: lookup
    ``i``'s compressed server-index path is
    ``path_servers[path_offsets[i]:path_offsets[i + 1]]``.

    One transpose + ``flatnonzero`` + shifted-compare does the whole
    batch — no per-lookup Python loop.  Shared by this module's
    ``keep_paths`` modes and the fault-tolerant batch engine
    (:mod:`repro.faults.batch_ft`), whose level matrices use the same
    convention.
    """
    offsets = np.zeros(size + 1, dtype=np.int64)
    mats = [m for m in level_mats if m is not None and m.size]
    if not mats or size == 0:
        return np.zeros(0, dtype=np.int32), offsets
    stacked = np.concatenate(mats, axis=0)
    depth = stacked.shape[0]
    flat = stacked.T.ravel()  # lookup-major; rows keep path order inside
    at = np.flatnonzero(flat >= 0)
    vals = flat[at]
    lane = at // depth
    keep = np.ones(vals.size, dtype=bool)
    if vals.size > 1:
        keep[1:] = (vals[1:] != vals[:-1]) | (lane[1:] != lane[:-1])
    np.cumsum(np.bincount(lane[keep], minlength=size), out=offsets[1:])
    return vals[keep].astype(np.int32), offsets


def _normalize_array(values, size: Optional[int] = None) -> np.ndarray:
    """:func:`~repro.core.segments.normalize_array` with scalar broadcast.

    Scalars broadcast to ``size`` when given; arrays are flattened.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(size if size is not None else 1, float(arr))
    return normalize_array(arr.ravel())


@dataclass
class BatchLookupResult:
    """Array-of-structs outcome of a routed batch of lookups.

    Mirrors :class:`repro.core.lookup.LookupResult` field-for-field, but
    every per-lookup quantity is a NumPy array of length ``size``.
    ``owner_idx``/``source_idx`` index into ``points`` (the router's
    sorted id vector).

    Paths come in two representations, chosen by the ``keep_paths``
    argument of the batch calls:

    * ``keep_paths=True`` keeps the internal per-level matrices and
      :meth:`server_path` reconstructs the compressed server path of any
      single lookup for cross-checking against the scalar engine;
    * ``keep_paths="csr"`` flattens all paths into two arrays —
      ``path_servers`` (``int32``, one entry per path segment, indices
      into ``points``) and ``path_offsets`` (``int64``, length
      ``size + 1``) — the storage the vectorized accounting layer
      (:class:`~repro.core.routing_stats.BatchCongestion`) consumes with
      one ``np.bincount`` per batch.  Lookup ``i``'s path is
      ``path_servers[path_offsets[i]:path_offsets[i + 1]]``; decode to
      id points with :meth:`path_points`.

    :meth:`to_csr` converts lazily from the first representation to the
    second (the two are lossless re-encodings of each other and of the
    scalar ``LookupResult.server_path``).
    """

    algorithm: str
    points: np.ndarray
    targets: np.ndarray
    sources: np.ndarray
    source_idx: np.ndarray
    owner_idx: np.ndarray
    t: np.ndarray
    hops: np.ndarray
    phase1_hops: Optional[np.ndarray] = None
    #: phase-I digits actually taken (cost-aware dh batches record them,
    #: 0-padded past each lookup's ``t``) — feeding them back through the
    #: ``tau=`` replay hook of the scalar/batch dh lookups reproduces the
    #: routed paths bit-for-bit; ``policy`` names the selection rule
    tau_used: Optional[np.ndarray] = None
    policy: Optional[str] = None
    # CSR path representation (filled by keep_paths="csr" or to_csr())
    path_servers: Optional[np.ndarray] = None
    path_offsets: Optional[np.ndarray] = None
    # internal path matrices (levels × size); -1 marks "no server recorded"
    _phase1_levels: Optional[np.ndarray] = field(default=None, repr=False)
    _phase2_levels: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def size(self) -> int:
        return int(self.targets.size)

    @property
    def owner(self) -> np.ndarray:
        """Id points of the servers owning each target."""
        return self.points[self.owner_idx]

    @property
    def keeps_paths(self) -> bool:
        return self._phase2_levels is not None or self.path_servers is not None

    def to_csr(self) -> tuple:
        """The ``(path_servers, path_offsets)`` CSR arrays (cached).

        Requires the batch to have been routed with paths
        (``keep_paths=True`` or ``"csr"``); with ``True`` the conversion
        happens on first call and is cached on the result.
        """
        if self.path_servers is None:
            if self._phase2_levels is None:
                raise ValueError("batch was routed with keep_paths=False")
            # phase-2 rows are indexed by level j and read backwards
            # (j = t_i .. 0), hence the reversal before stacking
            self.path_servers, self.path_offsets = levels_to_csr(
                self.size, [self._phase1_levels, self._phase2_levels[::-1]]
            )
        return self.path_servers, self.path_offsets

    def path_points(self, i: int) -> np.ndarray:
        """Id points of lookup ``i``'s compressed server path (CSR decode)."""
        servers, offsets = self.to_csr()
        return self.points[servers[offsets[i]:offsets[i + 1]]]

    def path_lengths(self) -> np.ndarray:
        """Servers on each compressed path; the hop count is this minus 1."""
        return np.diff(self.to_csr()[1])

    def server_path(self, i: int) -> List[float]:
        """Compressed server path of lookup ``i`` (requires ``keep_paths``).

        Identical to ``LookupResult.server_path`` of the scalar engine
        for the same (source, target) — the parity tests compare them
        element-wise.
        """
        if self.path_servers is not None:
            lo, hi = self.path_offsets[i], self.path_offsets[i + 1]
            return [float(self.points[k]) for k in self.path_servers[lo:hi]]
        if not self.keeps_paths:
            raise ValueError("batch was routed with keep_paths=False")
        seq: List[int] = []
        if self._phase1_levels is not None:
            for row in self._phase1_levels:
                v = int(row[i])
                if v >= 0:
                    seq.append(v)
        ti = int(self.t[i])
        back = self._phase2_levels
        for j in range(ti, -1, -1):
            v = int(back[j, i])
            if v >= 0:
                seq.append(v)
        return compress_path([float(self.points[k]) for k in seq])

    def mean_hops(self) -> float:
        return float(self.hops.mean()) if self.size else 0.0


class BatchRouter(ColumnarSnapshot):
    """Frozen NumPy snapshot of a network that routes lookups in bulk.

    The router is the membership instance of the shared
    :class:`~repro.core.snapshot.ColumnarSnapshot` layer: the base class
    owns the version counter against the network's membership journal,
    the stale-or-refresh entry guard, the incremental-vs-full refresh
    decision with its :class:`~repro.core.snapshot.SnapshotRefreshStats`
    accounting, and the column registry the sharded execution backend
    (:mod:`repro.core.shard`) exports into shared memory.  This class
    contributes the routing math plus the membership-specific patch rule
    (:meth:`_patch`) and rebuild (:meth:`_rebuild`).

    Parameters
    ----------
    net:
        The :class:`~repro.core.network.DistanceHalvingNetwork` to
        snapshot.  Coordinates are cast to ``float64``; networks built on
        exact :class:`~fractions.Fraction` ids keep bit-parity with the
        scalar engine as long as the ids are dyadic (e.g. the equally
        spaced De Bruijn instance).
    build_adjacency:
        Precompute the neighbour table needed by
        :meth:`batch_dh_lookup`.  Costs one pass over all segment images
        (O(n·Δ) cover queries); skipped by default because
        :meth:`batch_fast_lookup` never consults adjacency.
    auto_refresh:
        Follow membership changes: before every batch, pending
        joins/leaves are replayed from the network's membership log as
        O(affected-region) array patches (see :meth:`refresh`).  When
        ``False`` (the :meth:`~repro.core.network.DistanceHalvingNetwork
        .compile_router` default) a stale router raises instead.
    churn_budget:
        Maximum number of pending ops an incremental refresh will
        replay; beyond it the router recompiles from scratch, which is
        cheaper for bulk changes.  ``None`` means ``max(16, n // 16)``.
    """

    #: Frozen aligned arrays the snapshot layer registers and the shard
    #: backend exports (the variable-length ``_edge_keys`` table rides
    #: along separately — see :meth:`shard_spec` in the shard module).
    COLUMNS = ("points", "seg_start", "seg_end", "midpoints")

    def __init__(self, net, build_adjacency: bool = False,
                 auto_refresh: bool = False,
                 churn_budget: Optional[int] = None) -> None:
        if net.n == 0:
            raise LookupError("cannot compile a router over an empty network")
        if net.n >= int(_ROW_STRIDE):  # pragma: no cover - 2^31 servers
            raise ValueError("network too large for the adjacency encoding")
        self._net = net
        super().__init__(journal=net.membership_log,
                         auto_refresh=auto_refresh,
                         budget=churn_budget,
                         stale_error=_STALE_ROUTER_ERROR)
        if build_adjacency:
            self._build_adjacency()

    @property
    def churn_budget(self) -> Optional[int]:
        """The refresh budget, under its membership-flavoured name."""
        return self.budget

    # ------------------------------------------------------------- snapshot
    def _rebuild(self) -> None:
        """(Re)build every frozen array from the live network.

        Keeps the neighbour table through full rebuilds (when one was
        built) so the cost lands in ``refresh_stats``, not in the next
        dh batch.
        """
        net = self._net
        self.delta = int(net.delta)
        self.with_ring = bool(net.with_ring)
        self.n = int(net.n)
        self.points = net.segments.as_array()
        starts, ends = net.segments.bounds_arrays()
        self.seg_start = starts
        self.seg_end = ends
        self.midpoints = net.segments.midpoints_array()
        had_adjacency = getattr(self, "_edge_keys", None) is not None
        self._edge_keys: Optional[np.ndarray] = None
        if had_adjacency:
            self._build_adjacency()

    def _ensure_fresh(self) -> None:
        """Entry guard of every batch call: sync or fail actionably."""
        self.ensure_fresh()

    def _build_adjacency(self) -> None:
        """Sorted ``i·STRIDE + j`` keys of every directed neighbour pair."""
        indptr, indices = self._net.adjacency_arrays()
        rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(indptr))
        self._edge_keys = np.sort(rows * _ROW_STRIDE + indices.astype(np.int64))

    def _edge_member(self, row: np.ndarray, col: np.ndarray) -> np.ndarray:
        """Vectorized ``col[i] in neighbours(row[i])`` membership test."""
        if self._edge_keys is None:
            self._build_adjacency()
        keys = self._edge_keys
        if len(keys) == 0:
            return np.zeros(row.shape, dtype=bool)
        q = row.astype(np.int64) * _ROW_STRIDE + col.astype(np.int64)
        return _isin_sorted(q, keys)

    # -------------------------------------------------- incremental refresh
    def refresh(self, force_full: bool = False) -> "BatchRouter":
        """Bring the snapshot up to date with the live network.

        Replays the membership-log suffix since :attr:`version` as
        incremental patches; recompiles from scratch when ``force_full``
        is set, the pending-op count exceeds the churn budget, the log
        window was exceeded, or the network passed through a tiny size
        (n < 4) where the ring seam makes patching not worth the care
        (the latter two via :meth:`_patch` bailing out to the base
        class's full-rebuild path).  Returns ``self`` so calls chain.
        """
        if (force_full or self.is_stale) and self._net.n == 0:
            raise LookupError("cannot refresh a router over an empty network")
        super().refresh(force_full)
        return self

    def _patch(self, pending) -> bool:
        """Patch the arrays by replaying ``pending``; False to bail to full.

        Per op the point/bound/midpoint arrays get one ``np.insert`` /
        ``np.delete`` and the adjacency table (when built) drops the
        keys incident to the affected region — {ring predecessor, ring
        successor, the touched point} plus the predecessor's neighbour
        row — with the surviving keys renumbered in place.  Affected
        rows are only *recomputed* once, after the whole suffix is
        applied, against the live (final) decomposition; correctness
        rests on the §2.1 locality argument: a neighbour set can only
        change if one of its covering arcs intersects the split/merged
        segment, which makes its server a logged point's neighbour.
        """
        n = self.n
        for kind, _p, _idx in pending:
            if n < 4:
                return False
            n += 1 if kind == "join" else -1
        if n < 4:
            return False

        points = self.points
        mids = self.midpoints
        keys = self._edge_keys
        dirty_rows: Set[int] = set()
        dirty_mids: Set[int] = set()
        for kind, p, idx in pending:
            n_old = len(points)
            if kind == "join":
                n_new = n_old + 1
                if keys is not None:
                    pred_old = (idx - 1) % n_old
                    affected = {pred_old, idx % n_old}
                    affected.update(self._row_cols(keys, pred_old))
                    keys = self._drop_keys(keys, affected)
                    keys = self._renumber_join(keys, idx)
                    dirty_rows = {d + (d >= idx) for d in dirty_rows}
                    dirty_rows.update(a + (a >= idx) for a in affected)
                    dirty_rows.add(idx)
                points = np.insert(points, idx, p)
                mids = np.insert(mids, idx, 0.0)
                dirty_mids = {d + (d >= idx) for d in dirty_mids}
                dirty_mids.update({idx, (idx - 1) % n_new})
            else:
                n_new = n_old - 1
                if keys is not None:
                    affected = {idx, (idx - 1) % n_old, (idx + 1) % n_old}
                    affected.update(self._row_cols(keys, idx))
                    keys = self._drop_keys(keys, affected)
                    keys = self._renumber_leave(keys, idx)
                    dirty_rows = {d - (d > idx) for d in dirty_rows
                                  if d != idx}
                    dirty_rows.update(a - (a > idx) for a in affected
                                      if a != idx)
                points = np.delete(points, idx)
                mids = np.delete(mids, idx)
                dirty_mids = {d - (d > idx) for d in dirty_mids if d != idx}
                dirty_mids.add((idx - 1) % n_new)

        net = self._net
        self.points = points
        self.n = len(points)
        self.seg_start = points
        self.seg_end = np.roll(points, -1)
        segs = net.segments
        for i in dirty_mids:
            mids[i] = float(segs.segment(i).midpoint)
        self.midpoints = mids
        if keys is not None:
            keys = self._recompute_rows(keys, dirty_rows)
        self._edge_keys = keys
        return True

    @staticmethod
    def _row_cols(keys: np.ndarray, row: int) -> np.ndarray:
        """Neighbour columns of one row in the sorted key table."""
        lo = np.searchsorted(keys, np.int64(row) * _ROW_STRIDE)
        hi = np.searchsorted(keys, np.int64(row + 1) * _ROW_STRIDE)
        return (keys[lo:hi] & (_ROW_STRIDE - 1)).astype(np.int64)

    @staticmethod
    def _drop_keys(keys: np.ndarray, affected: Iterable[int]) -> np.ndarray:
        """Delete every key incident to an affected row (either endpoint).

        By symmetry of the undirected neighbour relation this only ever
        removes keys *between* affected rows' sets, so unaffected rows
        stay complete — the invariant the replay loop relies on when it
        reads the next op's neighbour row from the shrinking table.
        """
        aff = np.fromiter(affected, dtype=np.int64)
        aff.sort()
        rows = keys >> 31
        cols = keys & (_ROW_STRIDE - 1)
        keep = ~(_isin_sorted(rows, aff) | _isin_sorted(cols, aff))
        return keys[keep]

    @staticmethod
    def _renumber_join(keys: np.ndarray, idx: int) -> np.ndarray:
        """Shift indices ≥ idx up by one (order-preserving, in bulk)."""
        rows = keys >> 31
        cols = keys & (_ROW_STRIDE - 1)
        rows = rows + (rows >= idx)
        cols = cols + (cols >= idx)
        return rows * _ROW_STRIDE + cols

    @staticmethod
    def _renumber_leave(keys: np.ndarray, idx: int) -> np.ndarray:
        """Shift indices > idx down by one (idx itself is already gone)."""
        rows = keys >> 31
        cols = keys & (_ROW_STRIDE - 1)
        rows = rows - (rows > idx)
        cols = cols - (cols > idx)
        return rows * _ROW_STRIDE + cols

    def _recompute_rows(self, keys: np.ndarray, dirty: Set[int]) -> np.ndarray:
        """Rebuild the dirty rows against the live net and merge them in.

        Every key incident to a dirty row was dropped during the replay,
        so inserting ``(r, c)`` for each recomputed neighbour — plus the
        mirror ``(c, r)`` when ``c`` itself is clean — restores exactly
        the table a fresh ``_build_adjacency`` would produce.
        """
        if not dirty:
            return keys
        segs = self._net.segments
        stride = int(_ROW_STRIDE)
        fresh: List[int] = []
        for r in sorted(dirty):
            for q in self._net.neighbor_points(segs.point_at(r)):
                c = segs.index_of(q)
                fresh.append(r * stride + c)
                if c not in dirty:
                    fresh.append(c * stride + r)
        fresh_arr = np.asarray(fresh, dtype=np.int64)
        fresh_arr.sort()
        if (np.diff(fresh_arr) == 0).any() or _isin_sorted(fresh_arr, keys).any():
            raise AssertionError(
                "incremental adjacency patch produced duplicate edges"
            )  # pragma: no cover - guarded invariant
        return np.insert(keys, np.searchsorted(keys, fresh_arr), fresh_arr)

    # ------------------------------------------------------------- sharding
    def sharded_executor(self, workers: int):
        """The cached :class:`~repro.core.shard.ShardedExecutor` handle.

        Lazily built on first use and reused across batches (worker
        pools are expensive); rebuilt when ``workers`` changes.  The
        executor re-syncs its shared-memory snapshot against this
        router's version on every batch, so churn + ``auto_refresh``
        compose with sharding.  Call :meth:`close_executor` (or close
        the returned handle) when done.
        """
        from .shard import ShardedExecutor
        ex = getattr(self, "_executor", None)
        if ex is not None and ex.workers != workers:
            ex.close()
            ex = None
        if ex is None:
            ex = ShardedExecutor(self, workers)
            self._executor = ex
        return ex

    def close_executor(self) -> None:
        """Tear down the cached sharded executor (no-op without one)."""
        ex = getattr(self, "_executor", None)
        if ex is not None:
            ex.close()
            self._executor = None

    def lookup_batch(self, sources, targets, workers: int = 1,
                     keep_paths: "bool | str" = False,
                     policy: Optional[str] = None,
                     choices: Optional[np.ndarray] = None,
                     rng: Optional[np.random.Generator] = None,
                     temperature: float = 1.0) -> BatchLookupResult:
        """Route a batch, optionally sharded and/or cost-aware.

        ``workers=1`` (the default) is exactly
        :meth:`batch_fast_lookup`; ``workers>=2`` routes contiguous
        slices through the cached sharded executor and merges — the
        result is bit-identical either way (sharded batches report
        paths as ``"csr"`` only).

        Passing ``policy=`` ("uniform", "greedy", "weighted") switches
        to the cost-aware two-phase lookup
        (:meth:`batch_cost_dh_lookup`); it needs the cost columns of a
        :class:`~repro.peer.routing.CostAwareBatchRouter` plus, for the
        randomized policies, shared per-step uniforms via ``choices=``
        (required when sharding) or an ``rng``.
        """
        if policy is not None:
            if workers <= 1:
                return self.batch_cost_dh_lookup(
                    sources, targets, choices=choices, rng=rng,
                    policy=policy, temperature=temperature,
                    keep_paths=keep_paths)
            return self.sharded_executor(workers).batch_cost_dh_lookup(
                sources, targets, choices, policy=policy,
                temperature=temperature, keep_paths=keep_paths)
        if workers <= 1:
            return self.batch_fast_lookup(sources, targets,
                                          keep_paths=keep_paths)
        return self.sharded_executor(workers).batch_fast_lookup(
            sources, targets, keep_paths=keep_paths)

    # ---------------------------------------------------------------- cover
    def cover(self, ys: np.ndarray) -> np.ndarray:
        """Indices of the segments covering each point (one searchsorted).

        ``ys`` must already lie in ``[0, 1)`` (the engine normalizes at
        entry and folds after every walk step).  Under that precondition
        it matches ``SegmentMap.cover`` exactly: greatest ``x_i <= y``,
        wrapping below ``x_0`` to the last server.  For raw ring points
        use :meth:`SegmentMap.cover_array`, which normalizes first.
        """
        self._ensure_fresh()
        return cover_indices(self.points, ys)

    def cover_points(self, ys: np.ndarray) -> np.ndarray:
        return self.points[self.cover(ys)]

    def _in_segment(self, p: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Vector version of ``p in segment(idx)`` (wrap-aware half-open)."""
        if self.n == 1:
            return np.ones(p.shape, dtype=bool)
        start = self.seg_start[idx]
        end = self.seg_end[idx]
        inseg = (p >= start) & (p < end)
        # only the seam-crossing last segment has start > end; for those
        # lanes the half-open test is a disjunction instead
        wraps = start > end
        if wraps.any():
            inseg[wraps] = (p[wraps] >= start[wraps]) | (p[wraps] < end[wraps])
        return inseg

    # ---------------------------------------------------------- fast lookup
    def batch_fast_lookup(
        self,
        sources,
        targets,
        keep_paths: "bool | str" = False,
        max_levels: int = MAX_WALK_STEPS,
    ) -> BatchLookupResult:
        """Vectorized Fast (greedy) Lookup (§2.2.1) for a batch of pairs.

        ``sources`` and ``targets`` are arrays of points in ``[0, 1)``
        (scalars broadcast), in the same order as the scalar
        ``fast_lookup(net, source_point, target)``.  One routing level
        costs one closed-form walk evaluation plus one ``searchsorted``
        over the whole batch; per Corollary 2.5 at most
        ``log_Δ n + log_Δ ρ + 1`` levels run.  ``keep_paths`` selects the
        path representation: ``True`` for per-lookup reconstruction via
        :meth:`BatchLookupResult.server_path`, ``"csr"`` for the
        flattened ``path_servers``/``path_offsets`` arrays the
        vectorized accounting layer consumes.

        For power-of-two ``Δ`` the ``Δ^t`` scaling is exact in float64 at
        every level, so the level budget is the scalar engine's
        ``MAX_WALK_STEPS`` and parity holds on arbitrarily unsmooth
        decompositions.  For other ``Δ`` levels beyond ``≈ 52/log2(Δ)``
        would overflow the float64 mantissa of ``⌊z·Δ^t⌋``; such levels
        only occur when some segment is shorter than ``Δ^-52`` and raise
        ``RuntimeError`` rather than silently diverging from the
        (integer-exact) scalar engine.
        """
        _check_keep_paths(keep_paths)
        self._ensure_fresh()
        y = _normalize_array(targets)
        src = _normalize_array(sources, size=y.size)
        if src.size != y.size:
            raise ValueError("sources and targets must have the same length")
        size = y.size
        ci = self.cover(src)
        z = self.midpoints[ci]

        t = np.zeros(size, dtype=np.int64)
        s_final = np.zeros(size, dtype=np.float64)  # ⌊z·Δ^t⌋ at the chosen t
        pending = np.ones(size, dtype=bool)
        if self.delta & (self.delta - 1) == 0:
            level_cap = max_levels
        else:
            level_cap = min(max_levels, int(52 / math.log2(self.delta)))
        for level in range(level_cap + 1):
            if level == 0:
                p = y
                s_level = None
            else:
                scale = float(self.delta) ** level
                s_level = np.trunc(z * scale)
                p = fold_unit((y + s_level) / scale)
            inseg = self._in_segment(p, ci)
            newly = pending & inseg
            t[newly] = level
            if s_level is not None:
                s_final[newly] = s_level[newly]
            pending &= ~inseg
            if not pending.any():
                break
        else:  # pragma: no cover - beyond every Corollary 2.5 bound
            raise RuntimeError("batch_fast_lookup failed to converge")

        owner_idx = self.cover(y)
        hops = np.zeros(size, dtype=np.int64)
        cur = ci.copy()
        tmax = int(t.max()) if size else 0
        back = None
        if keep_paths:
            back = np.full((tmax + 1, size), -1, dtype=np.int64)
            back[t, np.arange(size)] = ci
        for j in range(tmax - 1, -1, -1):
            scale_j = float(self.delta) ** j
            off = np.mod(s_final, scale_j)
            p = fold_unit((y + off) / scale_j)
            c = self.cover(p)
            live = t > j
            hops += live & (c != cur)
            cur = np.where(live, c, cur)
            if back is not None:
                back[j, live] = c[live]
        result = BatchLookupResult(
            algorithm="fast",
            points=self.points,
            targets=y,
            sources=src,
            source_idx=ci,
            owner_idx=owner_idx,
            t=t,
            hops=hops,
            _phase2_levels=back,
        )
        if keep_paths == "csr":
            result.to_csr()
            result._phase2_levels = None  # CSR replaces the level matrices
        return result

    # ------------------------------------------------------------ dh lookup
    def batch_dh_lookup(
        self,
        sources,
        targets,
        rng: Optional[np.random.Generator] = None,
        tau: Optional[np.ndarray] = None,
        keep_paths: "bool | str" = False,
        max_steps: int = MAX_WALK_STEPS,
    ) -> BatchLookupResult:
        """Vectorized two-phase Distance Halving Lookup (§2.2.2).

        Phase I advances every unresolved lookup one random digit per
        iteration (``pos/Δ + d/Δ``, the same elementwise IEEE ops as the
        scalar ``child``); the stop test "target image covered by me or
        by a neighbour" is a segment-bound comparison plus one binary
        search in the sorted edge-key table.  Phase II descends the
        closed-form backward walk one level per iteration, exactly like
        the fast path.

        Supply ``tau`` (shape ``(size, L)`` or ``(L,)``, digits in
        ``[0, Δ)``) to fix the random strings — with the same ``tau`` the
        result is bit-identical to scalar ``dh_lookup``.  With ``rng``
        the *distribution* matches but digits are drawn batch-wise, so
        individual paths differ from a scalar replay of the same
        generator.  ``keep_paths`` behaves as in
        :meth:`batch_fast_lookup` (``"csr"`` for flattened paths).
        """
        _check_keep_paths(keep_paths)
        self._ensure_fresh()
        y = _normalize_array(targets)
        src = _normalize_array(sources, size=y.size)
        if src.size != y.size:
            raise ValueError("sources and targets must have the same length")
        if rng is None and tau is None:
            raise ValueError("batch_dh_lookup needs an rng or explicit tau")
        size = y.size
        tau_arr: Optional[np.ndarray] = None
        if tau is not None:
            tau_arr = np.asarray(tau, dtype=np.int64)
            if tau_arr.ndim == 1:
                tau_arr = np.broadcast_to(tau_arr, (size, tau_arr.size))
            if tau_arr.shape[0] != size:
                raise ValueError("tau must have one digit string per lookup")
            if tau_arr.size and ((tau_arr < 0) | (tau_arr >= self.delta)).any():
                raise ValueError(f"tau digits out of range for delta={self.delta}")

        delta = self.delta
        cur = self.cover(src)
        src_idx = cur.copy()
        pos = src.copy()
        image = y.copy()
        t = np.zeros(size, dtype=np.int64)
        off = np.zeros(size, dtype=np.float64)  # Σ d_k Δ^k, exact in float64
        hops1 = np.zeros(size, dtype=np.int64)
        done = np.zeros(size, dtype=bool)
        p1_rows: List[np.ndarray] = [cur.copy()] if keep_paths else []

        # beyond ~52/log2(Δ) digits the float64 offset accumulator loses
        # exactness (the scalar engine carries exact integer offsets, so
        # it can converge on such walks — segments shorter than Δ^-52 —
        # where we must raise loudly instead of silently diverging);
        # Theorem 2.8 keeps real walks far below that
        step_cap = min(max_steps, int(52 / math.log2(delta)))
        step = 0
        while not done.all():
            if step > step_cap:  # pragma: no cover - beyond Theorem 2.8
                raise RuntimeError("batch_dh_lookup phase I failed to converge")
            active = ~done
            done |= active & self._in_segment(image, cur)
            rem = active & ~done
            row = None
            if rem.any():
                holder = self.cover(image)
                via_neighbor = rem & self._edge_member(cur, holder)
                # the holder covers a point outside s(cur), so it is a
                # distinct server: appending it always costs one hop
                hops1 += via_neighbor
                if keep_paths:
                    row = np.full(size, -1, dtype=np.int64)
                    row[via_neighbor] = holder[via_neighbor]
                cur = np.where(via_neighbor, holder, cur)
                done |= via_neighbor
                cont = rem & ~via_neighbor
                if cont.any():
                    if tau_arr is not None:
                        if step >= tau_arr.shape[1]:
                            raise ValueError(
                                "supplied tau exhausted before lookup finished"
                            )
                        d = tau_arr[:, step].astype(np.float64)
                    else:
                        d = rng.integers(0, delta, size=size).astype(np.float64)
                    pos = fold_unit(np.where(cont, pos / delta + d / delta, pos))
                    image = fold_unit(
                        np.where(cont, image / delta + d / delta, image)
                    )
                    off = np.where(cont, off + d * float(delta) ** step, off)
                    t += cont
                    c = self.cover(pos)
                    hops1 += cont & (c != cur)
                    if row is not None:
                        row[cont] = c[cont]
                    cur = np.where(cont, c, cur)
            if keep_paths and row is not None:
                p1_rows.append(row)
            step += 1

        owner_idx, hops, back = self._dh_phase2(y, t, off, hops1, cur,
                                                keep_paths)
        result = BatchLookupResult(
            algorithm="dh",
            points=self.points,
            targets=y,
            sources=src,
            source_idx=src_idx,
            owner_idx=owner_idx,
            t=t,
            hops=hops,
            phase1_hops=hops1,
            _phase1_levels=np.vstack(p1_rows) if keep_paths else None,
            _phase2_levels=back,
        )
        if keep_paths == "csr":
            result.to_csr()
            result._phase1_levels = None  # CSR replaces the level matrices
            result._phase2_levels = None
        return result

    def _dh_phase2(self, y, t, off, hops1, cur, keep_paths):
        """Phase II: closed-form backward descent w(τ[:j], y) for j = t_i..0.

        Shared verbatim (same IEEE-754 operation order) by the random
        and the cost-aware phase-I variants, so their phase-II halves
        are trivially bit-comparable.  Returns
        ``(owner_idx, hops, back)``.
        """
        delta = self.delta
        size = y.size
        owner_idx = self.cover(y)
        hops = hops1.copy()
        last = cur.copy()
        tmax = int(t.max()) if size else 0
        back = np.full((tmax + 1, size), -1, dtype=np.int64) if keep_paths else None
        for j in range(tmax, -1, -1):
            scale_j = float(delta) ** j
            off_j = np.mod(off, scale_j)
            p = fold_unit((y + off_j) / scale_j)
            c = self.cover(p)
            live = t >= j
            hops += live & (c != last)
            last = np.where(live, c, last)
            if back is not None:
                back[j, live] = c[live]
        return owner_idx, hops, back

    # ------------------------------------------------------- cost-aware dh
    def _cost_state(self):
        """The cost columns, or an actionable error on a plain router."""
        isp = getattr(self, "cost_isp", None)
        if isp is None:
            raise ValueError(
                "cost-aware routing needs cost columns; compile a "
                "CostAwareBatchRouter (repro.peer.routing) over the network "
                "instead of a plain BatchRouter"
            )
        return isp, self.cost_x, self.cost_y, self._isp_cost

    def _edge_cost_matrix(self, i_idx, j_idx) -> np.ndarray:
        """Network cost of edges i→j (point indices; broadcasts to (K, B))."""
        from ..peer.costmap import pair_costs

        isp, cx, cy, mat = self._cost_state()
        return pair_costs(isp[i_idx], isp[j_idx], cx[i_idx], cy[i_idx],
                          cx[j_idx], cy[j_idx], mat)

    def batch_cost_dh_lookup(
        self,
        sources,
        targets,
        choices: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        policy: str = "weighted",
        temperature: float = 1.0,
        keep_paths: "bool | str" = False,
        max_steps: int = MAX_WALK_STEPS,
    ) -> BatchLookupResult:
        """Two-phase dh lookup with cost-aware phase-I digit selection.

        Observation 2.3 halves the distance to the target image every
        phase-I step *whatever* digit is taken, so the digit choice is a
        free covering-edge choice: per step this method evaluates all Δ
        candidate positions ``pos/Δ + d/Δ``, gathers the network cost of
        hopping to each candidate's covering server (one vectorized
        gather over the snapshot's cost columns), and picks digits with
        the shared selection policy ("uniform" / "greedy" /
        "weighted"; see :mod:`repro.peer.policy`).

        Determinism is **tau-pinned**: the digits actually taken are
        recorded in ``result.tau_used`` (0-padded past each lookup's
        ``t``), and replaying them through :meth:`batch_dh_lookup`
        (``tau=result.tau_used``) or the scalar
        :func:`~repro.core.lookup.dh_lookup`
        (``tau=result.tau_used[i, :result.t[i]]``) reproduces owners,
        hop counts and full server paths bit-for-bit — the parity hook
        the tests and ``bench-cost`` gate on.  The randomized policies
        consume one uniform per (lookup, step) from ``choices``
        (shape ``(size, L)`` or ``(L,)``) or from ``rng``; "greedy"
        needs neither.  Requires the cost columns of a
        :class:`~repro.peer.routing.CostAwareBatchRouter`.
        """
        from ..peer.policy import check_policy, select_rows

        _check_keep_paths(keep_paths)
        check_policy(policy)
        self._ensure_fresh()
        self._cost_state()  # fail early on a plain (cost-less) router
        y = _normalize_array(targets)
        src = _normalize_array(sources, size=y.size)
        if src.size != y.size:
            raise ValueError("sources and targets must have the same length")
        size = y.size
        u_mat: Optional[np.ndarray] = None
        if choices is not None:
            u_mat = np.asarray(choices, dtype=np.float64)
            if u_mat.ndim == 1:
                u_mat = np.broadcast_to(u_mat, (size, u_mat.size))
            if u_mat.shape[0] != size:
                raise ValueError("choices must have one uniform row per lookup")
        elif rng is None and policy != "greedy":
            raise ValueError(
                f"policy {policy!r} needs shared uniforms: pass choices= or rng="
            )

        delta = self.delta
        digs = np.arange(delta, dtype=np.float64)
        cur = self.cover(src)
        src_idx = cur.copy()
        pos = src.copy()
        image = y.copy()
        t = np.zeros(size, dtype=np.int64)
        off = np.zeros(size, dtype=np.float64)  # Σ d_k Δ^k, exact in float64
        hops1 = np.zeros(size, dtype=np.int64)
        done = np.zeros(size, dtype=bool)
        p1_rows: List[np.ndarray] = [cur.copy()] if keep_paths else []
        tau_rows: List[np.ndarray] = []

        step_cap = min(max_steps, int(52 / math.log2(delta)))
        step = 0
        while not done.all():
            if step > step_cap:  # pragma: no cover - beyond Theorem 2.8
                raise RuntimeError(
                    "batch_cost_dh_lookup phase I failed to converge"
                )
            active = ~done
            done |= active & self._in_segment(image, cur)
            rem = active & ~done
            row = None
            if rem.any():
                holder = self.cover(image)
                via_neighbor = rem & self._edge_member(cur, holder)
                hops1 += via_neighbor
                if keep_paths:
                    row = np.full(size, -1, dtype=np.int64)
                    row[via_neighbor] = holder[via_neighbor]
                cur = np.where(via_neighbor, holder, cur)
                done |= via_neighbor
                cont = rem & ~via_neighbor
                if cont.any():
                    lanes = np.flatnonzero(cont)
                    # candidate next position per digit — the same float
                    # expression the digit update below applies, so the
                    # scored candidate is exactly where the message goes
                    cand_pos = fold_unit(
                        pos[lanes][None, :] / delta + digs[:, None] / delta
                    )
                    cand_cov = self.cover(cand_pos.ravel()).reshape(
                        delta, lanes.size
                    )
                    costs = self._edge_cost_matrix(cur[lanes], cand_cov)
                    if u_mat is not None:
                        if step >= u_mat.shape[1]:
                            raise ValueError(
                                "supplied choices exhausted before lookup "
                                "finished"
                            )
                        u_row = u_mat[lanes, step]
                    elif rng is not None:
                        u_row = rng.random(size)[lanes]
                    else:
                        u_row = None
                    ok = np.ones((delta, lanes.size), dtype=bool)
                    sel = select_rows(costs, ok, u_row, policy, temperature)
                    d_step = np.zeros(size, dtype=np.int64)
                    d_step[lanes] = sel
                    tau_rows.append(d_step)
                    d = d_step.astype(np.float64)
                    pos = fold_unit(np.where(cont, pos / delta + d / delta, pos))
                    image = fold_unit(
                        np.where(cont, image / delta + d / delta, image)
                    )
                    off = np.where(cont, off + d * float(delta) ** step, off)
                    t += cont
                    c = self.cover(pos)
                    hops1 += cont & (c != cur)
                    if row is not None:
                        row[cont] = c[cont]
                    cur = np.where(cont, c, cur)
            if keep_paths and row is not None:
                p1_rows.append(row)
            step += 1

        tau_used = (
            np.ascontiguousarray(np.vstack(tau_rows).T)
            if tau_rows else np.zeros((size, 0), dtype=np.int64)
        )
        owner_idx, hops, back = self._dh_phase2(y, t, off, hops1, cur,
                                                keep_paths)
        result = BatchLookupResult(
            algorithm="dh-cost",
            points=self.points,
            targets=y,
            sources=src,
            source_idx=src_idx,
            owner_idx=owner_idx,
            t=t,
            hops=hops,
            phase1_hops=hops1,
            tau_used=tau_used,
            policy=policy,
            _phase1_levels=np.vstack(p1_rows) if keep_paths else None,
            _phase2_levels=back,
        )
        if keep_paths == "csr":
            result.to_csr()
            result._phase1_levels = None  # CSR replaces the level matrices
            result._phase2_levels = None
        return result
