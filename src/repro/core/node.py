"""Server (node) state for the discrete Distance Halving network.

A server is intentionally thin: the continuous-discrete approach keeps all
topology in the *decomposition* (the :class:`~repro.core.segments.SegmentMap`),
so a server only needs its id point, its key-value store, and bookkeeping
counters used by the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Server"]


@dataclass
class Server:
    """One participant of the network.

    ``point`` is the hashed id ``x_i ∈ [0, 1)`` chosen at join time (§2.1
    Algorithm Join step 1); it is immutable for the server's lifetime in
    the plain DHT (the §4 bucket balancer is the one component allowed to
    relocate servers, which it models as leave+join).
    """

    point: float
    name: str = ""
    store: Dict[Any, Any] = field(default_factory=dict)
    # experiment bookkeeping -------------------------------------------------
    messages_handled: int = 0
    lookups_initiated: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"server@{float(self.point):.6f}"

    def reset_counters(self) -> None:
        """Zero the experiment counters (between benchmark repetitions)."""
        self.messages_handled = 0
        self.lookups_initiated = 0

    def __hash__(self) -> int:  # identity by id point (unique in a network)
        return hash(self.point)
