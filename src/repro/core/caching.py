"""Dynamic caching — the hot-spot relief protocol of paper §3.

The protocol couples cache trees with the overlay itself: the cache tree
of item ``i`` *is* the path tree rooted at ``h(i)``, whose nodes the
Distance Halving lookup already traverses.  Replication therefore needs
no extra connections and adds no lookup latency ("No Caching Latency").

Protocol (Continuous Hot Spots Protocol, §3.1):

1. every *leaf* of the active tree counts the requests it supplies during
   an epoch; past the threshold ``c`` it replicates the item into its
   children, blocking itself from further hits (deeper entries now stop
   at the children);
2. at the end of an epoch, a parent of leaves deletes both children if
   each supplied fewer than ``c`` requests;
3. step 2 recurses, collapsing the tree when demand fades.

The guarantees validated by experiments E7–E9:

* Observation 3.1 — the active tree never exceeds ``4 q / c`` nodes;
* Lemma 3.3 — depth reaches at most ``log(q/c) + O(1)``;
* Theorem 3.6 / 3.8 — per-server cache hits ``O(log² n)``, per-server
  stored items ``O(log n)``;
* content update — ``O(log n)`` messages/time down the active tree.

Hot-key salting (mitigation mode, selectable in this scalar engine and in
:class:`~repro.core.batch_cache.BatchCacheEngine`): with ``salts = s > 1``
each item is spread over ``s`` deterministic *salt points* — a request
picks the salt from its source position (:func:`salt_indices`), routes to
the tree rooted at ``h(salted_key(item, j))``, and per-item statistics
merge the ``s`` per-salt trees.  The salt choice is a pure function of
the source's float bits, so scalar and batch engines agree bit-for-bit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..hashing.kwise import Key
from .continuous import Digits
from .interval import normalize
from .lookup import LookupResult, dh_lookup
from .network import DistanceHalvingNetwork
from .pathtree import PathTree

__all__ = ["ActiveTree", "CacheSystem", "CachedLookup", "salt_indices",
           "salted_key"]

#: Fibonacci-hash multiplier (odd, well-mixed high bits) for salt choice.
_SALT_MIX = np.uint64(0x9E3779B97F4A7C15)


def salt_indices(points: np.ndarray, salts: int) -> np.ndarray:
    """Deterministic salt choice per source point, identical scalar/batch.

    Views each normalized float64 source as its raw bit pattern, mixes
    with a Fibonacci-hash multiply, and reduces mod ``salts``.  A pure
    function of the float bits — no RNG — so the scalar engine and the
    batch engine route any given source to the same salt tree.
    """
    if salts < 1:
        raise ValueError("salts must be >= 1")
    pts = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    if salts == 1:
        return np.zeros(pts.shape, dtype=np.int64)
    bits = pts.view(np.uint64)
    mixed = bits * _SALT_MIX  # uint64 wrap-around multiply
    mixed = mixed ^ (mixed >> np.uint64(29))
    return (mixed % np.uint64(salts)).astype(np.int64)


def salted_key(item: Key, salt: int) -> str:
    """Routing key of one salt copy of ``item``.

    Uses ``repr`` so distinct key types cannot collide (``1`` vs ``"1"``)
    and feeds the network's :class:`~repro.hashing.kwise.PointHasher`
    like any other string key.
    """
    return f"{item!r}#salt{int(salt)}"


class ActiveTree:
    """The active (replicated) subtree of one item's path tree.

    Node addresses are digit tuples; the root ``()`` — the item's owner —
    is always active.  The active set is prefix-closed by construction.
    """

    def __init__(self, tree: PathTree, threshold: int):
        if threshold < 1:
            raise ValueError("threshold c must be >= 1")
        self.tree = tree
        self.c = int(threshold)
        self.active: Set[Digits] = {()}
        self.served: Counter = Counter()          # requests supplied this epoch
        self.supplied_prev: Counter = Counter()   # last epoch's counts (for step 2)
        self.replications: int = 0                # total child activations (copies made)

    # ------------------------------------------------------------- structure
    def is_leaf(self, addr: Digits) -> bool:
        """Active node none of whose children is active."""
        return addr in self.active and not any(
            ch in self.active for ch in self.tree.children(addr)
        )

    def leaves(self) -> List[Digits]:
        return [a for a in self.active if self.is_leaf(a)]

    def size(self) -> int:
        """Number of active nodes (Observation 3.1 bounds it by ``4q/c``)."""
        return len(self.active)

    def depth(self) -> int:
        """Depth of the deepest active node (Lemma 3.3: ``≤ log(q/c)+O(1)``)."""
        return max((len(a) for a in self.active), default=0)

    def serving_node(self, tau: Sequence[int]) -> Digits:
        """Deepest active prefix of ``tau`` — where an entering request stops.

        Phase II visits ``τ[:t], τ[:t-1], …, ()`` in order; the first
        *active* node on that ascent serves the request.
        """
        t = tuple(tau)
        for j in range(len(t), -1, -1):
            if t[:j] in self.active:
                return t[:j]
        raise AssertionError("root is always active")  # pragma: no cover

    # -------------------------------------------------------------- protocol
    def serve(self, tau: Sequence[int]) -> Tuple[Digits, bool]:
        """Serve one request entering via digits ``tau``; maybe replicate.

        Returns ``(serving node, replicated?)``.  Step 1 of the protocol:
        when a leaf's counter exceeds ``c`` it activates its children (the
        item is copied into them; subsequent deep entries stop there).
        """
        node = self.serving_node(tau)
        self.served[node] += 1
        replicated = False
        if self.served[node] > self.c and self.is_leaf(node):
            for ch in self.tree.children(node):
                self.active.add(ch)
                self.replications += 1
            replicated = True
        return node, replicated

    def advance_epoch(self) -> int:
        """End the epoch: collapse unused fringe (steps 2–3); reset counters.

        A parent whose children are all leaves deletes them when every
        child supplied fewer than ``c`` requests; the deletion recurses
        within the same epoch.  Returns the number of deactivated nodes.

        Order-independence audit (step-2 recursion): every collapse
        decision reads only the *ended* epoch's ``served`` counters,
        which this pass never mutates — collapsing a sibling group can
        only turn its parent into a leaf, i.e. *enable* further
        collapses, never disable one.  The while-changed sweep therefore
        reaches a unique fixpoint regardless of scan order, and the
        counters are handed to ``supplied_prev`` only after the sweep
        finishes.  Pinned by ``TestAdvanceEpochOrderIndependence``.
        """
        removed = 0
        changed = True
        while changed:
            changed = False
            # scan deepest-first so collapses cascade in one epoch
            for addr in sorted(self.active, key=len, reverse=True):
                if addr == () or addr not in self.active:
                    continue
                parent = addr[:-1]
                siblings = self.tree.children(parent)
                if not all(s in self.active and self.is_leaf(s) for s in siblings):
                    continue
                if all(self.served[s] < self.c for s in siblings):
                    for s in siblings:
                        self.active.discard(s)
                        removed += 1
                    changed = True
        self.supplied_prev = self.served
        self.served = Counter()
        return removed

    # ----------------------------------------------------------------- stats
    def nodes_covered_by(self, net: DistanceHalvingNetwork, server_point: float) -> int:
        """How many active nodes fall in a server's segment (Lemma 3.5's B_v)."""
        seg = net.segments.segment_of(server_point)
        return sum(1 for a in self.active if self.tree.position(a) in seg)

    def update_content(self, net: DistanceHalvingNetwork) -> Tuple[int, int]:
        """Propagate a content change root-down (§3 "Content Update").

        Returns ``(messages, parallel_time)``: one message per active tree
        edge, time equal to the active depth — both ``O(log n)`` as the
        paper claims.
        """
        messages = sum(1 for a in self.active if a != ())
        return messages, self.depth()


@dataclass
class CachedLookup:
    """Result of a cached request: the routed path plus cache accounting."""

    item: Key
    lookup: LookupResult
    serving_node: Digits
    serving_server: float
    entry_depth: int
    server_path: List[float] = field(default_factory=list)

    @property
    def hops(self) -> int:
        return max(0, len(self.server_path) - 1)

    @property
    def saved_hops(self) -> int:
        """Hops avoided relative to routing all the way to the owner."""
        return max(0, self.lookup.hops - self.hops)


class CacheSystem:
    """Network-wide cache coordinator: one :class:`ActiveTree` per hot item.

    ``threshold`` is the paper's ``c`` — "typically in the order of
    log n" (§3.1).  Requests are routed with the standard Distance
    Halving lookup; the phase-II ascent stops at the deepest active node,
    which supplies the item.

    ``salts > 1`` turns on the hot-key mitigation mode: each request
    routes to one of ``salts`` deterministic salt trees of its item
    (chosen from the source position by :func:`salt_indices`), spreading
    a single hotspot's load over ``salts`` independent tree roots.
    """

    def __init__(self, net: DistanceHalvingNetwork, threshold: Optional[int] = None,
                 salts: int = 1):
        if int(salts) < 1:
            raise ValueError("salts must be >= 1")
        self.net = net
        n = max(2, net.n)
        self.c = int(threshold) if threshold is not None else max(1, int(np.ceil(np.log2(n))))
        self.salts = int(salts)
        self.trees: Dict[Key, ActiveTree] = {}
        # per-server counters for the §3 guarantees
        self.cache_hits: Counter = Counter()       # requests supplied per server
        self.messages: Counter = Counter()         # routed + cache messages per server
        self.requests_served: int = 0

    def tree_for(self, item: Key) -> ActiveTree:
        if item not in self.trees:
            root = self.net.item_hash(item)
            self.trees[item] = ActiveTree(PathTree(root, self.net.graph), self.c)
        return self.trees[item]

    def route_key(self, item: Key, source_point: float) -> Key:
        """The key a request actually routes to (its salt copy, if salted)."""
        if self.salts == 1:
            return item
        src = normalize(float(source_point))
        salt = int(salt_indices(np.asarray([src]), self.salts)[0])
        return salted_key(item, salt)

    def _salt_keys(self, item: Key) -> List[Key]:
        if self.salts == 1:
            return [item]
        return [salted_key(item, j) for j in range(self.salts)]

    def item_replications(self, item: Key) -> int:
        """Total child activations of an item, merged over its salt trees."""
        return sum(self.trees[k].replications for k in self._salt_keys(item)
                   if k in self.trees)

    def item_copies(self, item: Key) -> int:
        """Active copies beyond the roots, merged over the item's salt trees."""
        return sum(self.trees[k].size() - 1 for k in self._salt_keys(item)
                   if k in self.trees)

    # -------------------------------------------------------------- requests
    def request(
        self,
        item: Key,
        source_point: float,
        rng: np.random.Generator,
        tau: Optional[Sequence[int]] = None,
    ) -> CachedLookup:
        """Route one request for ``item`` from ``source_point``.

        Runs the Distance Halving lookup toward ``h(item)``; the message
        stops at the deepest active cache node on its phase-II branch.
        All servers the message visits get their message counters bumped;
        the serving server gets a cache hit.  In salted mode the request
        routes toward its salt copy's root instead of ``h(item)``.
        """
        routed = self.route_key(item, source_point)
        target = self.net.item_hash(routed)
        res = dh_lookup(self.net, source_point, target, rng, tau=tau)
        tree = self.tree_for(routed)
        digits = res.phase2_digits
        node, replicated = tree.serve(digits)
        if replicated:
            # item copied to the Δ children: one message per covering server.
            for ch in tree.tree.children(node):
                self.messages[self.net.segments.cover_point(tree.tree.position(ch))] += 1

        serving_pos = tree.tree.position(node)
        serving_server = self.net.segments.cover_point(serving_pos)

        # Reconstruct the message trajectory, truncating phase II at the
        # serving node: phase I follows w(τ[:j], x_src); phase II visits
        # prefixes τ[:t] … τ[:|node|] and stops where the cache answered.
        g = self.net.graph
        t = len(digits)
        src = float(source_point) % 1.0
        phase1_servers = [
            self.net.segments.cover_point(g.walk(digits[:j], src)) for j in range(t + 1)
        ]
        phase2_points = [g.walk(digits[:j], res.target) for j in range(t, len(node) - 1, -1)]
        phase2_servers = [self.net.segments.cover_point(p) for p in phase2_points]
        path: List[float] = []
        for s in phase1_servers + phase2_servers:
            if not path or path[-1] != s:
                path.append(s)

        for s in path:
            self.messages[s] += 1
        self.cache_hits[serving_server] += 1
        self.requests_served += 1
        return CachedLookup(
            item=item,
            lookup=res,
            serving_node=node,
            serving_server=serving_server,
            entry_depth=t,
            server_path=path,
        )

    # ---------------------------------------------------------------- epochs
    def advance_epoch(self) -> int:
        """End-of-epoch collapse across all items; returns nodes removed."""
        return sum(tree.advance_epoch() for tree in self.trees.values())

    # ----------------------------------------------------------------- stats
    def items_cached_at(self, server_point: float) -> int:
        """Distinct items with an active copy on this server (Thm 3.8 (i))."""
        seg = self.net.segments.segment_of(server_point)
        count = 0
        for tree in self.trees.values():
            if any(tree.tree.position(a) in seg for a in tree.active):
                count += 1
        return count

    def max_items_cached(self) -> int:
        """Max over servers of distinct cached items."""
        return max(
            (self.items_cached_at(p) for p in self.net.segments), default=0
        )

    def total_copies(self) -> int:
        """Total active nodes beyond the roots (extra copies in the network)."""
        return sum(t.size() - 1 for t in self.trees.values())

    def summary(self) -> Dict[str, float]:
        n = self.net.n
        return {
            "requests": float(self.requests_served),
            "threshold_c": float(self.c),
            "max_cache_hits": float(max(self.cache_hits.values(), default=0)),
            "max_messages": float(max(self.messages.values(), default=0)),
            "max_items_cached": float(self.max_items_cached()),
            "total_copies": float(self.total_copies()),
            "trees": float(len(self.trees)),
            "n": float(n),
        }
