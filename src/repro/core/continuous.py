"""The continuous Distance Halving graph ``G_c`` (paper §2.1 and §2.3).

The vertex set of ``G_c`` is the unit interval ``I = [0, 1)``.  For the
binary construction the edge maps are::

    l(y) = y/2          ("left"  — shifts a 0 into the binary fraction)
    r(y) = y/2 + 1/2    ("right" — shifts a 1 into the binary fraction)
    b(y) = 2y mod 1     ("backward" — the single incoming edge)

Section 2.3 generalises to alphabet size ``Δ``::

    f_i(y) = y/Δ + i/Δ      for i in {0, .., Δ-1}
    b(y)   = Δ·y mod 1

which emulates the De Bruijn graph of degree ``Δ`` and gives the optimal
degree/path-length trade-off of Theorem 2.13.

Walks.  For a digit string ``σ_t = (s_1, …, s_t)`` the walk function
``w(σ_t, y)`` (paper Eq. 1–3) applies ``f_{s_1}`` first and ``f_{s_t}``
last.  Two facts drive every routing algorithm:

* **Observation 2.3** (distance halving):
  ``d(w(σ_t, y), w(σ_t, z)) = Δ^{-t} · d(y, z)`` — any common digit string
  pulls two points together geometrically.
* **Claim 2.4** (approach walk): walking from any ``z`` according to the
  *reversed* first ``t`` digits of ``y`` lands within ``Δ^{-t}`` of ``y``.
  (Reversed because the walk applies its first digit deepest; see
  :func:`approach_digits`.)

Numerical note (paper §2.2.3): forward walks are contractions, so float64
error stays bounded; *backward* walks double the error per step, so
backward paths are recomputed in closed form by
:meth:`ContinuousGraph.walk` from the digit prefix instead of iterating
``b``.  An exact mode using :class:`fractions.Fraction` is available for
property tests via ``exact=True`` digit extraction helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from .interval import Arc, Number, normalize

__all__ = ["ContinuousGraph", "Digits", "binary_digits", "digits_to_point"]

Digits = tuple[int, ...]


def binary_digits(y: Number, t: int, delta: int = 2) -> Digits:
    """First ``t`` base-``Δ`` digits of ``y``'s fractional expansion.

    Digit ``k`` (0-based) is ``floor(y · Δ^{k+1}) mod Δ``, i.e. the string
    ``σ(y)_t`` of Claim 2.4 read most-significant first.  Exact for
    :class:`~fractions.Fraction` inputs; for floats it uses integer scaling
    (``floor(y * Δ**t)``), which is exact while ``Δ**t`` fits the mantissa.
    """
    if t < 0:
        raise ValueError("digit count must be non-negative")
    y = normalize(y)
    if isinstance(y, Fraction):
        scaled = int(y * delta**t)
    else:
        scaled = int(y * (delta**t))
    out = []
    for k in range(t - 1, -1, -1):
        out.append((scaled // delta**k) % delta)
    return tuple(out)


def digits_to_point(digits: Sequence[int], delta: int = 2) -> Fraction:
    """Exact point ``0.d_1 d_2 …`` (base ``Δ``) as a Fraction."""
    acc = Fraction(0)
    for d in digits:
        if not 0 <= d < delta:
            raise ValueError(f"digit {d} out of range for delta={delta}")
    for k, d in enumerate(digits, start=1):
        acc += Fraction(d, delta**k)
    return acc


@dataclass(frozen=True)
class ContinuousGraph:
    """The degree-``Δ`` continuous De Bruijn-style graph over ``[0, 1)``.

    ``delta=2`` is the Distance Halving graph of §2.1; larger ``delta``
    gives the §2.3 construction whose smooth discretization has degree
    ``Θ(Δ)`` and path length ``Θ(log_Δ n)`` (Theorem 2.13).
    """

    delta: int = 2

    def __post_init__(self) -> None:
        if self.delta < 2:
            raise ValueError("delta must be at least 2")

    # ------------------------------------------------------------------ maps
    def child(self, y: Number, digit: int) -> Number:
        """Edge map ``f_digit(y) = y/Δ + digit/Δ``.

        For ``Δ = 2``, ``child(y, 0) = l(y)`` and ``child(y, 1) = r(y)``.
        """
        if not 0 <= digit < self.delta:
            raise ValueError(f"digit {digit} out of range for delta={self.delta}")
        y = normalize(y)
        if isinstance(y, Fraction):
            return y / self.delta + Fraction(digit, self.delta)
        return y / self.delta + digit / self.delta

    def left(self, y: Number) -> Number:
        """``l(y) = y/2`` (binary construction only)."""
        return self.child(y, 0)

    def right(self, y: Number) -> Number:
        """``r(y) = y/2 + 1/2`` (binary construction only)."""
        if self.delta != 2:
            raise ValueError("right() is defined for the binary graph; use child()")
        return self.child(y, 1)

    def backward(self, y: Number) -> Number:
        """The unique incoming edge ``b(y) = Δ·y mod 1``.

        Inverse of every ``child``: ``backward(child(y, i)) == y``.
        Numerically this *doubles* float error, so long backward paths
        should be generated via :meth:`walk` on digit prefixes instead.
        """
        return normalize(normalize(y) * self.delta)

    def out_neighbors(self, y: Number) -> list[Number]:
        """All ``Δ`` forward neighbours ``f_0(y), …, f_{Δ-1}(y)``."""
        return [self.child(y, i) for i in range(self.delta)]

    def child_digit(self, y: Number) -> int:
        """Which digit ``i`` satisfies ``y ∈ image(f_i)`` — i.e. ``floor(Δ·y)``.

        The point ``y`` is ``f_i(b(y))`` for exactly this ``i``.
        """
        return int(normalize(y) * self.delta)

    # ----------------------------------------------------------------- walks
    def walk(self, digits: Sequence[int], y: Number) -> Number:
        """``w(σ_t, y)``: apply ``f_{digits[0]}`` first, ``f_{digits[-1]}`` last.

        Computed in closed form
        ``y/Δ^t + 0.d_t d_{t-1} … d_1 (base Δ)`` so that float error does
        not accumulate: the result is a single division plus a dyadic
        offset.
        """
        t = len(digits)
        if t == 0:
            return normalize(y)
        scale = self.delta**t
        offset_num = 0
        for k, d in enumerate(digits):  # offset = sum_k d_k Δ^k (digit k applied first)
            if not 0 <= d < self.delta:
                raise ValueError(f"digit {d} out of range for delta={self.delta}")
            offset_num += d * self.delta**k
        y = normalize(y)
        if isinstance(y, Fraction):
            return normalize((y + offset_num) / Fraction(scale))
        return normalize((y + offset_num) / scale)

    def walk_points(self, digits: Sequence[int], y: Number) -> list[Number]:
        """All intermediate walk points ``[w(σ_0,y), w(σ_1,y), …, w(σ_t,y)]``.

        ``w(σ_0, y) = y``; element ``j`` is the position after applying the
        first ``j`` digits.  Each element is computed in closed form (no
        error accumulation), and consecutive elements are connected by a
        continuous-graph edge, so this is exactly a path in ``G_c``.
        """
        return [self.walk(digits[:j], y) for j in range(len(digits) + 1)]

    def approach_digits(self, target: Number, t: int) -> Digits:
        """Digit string that makes any walk land within ``Δ^{-t}`` of ``target``.

        Claim 2.4: a walk according to the binary representation of the
        target approaches it.  Because :meth:`walk` applies its *first*
        digit deepest (it ends up least significant in the offset), the
        correct string is the **reversed** ``t``-digit prefix of
        ``target``'s expansion: ``(b_t, …, b_1)``.  Then for every ``z``::

            d(walk(approach_digits(y, t), z), y) <= Δ^{-t}
        """
        return tuple(reversed(binary_digits(target, t, self.delta)))

    def approach_error_bound(self, t: int) -> float:
        """Upper bound ``Δ^{-t}`` of Claim 2.4 for a ``t``-step approach."""
        return float(self.delta) ** (-t)

    def halving_factor(self, t: int) -> float:
        """Contraction factor ``Δ^{-t}`` of Observation 2.3."""
        return float(self.delta) ** (-t)

    # ------------------------------------------------------------- intervals
    def image_arcs_by_digit(self, arc: Arc) -> list[list[Arc]]:
        """Images of a segment under every edge map, grouped per digit.

        Entry ``i`` is ``f_i(arc)`` as a list of arcs: one arc when the
        segment is contiguous, two when it crosses the seam (the image of
        a two-piece wrapping segment is disconnected, since ``f_i``
        contracts each piece into ``[i/Δ, (i+1)/Δ)`` separately).
        """
        exact = isinstance(arc.start, Fraction)
        out: list[list[Arc]] = []
        for i in range(self.delta):
            factor = Fraction(1, self.delta) if exact else 1.0 / self.delta
            offset = Fraction(i, self.delta) if exact else i / self.delta
            if arc.start == arc.end:  # full ring: one contiguous image
                out.append([arc.scaled(factor, offset)])
                continue
            imgs = []
            for a, b in arc.pieces():
                imgs.append(
                    Arc(normalize(a * factor + offset), normalize(b * factor + offset))
                )
            out.append(imgs)
        return out

    def image_arcs(self, arc: Arc) -> list[Arc]:
        """All image arcs of a segment under every edge map (flattened).

        Used when discretizing: server ``V`` covering ``arc`` must link to
        every server whose segment intersects some ``f_i(arc)`` (§2.1).
        The images of one digit have total length ``|arc|/Δ`` (the lower
        diagram of Figure 1).
        """
        return [img for per_digit in self.image_arcs_by_digit(arc) for img in per_digit]

    def preimage_arcs(self, arc: Arc) -> list[Arc]:
        """Preimage of a segment under the edge maps, i.e. ``b(arc)``.

        The preimage of ``s(x)`` is a contiguous arc of length
        ``Δ·|s(x)|`` (proof of Theorem 2.2) — possibly the full ring when
        ``|arc| >= 1/Δ``.  Returned as a list of non-wrapping arcs.
        """
        pieces: list[Arc] = []
        for a, b in arc.pieces():
            length = (b - a) * self.delta
            if length >= 1:
                return [Arc(0.0, 0.0)]
            start = normalize(a * self.delta)
            pieces.append(Arc(start, normalize(start + length)))
        return pieces

    # ---------------------------------------------------------------- meta
    def diameter_steps(self, n: int, rho: float = 1.0) -> int:
        """Steps after which an approach walk resolves to one smooth segment.

        Corollary 2.5: ``t = ceil(log_Δ n + log_Δ ρ) + 1`` suffices when
        the smallest segment has length ``>= 1/(ρ n)``.
        """
        import math

        if n < 1:
            raise ValueError("n must be positive")
        return int(math.ceil(math.log(max(n, 2) * max(rho, 1.0), self.delta))) + 1
