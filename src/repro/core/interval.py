"""Arithmetic on the unit ring ``I = [0, 1)``.

The continuous-discrete approach (Naor & Wieder, SPAA 2003) works over a
continuous space ``I``; for the Distance Halving DHT this is the half-open
unit interval treated as a ring.  This module provides the two primitives
everything else is built on:

* point arithmetic — normalisation, linear distance ``d(x, y) = |x - y|``
  (the metric used by the distance-halving analysis, Observation 2.3) and
  ring (wrap-around) distance;
* :class:`Arc` — a half-open arc ``[start, end)`` of the ring, possibly
  wrapping through 1.0, with containment, length, midpoint, splitting and
  intersection.

All functions are generic over the numeric type: they work with ``float``
coordinates (the fast path) and with :class:`fractions.Fraction` (the exact
path used by property-based tests, mirroring the paper's remark in §2.2.3
that enough precision must be allocated).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Sequence, Union

Number = Union[int, float, Fraction]

__all__ = [
    "Number",
    "normalize",
    "linear_distance",
    "ring_distance",
    "midpoint_between",
    "Arc",
    "full_arc",
    "arcs_cover_ring",
]


def normalize(x: Number) -> Number:
    """Map ``x`` into ``[0, 1)`` by reducing modulo 1.

    Works for floats and :class:`~fractions.Fraction` alike.  ``x % 1``
    already has the right semantics for both types in Python (the result
    carries the sign of the divisor, hence is non-negative), but a float
    ``x`` that is a tiny negative number can round to exactly ``1.0`` after
    the modulo; we fold that case back to ``0.0``.
    """
    r = x % 1
    if r == 1:  # float rounding artefact, e.g. (-1e-18) % 1 == 1.0 - eps -> 1.0
        return r - 1
    return r


def linear_distance(x: Number, y: Number) -> Number:
    """Paper metric ``d(x, y) = |x - y|`` on ``[0, 1)`` (no wrap-around).

    Observation 2.3 (the distance-halving property) is stated for this
    *linear* distance: both ``l`` and ``r`` halve it exactly.  The ring
    metric would not be halved exactly, which is why the paper uses this
    one throughout §2.2.
    """
    return abs(x - y)


def ring_distance(x: Number, y: Number) -> Number:
    """Wrap-around distance on the unit ring: ``min(|x-y|, 1-|x-y|)``."""
    d = abs(normalize(x) - normalize(y))
    return min(d, 1 - d)


def midpoint_between(a: Number, b: Number) -> Number:
    """Midpoint of the clockwise arc from ``a`` to ``b`` on the ring.

    If ``a <= b`` this is the ordinary midpoint; otherwise the arc wraps
    through 1.0 and the midpoint is taken on the wrapped arc.
    """
    a = normalize(a)
    b = normalize(b)
    if a <= b:
        return (a + b) / 2
    return normalize((a + b + 1) / 2)


@dataclass(frozen=True)
class Arc:
    """A half-open arc ``[start, end)`` on the unit ring.

    ``start == end`` denotes the *full* ring (length 1), matching the
    single-server degenerate case of the Distance Halving construction
    where one server covers all of ``I``.  An arc with ``start > end``
    wraps through 1.0, e.g. ``Arc(0.9, 0.1)`` covers ``[0.9, 1) ∪ [0, 0.1)``
    exactly like the last server's segment ``s(x_n)`` in §2.1.
    """

    start: Number
    end: Number

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", normalize(self.start))
        object.__setattr__(self, "end", normalize(self.end))

    @property
    def wraps(self) -> bool:
        """True when the arc crosses the 1.0 -> 0.0 seam."""
        return self.start > self.end

    @property
    def length(self) -> Number:
        """Arc length; the full ring has length 1."""
        if self.start == self.end:
            return 1 if isinstance(self.start, int) else type(self.start)(1)
        if self.wraps:
            return 1 - self.start + self.end
        return self.end - self.start

    def __contains__(self, point: Number) -> bool:
        p = normalize(point)
        if self.start == self.end:
            return True
        if self.wraps:
            return p >= self.start or p < self.end
        return self.start <= p < self.end

    @property
    def midpoint(self) -> Number:
        """The centre point of the arc (on the ring)."""
        if self.start == self.end:
            return normalize(self.start + Fraction(1, 2)
                             if isinstance(self.start, Fraction)
                             else self.start + 0.5)
        return normalize(self.start + self.length / 2)

    def pieces(self) -> Iterator[tuple[Number, Number]]:
        """Decompose into at most two non-wrapping intervals ``[a, b)``.

        A wrapping arc yields ``(start, 1)`` and ``(0, end)``; the full ring
        yields ``(start, 1)`` and ``(0, start)`` (or a single ``(0, 1)`` when
        anchored at zero).  Useful for interval-tree style queries over the
        sorted point set.
        """
        one = 1 if isinstance(self.start, int) else type(self.start)(1)
        zero = one - one
        if self.start == self.end:
            if self.start == zero:
                yield (zero, one)
            else:
                yield (self.start, one)
                yield (zero, self.start)
        elif self.wraps:
            yield (self.start, one)
            if self.end > zero:  # an arc ending exactly at the seam has no second piece
                yield (zero, self.end)
        else:
            yield (self.start, self.end)

    def split(self, at: Number) -> tuple["Arc", "Arc"]:
        """Split into ``[start, at)`` and ``[at, end)``.

        This is exactly the Join operation's segment division (§2.1,
        Algorithm Join step 3): the new server takes the suffix of the
        old segment.  Raises :class:`ValueError` if ``at`` is not an
        interior point of the arc.
        """
        at = normalize(at)
        if at not in self or at == self.start:
            raise ValueError(f"split point {at!r} not interior to {self!r}")
        return Arc(self.start, at), Arc(at, self.end)

    def overlaps(self, other: "Arc") -> bool:
        """True when the two arcs share at least one point."""
        return self.intersection_length(other) > 0 or any(
            a in other for a, _ in self.pieces()
        )

    def intersection_length(self, other: "Arc") -> Number:
        """Total length of the intersection with ``other``."""
        total = None
        for a1, b1 in self.pieces():
            for a2, b2 in other.pieces():
                lo = max(a1, a2)
                hi = min(b1, b2)
                if hi > lo:
                    total = (hi - lo) if total is None else total + (hi - lo)
        if total is None:
            return 0 if isinstance(self.start, int) else type(self.start)(0)
        return total

    def scaled(self, factor: Number, offset: Number) -> "Arc":
        """Image of this arc under the affine contraction ``p -> p*factor + offset``.

        Used to push a server's segment through the continuous-graph edge
        maps ``f_i(y) = y/Δ + i/Δ`` (§2.3): the image of ``[a, b)`` is
        ``[f_i(a), f_i(b))``.  Only meaningful for ``0 < factor <= 1``
        where the image cannot self-overlap.
        """
        # The image of an arc that crosses the seam with mass on *both*
        # sides is two disjoint arcs — not representable as one Arc; use
        # :meth:`repro.core.continuous.ContinuousGraph.image_arcs`, which
        # maps each piece separately.  An arc ending exactly at the seam
        # (stored ``end == 0``) is a single piece: scale ``end + 1``.
        if self.start == self.end:  # full ring contracts to one arc
            s = normalize(self.start * factor + offset)
            return Arc(s, normalize(s + factor))
        if self.wraps:
            zero = self.end - self.end
            if self.end > zero:
                raise ValueError(
                    "image of a two-piece wrapping arc under a contraction is "
                    "disconnected; scale each piece (see ContinuousGraph.image_arcs)"
                )
            return Arc(
                normalize(self.start * factor + offset),
                normalize((self.end + 1) * factor + offset),
            )
        return Arc(
            normalize(self.start * factor + offset),
            normalize(self.end * factor + offset),
        )


def full_arc() -> Arc:
    """The arc covering all of ``[0, 1)`` (the single-server network)."""
    return Arc(0.0, 0.0)


def arcs_cover_ring(arcs: Sequence[Arc]) -> bool:
    """Check whether the union of ``arcs`` covers every point of ``[0, 1)``.

    Used by the fault-tolerance experiments (§6, Claim 6.5) to verify that
    after fail-stop deletions every point of ``I`` is still covered by at
    least one surviving server's (overlapping) segment.
    """
    events: list[tuple[Number, int]] = []
    for arc in arcs:
        for a, b in arc.pieces():
            events.append((a, 1))
            events.append((b, -1))
    if not events:
        return False
    events.sort(key=lambda e: (e[0], -e[1]))
    # Sweep; coverage must stay positive over [0,1). Start coverage counts
    # arcs that straddle 0 (their piece starting at 0 handles that).
    depth = 0
    prev = 0
    for pos, delta in events:
        if pos > prev and depth <= 0:
            return False
        prev = max(prev, pos)
        depth += delta
    # tail [last event, 1): covered iff some piece ends at 1 only when depth>0
    last = max(pos for pos, _ in events)
    if last < 1 and depth <= 0:
        return False
    return True
