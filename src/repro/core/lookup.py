"""Lookup algorithms on the Distance Halving DHT (paper §2.2).

Two algorithms are implemented, exactly as in the paper:

**Fast Lookup** (§2.2.1; the text also calls it "Greedy Lookup" in
Corollary 2.5/Theorem 2.7).  To find point ``y`` from server ``V`` with
segment midpoint ``z``: pick the smallest ``t`` with
``w(σ(z)_t, y) ∈ s(V)`` (Claim 2.4 guarantees ``t ≤ log n + log ρ + 1``
for smooth decompositions), then walk *backwards* along ``b`` edges from
that point to ``y``.  Each intermediate point is recomputed in closed form
from the digit prefix, so no float error accumulates on the doubling
steps.

**Distance Halving Lookup** (§2.2.2).  Valiant-style two-phase routing:
phase I walks the *source* point forward under fresh random digits ``τ``
until the image ``w(τ_t, y)`` of the target is covered by the current
server or one of its neighbours (Observation 2.3: the two walks approach
each other at rate ``Δ^{-t}``); phase II walks backwards from
``w(τ_t, y)`` to ``y``.  Path length ≤ ``2 log n + 2 log ρ``
(Theorem 2.8) and the randomness gives the permutation-routing and
hot-spot properties of Theorems 2.10/2.11 and Section 3.

Both functions return a :class:`LookupResult` carrying the full server
path (for congestion accounting) and the continuous trajectory (for the
caching protocol, which needs the path-tree nodes of phase II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .continuous import Digits
from .interval import normalize
from .network import DistanceHalvingNetwork

__all__ = ["LookupResult", "fast_lookup", "dh_lookup", "lookup_many",
           "compress_path", "MAX_WALK_STEPS"]

#: Hard safety bound on walk length; Corollary 2.5 / Theorem 2.8 give
#: ≈ 2(log n + log ρ) ≤ 4 log n for reasonable ρ, far below this.
MAX_WALK_STEPS = 512


@dataclass
class LookupResult:
    """Outcome of a routed lookup.

    ``server_path`` lists the id points of the servers that handled the
    message in order (consecutive duplicates removed) — its length minus
    one is the hop count.  ``continuous_path`` is the trajectory in ``I``;
    ``phase2_digits`` is the digit prefix identifying the path-tree branch
    used by the caching protocol (§3.1); ``t`` is the walk-length
    parameter chosen by the algorithm.
    """

    target: float
    owner: float
    server_path: List[float]
    continuous_path: List[float]
    t: int
    phase2_digits: Digits = ()
    phase1_hops: int = 0

    @property
    def hops(self) -> int:
        """Number of network hops (messages sent between distinct servers)."""
        return max(0, len(self.server_path) - 1)

    @property
    def source(self) -> float:
        return self.server_path[0]

    def verify_adjacent(self, net: DistanceHalvingNetwork) -> bool:
        """Check every consecutive pair of path servers is a network edge."""
        return all(
            net.are_neighbors(a, b)
            for a, b in zip(self.server_path, self.server_path[1:])
        )


def compress_path(points: Sequence[float]) -> List[float]:
    """Remove consecutive duplicates (same server handling several walk steps).

    The hop count of a route is ``len(compress_path(servers)) - 1``; the
    batch engine reproduces exactly this compression when reconstructing
    per-lookup server paths.
    """
    out: List[float] = []
    for p in points:
        if not out or out[-1] != p:
            out.append(p)
    return out


def fast_lookup(
    net: DistanceHalvingNetwork,
    source_point: float,
    target: float,
) -> LookupResult:
    """Fast (greedy) lookup of the server covering ``target`` (§2.2.1).

    Deterministic: the path depends only on the source segment's midpoint
    ``z`` and the target.  Path length ≤ ``log_Δ n + log_Δ ρ + 1``
    (Corollary 2.5), congestion ``Θ(log n / n)`` for random pairs
    (Theorem 2.7).
    """
    g = net.graph
    y = normalize(float(target))
    src = normalize(float(source_point))
    # the lookup is initiated by the server covering the source point
    seg = net.segments.segment_of(net.segments.cover_point(src))
    z = seg.midpoint

    # Step 1: minimal t with w(σ(z)_t, y) ∈ s(V).  (Claim 2.4: distance to z
    # after t steps is ≤ Δ^-t, so t ≈ -log |s(V)| suffices.)
    t = 0
    digits: Digits = ()
    while t <= MAX_WALK_STEPS:
        digits = g.approach_digits(z, t)
        if g.walk(digits, y) in seg:
            break
        t += 1
    else:  # pragma: no cover - MAX_WALK_STEPS is far beyond any theorem bound
        raise RuntimeError("fast_lookup failed to converge; degenerate segment?")

    # Step 2: move backwards along b edges; the point after k backward steps
    # is w(digits[:t-k], y), computed in closed form for numeric stability.
    continuous = [g.walk(digits[:j], y) for j in range(t, -1, -1)]
    servers = compress_path([net.segments.cover_point(p) for p in continuous])
    return LookupResult(
        target=y,
        owner=net.segments.cover_point(y),
        server_path=servers,
        continuous_path=continuous,
        t=t,
        phase2_digits=digits,
    )


def lookup_many(
    net: DistanceHalvingNetwork,
    sources: Sequence[float],
    targets: Sequence[float],
    algorithm: str = "fast",
    rng: Optional[np.random.Generator] = None,
    taus: Optional[Sequence[Sequence[int]]] = None,
) -> List[LookupResult]:
    """Route many lookups one at a time through the scalar engine.

    This is the reference loop the vectorised
    :class:`~repro.core.batch.BatchRouter` is measured against (and
    parity-checked against): identical semantics, one Python call per
    hop per lookup.  ``taus`` optionally fixes the per-lookup digit
    strings of the Distance Halving algorithm so a batch run with the
    same strings is bit-comparable.
    """
    if algorithm not in ("fast", "dh"):
        raise ValueError(f"unknown algorithm {algorithm!r}; use 'fast' or 'dh'")
    if algorithm == "dh" and rng is None and taus is None:
        raise ValueError("dh lookups need an rng or explicit taus")
    out: List[LookupResult] = []
    for i, (s, y) in enumerate(zip(sources, targets)):
        if algorithm == "fast":
            out.append(fast_lookup(net, float(s), float(y)))
        else:
            tau = None if taus is None else taus[i]
            out.append(dh_lookup(net, float(s), float(y), rng, tau=tau))
    return out


def dh_lookup(
    net: DistanceHalvingNetwork,
    source_point: float,
    target: float,
    rng: np.random.Generator,
    tau: Optional[Sequence[int]] = None,
) -> LookupResult:
    """Distance Halving (two-phase, randomised) lookup (§2.2.2).

    Phase I sends the message along the random walk of the *source* point
    ``w(τ_t, x_i)`` until ``w(τ_t, y)`` is covered by the current server
    or one of its neighbours; phase II descends the backward edges from
    ``w(τ_t, y)`` to ``y``.  Supplying ``tau`` fixes the random digit
    string (used by tests and by the caching experiments to steer the
    path-tree branch).
    """
    g = net.graph
    y = normalize(float(target))
    src = normalize(float(source_point))

    def digit(i: int) -> int:
        if tau is not None:
            if i >= len(tau):
                raise ValueError("supplied tau exhausted before lookup finished")
            return int(tau[i])
        return int(rng.integers(0, g.delta))

    taus: List[int] = []
    pos = src          # w(τ_t, x_i) — message position, forward-stable
    image = y          # w(τ_t, y)  — target image moving with the message
    t = 0
    phase1_servers: List[float] = [net.segments.cover_point(src)]

    while t <= MAX_WALK_STEPS:
        cur = phase1_servers[-1]
        if image in net.segments.segment_of(cur):
            break
        neigh = net.neighbor_points(cur)
        holder = net.segments.cover_point(image)
        if holder in neigh:
            phase1_servers.append(holder)
            break
        d = digit(t)
        taus.append(d)
        t += 1
        pos = g.child(pos, d)
        image = g.child(image, d)
        phase1_servers.append(net.segments.cover_point(pos))
    else:  # pragma: no cover
        raise RuntimeError("dh_lookup phase I failed to converge")

    # Phase II: from w(τ_t, y) backwards to y, deleting the last digit each
    # step (paper: "each step the server handling the message deletes the
    # last bit in τ").  Closed-form recomputation per step.
    digits = tuple(taus)
    continuous_back = [g.walk(digits[:j], y) for j in range(len(digits), -1, -1)]
    phase2_servers = [net.segments.cover_point(p) for p in continuous_back]

    servers = compress_path(phase1_servers + phase2_servers)
    continuous = [g.walk(digits[:j], src) for j in range(len(digits) + 1)]
    continuous += continuous_back
    return LookupResult(
        target=y,
        owner=net.segments.cover_point(y),
        server_path=servers,
        continuous_path=continuous,
        t=t,
        phase2_digits=digits,
        phase1_hops=max(0, len(compress_path(phase1_servers)) - 1),
    )
