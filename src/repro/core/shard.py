"""Opt-in multicore sharded execution backend for the batch engines.

The batch spine is single-process by construction: one
:class:`~repro.core.batch.BatchRouter` routes one NumPy batch on one
core.  This module adds the parallel layer the ROADMAP calls "the piece
that lets benches scale past n=2^20": a :class:`ShardedExecutor` that

* exports the router's frozen snapshot **pickle-free** into
  ``multiprocessing.shared_memory`` blocks — exactly the arrays the
  :class:`~repro.core.snapshot.ColumnarSnapshot` column registry
  enumerates, plus the sorted adjacency keys when built and any
  ``shard_extra_arrays()`` a router subclass declares (the cost-aware
  router ships its k×k ISP matrix this way) — so every worker process
  routes against the *same physical pages*, not a copy;
* splits a batch of lookups into ``workers`` contiguous slices and runs
  them through a persistent process pool; the per-lane routing math is
  elementwise (every IEEE-754 op of a lane depends only on that lane and
  the shared snapshot), so the concatenation of per-shard results is
  **bit-identical** to the single-process run — the property the
  hypothesis shard-parity suite asserts;
* merges per-shard results through the existing associative accumulator
  semantics: :func:`merge_results` re-assembles one
  :class:`~repro.core.batch.BatchLookupResult` (CSR paths concatenate
  with offset shifts), and downstream accumulators
  (:class:`~repro.core.routing_stats.BatchCongestion`,
  :class:`~repro.sim.scenario.SoakStats`) merge exactly.

Ownership of the shared-memory lifetime is strictly the executor's: the
parent creates and unlinks every block; workers only attach views and
never outlive the pool.  After membership churn the exported snapshot is
stale — :meth:`ShardedExecutor.sync` re-exports and restarts the pool
(the router's journal/patch machinery keeps *its* arrays fresh; the
executor only mirrors the result).

Two batch kinds are deliberately **not** sharded: ``keep_paths=True``
(the per-level matrices are an internal debugging representation — use
``"csr"``) and the caching engine's ``serve_batch`` (its replication
fixpoint is order-dependent across the whole batch, so slicing would
change results).
"""

from __future__ import annotations

import multiprocessing as mp
import os
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .batch import BatchLookupResult, BatchRouter, _normalize_array

__all__ = ["ShardedExecutor", "available_workers", "merge_results",
           "slice_bounds"]

#: Scalar attributes a worker needs besides the shared columns.
_SCALARS = ("delta", "with_ring", "n")


def slice_bounds(size: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` slice bounds splitting ``size`` lanes.

    Remainder lanes go to the leading slices (``np.array_split``
    convention), and empty slices are dropped — every returned slice is
    non-empty, so a batch smaller than the worker count simply uses
    fewer workers.
    """
    if size < 0:
        raise ValueError("size must be >= 0")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    edges = np.linspace(0, size, min(workers, max(size, 1)) + 1).astype(int)
    return [(int(lo), int(hi)) for lo, hi in zip(edges, edges[1:]) if hi > lo]


def merge_results(parts: Sequence[BatchLookupResult],
                  points: Optional[np.ndarray] = None) -> BatchLookupResult:
    """Concatenate per-shard results into one :class:`BatchLookupResult`.

    Pure re-assembly — lane order is preserved, CSR offsets are shifted
    by the running path-entry count, and no float is recomputed, so the
    merge of a sliced batch equals the unsliced result bit-for-bit.
    ``points`` re-attaches the id-point array when the shards stripped
    it (the executor does, to keep result pickles O(batch/workers)).
    """
    if not parts:
        raise ValueError("nothing to merge")
    first = parts[0]
    if points is None:
        points = first.points
    cat = np.concatenate
    phase1 = None
    if all(p.phase1_hops is not None for p in parts):
        phase1 = cat([p.phase1_hops for p in parts])
    tau_used = None
    if all(p.tau_used is not None for p in parts):
        # shards stop at their own deepest phase-I step; right-pad the
        # narrower digit matrices with zeros (digits past a lookup's
        # ``t`` are never consumed by a replay) before stacking
        width = max(p.tau_used.shape[1] for p in parts)
        padded = []
        for p in parts:
            tu = p.tau_used
            if tu.shape[1] < width:
                pad = np.zeros((tu.shape[0], width - tu.shape[1]),
                               dtype=tu.dtype)
                tu = np.concatenate([tu, pad], axis=1)
            padded.append(tu)
        tau_used = cat(padded)
    servers = offsets = None
    if all(p.path_servers is not None for p in parts):
        servers = cat([p.path_servers for p in parts])
        offsets = np.zeros(sum(p.size for p in parts) + 1, dtype=np.int64)
        at = 0
        base = 0
        for p in parts:
            offsets[at + 1: at + p.size + 1] = p.path_offsets[1:] + base
            at += p.size
            base += int(p.path_offsets[-1])
    return BatchLookupResult(
        algorithm=first.algorithm,
        points=points,
        targets=cat([p.targets for p in parts]),
        sources=cat([p.sources for p in parts]),
        source_idx=cat([p.source_idx for p in parts]),
        owner_idx=cat([p.owner_idx for p in parts]),
        t=cat([p.t for p in parts]),
        hops=cat([p.hops for p in parts]),
        phase1_hops=phase1,
        tau_used=tau_used,
        policy=first.policy,
        path_servers=servers,
        path_offsets=offsets,
    )


class _ShardRouter(BatchRouter):
    """A worker-side router over shared-memory column views.

    Never constructed through ``__init__``: :func:`_init_worker` builds
    it with ``__new__`` and wires the attributes straight onto the
    attached views.  There is no live network behind it — the snapshot
    is frozen for the lifetime of the pool — so the freshness guard is
    a no-op and anything that would need the live object graph raises.
    """

    def ensure_fresh(self) -> None:
        """No-op: the exported snapshot is frozen for the pool's lifetime."""
        return

    def refresh(self, force_full: bool = False) -> "BatchRouter":
        """Always an error: refresh happens in the parent process."""
        raise RuntimeError("shard workers hold a frozen snapshot; "
                           "refresh happens in the parent process")

    def _build_adjacency(self) -> None:
        raise RuntimeError("shard workers cannot reach the live network; "
                           "build adjacency before exporting the snapshot")


#: Worker-global state: (router, attached SharedMemory blocks).
_WORKER: Dict[str, object] = {}


def _init_worker(spec: Dict) -> None:
    """Pool initializer: build the frozen shard router from shm views.

    Workers share the parent's resource tracker, so their attachments
    re-register already-tracked names (a no-op) and the parent's single
    ``unlink`` unregisters them once — ownership stays with the parent.
    """
    blocks = []
    router = _ShardRouter.__new__(_ShardRouter)
    for attr, name, dtype, shape in spec["columns"]:
        shm = shared_memory.SharedMemory(name=name)
        blocks.append(shm)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        view.flags.writeable = False
        setattr(router, attr, view)
    for attr, value in spec["scalars"].items():
        setattr(router, attr, value)
    if not hasattr(router, "_edge_keys"):
        router._edge_keys = None
    _WORKER["router"] = router
    _WORKER["blocks"] = blocks


def _run_fast(task) -> BatchLookupResult:
    sources, targets, keep_paths = task
    router: _ShardRouter = _WORKER["router"]  # type: ignore[assignment]
    result = router.batch_fast_lookup(sources, targets,
                                      keep_paths=keep_paths)
    result.points = None  # re-attached by merge_results in the parent
    return result


def _run_dh(task) -> BatchLookupResult:
    sources, targets, tau, keep_paths = task
    router: _ShardRouter = _WORKER["router"]  # type: ignore[assignment]
    result = router.batch_dh_lookup(sources, targets, tau=tau,
                                    keep_paths=keep_paths)
    result.points = None
    return result


def _run_cost_dh(task) -> BatchLookupResult:
    sources, targets, choices, policy, temperature, keep_paths = task
    router: _ShardRouter = _WORKER["router"]  # type: ignore[assignment]
    result = router.batch_cost_dh_lookup(
        sources, targets, choices=choices, policy=policy,
        temperature=temperature, keep_paths=keep_paths)
    result.points = None
    return result


class ShardedExecutor:
    """Persistent worker pool routing batch slices against a shared snapshot.

    Parameters
    ----------
    router:
        The compiled :class:`~repro.core.batch.BatchRouter` to export.
        It must be fresh (the constructor and :meth:`sync` call its
        ``ensure_fresh``); build adjacency first if the workload uses
        :meth:`batch_dh_lookup`.
    workers:
        Worker process count (≥ 2; use the plain router for 1).
    start_method:
        ``multiprocessing`` start method; default ``fork`` where
        available (cheapest on Linux), else the platform default.

    Use as a context manager, or call :meth:`close` — the executor owns
    the shared-memory blocks and must outlive every in-flight batch.
    """

    def __init__(self, router: BatchRouter, workers: int,
                 start_method: Optional[str] = None) -> None:
        if workers < 2:
            raise ValueError("a sharded executor needs workers >= 2")
        self.router = router
        self.workers = int(workers)
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self._pool = None
        self._blocks: List[shared_memory.SharedMemory] = []
        self.version: Optional[int] = None
        self.syncs = 0
        self.sync()

    # ------------------------------------------------------------- lifecycle
    def _export(self) -> Dict:
        """Copy the router's registered columns into fresh shm blocks."""
        router = self.router
        columns = []
        arrays = dict(router.snapshot_columns())
        self._exported_adjacency = router._edge_keys is not None
        if self._exported_adjacency:
            arrays["_edge_keys"] = router._edge_keys
        # non-column extras (e.g. the cost-aware router's k×k ISP cost
        # matrix, which is not n-aligned and so not a registered column)
        extra = getattr(router, "shard_extra_arrays", None)
        if extra is not None:
            arrays.update(extra())
        for attr, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, arr.nbytes))
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            self._blocks.append(shm)
            columns.append((attr, shm.name, arr.dtype.str, arr.shape))
        scalars = {attr: getattr(router, attr) for attr in _SCALARS}
        return {"columns": columns, "scalars": scalars}

    def _teardown(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        for shm in self._blocks:
            shm.close()
            shm.unlink()
        self._blocks = []

    def sync(self) -> "ShardedExecutor":
        """Re-export the snapshot if the router moved past the export.

        Cheap no-op while versions agree; after churn it rebuilds the
        shm blocks and restarts the pool (workers hold views into the
        old blocks, so they cannot be reused).  Returns ``self``.
        """
        self.router.ensure_fresh()
        if self._pool is not None and self.version == self.router.version:
            return self
        self._teardown()
        spec = self._export()
        self._pool = self._ctx.Pool(self.workers, initializer=_init_worker,
                                    initargs=(spec,))
        self.version = self.router.version
        self.syncs += 1
        return self

    def close(self) -> None:
        """Terminate the pool and release every shared-memory block."""
        self._teardown()

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - gc-order dependent
        try:
            self._teardown()
        except Exception:
            pass

    # ---------------------------------------------------------------- routing
    def _check(self, keep_paths) -> None:
        if keep_paths is True:
            raise ValueError(
                "sharded batches do not support keep_paths=True (per-level "
                "matrices are per-shard internals); use keep_paths='csr'")
        if self._pool is None:
            raise RuntimeError("executor is closed")

    def batch_fast_lookup(self, sources, targets,
                          keep_paths: "bool | str" = False,
                          ) -> BatchLookupResult:
        """Sharded §2.2.1 fast lookup, bit-identical to the plain router.

        Normalization happens once in the parent (it is elementwise, so
        it commutes with slicing); each worker routes one contiguous
        slice and the merged result preserves lane order.
        """
        self._check(keep_paths)
        self.sync()
        y = _normalize_array(targets)
        src = _normalize_array(sources, size=y.size)
        if src.size != y.size:
            raise ValueError("sources and targets must have the same length")
        bounds = slice_bounds(y.size, self.workers)
        if len(bounds) <= 1:
            res = self.router.batch_fast_lookup(src, y, keep_paths=keep_paths)
            return res
        tasks = [(src[lo:hi], y[lo:hi], keep_paths) for lo, hi in bounds]
        parts = self._pool.map(_run_fast, tasks)
        return merge_results(parts, points=self.router.points)

    def batch_dh_lookup(self, sources, targets, tau,
                        keep_paths: "bool | str" = False,
                        ) -> BatchLookupResult:
        """Sharded §2.2.2 two-phase lookup (explicit ``tau`` only).

        Random digit strings must be supplied: a shared ``rng`` draws
        digits batch-wise, which is inherently order-dependent across
        the whole batch and would break shard parity.
        """
        self._check(keep_paths)
        self.sync()
        if not self._exported_adjacency:
            # adjacency must exist in the export; rebuild the pool with it
            if self.router._edge_keys is None:
                self.router._build_adjacency()
            self.version = None
            self.sync()
        y = _normalize_array(targets)
        src = _normalize_array(sources, size=y.size)
        if src.size != y.size:
            raise ValueError("sources and targets must have the same length")
        tau_arr = np.asarray(tau, dtype=np.int64)
        if tau_arr.ndim == 1:
            tau_arr = np.broadcast_to(tau_arr, (y.size, tau_arr.size))
        if tau_arr.shape[0] != y.size:
            raise ValueError("tau must have one digit string per lookup")
        bounds = slice_bounds(y.size, self.workers)
        if len(bounds) <= 1:
            return self.router.batch_dh_lookup(src, y, tau=tau_arr,
                                               keep_paths=keep_paths)
        tasks = [(src[lo:hi], y[lo:hi], tau_arr[lo:hi], keep_paths)
                 for lo, hi in bounds]
        parts = self._pool.map(_run_dh, tasks)
        return merge_results(parts, points=self.router.points)

    def batch_cost_dh_lookup(self, sources, targets, choices,
                             policy: str = "weighted",
                             temperature: float = 1.0,
                             keep_paths: "bool | str" = False,
                             ) -> BatchLookupResult:
        """Sharded cost-aware dh lookup (explicit ``choices`` only).

        Mirrors :meth:`~repro.core.batch.BatchRouter
        .batch_cost_dh_lookup` over per-worker slices.  The per-step
        uniforms must be supplied up front (an ``rng`` would be consumed
        batch-wise and break shard parity, exactly like ``tau`` for the
        plain dh path; ``policy="greedy"`` accepts ``choices=None``).
        Requires a cost-aware router — the workers rebuild their shard
        routers from the exported cost columns plus the ``_isp_cost``
        extra array, so the merged result is bit-identical to the
        single-process call, ``tau_used`` included.
        """
        self._check(keep_paths)
        self.sync()
        self.router._cost_state()  # actionable error on a cost-less router
        if not self._exported_adjacency:
            if self.router._edge_keys is None:
                self.router._build_adjacency()
            self.version = None
            self.sync()
        y = _normalize_array(targets)
        src = _normalize_array(sources, size=y.size)
        if src.size != y.size:
            raise ValueError("sources and targets must have the same length")
        u_mat = None
        if choices is not None:
            u_mat = np.asarray(choices, dtype=np.float64)
            if u_mat.ndim == 1:
                u_mat = np.broadcast_to(u_mat, (y.size, u_mat.size))
            if u_mat.shape[0] != y.size:
                raise ValueError("choices must have one uniform row per lookup")
        elif policy != "greedy":
            raise ValueError(
                f"sharded policy {policy!r} needs explicit choices= uniforms")
        bounds = slice_bounds(y.size, self.workers)
        if len(bounds) <= 1:
            return self.router.batch_cost_dh_lookup(
                src, y, choices=u_mat, policy=policy,
                temperature=temperature, keep_paths=keep_paths)
        tasks = [(src[lo:hi], y[lo:hi],
                  None if u_mat is None else u_mat[lo:hi],
                  policy, temperature, keep_paths)
                 for lo, hi in bounds]
        parts = self._pool.map(_run_cost_dh, tasks)
        return merge_results(parts, points=self.router.points)


def available_workers() -> int:
    """Usable CPU count (affinity-aware where the platform exposes it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1
