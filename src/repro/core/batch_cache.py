"""Vectorized dynamic caching — the §3 hot-spot protocol on array state.

The scalar :class:`~repro.core.caching.CacheSystem` serves one request at
a time through Python sets and Counters; this module serves whole request
*batches* against array-backed active trees:

* the active set of every item's path tree is one sorted ``int64`` array
  of digit-prefix keys (``key(()) = 0``, ``key(s + (d,)) = key(s)·Δ + d
  + 1`` — a bijective base-Δ code), all trees packed into a single
  composite key space ``tree·K + node_key`` so one ``np.searchsorted``
  answers membership for every request of a batch at once;
* ``serving_node`` resolution is a gather: the prefix keys of a request's
  digit string are membership-tested in bulk and the deepest active
  prefix falls out of a row sum (prefix-closure makes the active depths
  contiguous);
* replication (step 1 of the protocol) runs as a fixpoint over sorted
  request groups that reproduces the *sequential* semantics exactly —
  the ``(c+1)``-th hit of a leaf replicates, the triggering request is
  served where it entered, strictly later deep entries reroute to the
  children (see :meth:`BatchCacheEngine.serve_batch`);
* epoch counters accumulate with ``np.bincount``; the end-of-epoch
  collapse (steps 2–3) is a vectorized sibling-group reduction applied
  as set patches until it reaches the same fixpoint as the scalar
  while-changed loop;
* cache-shortened paths are emitted as CSR (a ragged cache-truncated
  specialisation of :func:`~repro.core.batch.levels_to_csr` sized by
  the true per-request path lengths), so cached batches book straight
  into :class:`~repro.core.routing_stats.BatchCongestion`.

Every float operation mirrors the scalar engine ULP-for-ULP (node
positions are the closed-form walks ``(root + Σ d_k Δ^k) / Δ^j`` with the
same IEEE operation order), so served nodes, replication counts, message
and hit counters, and ``summary()`` are *bit-identical* to a scalar
:class:`~repro.core.caching.CacheSystem` replay of the same request
stream — the contract the parity test suite asserts.

Salting (the mitigation mode of both engines): with ``salts = s > 1``
each item is spread over ``s`` deterministic salt points — request
sources pick a salt via :func:`~repro.core.caching.salt_indices`, the
request routes to the salted tree rooted at ``h(salted_key(item, j))``,
and per-item statistics merge the ``s`` per-salt trees
(:meth:`BatchCacheEngine.item_replications` /
:meth:`~BatchCacheEngine.item_copies`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hashing.kwise import Key
from .batch import _isin_sorted
from .caching import salt_indices, salted_key
from .continuous import Digits
from .network import DistanceHalvingNetwork
from .segments import cover_indices, normalize_array

__all__ = ["BatchCacheEngine", "BatchCacheResult", "decode_node_key",
           "encode_node_key"]

#: Digits generated per request when ``serve_batch`` draws its own tau —
#: matches the experiments' ``DH_TAU_DIGITS`` headroom.
_TAU_DIGITS = 64


def encode_node_key(address: Sequence[int], delta: int) -> int:
    """Bijective base-Δ code of a path-tree address (root ``()`` is 0)."""
    key = 0
    for d in address:
        if not 0 <= d < delta:
            raise ValueError(f"digit {d} out of range for delta={delta}")
        key = key * delta + d + 1
    return key


def decode_node_key(key: int, delta: int) -> Digits:
    """Inverse of :func:`encode_node_key`."""
    if key < 0:
        raise ValueError("node keys are non-negative")
    digits: List[int] = []
    while key:
        key, d = divmod(key - 1, delta)
        digits.append(d)
    return tuple(reversed(digits))


@dataclass
class BatchCacheResult:
    """Array-of-structs outcome of one served batch.

    Mirrors :class:`~repro.core.caching.CachedLookup` field-for-field as
    arrays: ``serving_depth``/``serving_node_key`` identify the cache
    node that supplied each request, ``hops`` counts the cache-shortened
    path, ``lookup_hops`` the full Distance Halving route it truncated.
    ``path_servers``/``path_offsets`` is the CSR encoding of the
    shortened server paths (indices into ``points``) —
    :meth:`to_csr`/``size``/``hops`` give the exact duck-type
    :meth:`~repro.core.routing_stats.BatchCongestion.record_batch`
    consumes.
    """

    points: np.ndarray
    items: np.ndarray
    trees: np.ndarray
    t: np.ndarray
    serving_depth: np.ndarray
    serving_node_key: np.ndarray
    serving_server_idx: np.ndarray
    hops: np.ndarray
    lookup_hops: np.ndarray
    path_servers: np.ndarray = field(repr=False, default=None)
    path_offsets: np.ndarray = field(repr=False, default=None)
    delta: int = 2

    @property
    def size(self) -> int:
        return int(self.t.size)

    @property
    def serving_server(self) -> np.ndarray:
        """Id points of the servers that supplied each request."""
        return self.points[self.serving_server_idx]

    @property
    def saved_hops(self) -> np.ndarray:
        """Hops avoided relative to routing all the way to the owner."""
        return np.maximum(0, self.lookup_hops - self.hops)

    def to_csr(self) -> tuple:
        """``(path_servers, path_offsets)`` of the shortened paths."""
        return self.path_servers, self.path_offsets

    def serving_node(self, i: int) -> Digits:
        """Digit address of the cache node that served request ``i``."""
        return decode_node_key(int(self.serving_node_key[i]), self.delta)

    def server_path(self, i: int) -> List[float]:
        """Compressed server path of request ``i`` (CSR decode)."""
        lo, hi = self.path_offsets[i], self.path_offsets[i + 1]
        return [float(self.points[k]) for k in self.path_servers[lo:hi]]


class BatchCacheEngine:
    """Batch server for the Continuous Hot Spots Protocol (§3.1).

    Parameters
    ----------
    net:
        The network; the engine snapshots its decomposition via
        ``net.compile_router(with_adjacency=True)`` (a frozen router —
        membership changes raise the stale-router error rather than
        silently shifting cached node covers mid-epoch).
    items:
        The item universe, fixed up front so every tree gets a dense
        index; ``serve_batch`` takes item *indices* into this list.
    threshold:
        The paper's ``c`` (default ``⌈log₂ n⌉``, as in the scalar
        engine).
    salts:
        ``1`` reproduces the paper's protocol exactly; ``s > 1`` spreads
        each item over ``s`` salted trees (hot-key mitigation mode).
    router:
        Optionally reuse an existing adjacency-enabled router snapshot.
    """

    def __init__(
        self,
        net: DistanceHalvingNetwork,
        items: Sequence[Key],
        threshold: Optional[int] = None,
        salts: int = 1,
        router=None,
    ) -> None:
        if len(items) == 0:
            raise ValueError("BatchCacheEngine needs a non-empty item universe")
        if int(salts) < 1:
            raise ValueError("salts must be >= 1")
        self.net = net
        self.items: List[Key] = list(items)
        self.salts = int(salts)
        n = max(2, net.n)
        c = int(threshold) if threshold is not None else int(np.ceil(np.log2(n)))
        if c < 1:
            raise ValueError("threshold c must be >= 1")
        self.c = c
        self._router = router if router is not None else net.compile_router(
            with_adjacency=True)
        self.delta = int(self._router.delta)

        self.n_items = len(self.items)
        self.n_trees = self.n_items * self.salts
        # Composite key layout: tree·K + node_key with K = Δ^(depth_cap+2),
        # sized so child-range queries of the deepest node stay below K and
        # the whole space stays inside int64.  The float64 cap (exact
        # offsets need Δ^depth < 2^53) binds long before real walks do.
        log_d = math.log2(self.delta)
        tree_bits = max(1, math.ceil(math.log2(self.n_trees + 1)))
        self._depth_cap = min(int((62 - tree_bits) / log_d) - 2,
                              int(52 / log_d))
        if self._depth_cap < 4:
            raise ValueError(
                f"too many trees ({self.n_trees}) for the int64 composite "
                f"key space at delta={self.delta}")
        self._K = self.delta ** (self._depth_cap + 2)
        # float(Δ^j) via exact-int conversion: the same scale the scalar
        # walk divides by, so positions stay bit-identical.
        self._scales = np.asarray(
            [float(self.delta**j) for j in range(self._depth_cap + 2)],
            dtype=np.float64)

        # per-tree roots h(item) (or h(salted_key(item, j)) when salted)
        roots = np.empty(self.n_trees, dtype=np.float64)
        for i, item in enumerate(self.items):
            for j in range(self.salts):
                key = item if self.salts == 1 else salted_key(item, j)
                roots[i * self.salts + j] = float(net.item_hash(key))
        self._roots = roots

        # active-set state: parallel sorted arrays over composite keys
        base = np.arange(self.n_trees, dtype=np.int64) * self._K
        self._keys = base.copy()                       # sorted composite keys
        self._counts = np.zeros(self.n_trees, np.int64)  # served this epoch
        self._pos = roots.copy()                       # node ring positions
        self._depths = np.zeros(self.n_trees, np.int64)
        self._prev_keys = base.copy()                  # last epoch's snapshot
        self._prev_counts = np.zeros(self.n_trees, np.int64)
        self._tree_replications = np.zeros(self.n_trees, np.int64)
        self._touched = np.zeros(self.n_trees, dtype=bool)

        # per-server counters (indexed like the router's sorted points)
        self._hits = np.zeros(self._router.n, np.int64)
        self._msgs = np.zeros(self._router.n, np.int64)
        self.requests_served = 0

    # ------------------------------------------------------------ tree views
    def tree_index(self, item_idx: int, salt: int = 0) -> int:
        """Dense tree index of ``(item, salt)``."""
        if not 0 <= item_idx < self.n_items:
            raise IndexError(f"item index {item_idx} out of range")
        if not 0 <= salt < self.salts:
            raise IndexError(f"salt {salt} out of range")
        return item_idx * self.salts + salt

    def _tree_slice(self, tree: int) -> np.ndarray:
        lo = np.searchsorted(self._keys, tree * self._K)
        hi = np.searchsorted(self._keys, (tree + 1) * self._K)
        return np.arange(lo, hi)

    def active_set(self, tree: int) -> set:
        """Active node addresses of one tree (digit tuples)."""
        sl = self._tree_slice(tree)
        base = tree * self._K
        return {decode_node_key(int(k - base), self.delta)
                for k in self._keys[sl]}

    def tree_size(self, tree: int) -> int:
        """Active nodes of one tree (Observation 3.1 bounds it by 4q/c)."""
        return int(self._tree_slice(tree).size)

    def tree_depth(self, tree: int) -> int:
        """Deepest active node of one tree (Lemma 3.3's bound)."""
        sl = self._tree_slice(tree)
        return int(self._depths[sl].max()) if sl.size else 0

    def tree_replications(self, tree: int) -> int:
        return int(self._tree_replications[tree])

    def served_counts(self, tree: int) -> Dict[Digits, int]:
        """This epoch's per-node served counters of one tree (non-zero)."""
        sl = self._tree_slice(tree)
        base = tree * self._K
        return {decode_node_key(int(self._keys[i] - base), self.delta):
                int(self._counts[i]) for i in sl if self._counts[i]}

    def last_epoch_served(self, tree: int) -> Dict[Digits, int]:
        """The counters the last ``advance_epoch`` snapshot preserved."""
        base = tree * self._K
        lo = np.searchsorted(self._prev_keys, base)
        hi = np.searchsorted(self._prev_keys, base + self._K)
        return {decode_node_key(int(self._prev_keys[i] - base), self.delta):
                int(self._prev_counts[i]) for i in range(lo, hi)
                if self._prev_counts[i]}

    # ------------------------------------------------------- item-level views
    def item_replications(self, item_idx: int) -> int:
        """Total child activations of an item, merged over its salts."""
        lo = self.tree_index(item_idx, 0)
        return int(self._tree_replications[lo:lo + self.salts].sum())

    def item_copies(self, item_idx: int) -> int:
        """Active copies beyond the roots, merged over the item's salts."""
        lo = self.tree_index(item_idx, 0)
        return sum(self.tree_size(t) - 1 for t in range(lo, lo + self.salts))

    def content_update(self, item_idx: int) -> Tuple[int, int]:
        """§3 Content Update cost ``(messages, parallel_time)``.

        One message per active tree edge, time = active depth; salted
        items update every salt tree in parallel (messages add, times
        max) — both stay ``O(log n)``.
        """
        lo = self.tree_index(item_idx, 0)
        msgs = sum(self.tree_size(t) - 1 for t in range(lo, lo + self.salts))
        time = max(self.tree_depth(t) for t in range(lo, lo + self.salts))
        return msgs, time

    # ------------------------------------------------------------- the batch
    def serve_batch(
        self,
        item_idx,
        sources,
        tau: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        congestion=None,
    ) -> BatchCacheResult:
        """Serve one batch of requests, in array order (= arrival order).

        Routes every request with the vectorized two-phase Distance
        Halving lookup toward its (salted) root, resolves serving nodes
        against the active trees, applies step-1 replication with the
        exact sequential semantics, and books hit/message counters.

        ``tau`` fixes the per-request digit strings (shape ``(B, L)`` or
        ``(L,)``; required for bit-parity against a scalar replay);
        without it fresh digits are drawn from ``rng``.  ``congestion``
        optionally books the shortened CSR paths into a
        :class:`~repro.core.routing_stats.BatchCongestion`.
        """
        items = np.asarray(item_idx, dtype=np.int64).ravel()
        src = normalize_array(np.asarray(sources, dtype=np.float64))
        if items.size != src.size:
            raise ValueError("item_idx and sources must have the same length")
        if items.size and (items.min() < 0 or items.max() >= self.n_items):
            raise IndexError("item index out of range for the engine's universe")
        size = int(items.size)
        delta = self.delta
        points = self._router.points
        if size == 0:
            empty_i = np.zeros(0, np.int64)
            return BatchCacheResult(
                points=points, items=empty_i, trees=empty_i, t=empty_i,
                serving_depth=empty_i, serving_node_key=empty_i,
                serving_server_idx=empty_i.astype(np.int32), hops=empty_i,
                lookup_hops=empty_i,
                path_servers=np.zeros(0, np.int32),
                path_offsets=np.zeros(1, np.int64), delta=delta)

        if self.salts > 1:
            trees = items * self.salts + salt_indices(src, self.salts)
        else:
            trees = items.copy()
        targets = self._roots[trees]

        if tau is None:
            if rng is None:
                raise ValueError("serve_batch needs an rng or explicit tau")
            tau = rng.integers(0, delta, size=(size, _TAU_DIGITS))
        tau_arr = np.asarray(tau, dtype=np.int64)
        if tau_arr.ndim == 1:
            tau_arr = np.broadcast_to(tau_arr, (size, tau_arr.size))
        if tau_arr.shape[0] != size:
            raise ValueError("tau must have one digit string per request")

        res = self._router.batch_dh_lookup(src, targets, tau=tau_arr,
                                           keep_paths=False)
        t = res.t
        tmax = int(t.max())
        if tmax + 1 > self._depth_cap:
            raise RuntimeError(
                f"walk of {tmax} digits exceeds the engine's depth cap "
                f"{self._depth_cap}; fewer trees or larger delta needed")

        # prefix keys (composite) and exact walk offsets per depth
        scales = self._scales
        P = np.empty((size, tmax + 1), dtype=np.int64)
        OFF = np.empty((size, tmax + 1), dtype=np.float64)
        P[:, 0] = 0
        OFF[:, 0] = 0.0
        for j in range(1, tmax + 1):
            d = tau_arr[:, j - 1]
            P[:, j] = P[:, j - 1] * delta + d + 1
            OFF[:, j] = OFF[:, j - 1] + d * scales[j - 1]
        CK = trees[:, None] * self._K + P

        # serving depth: active prefixes are depth-contiguous from the root
        memb = _isin_sorted(CK.ravel(), self._keys).reshape(size, tmax + 1)
        memb &= np.arange(tmax + 1)[None, :] <= t[:, None]
        depth = memb.sum(axis=1).astype(np.int64) - 1
        lanes = np.arange(size)
        node = CK[lanes, depth]

        self._replication_fixpoint(node, depth, t, CK, OFF, trees, lanes)

        # commit epoch counters and per-server hits
        idx = np.searchsorted(self._keys, node)
        np.add.at(self._counts, idx, 1)
        serving_idx = cover_indices(points, self._pos[idx]).astype(np.int32)
        np.add.at(self._hits, serving_idx, 1)
        self._touched[np.unique(trees)] = True
        self.requests_served += size

        # cache-shortened paths: phase-I walk covers j = 0..t, then
        # phase-II covers j = t..serving depth — the exact closed-form
        # trajectory the scalar engine books.  Built ragged (a flat
        # (lane, level) expansion sized by the true path lengths, not a
        # dense level matrix) and compressed to CSR in one pass, the
        # cache-truncated specialisation of ``levels_to_csr``.
        raw_len = 2 * t - depth + 2          # (t+1) phase-I + (t-m+1) phase-II
        starts = np.concatenate(([0], np.cumsum(raw_len)))
        total = int(starts[-1])
        lane = np.repeat(lanes, raw_len)
        k = np.arange(total) - np.repeat(starts[:-1], raw_len)
        tl = t[lane]
        is_p1 = k <= tl
        j = np.where(is_p1, k, 2 * tl + 1 - k)
        val = (np.where(is_p1, src[lane], targets[lane]) + OFF[lane, j])
        val /= scales[j]
        val[val == 1.0] = 0.0
        serv = cover_indices(points, val)
        keep = np.ones(total, dtype=bool)   # consecutive-dup compression
        keep[1:] = (lane[1:] != lane[:-1]) | (serv[1:] != serv[:-1])
        servers = serv[keep].astype(np.int32)
        counts = np.bincount(lane[keep], minlength=size)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        np.add.at(self._msgs, servers, 1)
        hops = counts - 1

        result = BatchCacheResult(
            points=points, items=items, trees=trees, t=t,
            serving_depth=depth, serving_node_key=node - trees * self._K,
            serving_server_idx=serving_idx, hops=hops, lookup_hops=res.hops,
            path_servers=servers, path_offsets=offsets, delta=delta)
        if congestion is not None:
            congestion.record_batch(result)
        return result

    def _replication_fixpoint(self, node, depth, t, CK, OFF, trees, lanes):
        """Step-1 replication with sequential semantics, vectorized.

        Requests are grouped by their current node in batch order.  A
        group at a *leaf* whose carried count ``b`` plus arrivals crosses
        the threshold fires at arrival ``c+1-b``: that request is served
        where it entered, strictly later arrivals that entered deeper
        reroute to the next child on their digit string, and all Δ
        children activate.  Groups at blocked (non-leaf) nodes never
        fire; rerouted requests keep their batch order, so a child group
        fires exactly when the scalar per-request loop would make it.
        Terminates because every round strictly deepens some requests.
        """
        size = lanes.size
        delta = self.delta
        c = self.c
        points = self._router.points
        while True:
            order = np.lexsort((lanes, node))
            sk = node[order]
            new_grp = np.ones(size, dtype=bool)
            new_grp[1:] = sk[1:] != sk[:-1]
            grp_start = np.flatnonzero(new_grp)
            grp_id = np.cumsum(new_grp) - 1
            u_keys = sk[grp_start]
            gsize = np.diff(np.append(grp_start, size))
            pos = np.arange(size) - grp_start[grp_id] + 1

            local = u_keys % self._K
            child_lo = u_keys + local * (delta - 1) + 1
            has_child = (np.searchsorted(self._keys, child_lo + delta)
                         > np.searchsorted(self._keys, child_lo))
            base = self._counts[np.searchsorted(self._keys, u_keys)]
            tpos = c + 1 - base
            fires = ~has_child & (gsize >= tpos)
            if not fires.any():
                return

            # reroute strictly-later deep entries of fired groups
            req_fire = fires[grp_id]
            move_sorted = req_fire & (pos > tpos[grp_id])
            moved = order[move_sorted]
            moved = moved[t[moved] > depth[moved]]
            node[moved] = CK[moved, depth[moved] + 1]
            depth[moved] += 1

            # activate all Δ children of every fired node
            f = np.flatnonzero(fires)
            rep = order[grp_start[f]]          # first group member, in order
            f_depth = depth[rep]
            f_tree = trees[rep]
            off_u = OFF[rep, f_depth]
            pow_d = self._scales[f_depth]
            ds = np.arange(delta, dtype=np.float64)
            child_off = off_u[:, None] + ds[None, :] * pow_d[:, None]
            child_pos = ((self._roots[f_tree][:, None] + child_off)
                         / self._scales[f_depth + 1][:, None]).ravel()
            child_pos[child_pos == 1.0] = 0.0
            child_keys = (node[rep][:, None] * delta + 1
                          + np.arange(delta, dtype=np.int64)[None, :]
                          - (f_tree * self._K * (delta - 1))[:, None]).ravel()
            csort = np.argsort(child_keys, kind="stable")
            child_keys = child_keys[csort]
            child_pos = child_pos[csort]
            child_depth = np.repeat(f_depth + 1, delta)[csort]
            ins = np.searchsorted(self._keys, child_keys)
            self._keys = np.insert(self._keys, ins, child_keys)
            self._counts = np.insert(self._counts, ins, 0)
            self._pos = np.insert(self._pos, ins, child_pos)
            self._depths = np.insert(self._depths, ins, child_depth)
            np.add.at(self._tree_replications, f_tree, delta)
            np.add.at(self._msgs, cover_indices(points, child_pos), 1)

    # ---------------------------------------------------------------- epochs
    def advance_epoch(self) -> int:
        """End the epoch: collapse the unused fringe; reset counters.

        Vectorized steps 2–3: a sibling group of Δ cold leaves (every
        sibling active, a leaf, served < c) is removed as one patch;
        the sweep repeats until stable, reaching the same fixpoint as
        the scalar deepest-first recursion (removals only ever enable
        more removals).  Returns the number of deactivated nodes.
        """
        delta = self.delta
        removed = 0
        while True:
            keys = self._keys
            local = keys % self._K
            nz = np.flatnonzero(local > 0)
            if nz.size == 0:
                break
            child_lo = keys + local * (delta - 1) + 1
            has_child = (np.searchsorted(keys, child_lo + delta)
                         > np.searchsorted(keys, child_lo))
            cold = ~has_child & (self._counts < self.c)
            pk = keys[nz] - local[nz] + (local[nz] - 1) // delta
            starts = np.flatnonzero(np.r_[True, pk[1:] != pk[:-1]])
            gsize = np.diff(np.append(starts, pk.size))
            grp = np.cumsum(np.r_[True, pk[1:] != pk[:-1]]) - 1
            all_cold = np.minimum.reduceat(
                cold[nz].astype(np.int8), starts).astype(bool)
            kill_grp = all_cold & (gsize == delta)
            if not kill_grp.any():
                break
            kill = np.zeros(keys.size, dtype=bool)
            kill[nz] = kill_grp[grp]
            removed += int(kill.sum())
            keep = ~kill
            self._keys = self._keys[keep]
            self._counts = self._counts[keep]
            self._pos = self._pos[keep]
            self._depths = self._depths[keep]
        self._prev_keys = self._keys.copy()
        self._prev_counts = self._counts.copy()
        self._counts = np.zeros_like(self._counts)
        return removed

    # ----------------------------------------------------------------- stats
    def server_cache_hits(self) -> np.ndarray:
        """Per-server cache-hit counts (router point order)."""
        return self._hits.copy()

    def server_messages(self) -> np.ndarray:
        """Per-server message counts (routing + replication copies)."""
        return self._msgs.copy()

    def items_cached_per_server(self) -> np.ndarray:
        """Distinct (touched) trees with an active node per server."""
        tree_ids = self._keys // self._K
        mask = self._touched[tree_ids]
        if not mask.any():
            return np.zeros(self._router.n, np.int64)
        servers = cover_indices(self._router.points, self._pos[mask])
        pair = servers.astype(np.int64) * self.n_trees + tree_ids[mask]
        distinct = np.unique(pair)
        return np.bincount((distinct // self.n_trees).astype(np.int64),
                           minlength=self._router.n)

    def max_items_cached(self) -> int:
        """Max over servers of distinct cached trees (Thm 3.8 (i))."""
        per = self.items_cached_per_server()
        return int(per.max()) if per.size else 0

    def total_copies(self) -> int:
        """Total active nodes beyond the roots."""
        return int(self._keys.size - self.n_trees)

    def check_well_formed(self) -> int:
        """Audit the active-tree state; returns the node count.

        The structural invariants every §3 protocol step preserves —
        checked wholesale (one vectorized pass) so a soak can assert
        them between phases:

        * the composite key array is strictly increasing (sorted,
          duplicate-free) and all parallel arrays agree in length;
        * every tree's root (``key = tree·K``) is active;
        * prefix-closure: every non-root node's parent is active;
        * depth bookkeeping: roots at 0, children one deeper than their
          parent, nothing past the engine's depth cap;
        * epoch counters are non-negative.

        Raises ``ValueError`` naming the first violated invariant.
        """
        keys = self._keys
        m = keys.size
        for name, arr in (("counts", self._counts), ("pos", self._pos),
                          ("depths", self._depths)):
            if arr.size != m:
                raise ValueError(
                    f"cache state skew: {name} has {arr.size} entries "
                    f"for {m} keys")
        if m and (np.diff(keys) <= 0).any():
            raise ValueError("cache keys are not strictly increasing")
        roots = np.arange(self.n_trees, dtype=np.int64) * self._K
        if not _isin_sorted(roots, keys).all():
            raise ValueError("a tree lost its root node")
        local = keys % self._K
        nz = local > 0
        parent = keys[nz] - local[nz] + (local[nz] - 1) // self.delta
        p_idx = np.searchsorted(keys, parent)
        if (p_idx >= m).any() or (keys[np.minimum(p_idx, m - 1)]
                                  != parent).any():
            raise ValueError("prefix-closure violated: a node's parent "
                             "is not active")
        if (self._depths[~nz] != 0).any():
            raise ValueError("a root node has non-zero depth")
        if (self._depths[nz] != self._depths[p_idx] + 1).any():
            raise ValueError("a child's depth is not its parent's + 1")
        if m and int(self._depths.max()) > self._depth_cap:
            raise ValueError("an active node exceeds the depth cap")
        if (self._counts < 0).any():
            raise ValueError("negative epoch counter")
        return m

    def summary(self) -> Dict[str, float]:
        """Same digest schema (and, for the same stream, the same bits)
        as :meth:`repro.core.caching.CacheSystem.summary`.

        ``trees`` counts the trees that served at least one request —
        exactly the :class:`~repro.core.caching.ActiveTree` objects the
        scalar system would have materialised for the routed keys.
        """
        return {
            "requests": float(self.requests_served),
            "threshold_c": float(self.c),
            "max_cache_hits": float(self._hits.max(initial=0)),
            "max_messages": float(self._msgs.max(initial=0)),
            "max_items_cached": float(self.max_items_cached()),
            "total_copies": float(self.total_copies()),
            "trees": float(int(self._touched.sum())),
            "n": float(self.net.n),
        }
