"""Congestion and load accounting for routed lookups (paper §2.2, Def. 3).

The paper's congestion of a server is "the probability [it] is active in a
routing between a randomly chosen server and a random point"; empirically
we estimate it as (visits to the server) / (number of routed lookups).
Theorems 2.7 / 2.9 predict a maximum congestion of ``Θ(log n / n)`` for
smooth decompositions; Theorems 2.10 / 2.11 predict a maximum *load* of
``O(log n)`` messages per server when ``n`` lookups are routed at once
(permutation routing).

:class:`CongestionCounter` aggregates server visits over many
:class:`~repro.core.lookup.LookupResult` paths and reports the empirical
congestion distribution, so one object serves experiments E4, E5 and the
caching experiments' message accounting.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from .lookup import LookupResult

__all__ = ["CongestionCounter", "path_lengths"]


@dataclass
class CongestionCounter:
    """Accumulates per-server message counts over a batch of lookups."""

    visits: Counter = field(default_factory=Counter)
    lookups: int = 0
    total_messages: int = 0

    def record(self, result: LookupResult) -> None:
        """Count one routed lookup: every server on the path handles it once."""
        self.lookups += 1
        for p in result.server_path:
            self.visits[p] += 1
        self.total_messages += result.hops

    def record_path(self, server_points: Sequence[float]) -> None:
        """Count a raw server path (used by baseline DHTs)."""
        self.lookups += 1
        for p in server_points:
            self.visits[p] += 1
        self.total_messages += max(0, len(server_points) - 1)

    def max_load(self) -> int:
        """Largest number of lookups any single server participated in."""
        return max(self.visits.values(), default=0)

    def load_of(self, point: float) -> int:
        return self.visits.get(point, 0)

    def loads(self, all_points: Iterable[float]) -> np.ndarray:
        """Load vector over a given universe of servers (zeros included)."""
        return np.asarray([self.visits.get(p, 0) for p in all_points], dtype=float)

    def max_congestion(self) -> float:
        """Empirical max congestion: max visits / number of lookups (Def. 3)."""
        if self.lookups == 0:
            return 0.0
        return self.max_load() / self.lookups

    def mean_load(self, n_servers: int) -> float:
        """Average number of lookups handled per server."""
        if n_servers == 0:
            return 0.0
        return sum(self.visits.values()) / n_servers

    def summary(self, n_servers: int) -> Dict[str, float]:
        """Digest used by the experiment tables."""
        return {
            "lookups": float(self.lookups),
            "max_load": float(self.max_load()),
            "mean_load": self.mean_load(n_servers),
            "max_congestion": self.max_congestion(),
            "total_messages": float(self.total_messages),
        }


def path_lengths(results: Iterable[LookupResult]) -> np.ndarray:
    """Hop counts of a batch of lookups as an array (for table rows)."""
    return np.asarray([r.hops for r in results], dtype=float)
