"""Congestion and load accounting for routed lookups (paper §2.2, Def. 3).

The paper's congestion of a server is "the probability [it] is active in a
routing between a randomly chosen server and a random point"; empirically
we estimate it as (visits to the server) / (number of routed lookups).
Theorems 2.7 / 2.9 predict a maximum congestion of ``Θ(log n / n)`` for
smooth decompositions; Theorems 2.10 / 2.11 predict a maximum *load* of
``O(log n)`` messages per server when ``n`` lookups are routed at once
(permutation routing).

Two accounting backends share one ``summary()`` schema:

* :class:`CongestionCounter` — the scalar reference: a ``Counter`` fed
  one :class:`~repro.core.lookup.LookupResult` (or raw baseline-DHT
  path) at a time.  Serves the small cross-check sizes and the baseline
  comparisons.
* :class:`BatchCongestion` — the vectorized spine: one ``np.bincount``
  over the flattened CSR ``path_servers`` of a
  :class:`~repro.core.batch.BatchLookupResult` per batch.  Accumulators
  merge across batches (even batches routed on different snapshots of a
  churning network) and across scalar counters, so experiments E4/E5 and
  any message-accounting caller can mix both engines and still compare
  ``max_load`` / ``mean_load`` / ``max_congestion`` bit-for-bit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence

import numpy as np

from .lookup import LookupResult, compress_path

__all__ = ["CongestionCounter", "BatchCongestion", "path_lengths"]


def _lookup_sorted(keys: np.ndarray, vals: np.ndarray,
                   queries: np.ndarray) -> np.ndarray:
    """``vals`` at each query's position in sorted ``keys`` (0 on miss)."""
    out = np.zeros(queries.shape, dtype=vals.dtype if vals.size else float)
    if keys.size == 0:
        return out
    pos = np.searchsorted(keys, queries)
    pos_c = np.minimum(pos, keys.size - 1)
    hit = (pos < keys.size) & (keys[pos_c] == queries)
    out[hit] = vals[pos_c[hit]]
    return out


def _counter_arrays(visits: Counter) -> tuple:
    """Sorted unique ``(points, counts)`` arrays of a visits Counter.

    Exact (``Fraction``) server ids are cast to float64 — lossless for
    the dyadic ids the library constructs, and the only way the scalar
    and vectorized backends can share one key space.  Distinct exact ids
    that collide after the cast have their counts summed, so no visit is
    dropped from the shared key space.
    """
    keys = np.fromiter((float(k) for k in visits), dtype=np.float64,
                       count=len(visits))
    vals = np.fromiter(visits.values(), dtype=np.int64, count=len(visits))
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    vals = vals[order]
    first = np.ones(keys.size, dtype=bool)
    first[1:] = keys[1:] != keys[:-1]
    if first.all():
        return keys, vals
    return keys[first], np.add.reduceat(vals, np.flatnonzero(first))


class _CongestionStatsMixin:
    """The Definition-3 digest both accounting backends derive from
    ``max_load()`` / ``_visit_total()`` / ``lookups`` / ``total_messages``
    — one copy, so the shared ``summary()`` schema cannot drift."""

    def max_congestion(self) -> float:
        """Empirical max congestion: max visits / number of lookups (Def. 3)."""
        if self.lookups == 0:
            return 0.0
        return self.max_load() / self.lookups

    def mean_load(self, n_servers: int) -> float:
        """Average number of lookups handled per server."""
        if n_servers == 0:
            return 0.0
        return self._visit_total() / n_servers

    def summary(self, n_servers: int) -> Dict[str, float]:
        """Digest used by the experiment tables."""
        return {
            "lookups": float(self.lookups),
            "max_load": float(self.max_load()),
            "mean_load": self.mean_load(n_servers),
            "max_congestion": self.max_congestion(),
            "total_messages": float(self.total_messages),
        }


@dataclass
class CongestionCounter(_CongestionStatsMixin):
    """Accumulates per-server message counts over a batch of lookups."""

    visits: Counter = field(default_factory=Counter)
    lookups: int = 0
    total_messages: int = 0

    def record(self, result: LookupResult) -> None:
        """Count one routed lookup: every server on the path handles it once."""
        self.lookups += 1
        for p in result.server_path:
            self.visits[p] += 1
        self.total_messages += result.hops

    def record_path(self, server_points: Sequence[float]) -> None:
        """Count a raw server path (used by baseline DHTs).

        Consecutive duplicates are compressed away first, exactly as
        :class:`~repro.core.lookup.LookupResult` does when it builds
        ``server_path`` — so for the same underlying route this books
        the same visits and the same ``hops == len(path) - 1`` messages
        as :meth:`record`, keeping baseline-DHT comparisons
        apples-to-apples.
        """
        path = compress_path(list(server_points))
        self.lookups += 1
        for p in path:
            self.visits[p] += 1
        self.total_messages += max(0, len(path) - 1)

    def max_load(self) -> int:
        """Largest number of lookups any single server participated in."""
        return max(self.visits.values(), default=0)

    def load_of(self, point: float) -> int:
        return self.visits.get(point, 0)

    def loads(self, all_points: Iterable[float]) -> np.ndarray:
        """Load vector over a given universe of servers (zeros included).

        One ``np.searchsorted`` over the sorted visited points instead
        of a per-point dict probe; ids are matched as float64 (exact for
        the library's dyadic ``Fraction`` ids).
        """
        queries = np.asarray(
            all_points if isinstance(all_points, np.ndarray)
            else [float(p) for p in all_points],
            dtype=np.float64,
        )
        if not self.visits:
            return np.zeros(queries.size)
        keys, vals = _counter_arrays(self.visits)
        return _lookup_sorted(keys, vals.astype(float), queries.ravel())

    def _visit_total(self) -> int:
        return sum(self.visits.values())


@dataclass
class BatchCongestion(_CongestionStatsMixin):
    """Vectorized per-server load accounting over CSR path batches.

    The batch counterpart of :class:`CongestionCounter`: feeding it a
    :class:`~repro.core.batch.BatchLookupResult` routed with
    ``keep_paths="csr"`` costs one ``np.bincount`` over the flattened
    ``path_servers`` array, instead of one dict update per path server.
    Totals are kept as a sorted ``(points, counts)`` pair keyed by
    server id — not by snapshot index — so one accumulator can absorb
    batches routed on *different* snapshots of a churning network
    (:meth:`merge`), fold in scalar counters (:meth:`merge_counter`),
    and still report the exact quantities the scalar class reports:
    ``summary()`` matches key-for-key and, for the same routed lookups,
    bit-for-bit (the E4/E5 cross-check).
    """

    lookups: int = 0
    total_messages: int = 0
    _points: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64), repr=False)
    _counts: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64), repr=False)

    @property
    def visited_points(self) -> np.ndarray:
        """Sorted ids of the servers that handled at least one message."""
        return self._points

    def record_batch(self, result) -> None:
        """Account one routed batch (CSR paths required).

        ``result`` must carry CSR paths — route with
        ``keep_paths="csr"``, or ``keep_paths=True`` plus an implicit
        :meth:`~repro.core.batch.BatchLookupResult.to_csr` here.
        """
        servers, _offsets = result.to_csr()
        counts = np.bincount(servers,
                             minlength=len(result.points)).astype(np.int64)
        nz = counts > 0
        self._merge_sorted(
            np.asarray(result.points, dtype=np.float64)[nz], counts[nz])
        self.lookups += result.size
        self.total_messages += int(result.hops.sum())

    def merge(self, other: "BatchCongestion") -> None:
        """Fold another accumulator into this one."""
        self._merge_sorted(other._points, other._counts)
        self.lookups += other.lookups
        self.total_messages += other.total_messages

    def merge_counter(self, counter: CongestionCounter) -> None:
        """Fold a scalar :class:`CongestionCounter` into this one."""
        if counter.visits:
            keys, vals = _counter_arrays(counter.visits)
            self._merge_sorted(keys, vals)
        self.lookups += counter.lookups
        self.total_messages += counter.total_messages

    def to_counter(self) -> CongestionCounter:
        """Scalar view of the totals (for ``Counter``-based consumers)."""
        c = CongestionCounter(lookups=self.lookups,
                              total_messages=self.total_messages)
        c.visits.update(dict(zip(self._points.tolist(),
                                 self._counts.tolist())))
        return c

    def _merge_sorted(self, points: np.ndarray, counts: np.ndarray) -> None:
        """Add ``counts`` keyed by sorted ``points`` into the totals."""
        if points.size == 0:
            return
        if self._points.size == 0:
            self._points = points.copy()
            self._counts = counts.copy()
            return
        allp = np.concatenate([self._points, points])
        allc = np.concatenate([self._counts, counts])
        order = np.argsort(allp, kind="stable")
        p = allp[order]
        c = allc[order]
        first = np.ones(p.size, dtype=bool)
        first[1:] = p[1:] != p[:-1]
        self._points = p[first]
        self._counts = np.add.reduceat(c, np.flatnonzero(first))

    # ---- same read API / summary schema as the scalar counter ----
    def max_load(self) -> int:
        """Largest number of lookups any single server participated in."""
        return int(self._counts.max()) if self._counts.size else 0

    def load_of(self, point: float) -> int:
        return int(_lookup_sorted(self._points, self._counts,
                                  np.asarray([float(point)]))[0])

    def loads(self, all_points: Iterable[float]) -> np.ndarray:
        """Load vector over a given universe of servers (zeros included)."""
        queries = np.asarray(
            all_points if isinstance(all_points, np.ndarray)
            else [float(p) for p in all_points],
            dtype=np.float64,
        )
        return _lookup_sorted(self._points, self._counts.astype(float),
                              queries.ravel())

    def _visit_total(self) -> int:
        return int(self._counts.sum())


def path_lengths(results: Iterable[LookupResult]) -> np.ndarray:
    """Hop counts of a batch of lookups as an array (for table rows)."""
    return np.asarray([r.hops for r in results], dtype=float)
