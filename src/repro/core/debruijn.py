"""Classic De Bruijn graphs and the paper's isomorphism claim (§2.1, §2.3).

Definition 2: the ``r``-dimensional (binary) De Bruijn graph has ``2^r``
nodes, one per ``r``-bit string, with edges
``u_1 u_2 … u_r -> u_2 … u_r v``.  Definition 4 generalises to alphabet
size ``Δ``.

The paper proves that with equally spaced ids ``x_i = i/2^r`` the discrete
Distance Halving graph (without ring edges) is *isomorphic* to the
``r``-dimensional De Bruijn graph via bit reversal
``v_1 … v_r  ↦  v_r … v_1``.  :func:`distance_halving_is_debruijn`
checks that isomorphism explicitly — it is both a unit test of the whole
edge machinery and the justification for calling the DHT a De Bruijn
emulation.

Also provided: diameter (``log_Δ n``, the Moore-bound optimality used in
§2.3) and standard shortest-path routing on the static graph for the
baseline comparisons.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

import networkx as nx

__all__ = [
    "debruijn_nodes",
    "debruijn_successors",
    "debruijn_graph",
    "debruijn_diameter",
    "bit_reversal",
    "equally_spaced_network",
    "distance_halving_is_debruijn",
]


def equally_spaced_network(r: int, delta: int = 2, with_ring: bool = False):
    """The Distance Halving network on the ``Δ^r`` equally spaced ids.

    Ids are the exact dyadic/``Δ``-adic rationals ``x_i = i/Δ^r``
    (smoothness ``ρ = 1``), the instance on which §2.1 proves the DHT
    isomorphic to the ``r``-dimensional De Bruijn graph.  Besides the
    isomorphism check below it serves as the ``ρ = 1`` reference network
    for the lookup and batch-throughput experiments: every bound of
    Corollary 2.5 / Theorem 2.8 is tight-modulo-constants here.
    """
    from fractions import Fraction

    from .network import DistanceHalvingNetwork

    if r < 1:
        raise ValueError("dimension r must be >= 1")
    n = delta**r
    net = DistanceHalvingNetwork(delta=delta, with_ring=with_ring)
    for i in range(n):
        net.join(Fraction(i, n))
    return net


def debruijn_nodes(r: int, delta: int = 2) -> Iterator[Tuple[int, ...]]:
    """All ``Δ^r`` digit strings of length ``r`` (lexicographic order)."""
    if r < 1:
        raise ValueError("dimension r must be >= 1")
    total = delta**r
    for value in range(total):
        yield value_to_string(value, r, delta)


def value_to_string(value: int, r: int, delta: int = 2) -> Tuple[int, ...]:
    """Integer ``value`` as an ``r``-digit base-``Δ`` string (MSB first)."""
    digits = []
    for k in range(r - 1, -1, -1):
        digits.append((value // delta**k) % delta)
    return tuple(digits)


def string_to_value(s: Iterable[int], delta: int = 2) -> int:
    """Inverse of :func:`value_to_string`."""
    v = 0
    for d in s:
        v = v * delta + d
    return v


def debruijn_successors(node: Tuple[int, ...], delta: int = 2) -> List[Tuple[int, ...]]:
    """Out-neighbours ``u_2 … u_r v`` for each alphabet digit ``v``."""
    return [node[1:] + (v,) for v in range(delta)]


def debruijn_graph(r: int, delta: int = 2) -> nx.DiGraph:
    """The ``r``-dimensional, degree-``Δ`` De Bruijn digraph (Def. 2/4)."""
    g = nx.DiGraph()
    for node in debruijn_nodes(r, delta):
        for nxt in debruijn_successors(node, delta):
            g.add_edge(node, nxt)
    return g


def debruijn_diameter(r: int, delta: int = 2) -> int:
    """Diameter is exactly ``r = log_Δ n`` — the Moore-bound optimum (§2.3)."""
    return r


def bit_reversal(node: Tuple[int, ...]) -> Tuple[int, ...]:
    """The paper's isomorphism map ``v_1 … v_r ↦ v_r … v_1``."""
    return tuple(reversed(node))


def distance_halving_is_debruijn(r: int, delta: int = 2) -> bool:
    """Verify §2.1's isomorphism claim for dimension ``r``.

    Builds the discrete Distance Halving graph on the ``Δ^r`` equally
    spaced points ``x_i = i/Δ^r`` (without ring edges), maps each server
    to the bit-reversed digit string of its index, and checks the edge
    sets coincide with the ``r``-dimensional De Bruijn graph's.

    Self-loops are compared too (the De Bruijn graph has one per constant
    string).  Note the discrete DH edge relation is "segments containing
    adjacent continuous points"; with exactly equal segments each image
    ``f_v(s(x_i))`` lies inside a single segment, which is what makes the
    correspondence exact.
    """
    net = equally_spaced_network(r, delta=delta, with_ring=False)

    points = list(net.points())
    dh_edges = set()
    for i, p in enumerate(points):
        for q in net.out_neighbor_points(p):
            j = points.index(q)
            dh_edges.add((i, j))

    db_edges = set()
    for node in debruijn_nodes(r, delta):
        i = string_to_value(bit_reversal(node), delta)
        for nxt in debruijn_successors(node, delta):
            j = string_to_value(bit_reversal(nxt), delta)
            db_edges.add((i, j))

    return dh_edges == db_edges
