"""Path trees of the continuous Distance Halving graph (paper §3.1, Def. 5).

For a point ``y`` the *path tree* rooted at ``y`` is the infinite tree in
which every node ``z`` is the parent of ``l(z)`` and ``r(z)`` (all ``Δ``
children ``f_d(z)`` in the generalised construction).  A tree node is
addressed by the digit string ``σ = (d_1, …, d_j)`` of the child choices
taken from the root; its position in ``I`` is the walk ``w(σ, y)``.

Phase II of the Distance Halving lookup walks backward edges from
``w(τ_t, y)`` to ``y`` — i.e. *up* this tree from the depth-``t`` node
``τ[:t]`` to the root, visiting exactly the prefixes of ``τ``.  Because
``τ`` is uniformly random, requests enter through uniformly random
depth-``t`` nodes: the property that makes the tree a cache tree (the
"key observation" of §3.1).

Observation 3.2: two distinct nodes in layer ``j`` are at distance at
least ``Δ^{-j}`` — so a segment of length ``s`` covers at most
``⌈s·Δ^j⌉`` layer-``j`` nodes (used by Lemma 3.5).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from .continuous import ContinuousGraph, Digits
from .interval import Number, normalize

__all__ = ["PathTree"]


class PathTree:
    """The path tree rooted at ``root`` in the degree-``Δ`` continuous graph."""

    def __init__(self, root: Number, graph: ContinuousGraph | None = None):
        self.graph = graph if graph is not None else ContinuousGraph(2)
        self.root = normalize(root)

    @property
    def delta(self) -> int:
        return self.graph.delta

    def position(self, address: Sequence[int]) -> Number:
        """Position in ``I`` of the node addressed by digit string ``address``."""
        return self.graph.walk(tuple(address), self.root)

    def children(self, address: Sequence[int]) -> list[Digits]:
        """Addresses of the ``Δ`` children of a node."""
        base = tuple(address)
        return [base + (d,) for d in range(self.delta)]

    def parent(self, address: Sequence[int]) -> Digits:
        """Address of the parent (root's parent raises)."""
        if not address:
            raise ValueError("the root has no parent")
        return tuple(address)[:-1]

    def depth(self, address: Sequence[int]) -> int:
        return len(address)

    def layer(self, j: int) -> Iterator[Digits]:
        """All ``Δ^j`` addresses at depth ``j`` (lexicographic)."""
        if j < 0:
            raise ValueError("depth must be non-negative")

        def rec(prefix: Tuple[int, ...]) -> Iterator[Digits]:
            if len(prefix) == j:
                yield prefix
                return
            for d in range(self.delta):
                yield from rec(prefix + (d,))

        yield from rec(())

    def min_layer_spacing(self, j: int) -> float:
        """Observation 3.2's lower bound ``Δ^{-j}`` on intra-layer distance."""
        return float(self.delta) ** (-j)

    def entry_address(self, tau: Sequence[int]) -> Digits:
        """The tree node through which a phase-II walk with digits ``tau`` enters."""
        return tuple(tau)

    def ascending_path(self, tau: Sequence[int]) -> list[Digits]:
        """Node addresses visited walking up from ``τ[:t]`` to the root."""
        t = len(tau)
        return [tuple(tau)[:j] for j in range(t, -1, -1)]
