"""Core library: the paper's primary contribution (§2–§3).

The Distance Halving DHT — continuous graph, dynamic discretization,
lookup algorithms, and the coupled dynamic-caching protocol.
"""

from .batch import BatchLookupResult, BatchRouter, RouterRefreshStats
from .batch_cache import (
    BatchCacheEngine,
    BatchCacheResult,
    decode_node_key,
    encode_node_key,
)
from .caching import ActiveTree, CachedLookup, CacheSystem, salt_indices, salted_key
from .continuous import ContinuousGraph, binary_digits, digits_to_point
from .debruijn import (
    bit_reversal,
    debruijn_diameter,
    debruijn_graph,
    distance_halving_is_debruijn,
    equally_spaced_network,
)
from .interval import (
    Arc,
    arcs_cover_ring,
    full_arc,
    linear_distance,
    midpoint_between,
    normalize,
    ring_distance,
)
from .lookup import (
    MAX_WALK_STEPS,
    LookupResult,
    compress_path,
    dh_lookup,
    fast_lookup,
    lookup_many,
)
from .network import DistanceHalvingNetwork
from .node import Server
from .pathtree import PathTree
from .routing_stats import BatchCongestion, CongestionCounter, path_lengths
from .segments import SegmentMap

__all__ = [
    "ActiveTree",
    "Arc",
    "BatchCacheEngine",
    "BatchCacheResult",
    "BatchCongestion",
    "BatchLookupResult",
    "BatchRouter",
    "CacheSystem",
    "CachedLookup",
    "CongestionCounter",
    "ContinuousGraph",
    "DistanceHalvingNetwork",
    "LookupResult",
    "MAX_WALK_STEPS",
    "PathTree",
    "RouterRefreshStats",
    "SegmentMap",
    "Server",
    "arcs_cover_ring",
    "binary_digits",
    "bit_reversal",
    "compress_path",
    "debruijn_diameter",
    "debruijn_graph",
    "decode_node_key",
    "dh_lookup",
    "digits_to_point",
    "distance_halving_is_debruijn",
    "encode_node_key",
    "equally_spaced_network",
    "fast_lookup",
    "full_arc",
    "linear_distance",
    "lookup_many",
    "midpoint_between",
    "normalize",
    "path_lengths",
    "ring_distance",
    "salt_indices",
    "salted_key",
]
