"""Core library: the paper's primary contribution (§2–§3).

The Distance Halving DHT — continuous graph, dynamic discretization,
lookup algorithms, and the coupled dynamic-caching protocol.
"""

from .caching import ActiveTree, CachedLookup, CacheSystem
from .continuous import ContinuousGraph, binary_digits, digits_to_point
from .debruijn import (
    bit_reversal,
    debruijn_diameter,
    debruijn_graph,
    distance_halving_is_debruijn,
)
from .interval import (
    Arc,
    arcs_cover_ring,
    full_arc,
    linear_distance,
    midpoint_between,
    normalize,
    ring_distance,
)
from .lookup import MAX_WALK_STEPS, LookupResult, dh_lookup, fast_lookup
from .network import DistanceHalvingNetwork
from .node import Server
from .pathtree import PathTree
from .routing_stats import CongestionCounter, path_lengths
from .segments import SegmentMap

__all__ = [
    "ActiveTree",
    "Arc",
    "CacheSystem",
    "CachedLookup",
    "CongestionCounter",
    "ContinuousGraph",
    "DistanceHalvingNetwork",
    "LookupResult",
    "MAX_WALK_STEPS",
    "PathTree",
    "SegmentMap",
    "Server",
    "arcs_cover_ring",
    "binary_digits",
    "bit_reversal",
    "debruijn_diameter",
    "debruijn_graph",
    "dh_lookup",
    "digits_to_point",
    "distance_halving_is_debruijn",
    "fast_lookup",
    "full_arc",
    "linear_distance",
    "midpoint_between",
    "normalize",
    "path_lengths",
    "ring_distance",
]
