"""Shared columnar-snapshot + op-journal layer.

Three subsystems grew the same pattern independently — freeze a sorted
decomposition into NumPy arrays, follow the live structure through a
bounded journal of ops, patch the arrays in O(affected region) per op,
and fall back to a full rebuild when the replay would cost more than a
recompile:

* the batch-lookup router (:class:`~repro.core.batch.BatchRouter`)
  following :class:`~repro.core.network.DistanceHalvingNetwork`
  membership;
* the §6.2 cover tables of
  :class:`~repro.faults.overlap.OverlappingDHNetwork` (static
  membership — a snapshot that is never stale);
* the §4.1 :class:`~repro.balance.buckets.BucketBalancer`, whose
  analytics re-froze its sorted point list on every query.

This module extracts the pattern once.  :class:`ColumnarSnapshot` owns
the *frozen sorted columns* (aligned NumPy arrays registered by name),
the version counter, the refresh decision (incremental patch within a
churn budget and journal window, full rebuild otherwise), the
:class:`SnapshotRefreshStats` accounting, and the stale-or-refresh
entry guard.  :class:`OpJournal` owns the bounded op log.  Subclasses
only say how to rebuild their columns from the source of truth
(:meth:`ColumnarSnapshot._rebuild`) and — optionally — how to replay a
pending-op suffix as array patches (:meth:`ColumnarSnapshot._patch`).

The column registry doubles as the export surface of the sharded
execution backend (:mod:`repro.core.shard`):
:meth:`ColumnarSnapshot.snapshot_columns` enumerates exactly the arrays
a worker process needs to route without the live Python object graph,
which is what makes pickle-free ``shared_memory`` sharing possible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ColumnarSnapshot", "OpJournal", "SnapshotRefreshStats",
           "StaleSnapshotError"]


class StaleSnapshotError(RuntimeError):
    """A frozen snapshot was queried after its source of truth moved on.

    Subclasses ``RuntimeError`` so pre-extraction callers that caught
    the router's stale error keep working unchanged.
    """


#: Default guidance when a snapshot subclass does not supply its own.
_DEFAULT_STALE_ERROR = (
    "stale snapshot: the underlying structure changed since this snapshot "
    "was frozen; rebuild it, or construct it with auto_refresh=True to "
    "follow changes automatically"
)


@dataclass
class SnapshotRefreshStats:
    """Cumulative accounting of a snapshot's re-sync work.

    Every pending op a refresh consumed is counted in exactly one
    bucket: ``ops_replayed`` when an incremental patch replayed it,
    ``ops_absorbed`` when a fallback full rebuild absorbed it (budget or
    journal window exceeded, tiny structure, ``force_full``).  Keeping
    the buckets separate is what makes incremental-refresh speedup
    claims honest — a single rebuild that swallows a 10⁴-op churn wave
    must not masquerade as 10⁴ cheap incremental replays.  ``seconds``
    covers the patching itself (both modes); the churn-soak experiment
    divides it by :meth:`ops_synced` to report refresh cost per op.
    """

    refreshes: int = 0
    incremental: int = 0
    full_rebuilds: int = 0
    ops_replayed: int = 0
    ops_absorbed: int = 0
    seconds: float = 0.0

    def ops_synced(self) -> int:
        """Ops consumed by refreshes, over both buckets."""
        return self.ops_replayed + self.ops_absorbed

    def seconds_per_op(self) -> float:
        """Mean refresh seconds per consumed op (0.0 before any sync)."""
        total = self.ops_synced()
        return self.seconds / total if total else 0.0


class OpJournal:
    """Bounded journal of ops with a monotone version counter.

    Every mutation of the source structure appends one opaque op (the
    snapshot subclass defines its shape) and bumps :attr:`version`.  A
    snapshot synced at version ``v`` replays the suffix
    :meth:`ops_since`\\ ``(v)`` to patch its frozen arrays in
    O(affected region) instead of rebuilding.

    The journal is capped (``cap`` entries); a snapshot that fell
    further behind than the cap gets ``None`` from :meth:`ops_since`
    and must do a full rebuild.
    """

    def __init__(self, cap: int = 8192) -> None:
        self.cap = int(cap)
        self.version = 0
        self._ops: List[tuple] = []
        self._head = 0  # version just before the first retained entry

    def append(self, op: tuple) -> int:
        """Record one op; returns the new version."""
        self._ops.append(op)
        self.version += 1
        overflow = len(self._ops) - self.cap
        if overflow > 0:
            del self._ops[:overflow]
            self._head += overflow
        return self.version

    def ops_since(self, version: int) -> Optional[List[tuple]]:
        """Ops replaying ``version`` → current, or ``None`` if trimmed."""
        if version > self.version:
            raise ValueError(
                f"version {version} is ahead of the journal ({self.version})"
            )
        if version < self._head:
            return None
        return self._ops[version - self._head:]


class ColumnarSnapshot:
    """Frozen sorted NumPy columns following a journaled live structure.

    Subclasses declare their aligned arrays in :attr:`COLUMNS` (plain
    instance attributes, one :class:`numpy.ndarray` per name, all the
    same length) and implement:

    * :meth:`_rebuild` — fill every column from the source of truth
      (the full-recompile path);
    * :meth:`_patch` *(optional)* — replay a pending-op suffix as
      O(affected-region) array edits; return ``False`` to bail out to a
      full rebuild.  The default always bails, so a subclass without a
      patch rule still gets correct (if slower) refresh semantics.

    The base class owns everything the three pre-extraction copies
    duplicated: the version counter against the journal, the
    stale-or-refresh entry guard (:meth:`ensure_fresh`), the refresh
    decision (incremental within ``budget`` and the journal window,
    full rebuild otherwise, with :class:`SnapshotRefreshStats`
    accounting), and generic sorted-row edit helpers
    (:meth:`insert_row` / :meth:`delete_row`).

    A snapshot constructed with ``journal=None`` is *static*: it can
    never go stale (the §6.2 cover tables).
    """

    #: Names of the aligned frozen arrays; subclasses override.
    COLUMNS: Tuple[str, ...] = ()

    def __init__(
        self,
        journal: Optional[OpJournal] = None,
        auto_refresh: bool = False,
        budget: Optional[int] = None,
        stale_error: Optional[str] = None,
    ) -> None:
        self._journal = journal
        self.auto_refresh = bool(auto_refresh)
        self.budget = budget
        self.refresh_stats = SnapshotRefreshStats()
        self._stale_error = stale_error or _DEFAULT_STALE_ERROR
        self._rebuild()
        self._version = self._journal_version()

    # --------------------------------------------------- subclass contract
    def _rebuild(self) -> None:
        """Fill every column from the source of truth (full recompile)."""
        raise NotImplementedError

    def _patch(self, pending: Sequence[tuple]) -> bool:
        """Replay ``pending`` as O(affected-region) edits; False = bail."""
        return False

    # ------------------------------------------------------------- columns
    def snapshot_columns(self) -> Dict[str, np.ndarray]:
        """The registered frozen arrays by name (the shard export surface)."""
        return {name: getattr(self, name) for name in self.COLUMNS}

    @property
    def n_rows(self) -> int:
        """Rows shared by every registered column (0 with no columns)."""
        if not self.COLUMNS:
            return 0
        return int(len(getattr(self, self.COLUMNS[0])))

    def insert_row(self, idx: int, **values) -> None:
        """``np.insert`` one row at ``idx`` across every registered column.

        Missing columns get a zero of their dtype — callers recompute
        derived entries afterwards (the affected region is theirs to
        know).
        """
        for name in self.COLUMNS:
            col = getattr(self, name)
            fill = values.get(name, col.dtype.type(0))
            setattr(self, name, np.insert(col, idx, fill))

    def delete_row(self, idx: int) -> None:
        """``np.delete`` one row at ``idx`` across every registered column."""
        for name in self.COLUMNS:
            setattr(self, name, np.delete(getattr(self, name), idx))

    # ------------------------------------------------------------ freshness
    def _journal_version(self) -> int:
        return self._journal.version if self._journal is not None else 0

    @property
    def version(self) -> int:
        """The journal version this snapshot's arrays reflect."""
        return self._version

    @property
    def is_stale(self) -> bool:
        """Whether the journal moved past the frozen columns."""
        return self._version != self._journal_version()

    def ensure_fresh(self) -> None:
        """Entry guard of every query: sync or fail actionably."""
        if self._version == self._journal_version():
            return
        if not self.auto_refresh:
            raise StaleSnapshotError(self._stale_error)
        self.refresh()

    def _default_budget(self) -> int:
        """Pending ops an incremental refresh will replay at most."""
        return max(16, self.n_rows // 16)

    def refresh(self, force_full: bool = False) -> "ColumnarSnapshot":
        """Bring the columns up to date with the journal.

        Replays the journal suffix since :attr:`version` through
        :meth:`_patch`; rebuilds from scratch when ``force_full`` is
        set, the pending-op count exceeds the budget, the journal
        window was exceeded, or the subclass patch rule bails out.
        Every consumed op lands in exactly one stats bucket
        (``ops_replayed`` vs ``ops_absorbed``).  Returns ``self`` so
        calls chain.
        """
        target = self._journal_version()
        if target == self._version and not force_full:
            return self
        t0 = time.perf_counter()
        pending = (None if force_full or self._journal is None
                   else self._journal.ops_since(self._version))
        budget = (self.budget if self.budget is not None
                  else self._default_budget())
        ops = target - self._version
        if (pending is not None and len(pending) <= budget
                and self._patch(pending)):
            self.refresh_stats.incremental += 1
            self.refresh_stats.ops_replayed += ops
        else:
            self._rebuild()
            self.refresh_stats.full_rebuilds += 1
            self.refresh_stats.ops_absorbed += ops
        self._version = target
        self.refresh_stats.refreshes += 1
        self.refresh_stats.seconds += time.perf_counter() - t0
        return self
